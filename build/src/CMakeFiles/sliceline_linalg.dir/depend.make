# Empty dependencies file for sliceline_linalg.
# This may be replaced when dependencies are built.
