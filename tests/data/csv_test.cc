#include "data/csv.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

namespace sliceline::data {
namespace {

TEST(CsvTest, ParsesTypedColumns) {
  auto frame = ParseCsv("age,city,salary\n30,boston,70000\n25,nyc,65000\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2);
  EXPECT_EQ(frame->num_columns(), 3);
  EXPECT_TRUE(frame->column(0).is_numeric());
  EXPECT_FALSE(frame->column(1).is_numeric());
  EXPECT_DOUBLE_EQ(frame->column(2).numeric()[1], 65000);
  EXPECT_EQ(frame->column(1).categorical()[0], "boston");
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions opts;
  opts.has_header = false;
  auto frame = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->column(0).name(), "C0");
  EXPECT_EQ(frame->num_rows(), 2);
}

TEST(CsvTest, MissingValuesBecomeNaN) {
  auto frame = ParseCsv("a,b\n1,x\n?,y\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->column(0).is_numeric());
  EXPECT_TRUE(std::isnan(frame->column(0).numeric()[1]));
}

TEST(CsvTest, MixedColumnFallsBackToCategorical) {
  auto frame = ParseCsv("a\n1\nfoo\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->column(0).is_numeric());
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, RaggedRowErrorCarriesRowContext) {
  auto frame = ParseCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  // Line 3 is the ragged one; the message names it and both field counts.
  EXPECT_NE(frame.status().message().find("line 3"), std::string::npos)
      << frame.status().ToString();
  EXPECT_NE(frame.status().message().find("has 1"), std::string::npos);
  EXPECT_NE(frame.status().message().find("expected 2"), std::string::npos);
}

TEST(CsvTest, RaggedRowNumberSkipsBlankLines) {
  auto frame = ParseCsv("a,b\r\n\r\n1,2\n\n3,4,5\n");
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("line 5"), std::string::npos)
      << frame.status().ToString();
}

TEST(CsvTest, RejectsEmpty) {
  auto frame = ParseCsv("");
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsWhitespaceOnly) {
  EXPECT_FALSE(ParseCsv("\n\n\r\n").ok());
}

TEST(CsvTest, RejectsHeaderWithoutDataRows) {
  auto frame = ParseCsv("a,b\n");
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("no data rows"), std::string::npos)
      << frame.status().ToString();
}

TEST(CsvTest, NumericOverflowErrorsWithRowAndColumn) {
  auto frame = ParseCsv("a,b\n1,2\n1e999,4\n");
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(frame.status().message().find("column 'a'"), std::string::npos)
      << frame.status().ToString();
  EXPECT_NE(frame.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, OverflowInTextColumnStaysCategorical) {
  // A column with genuine text is categorical; an overflowing token inside
  // it is just another category, not an error.
  auto frame = ParseCsv("a\nfoo\n1e999\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->column(0).is_numeric());
  EXPECT_EQ(frame->column(0).categorical()[1], "1e999");
}

TEST(CsvTest, HandlesCrlfAndBlankLines) {
  auto frame = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2);
  EXPECT_DOUBLE_EQ(frame->column(1).numeric()[1], 4);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  auto frame = ParseCsv("a;b\n1;2\n", opts);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_columns(), 2);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Frame f;
  ASSERT_TRUE(f.AddColumn(Column("n", std::vector<double>{1.5, -2})).ok());
  ASSERT_TRUE(
      f.AddColumn(Column("c", std::vector<std::string>{"x", "y"})).ok());
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(WriteCsv(f, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2);
  EXPECT_DOUBLE_EQ(back->column(0).numeric()[0], 1.5);
  EXPECT_EQ(back->column(1).categorical()[1], "y");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/definitely/missing.csv").ok());
}

}  // namespace
}  // namespace sliceline::data
