#ifndef SLICELINE_OBS_RUN_REPORT_H_
#define SLICELINE_OBS_RUN_REPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "obs/metrics.h"

namespace sliceline::obs {

/// Machine-readable description of one slice-finding run: tool/engine
/// identity, configuration, the per-level enumeration table, the top-K, the
/// structured RunOutcome, arbitrary numeric extension sections (distributed
/// cost/fault stats, benchmark rows), and a snapshot of the metrics
/// registry. Serializes to strict JSON (schema_version 1) and to the
/// Prometheus text exposition format. The CLI's --metrics-json flag and
/// every bench_* binary emit exactly this shape, so downstream tooling
/// parses one schema.
class RunReport {
 public:
  void set_tool(std::string tool) { tool_ = std::move(tool); }
  void set_engine(std::string engine) { engine_ = std::move(engine); }
  void set_dataset(std::string dataset) { dataset_ = std::move(dataset); }

  /// Records the run configuration (resolved sigma comes from the result).
  void SetConfig(const core::SliceLineConfig& config);

  /// Records the result: totals, per-level table, outcome, and top-K
  /// (rendered with `feature_names` when provided).
  void SetResult(const core::SliceLineResult& result,
                 const std::vector<std::string>& feature_names = {});

  /// Adds (or extends) a named numeric section, serialized as a flat JSON
  /// object of doubles. Used for DistCostStats/DistFaultStats and for
  /// benchmark measurements.
  void AddNumericSection(
      const std::string& name,
      std::vector<std::pair<std::string, double>> key_values);

  /// Adds a free-form string annotation to the "annotations" object.
  void AddAnnotation(const std::string& key, const std::string& value);

  /// Serializes the report as one strict-JSON object. When `registry` is
  /// non-null its snapshot is embedded under "metrics".
  void WriteJson(std::ostream& os,
                 const MetricsRegistry* registry =
                     MetricsRegistry::Default()) const;

  /// Writes the registry snapshot in Prometheus text exposition format
  /// (metric names sanitized and prefixed with "sliceline_").
  static void WritePrometheus(std::ostream& os,
                              const MetricsRegistry* registry =
                                  MetricsRegistry::Default());

  bool has_result() const { return has_result_; }

 private:
  std::string tool_;
  std::string engine_;
  std::string dataset_;

  bool has_config_ = false;
  core::SliceLineConfig config_;

  bool has_result_ = false;
  core::SliceLineResult result_;
  std::vector<std::string> feature_names_;

  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      sections_;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

/// Writes `report` to `path`; "-" writes to stdout. Returns a Status for
/// unopenable paths instead of dying inside a run that just finished.
Status WriteRunReportJson(const RunReport& report, const std::string& path,
                          const MetricsRegistry* registry =
                              MetricsRegistry::Default());

/// Writes the default registry's Prometheus exposition to `path` ("-" =
/// stdout).
Status WritePrometheusFile(const std::string& path,
                           const MetricsRegistry* registry =
                               MetricsRegistry::Default());

/// Sanitizes a registry metric name to a Prometheus identifier: every
/// character outside [a-zA-Z0-9_:] becomes '_', and the result is prefixed
/// with "sliceline_".
std::string PrometheusMetricName(const std::string& name);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_RUN_REPORT_H_
