file(REMOVE_RECURSE
  "CMakeFiles/sliceline_core.dir/core/bounds.cc.o"
  "CMakeFiles/sliceline_core.dir/core/bounds.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/candidates.cc.o"
  "CMakeFiles/sliceline_core.dir/core/candidates.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/evaluator.cc.o"
  "CMakeFiles/sliceline_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/exhaustive.cc.o"
  "CMakeFiles/sliceline_core.dir/core/exhaustive.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/report.cc.o"
  "CMakeFiles/sliceline_core.dir/core/report.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/scoring.cc.o"
  "CMakeFiles/sliceline_core.dir/core/scoring.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/slice.cc.o"
  "CMakeFiles/sliceline_core.dir/core/slice.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/slice_analysis.cc.o"
  "CMakeFiles/sliceline_core.dir/core/slice_analysis.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/sliceline.cc.o"
  "CMakeFiles/sliceline_core.dir/core/sliceline.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/sliceline_bestfirst.cc.o"
  "CMakeFiles/sliceline_core.dir/core/sliceline_bestfirst.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/sliceline_la.cc.o"
  "CMakeFiles/sliceline_core.dir/core/sliceline_la.cc.o.d"
  "CMakeFiles/sliceline_core.dir/core/topk.cc.o"
  "CMakeFiles/sliceline_core.dir/core/topk.cc.o.d"
  "libsliceline_core.a"
  "libsliceline_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
