#include "core/report.h"

#include <sstream>

#include "common/string_util.h"

namespace sliceline::core {

std::string FormatResult(const SliceLineResult& result,
                         const std::vector<std::string>& feature_names) {
  std::ostringstream os;
  os << "Top-" << result.top_k.size() << " slices (sigma="
     << result.min_support
     << ", avg error=" << FormatDouble(result.average_error, 4) << "):\n";
  if (result.top_k.empty()) {
    os << "  (no slice satisfies score > 0 and |S| >= sigma)\n";
  }
  for (size_t i = 0; i < result.top_k.size(); ++i) {
    os << "  #" << (i + 1) << "  " << result.top_k[i].ToString(feature_names)
       << "\n";
  }
  os << "Enumeration:\n";
  for (const LevelStats& level : result.levels) {
    os << "  level " << level.level << ": candidates="
       << FormatWithCommas(level.candidates)
       << " valid=" << FormatWithCommas(level.valid)
       << " pruned=" << FormatWithCommas(level.pruned)
       << " time=" << FormatDouble(level.seconds, 3) << "s\n";
  }
  os << "Total: " << FormatWithCommas(result.total_evaluated)
     << " slices evaluated in " << FormatDouble(result.total_seconds, 3)
     << "s\n";
  // Ungoverned (and fully completed) runs keep the historical report format
  // so golden files stay stable; only a governed stop adds the outcome line.
  if (result.outcome.partial) {
    os << "Outcome: PARTIAL (" << result.outcome.Summary() << ")\n";
  }
  return os.str();
}

std::string SummarizeResult(const SliceLineResult& result) {
  std::ostringstream os;
  if (result.top_k.empty()) {
    os << "top-1: none";
  } else {
    os << "top-1 score=" << FormatDouble(result.top_k[0].stats.score, 4)
       << " size=" << result.top_k[0].stats.size;
  }
  os << " | levels=" << result.levels.size()
     << " evaluated=" << FormatWithCommas(result.total_evaluated)
     << " time=" << FormatDouble(result.total_seconds, 3) << "s";
  return os.str();
}

}  // namespace sliceline::core
