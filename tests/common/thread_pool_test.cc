#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace sliceline {
namespace {

TEST(ThreadPoolTest, InlineModeWithOneThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, CoversAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RangeVariantCoversDisjointRanges) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  pool.ParallelForRange(1234, [&](size_t b, size_t e) {
    total += static_cast<int64_t>(e - b);
  });
  EXPECT_EQ(total.load(), 1234);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedWorkCompletes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count++; });
  pool.ParallelFor(10, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 37) throw std::runtime_error("task failed");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotPoisonPool) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(8, [](size_t) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  // The pool must remain usable after an exceptional ParallelFor.
  std::atomic<int> count{0};
  pool.ParallelFor(16, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, ThrowingTaskInlineModePropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelForRange(
          4, [](size_t, size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace sliceline
