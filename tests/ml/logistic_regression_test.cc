#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/onehot.h"
#include "ml/error_functions.h"

namespace sliceline::ml {
namespace {

TEST(LogisticRegressionTest, SeparableBinaryProblem) {
  // One binary feature perfectly predicts the class.
  const int64_t n = 200;
  linalg::CooBuilder builder(n, 2);
  std::vector<double> y(n);
  for (int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    builder.Add(i, cls, 1.0);
    y[i] = cls;
  }
  const linalg::CsrMatrix x = builder.Build();
  auto model = LogisticRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  const double acc = 1.0 - Mean(Inaccuracy(y, model->Predict(x)));
  EXPECT_EQ(acc, 1.0);
}

TEST(LogisticRegressionTest, MultinomialOnOneHot) {
  Rng rng(7);
  const int64_t n = 900;
  data::IntMatrix x0(n, 2);
  std::vector<double> y(n);
  for (int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.NextUint64(3));
    // Feature 0 is predictive with 10% noise, feature 1 is noise.
    x0.At(i, 0) = rng.NextBool(0.1)
                      ? static_cast<int32_t>(rng.NextUint64(3)) + 1
                      : cls + 1;
    x0.At(i, 1) = static_cast<int32_t>(rng.NextUint64(4)) + 1;
    y[i] = cls;
  }
  const data::FeatureOffsets off = data::ComputeOffsets(x0);
  const linalg::CsrMatrix x = data::OneHotEncode(x0, off);
  LogisticRegression::Options opts;
  opts.num_classes = 3;
  opts.max_iterations = 150;
  auto model = LogisticRegression::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  const double err = Mean(Inaccuracy(y, model->Predict(x)));
  EXPECT_LT(err, 0.15);
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  Rng rng(9);
  linalg::CooBuilder builder(50, 3);
  std::vector<double> y(50);
  for (int64_t i = 0; i < 50; ++i) {
    builder.Add(i, rng.NextUint64(3), 1.0);
    y[i] = static_cast<double>(rng.NextUint64(4));
  }
  LogisticRegression::Options opts;
  opts.num_classes = 4;
  opts.max_iterations = 10;
  const linalg::CsrMatrix x = builder.Build();
  auto model = LogisticRegression::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  linalg::DenseMatrix probs = model->PredictProbabilities(x);
  for (int64_t i = 0; i < probs.rows(); ++i) {
    double sum = 0;
    for (int64_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs.At(i, c), 0.0);
      sum += probs.At(i, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LogisticRegressionTest, RejectsBadLabels) {
  linalg::CooBuilder builder(2, 1);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 0, 1.0);
  LogisticRegression::Options opts;
  opts.num_classes = 2;
  EXPECT_FALSE(LogisticRegression::Fit(builder.Build(), {0, 5}, opts).ok());
  EXPECT_FALSE(LogisticRegression::Fit(builder.Build(), {0, 0.5}, opts).ok());
}

TEST(LogisticRegressionTest, RejectsShapeMismatch) {
  EXPECT_FALSE(
      LogisticRegression::Fit(linalg::CsrMatrix::Zero(3, 2), {0, 1}).ok());
}

TEST(LogisticRegressionTest, RejectsSingleClass) {
  LogisticRegression::Options opts;
  opts.num_classes = 1;
  EXPECT_FALSE(
      LogisticRegression::Fit(linalg::CsrMatrix::Zero(2, 1), {0, 0}, opts)
          .ok());
}

}  // namespace
}  // namespace sliceline::ml
