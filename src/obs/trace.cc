#include "obs/trace.h"

#include <chrono>
#include <utility>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace sliceline::obs {

namespace {

thread_local TraceContext g_trace_context;

/// Stamps the thread's trace context onto an event about to be recorded.
void StampContext(TraceEvent* event) {
  event->trace_id = g_trace_context.trace_id;
  event->parent_span_id = g_trace_context.parent_span_id;
}

}  // namespace

TraceContext CurrentTraceContext() { return g_trace_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : saved_(g_trace_context) {
  g_trace_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { g_trace_context = saved_; }

TraceRecorder* TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return recorder;
}

int64_t TraceRecorder::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t TraceRecorder::ThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

void TraceRecorder::SetProcessLabel(const std::string& label) {
  std::lock_guard<std::mutex> lock(label_mutex_);
  process_label_ = label;
}

std::string TraceRecorder::process_label() const {
  std::lock_guard<std::mutex> lock(label_mutex_);
  return process_label_;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // One buffer per (thread, recorder); the default recorder is a singleton
  // so in practice this is one buffer per thread, found via a thread_local
  // cache after the first (locked) registration.
  thread_local TraceRecorder* cached_recorder = nullptr;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_recorder == this && cached_buffer != nullptr) {
    return cached_buffer;
  }
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  cached_recorder = this;
  cached_buffer = buffers_.back().get();
  return cached_buffer;
}

void TraceRecorder::Record(const TraceEvent& event) {
  ThreadBuffer* buffer = BufferForThisThread();
  {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    if (buffer->events.size() < kMaxEventsPerThread) {
      if (buffer->events.capacity() == buffer->events.size()) {
        buffer->events.reserve(buffer->events.size() + 1024);
      }
      buffer->events.push_back(event);
      return;
    }
  }
  // Buffer full: drop the event, but make the loss observable.
  if (MetricsEnabled()) {
    MetricsRegistry::Default()
        ->GetCounter("obs/trace/dropped_events")
        ->Increment();
  }
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

size_t TraceRecorder::EventCount() const {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceRecorder::TakeEvents() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  std::vector<TraceEvent> taken;
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (TraceEvent& event : buffer->events) {
      taken.push_back(std::move(event));
    }
    buffer->events.clear();
  }
  return taken;
}

std::vector<TraceEvent> TraceRecorder::TakeEventsForTrace(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  std::vector<TraceEvent> taken;
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    std::vector<TraceEvent> kept;
    kept.reserve(buffer->events.size());
    for (TraceEvent& event : buffer->events) {
      if (event.trace_id == trace_id) {
        taken.push_back(std::move(event));
      } else {
        kept.push_back(std::move(event));
      }
    }
    buffer->events.swap(kept);
  }
  return taken;
}

void TraceRecorder::ExportChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  JsonWriter json(os);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      json.BeginObject();
      json.Key("name");
      json.String(event.name);
      json.Key("cat");
      json.String(event.category);
      json.Key("ph");
      json.String(std::string(1, event.phase));
      json.Key("ts");
      json.Int(event.ts_us);
      if (event.phase == 'X') {
        json.Key("dur");
        json.Int(event.dur_us);
      }
      if (event.phase == 'i') {
        json.Key("s");
        json.String("t");  // thread-scoped instant
      }
      json.Key("pid");
      json.Int(1);
      json.Key("tid");
      json.Int(static_cast<int64_t>(event.tid));
      const bool has_args = event.has_arg || !event.detail.empty() ||
                            event.trace_id != 0 || event.parent_span_id != 0;
      if (has_args) {
        json.Key("args");
        json.BeginObject();
        if (event.has_arg) {
          json.Key("v");
          json.Int(event.arg);
        }
        if (!event.detail.empty()) {
          json.Key("detail");
          json.String(event.detail);
        }
        if (event.trace_id != 0) {
          // Decimal string: uint64 ids survive readers that treat JSON
          // numbers as doubles.
          json.Key("trace_id");
          json.String(std::to_string(event.trace_id));
        }
        if (event.parent_span_id != 0) {
          json.Key("parent_span_id");
          json.Int(event.parent_span_id);
        }
        json.EndObject();
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.EndObject();
}

ScopedSpan::ScopedSpan(const char* name, bool has_arg, int64_t arg)
    : name_(name),
      active_(TraceRecorder::Default()->enabled()),
      has_arg_(has_arg),
      arg_(arg) {
  if (active_) start_us_ = TraceRecorder::NowMicros();
}

ScopedSpan::ScopedSpan(const char* name, std::string detail)
    : ScopedSpan(name, /*has_arg=*/false, 0) {
  if (active_) detail_ = std::move(detail);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceEvent event;
  event.name = name_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = TraceRecorder::NowMicros() - start_us_;
  event.tid = TraceRecorder::ThreadId();
  event.has_arg = has_arg_;
  event.arg = arg_;
  event.detail = std::move(detail_);
  StampContext(&event);
  TraceRecorder::Default()->Record(event);
}

namespace {

void TraceInstantImpl(const char* category, const char* name, bool has_arg,
                      int64_t arg, std::string detail) {
  if (MetricsEnabled()) {
    std::string counter_name("events/");
    counter_name += category;
    counter_name += '/';
    counter_name += name;
    MetricsRegistry::Default()->GetCounter(counter_name)->Increment();
  }
  TraceRecorder* recorder = TraceRecorder::Default();
  if (!recorder->enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_us = TraceRecorder::NowMicros();
  event.tid = TraceRecorder::ThreadId();
  event.has_arg = has_arg;
  event.arg = arg;
  event.detail = std::move(detail);
  StampContext(&event);
  recorder->Record(event);
}

}  // namespace

void TraceInstant(const char* category, const char* name) {
  TraceInstantImpl(category, name, /*has_arg=*/false, 0, std::string());
}

void TraceInstant(const char* category, const char* name, int64_t arg) {
  TraceInstantImpl(category, name, /*has_arg=*/true, arg, std::string());
}

void TraceInstant(const char* category, const char* name, std::string detail) {
  TraceInstantImpl(category, name, /*has_arg=*/false, 0, std::move(detail));
}

}  // namespace sliceline::obs
