// Command-line slice finder: read a CSV, preprocess it (recode + bin),
// train the task-appropriate model (lm / mlogit), and print the top-K
// problematic slices.
//
// Usage:
//   sliceline_cli --csv data.csv --label target [--task reg|class]
//                 [--k 4] [--alpha 0.95] [--sigma 0] [--max-level 0]
//                 [--bins 10] [--drop col1,col2] [--engine native|la|dist]
//                 [--workers 4] [--fault-seed S] [--fault-transient P]
//                 [--fault-loss P] [--fault-straggler P] [--fault-corrupt P]
//                 [--deadline-ms MS] [--memory-budget-mb MB]
//                 [--checkpoint-dir DIR] [--resume]
//
// Exit code 0 on success, 1 on usage or data errors.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/string_util.h"
#include "core/report.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "dist/distributed_evaluator.h"
#include "ml/pipeline.h"

namespace {

struct CliOptions {
  std::string csv_path;
  std::string label;
  std::string task = "reg";
  std::string engine = "native";
  std::vector<std::string> drop;
  int k = 4;
  double alpha = 0.95;
  int64_t sigma = 0;
  int max_level = 0;
  int bins = 10;
  int workers = 4;
  uint64_t fault_seed = 0;
  double fault_transient = 0.0;
  double fault_loss = 0.0;
  double fault_straggler = 0.0;
  double fault_corrupt = 0.0;
  int64_t deadline_ms = 0;       ///< 0 = no deadline
  int64_t memory_budget_mb = 0;  ///< 0 = unlimited
  std::string checkpoint_dir;
  bool resume = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: sliceline_cli --csv FILE --label COLUMN [options]\n"
      "  --task reg|class     prediction task (default reg)\n"
      "  --k N                top-K slices (default 4)\n"
      "  --alpha A            error/size weight in (0,1] (default 0.95)\n"
      "  --sigma S            min support; 0 = max(32, ceil(n/100))\n"
      "  --max-level L        lattice depth cap; 0 = unbounded\n"
      "  --bins B             equi-width bins for numeric features (10)\n"
      "  --drop a,b,c         columns to drop (e.g. ID columns)\n"
      "  --engine native|la|dist  enumeration engine (default native)\n"
      "  --workers N          simulated workers for --engine dist (4)\n"
      "  --fault-seed S       fault-injection seed for --engine dist\n"
      "  --fault-transient P  per-round transient worker failure rate\n"
      "  --fault-loss P       per-round permanent worker loss rate\n"
      "  --fault-straggler P  per-round straggler rate\n"
      "  --fault-corrupt P    per-round partial-corruption rate\n"
      "  --deadline-ms MS     wall-clock deadline; exceeding it returns the\n"
      "                       best-so-far top-K marked PARTIAL (0 = none)\n"
      "  --memory-budget-mb MB  memory budget; soft pressure degrades the\n"
      "                       search, hard pressure stops it (0 = unlimited)\n"
      "  --checkpoint-dir DIR save a resumable checkpoint per level\n"
      "  --resume             continue from DIR's checkpoint if compatible\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      options->csv_path = v;
    } else if (arg == "--label") {
      const char* v = next("--label");
      if (v == nullptr) return false;
      options->label = v;
    } else if (arg == "--task") {
      const char* v = next("--task");
      if (v == nullptr) return false;
      options->task = v;
    } else if (arg == "--engine") {
      const char* v = next("--engine");
      if (v == nullptr) return false;
      options->engine = v;
    } else if (arg == "--k") {
      const char* v = next("--k");
      if (v == nullptr) return false;
      options->k = std::atoi(v);
    } else if (arg == "--alpha") {
      const char* v = next("--alpha");
      if (v == nullptr) return false;
      options->alpha = std::atof(v);
    } else if (arg == "--sigma") {
      const char* v = next("--sigma");
      if (v == nullptr) return false;
      options->sigma = std::atoll(v);
    } else if (arg == "--max-level") {
      const char* v = next("--max-level");
      if (v == nullptr) return false;
      options->max_level = std::atoi(v);
    } else if (arg == "--bins") {
      const char* v = next("--bins");
      if (v == nullptr) return false;
      options->bins = std::atoi(v);
    } else if (arg == "--drop") {
      const char* v = next("--drop");
      if (v == nullptr) return false;
      options->drop = sliceline::Split(v, ',');
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      options->workers = std::atoi(v);
    } else if (arg == "--fault-seed") {
      const char* v = next("--fault-seed");
      if (v == nullptr) return false;
      options->fault_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--fault-transient") {
      const char* v = next("--fault-transient");
      if (v == nullptr) return false;
      options->fault_transient = std::atof(v);
    } else if (arg == "--fault-loss") {
      const char* v = next("--fault-loss");
      if (v == nullptr) return false;
      options->fault_loss = std::atof(v);
    } else if (arg == "--fault-straggler") {
      const char* v = next("--fault-straggler");
      if (v == nullptr) return false;
      options->fault_straggler = std::atof(v);
    } else if (arg == "--fault-corrupt") {
      const char* v = next("--fault-corrupt");
      if (v == nullptr) return false;
      options->fault_corrupt = std::atof(v);
    } else if (arg == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return false;
      options->deadline_ms = std::atoll(v);
    } else if (arg == "--memory-budget-mb") {
      const char* v = next("--memory-budget-mb");
      if (v == nullptr) return false;
      options->memory_budget_mb = std::atoll(v);
    } else if (arg == "--checkpoint-dir") {
      const char* v = next("--checkpoint-dir");
      if (v == nullptr) return false;
      options->checkpoint_dir = v;
    } else if (arg == "--resume") {
      options->resume = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (options->csv_path.empty() || options->label.empty()) {
    std::fprintf(stderr, "--csv and --label are required\n");
    return false;
  }
  return true;
}

/// Rejects semantically invalid option values before any work starts, with
/// one specific message per failure (exit code 1 via main).
bool ValidateOptions(const CliOptions& options) {
  struct stat st;
  if (stat(options.csv_path.c_str(), &st) != 0) {
    std::fprintf(stderr, "--csv path does not exist: %s\n",
                 options.csv_path.c_str());
    return false;
  }
  if (options.task != "reg" && options.task != "class") {
    std::fprintf(stderr, "--task must be 'reg' or 'class', got '%s'\n",
                 options.task.c_str());
    return false;
  }
  if (options.engine != "native" && options.engine != "la" &&
      options.engine != "dist") {
    std::fprintf(stderr, "--engine must be 'native', 'la' or 'dist', got "
                 "'%s'\n", options.engine.c_str());
    return false;
  }
  if (options.k <= 0) {
    std::fprintf(stderr, "--k must be positive, got %d\n", options.k);
    return false;
  }
  if (!(options.alpha > 0.0 && options.alpha <= 1.0)) {
    std::fprintf(stderr, "--alpha must be in (0, 1], got %g\n",
                 options.alpha);
    return false;
  }
  if (options.sigma < 0) {
    std::fprintf(stderr, "--sigma must be >= 0, got %lld\n",
                 static_cast<long long>(options.sigma));
    return false;
  }
  if (options.max_level < 0) {
    std::fprintf(stderr, "--max-level must be >= 0, got %d\n",
                 options.max_level);
    return false;
  }
  if (options.bins <= 0) {
    std::fprintf(stderr, "--bins must be positive, got %d\n", options.bins);
    return false;
  }
  if (options.engine == "dist" && options.workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1, got %d\n", options.workers);
    return false;
  }
  if (options.deadline_ms < 0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0, got %lld\n",
                 static_cast<long long>(options.deadline_ms));
    return false;
  }
  if (options.memory_budget_mb < 0) {
    std::fprintf(stderr, "--memory-budget-mb must be >= 0, got %lld\n",
                 static_cast<long long>(options.memory_budget_mb));
    return false;
  }
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return false;
  }
  if (!options.checkpoint_dir.empty() &&
      (stat(options.checkpoint_dir.c_str(), &st) != 0 ||
       !S_ISDIR(st.st_mode))) {
    std::fprintf(stderr, "--checkpoint-dir is not a directory: %s\n",
                 options.checkpoint_dir.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sliceline;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage();
    return 1;
  }
  if (!ValidateOptions(cli)) return 1;

  auto frame = data::ReadCsv(cli.csv_path);
  if (!frame.ok()) {
    std::fprintf(stderr, "error reading CSV: %s\n",
                 frame.status().ToString().c_str());
    return 1;
  }
  std::printf("read %lld rows x %lld columns from %s\n",
              static_cast<long long>(frame->num_rows()),
              static_cast<long long>(frame->num_columns()),
              cli.csv_path.c_str());

  data::PreprocessOptions popts;
  popts.label_column = cli.label;
  popts.task = cli.task == "class" ? data::Task::kClassification
                                   : data::Task::kRegression;
  popts.num_bins = cli.bins;
  popts.drop_columns = cli.drop;
  auto ds = data::Preprocess(*frame, popts);
  if (!ds.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }

  auto mean_error = ml::TrainAndMaterializeErrors(&*ds);
  if (!mean_error.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 mean_error.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %s; mean error = %.6f\n",
              popts.task == data::Task::kRegression ? "lm" : "mlogit",
              *mean_error);

  core::SliceLineConfig config;
  config.k = cli.k;
  config.alpha = cli.alpha;
  config.min_support = cli.sigma;
  config.max_level = cli.max_level;
  config.checkpoint_dir = cli.checkpoint_dir;
  config.resume = cli.resume;
  RunContext run_context;
  MemoryBudget memory_budget(cli.memory_budget_mb * (1 << 20));
  if (cli.deadline_ms > 0 || cli.memory_budget_mb > 0) {
    if (cli.deadline_ms > 0) {
      run_context.SetDeadlineAfterSeconds(
          static_cast<double>(cli.deadline_ms) / 1000.0);
    }
    if (cli.memory_budget_mb > 0) {
      run_context.set_memory_budget(&memory_budget);
    }
    config.run_context = &run_context;
  }
  if (cli.engine == "dist") {
    dist::DistOptions dopts;
    dopts.workers = cli.workers;
    dopts.fault.seed = cli.fault_seed;
    dopts.fault.transient_rate = cli.fault_transient;
    dopts.fault.loss_rate = cli.fault_loss;
    dopts.fault.straggler_rate = cli.fault_straggler;
    dopts.fault.corruption_rate = cli.fault_corrupt;
    dist::DistCostStats cost;
    dist::DistFaultStats faults;
    auto result = dist::RunSliceLineDistributed(ds->x0, ds->errors, config,
                                                dopts, &cost, &faults);
    if (!result.ok()) {
      std::fprintf(stderr, "slice finding failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("distributed: %d workers, %lld rounds, simulated wall-clock "
                "%.3fs (compute %.3fs + comm %.3fs)\n",
                dopts.workers, static_cast<long long>(cost.rounds),
                cost.critical_path_seconds + cost.EstimatedCommSeconds(dopts),
                cost.critical_path_seconds, cost.EstimatedCommSeconds(dopts));
    std::printf("fault recovery: %s\n", faults.Summary().c_str());
    std::printf("\n%s",
                core::FormatResult(*result, ds->feature_names).c_str());
    return 0;
  }
  auto result = cli.engine == "la"
                    ? core::RunSliceLineLA(*ds, config)
                    : core::RunSliceLine(*ds, config);
  if (!result.ok()) {
    std::fprintf(stderr, "slice finding failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", core::FormatResult(*result, ds->feature_names).c_str());
  return 0;
}
