#ifndef SLICELINE_ML_ERROR_FUNCTIONS_H_
#define SLICELINE_ML_ERROR_FUNCTIONS_H_

#include <vector>

namespace sliceline::ml {

/// Per-row squared loss e_i = (y_i - yhat_i)^2 (the paper's regression error
/// function; e >= 0 by construction).
std::vector<double> SquaredLoss(const std::vector<double>& y,
                                const std::vector<double>& y_hat);

/// Per-row classification inaccuracy e_i = (y_i != yhat_i) in {0, 1}.
std::vector<double> Inaccuracy(const std::vector<double>& y,
                               const std::vector<double>& y_hat);

/// Per-row absolute loss e_i = |y_i - yhat_i| (robust regression errors).
std::vector<double> AbsoluteLoss(const std::vector<double>& y,
                                 const std::vector<double>& y_hat);

/// Per-row negative log-likelihood for binary classification,
/// e_i = -log(p_i) if y_i == 1 else -log(1 - p_i), with probabilities
/// clamped to [eps, 1-eps]. A smooth alternative to 0/1 inaccuracy that
/// surfaces slices where the model is confidently wrong.
std::vector<double> BinaryLogLoss(const std::vector<double>& y,
                                  const std::vector<double>& p,
                                  double eps = 1e-12);

/// Per-row inaccuracy scaled by a per-class weight (cost-sensitive
/// debugging): e_i = weight[y_i] * (y_i != yhat_i).
std::vector<double> ClassWeightedInaccuracy(
    const std::vector<double>& y, const std::vector<double>& y_hat,
    const std::vector<double>& class_weights);

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& v);

}  // namespace sliceline::ml

#endif  // SLICELINE_ML_ERROR_FUNCTIONS_H_
