#ifndef SLICELINE_COMMON_CHECKED_MATH_H_
#define SLICELINE_COMMON_CHECKED_MATH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace sliceline {

/// Overflow-checked size arithmetic for allocation paths. Matrix shape
/// products (rows * cols) and nnz reservations are attacker/dataset
/// controlled in the checkpoint/matrix-market loaders and data-dependent in
/// the enumeration; silently wrapping them turns "too big" into a small
/// bogus allocation followed by out-of-bounds writes. These helpers make
/// every such product either a valid size or an explicit Status.

/// a * b with overflow detection; returns false (and leaves *out
/// unspecified) when the product does not fit int64_t.
inline bool CheckedMulInt64(int64_t a, int64_t b, int64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

/// a + b with overflow detection.
inline bool CheckedAddInt64(int64_t a, int64_t b, int64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}

/// Validates an element count rows * cols for a matrix allocation: both
/// factors non-negative and the product representable as int64_t and as
/// size_t bytes when scaled by elem_size.
inline Status CheckedElementCount(int64_t rows, int64_t cols,
                                  size_t elem_size, int64_t* count_out) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimension " +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  int64_t count;
  if (!CheckedMulInt64(rows, cols, &count)) {
    return Status::OutOfRange("matrix shape " + std::to_string(rows) + "x" +
                              std::to_string(cols) +
                              " overflows the element count");
  }
  int64_t bytes;
  if (!CheckedMulInt64(count, static_cast<int64_t>(elem_size), &bytes) ||
      static_cast<uint64_t>(bytes) >
          std::numeric_limits<size_t>::max()) {
    return Status::OutOfRange("matrix shape " + std::to_string(rows) + "x" +
                              std::to_string(cols) + " overflows SIZE_MAX at " +
                              std::to_string(elem_size) + " bytes/element");
  }
  if (count_out != nullptr) *count_out = count;
  return Status::OK();
}

/// Validates an nnz reservation: non-negative, representable in bytes, and
/// (when the shape product fits) no larger than rows * cols.
inline Status CheckedNnzReservation(int64_t nnz, int64_t rows, int64_t cols,
                                    size_t elem_size) {
  if (nnz < 0) {
    return Status::InvalidArgument("negative nnz " + std::to_string(nnz));
  }
  int64_t bytes;
  if (!CheckedMulInt64(nnz, static_cast<int64_t>(elem_size), &bytes) ||
      static_cast<uint64_t>(bytes) >
          std::numeric_limits<size_t>::max()) {
    return Status::OutOfRange("nnz " + std::to_string(nnz) +
                              " overflows SIZE_MAX at " +
                              std::to_string(elem_size) + " bytes/element");
  }
  int64_t dense_count;
  if (CheckedMulInt64(rows, cols, &dense_count) && nnz > dense_count) {
    return Status::InvalidArgument(
        "nnz " + std::to_string(nnz) + " exceeds dense capacity " +
        std::to_string(rows) + "x" + std::to_string(cols));
  }
  return Status::OK();
}

}  // namespace sliceline

#endif  // SLICELINE_COMMON_CHECKED_MATH_H_
