# Empty dependencies file for sliceline_dist.
# This may be replaced when dependencies are built.
