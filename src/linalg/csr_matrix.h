#ifndef SLICELINE_LINALG_CSR_MATRIX_H_
#define SLICELINE_LINALG_CSR_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace sliceline::linalg {

/// Compressed sparse row matrix with double values and 64-bit indices.
///
/// This is the workhorse representation of the repo: the one-hot encoded
/// feature matrix X, the slice-definition matrix S, and all intermediates of
/// the SliceLine enumeration (X*S^T, S*S^T, selection matrices from table())
/// are CsrMatrix instances. Column indices within each row are kept sorted,
/// which the intersection-style kernels rely on.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0), row_ptr_{0} {}

  /// Takes ownership of pre-built CSR arrays. Aborts on malformed input
  /// (checks sizes and per-row sorted, in-range column indices).
  CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
            std::vector<int64_t> col_idx, std::vector<double> values);

  /// Non-aborting factory for CSR arrays originating from untrusted input
  /// (MatrixMarket files, checkpoints): validates shape/nnz overflow, array
  /// sizes, and per-row sorted in-range column indices, returning Status
  /// instead of aborting.
  static StatusOr<CsrMatrix> Create(int64_t rows, int64_t cols,
                                    std::vector<int64_t> row_ptr,
                                    std::vector<int64_t> col_idx,
                                    std::vector<double> values);

  /// All-zero matrix of the given shape.
  static CsrMatrix Zero(int64_t rows, int64_t cols);

  /// Converts from dense, dropping exact zeros.
  static CsrMatrix FromDense(const DenseMatrix& dense);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }
  double density() const {
    // Product computed in double: rows_ * cols_ as int64_t could wrap for
    // extreme shapes.
    return rows_ == 0 || cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     (static_cast<double>(rows_) * static_cast<double>(cols_));
  }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }
  const int64_t* RowCols(int64_t r) const {
    return col_idx_.data() + row_ptr_[r];
  }
  const double* RowVals(int64_t r) const {
    return values_.data() + row_ptr_[r];
  }

  /// Value at (r, c); binary search within the row, 0.0 if absent.
  double At(int64_t r, int64_t c) const;

  DenseMatrix ToDense() const;

  /// Exact structural + value equality.
  bool Equals(const CsrMatrix& other) const;

  std::string ToString(int max_rows = 10) const;

 private:
  /// Shared validation for the aborting constructor and Create(); returns
  /// the first structural violation found.
  static Status Validate(int64_t rows, int64_t cols,
                         const std::vector<int64_t>& row_ptr,
                         const std::vector<int64_t>& col_idx,
                         const std::vector<double>& values,
                         bool check_row_contents);

  /// Bytes held by the three CSR arrays (for budget accounting).
  int64_t HeapBytes() const;

  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;  // size rows_ + 1
  std::vector<int64_t> col_idx_;  // size nnz, sorted within each row
  std::vector<double> values_;    // size nnz
  // Live-byte accounting against the ambient MemoryBudget (no-op when none
  // is installed); copies re-charge, moves transfer.
  MemoryCharge charge_;
};

/// Accumulates COO triplets and builds a CsrMatrix. Duplicate (r, c) entries
/// are summed (the semantics of table() and of scatter-style construction).
class CooBuilder {
 public:
  CooBuilder(int64_t rows, int64_t cols);

  /// Adds value v at (r, c). Aborts if out of range.
  void Add(int64_t r, int64_t c, double v);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Sorts, merges duplicates (summing), drops zeros, and produces the CSR
  /// matrix. The builder is left empty.
  CsrMatrix Build();

 private:
  struct Entry {
    int64_t row;
    int64_t col;
    double value;
  };
  int64_t rows_;
  int64_t cols_;
  std::vector<Entry> entries_;
};

}  // namespace sliceline::linalg

#endif  // SLICELINE_LINALG_CSR_MATRIX_H_
