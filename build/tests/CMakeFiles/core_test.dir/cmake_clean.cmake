file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/ablation_test.cc.o"
  "CMakeFiles/core_test.dir/core/ablation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/bestfirst_test.cc.o"
  "CMakeFiles/core_test.dir/core/bestfirst_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/bounds_test.cc.o"
  "CMakeFiles/core_test.dir/core/bounds_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/candidates_test.cc.o"
  "CMakeFiles/core_test.dir/core/candidates_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/contracts_test.cc.o"
  "CMakeFiles/core_test.dir/core/contracts_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/evaluator_test.cc.o"
  "CMakeFiles/core_test.dir/core/evaluator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pruning_combinations_test.cc.o"
  "CMakeFiles/core_test.dir/core/pruning_combinations_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/report_test.cc.o"
  "CMakeFiles/core_test.dir/core/report_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scoring_test.cc.o"
  "CMakeFiles/core_test.dir/core/scoring_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/slice_analysis_test.cc.o"
  "CMakeFiles/core_test.dir/core/slice_analysis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sliceline_la_test.cc.o"
  "CMakeFiles/core_test.dir/core/sliceline_la_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sliceline_test.cc.o"
  "CMakeFiles/core_test.dir/core/sliceline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/topk_test.cc.o"
  "CMakeFiles/core_test.dir/core/topk_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
