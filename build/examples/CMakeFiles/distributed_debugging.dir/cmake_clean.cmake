file(REMOVE_RECURSE
  "CMakeFiles/distributed_debugging.dir/distributed_debugging.cpp.o"
  "CMakeFiles/distributed_debugging.dir/distributed_debugging.cpp.o.d"
  "distributed_debugging"
  "distributed_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
