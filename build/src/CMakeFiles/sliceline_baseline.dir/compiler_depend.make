# Empty compiler generated dependencies file for sliceline_baseline.
# This may be replaced when dependencies are built.
