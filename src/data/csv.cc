#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace sliceline::data {

namespace {

bool LooksNumeric(const std::string& field) {
  return ParseDouble(field).ok();
}

}  // namespace

StatusOr<Frame> ParseCsv(const std::string& content,
                         const CsvOptions& options) {
  std::vector<std::vector<std::string>> cells;
  std::istringstream in(content);
  std::string line;
  size_t width = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, options.delimiter);
    for (auto& f : fields) f = std::string(Trim(f));
    if (width == 0) {
      width = fields.size();
    } else if (fields.size() != width) {
      return Status::InvalidArgument(
          "ragged CSV: expected " + std::to_string(width) + " fields, got " +
          std::to_string(fields.size()) + " in line '" + line + "'");
    }
    cells.push_back(std::move(fields));
  }
  if (cells.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> names;
  size_t first_row = 0;
  if (options.has_header) {
    names = cells[0];
    first_row = 1;
  } else {
    for (size_t j = 0; j < width; ++j) names.push_back("C" + std::to_string(j));
  }
  const size_t n = cells.size() - first_row;

  Frame frame;
  for (size_t j = 0; j < width; ++j) {
    bool numeric = true;
    for (size_t i = first_row; i < cells.size(); ++i) {
      const std::string& f = cells[i][j];
      if (f.empty() || f == options.missing_marker) continue;
      if (!LooksNumeric(f)) {
        numeric = false;
        break;
      }
    }
    Status st;
    if (numeric) {
      std::vector<double> vals;
      vals.reserve(n);
      for (size_t i = first_row; i < cells.size(); ++i) {
        const std::string& f = cells[i][j];
        if (f.empty() || f == options.missing_marker) {
          vals.push_back(std::numeric_limits<double>::quiet_NaN());
        } else {
          vals.push_back(ParseDouble(f).value());
        }
      }
      st = frame.AddColumn(Column(names[j], std::move(vals)));
    } else {
      std::vector<std::string> vals;
      vals.reserve(n);
      for (size_t i = first_row; i < cells.size(); ++i) {
        const std::string& f = cells[i][j];
        vals.push_back(f.empty() ? options.missing_marker : f);
      }
      st = frame.AddColumn(Column(names[j], std::move(vals)));
    }
    if (!st.ok()) return st;
  }
  return frame;
}

StatusOr<Frame> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

Status WriteCsv(const Frame& frame, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write '" + path + "'");
  for (int64_t j = 0; j < frame.num_columns(); ++j) {
    if (j > 0) out << delimiter;
    out << frame.column(j).name();
  }
  out << "\n";
  for (int64_t i = 0; i < frame.num_rows(); ++i) {
    for (int64_t j = 0; j < frame.num_columns(); ++j) {
      if (j > 0) out << delimiter;
      out << frame.column(j).ValueToString(i);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("error while writing '" + path + "'");
  return Status::OK();
}

}  // namespace sliceline::data
