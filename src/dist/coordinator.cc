#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <sstream>
#include <thread>
#include <utility>

#include "common/hashing.h"
#include "common/logging.h"
#include "common/run_context.h"
#include "common/stopwatch.h"
#include "dist/fault_injection.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace sliceline::dist {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* StrategyName(core::SliceLineConfig::EvalStrategy strategy) {
  switch (strategy) {
    case core::SliceLineConfig::EvalStrategy::kIndex: return "index";
    case core::SliceLineConfig::EvalStrategy::kScanBlock: return "scan";
    case core::SliceLineConfig::EvalStrategy::kBitset: return "bitset";
  }
  return "index";
}

/// Content fingerprint of the full input; the shard handshake key.
std::string FingerprintDataset(const data::IntMatrix& x0,
                               const std::vector<double>& errors) {
  Fnv1a hasher;
  hasher.Add64(static_cast<uint64_t>(x0.rows()));
  hasher.Add64(static_cast<uint64_t>(x0.cols()));
  hasher.AddBytes(x0.data().data(), x0.data().size() * sizeof(int32_t));
  for (double e : errors) hasher.AddDouble(e);
  return std::to_string(hasher.hash());
}

}  // namespace

RemoteSliceEvaluator::RemoteSliceEvaluator(const data::IntMatrix& x0,
                                           const std::vector<double>& errors,
                                           const RemoteDistOptions& options)
    : options_(options),
      offsets_(data::ComputeOffsets(x0)),
      dataset_hash_(FingerprintDataset(x0, errors)),
      n_(x0.rows()),
      full_x0_(x0),
      full_errors_(errors) {
  const int workers = static_cast<int>(options.endpoints.size());
  const std::vector<RowRange> ranges = PartitionRows(n_, workers);
  shards_.reserve(ranges.size());
  for (const RowRange& range : ranges) {
    shards_.push_back(MakeShard(x0, errors, range));
  }
  links_.resize(shards_.size());
  link_obs_.resize(shards_.size());
  shard_owner_.resize(shards_.size());
  for (size_t w = 0; w < links_.size(); ++w) {
    links_[w].endpoint = options.endpoints[w];
    shard_owner_[w] = static_cast<int>(w);
  }
  alive_count_ = static_cast<int>(links_.size());
}

RemoteSliceEvaluator::~RemoteSliceEvaluator() = default;

StatusOr<std::unique_ptr<RemoteSliceEvaluator>> RemoteSliceEvaluator::Create(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const RemoteDistOptions& options) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument(
        "error vector size " + std::to_string(errors.size()) +
        " does not match " + std::to_string(x0.rows()) + " rows");
  }
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("need at least one worker endpoint");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (!(options.max_lost_fraction >= 0.0 && options.max_lost_fraction <= 1.0)) {
    return Status::InvalidArgument("max_lost_fraction must be in [0, 1]");
  }
  if (options.max_block_slices < 1 || options.load_chunk_cells < 1) {
    return Status::InvalidArgument(
        "max_block_slices and load_chunk_cells must be >= 1");
  }
  std::unique_ptr<RemoteSliceEvaluator> eval(
      new RemoteSliceEvaluator(x0, errors, options));
  eval->SetupCluster();
  return eval;
}

StatusOr<obs::JsonValue> RemoteSliceEvaluator::RoundTrip(
    Link& link, serve::WorkerRequest request, int timeout_ms) const {
  request.id = "q" + std::to_string(link.next_request++);
  request.trace_id = options_.trace_id;
  const std::string line = serve::SerializeWorkerRequest(request);
  const int64_t send_us = obs::TraceRecorder::NowMicros();
  SLICELINE_RETURN_NOT_OK(
      link.conn.WriteLine(line, serve::kWorkerMaxLineBytes));
  cost_.broadcast_bytes += static_cast<int64_t>(line.size());
  SLICELINE_ASSIGN_OR_RETURN(
      const std::string reply,
      link.conn.ReadLine(serve::kWorkerMaxLineBytes, timeout_ms));
  const int64_t recv_us = obs::TraceRecorder::NowMicros();
  cost_.gather_bytes += static_cast<int64_t>(reply.size());
  SLICELINE_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ParseJson(reply));
  if (!root.is_object()) {
    return Status::IoError("worker reply is not a JSON object");
  }
  if (root.GetStringOr("id", "") != request.id) {
    return Status::IoError("worker reply correlation id mismatch");
  }
  if (!root.GetBoolOr("ok", false)) {
    const obs::JsonValue* error = root.Find("error");
    if (error != nullptr && error->is_object()) {
      return serve::StatusFromError(error->GetStringOr("code", "internal"),
                                    error->GetStringOr("message", ""));
    }
    return Status::IoError("worker reply missing error detail");
  }
  // Clock-offset estimation from replies carrying the worker's steady-clock
  // sample (enlist / heartbeat / get_spans): assume the sample was taken at
  // the round-trip midpoint and keep the minimum-RTT estimate, whose
  // midpoint uncertainty is tightest.
  const obs::JsonValue* now_us = root.Find("now_us");
  if (now_us != nullptr && now_us->is_number()) {
    const size_t w = static_cast<size_t>(&link - links_.data());
    if (w < link_obs_.size()) {
      LinkObs& lo = link_obs_[w];
      const int64_t rtt_us = recv_us - send_us;
      if (rtt_us <= lo.best_rtt_us) {
        lo.best_rtt_us = rtt_us;
        lo.clock_offset_us = static_cast<int64_t>(now_us->number_value()) -
                             (send_us + recv_us) / 2;
      }
    }
  }
  link.last_heartbeat = MonotonicSeconds();
  return root;
}

Status RemoteSliceEvaluator::EnsureReady(Link& link) const {
  if (link.connected) return Status::OK();
  StatusOr<SocketConnection> conn =
      link.endpoint.unix_socket.empty()
          ? ConnectTcp(link.endpoint.tcp_port, options_.connect_timeout_ms)
          : ConnectUnix(link.endpoint.unix_socket,
                        options_.connect_timeout_ms);
  SLICELINE_RETURN_NOT_OK(conn.status());
  link.conn = std::move(conn).value();
  link.connected = true;

  serve::WorkerRequest enlist;
  enlist.type = serve::WorkerRequestType::kEnlist;
  enlist.protocol = serve::kWorkerProtocolVersion;
  StatusOr<obs::JsonValue> reply =
      RoundTrip(link, std::move(enlist), options_.request_timeout_ms);
  if (!reply.ok()) {
    link.connected = false;
    link.conn.Close();
    return reply.status();
  }
  const std::string session = reply->GetStringOr("session", "");
  if (session.empty()) {
    link.connected = false;
    link.conn.Close();
    return Status::IoError("worker enlisted without a session id");
  }
  if (session != link.session) {
    // A new session means a restarted worker process: every shard this
    // coordinator believed loaded is gone, and so are its counters.
    link.loaded.clear();
    link.session = session;
    const size_t w = static_cast<size_t>(&link - links_.data());
    if (w < link_obs_.size()) {
      link_obs_[w].session = session;
      link_obs_[w].os_pid = reply->GetIntOr("pid", 0);
      link_obs_[w].counter_baseline.clear();
    }
  }
  return Status::OK();
}

Status RemoteSliceEvaluator::EnsureShardLoaded(Link& link,
                                               int64_t shard) const {
  SLICELINE_RETURN_NOT_OK(EnsureReady(link));
  if (link.loaded.count(shard) > 0) return Status::OK();

  serve::WorkerRequest probe;
  probe.type = serve::WorkerRequestType::kHasShard;
  probe.dataset_hash = dataset_hash_;
  probe.shard = shard;
  SLICELINE_ASSIGN_OR_RETURN(
      obs::JsonValue reply,
      RoundTrip(link, std::move(probe), options_.request_timeout_ms));
  if (reply.GetBoolOr("loaded", false)) {
    link.loaded.insert(shard);
    return Status::OK();
  }

  const Shard& unit = shards_[static_cast<size_t>(shard)];
  const int64_t rows = unit.range.size();
  const int64_t cols = unit.x0.cols();
  const int64_t chunk_rows =
      std::max<int64_t>(1, options_.load_chunk_cells / std::max<int64_t>(
                                                           1, cols));
  const int64_t chunks = (rows + chunk_rows - 1) / chunk_rows;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * chunk_rows;
    const int64_t end = std::min(rows, begin + chunk_rows);
    serve::WorkerRequest load;
    load.type = serve::WorkerRequestType::kLoadShard;
    load.dataset_hash = dataset_hash_;
    load.shard = shard;
    load.chunk.row_begin = unit.range.begin;
    load.chunk.row_end = unit.range.end;
    load.chunk.chunk = c;
    load.chunk.chunks = chunks;
    load.chunk.chunk_row_begin = unit.range.begin + begin;
    load.chunk.cols = cols;
    load.chunk.codes.assign(unit.x0.row(begin),
                            unit.x0.row(begin) + (end - begin) * cols);
    load.chunk.errors.assign(unit.errors.begin() + begin,
                             unit.errors.begin() + end);
    if (c == 0) load.chunk.fdom = offsets_.fdom;
    SLICELINE_ASSIGN_OR_RETURN(
        obs::JsonValue ack,
        RoundTrip(link, std::move(load), options_.request_timeout_ms));
    if (c == chunks - 1 && !ack.GetBoolOr("loaded", false)) {
      return Status::IoError("worker did not confirm shard load");
    }
  }
  link.loaded.insert(shard);
  return Status::OK();
}

Status RemoteSliceEvaluator::CollectWorkerObs(size_t w, bool baseline) const {
  Link& link = links_[w];
  serve::WorkerRequest request;
  request.type = serve::WorkerRequestType::kGetSpans;
  SLICELINE_ASSIGN_OR_RETURN(
      obs::JsonValue reply,
      RoundTrip(link, std::move(request), options_.request_timeout_ms));
  std::vector<obs::RemoteSpan> spans;
  std::vector<std::pair<std::string, double>> counters;
  SLICELINE_RETURN_NOT_OK(serve::ParseSpansPayload(reply, &spans, &counters));
  LinkObs& lo = link_obs_[w];
  lo.os_pid = reply.GetIntOr("pid", lo.os_pid);
  if (lo.session.empty()) {
    lo.session = reply.GetStringOr("session", "");
  }
  for (obs::RemoteSpan& span : spans) {
    // The worker drains its whole buffer; keep only spans belonging to our
    // trace (a daemon-held worker may hold leftovers from earlier jobs).
    if (span.trace_id == options_.trace_id) {
      lo.spans.push_back(std::move(span));
    }
  }
  for (const auto& [name, value] : counters) {
    auto [it, inserted] = lo.counter_baseline.try_emplace(name, 0.0);
    if (!baseline && !inserted) {
      const double delta = value - it->second;
      if (delta != 0.0) lo.counter_deltas[name] += delta;
    } else if (!baseline && inserted) {
      // Counter born after the baseline pass: it started at zero.
      if (value != 0.0) lo.counter_deltas[name] += value;
    }
    it->second = value;
  }
  return Status::OK();
}

void RemoteSliceEvaluator::CollectRoundObs() const {
  if (options_.trace_id == 0) return;
  for (size_t w = 0; w < links_.size(); ++w) {
    if (!links_[w].alive || !links_[w].connected) continue;
    // Best-effort: a failed drain only costs this round's remote spans.
    (void)CollectWorkerObs(w, /*baseline=*/false);
  }
}

bool RemoteSliceEvaluator::LoseWorker(size_t worker) const {
  Link& link = links_[worker];
  if (!link.alive) return alive_count_ > 0;
  link.alive = false;
  link.connected = false;
  link.conn.Close();
  --alive_count_;
  ++faults_.workers_lost;
  obs::TraceInstant("dist", "worker_lost", static_cast<int64_t>(worker));
  LOG_WARNING << "dist: worker " << worker << " ("
              << (link.endpoint.unix_socket.empty()
                      ? "port " + std::to_string(link.endpoint.tcp_port)
                      : link.endpoint.unix_socket)
              << ") declared lost after exhausted retries";
  const double lost_fraction =
      1.0 - static_cast<double>(alive_count_) /
                static_cast<double>(links_.size());
  if (alive_count_ == 0 || lost_fraction > options_.max_lost_fraction) {
    return false;
  }
  ReshardLostWorkers();
  return true;
}

void RemoteSliceEvaluator::ReshardLostWorkers() const {
  int next_alive = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (links_[static_cast<size_t>(shard_owner_[s])].alive) continue;
    // Round-robin adoption keeps survivor load balanced (same policy as the
    // simulated evaluator).
    while (!links_[static_cast<size_t>(next_alive)].alive) {
      next_alive = (next_alive + 1) % static_cast<int>(links_.size());
    }
    shard_owner_[s] = next_alive;
    next_alive = (next_alive + 1) % static_cast<int>(links_.size());
    ++faults_.reshards;
    obs::TraceInstant("dist", "reshard", static_cast<int64_t>(s));
  }
}

void RemoteSliceEvaluator::DegradeSetup() {
  faults_.fallback_local = true;
  obs::TraceInstant("dist", "fallback_local");
  fallback_ = std::make_unique<core::SliceEvaluator>(full_x0_, offsets_,
                                                     full_errors_);
  basic_sizes_ = fallback_->basic_sizes();
  basic_error_sums_ = fallback_->basic_error_sums();
  basic_max_errors_ = fallback_->basic_max_errors();
  total_error_ = fallback_->total_error();
  PublishDistStats(cost_, faults_);
}

void RemoteSliceEvaluator::SetupCluster() {
  TRACE_SPAN("dist/setup_cluster", static_cast<int64_t>(links_.size()));
  const size_t num_shards = shards_.size();
  std::vector<serve::ShardBasicStats> stats(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    int attempts = 0;
    for (;;) {
      const size_t owner = static_cast<size_t>(shard_owner_[s]);
      Link& link = links_[owner];
      Status st = [&]() -> Status {
        SLICELINE_RETURN_NOT_OK(
            EnsureShardLoaded(link, static_cast<int64_t>(s)));
        serve::WorkerRequest request;
        request.type = serve::WorkerRequestType::kBasicStats;
        request.dataset_hash = dataset_hash_;
        request.shard = static_cast<int64_t>(s);
        SLICELINE_ASSIGN_OR_RETURN(
            obs::JsonValue reply,
            RoundTrip(link, std::move(request), options_.request_timeout_ms));
        SLICELINE_ASSIGN_OR_RETURN(serve::ShardBasicStats shard_stats,
                                   serve::ParseBasicStatsPayload(reply));
        if (shard_stats.n != shards_[s].range.size() ||
            static_cast<int64_t>(shard_stats.sizes.size()) !=
                offsets_.total) {
          return Status::IoError("worker basic stats have the wrong shape");
        }
        stats[s] = std::move(shard_stats);
        return Status::OK();
      }();
      if (st.ok()) break;
      ++faults_.transient_failures;
      link.connected = false;
      link.conn.Close();
      ++attempts;
      if (attempts > options_.max_retries) {
        attempts = 0;
        if (!LoseWorker(owner)) {
          DegradeSetup();
          return;
        }
        continue;  // resharded owner gets a fresh retry budget
      }
      const double backoff =
          options_.backoff_base_seconds *
          std::pow(options_.backoff_multiplier, attempts - 1);
      ++faults_.retries;
      ++faults_.backoff_events;
      faults_.backoff_seconds += backoff;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }

  // Merge in shard order -- identical FP addition order to the simulated
  // evaluator's constructor.
  const int64_t l = offsets_.total;
  basic_sizes_.assign(static_cast<size_t>(l), 0);
  basic_error_sums_.assign(static_cast<size_t>(l), 0.0);
  basic_max_errors_.assign(static_cast<size_t>(l), 0.0);
  total_error_ = 0.0;
  for (size_t s = 0; s < num_shards; ++s) {
    total_error_ += stats[s].total_error;
    for (int64_t c = 0; c < l; ++c) {
      basic_sizes_[c] += stats[s].sizes[c];
      basic_error_sums_[c] += stats[s].error_sums[c];
      basic_max_errors_[c] =
          std::max(basic_max_errors_[c], stats[s].max_errors[c]);
    }
  }

  // Baseline pass for fleet tracing: drain setup-time spans now and pin
  // counter baselines, so a worker reused across jobs does not leak earlier
  // jobs' counts into this job's deltas.
  if (options_.trace_id != 0) {
    for (size_t w = 0; w < links_.size(); ++w) {
      if (!links_[w].alive || !links_[w].connected) continue;
      (void)CollectWorkerObs(w, /*baseline=*/true);
    }
  }
}

StatusOr<core::EvalResult> RemoteSliceEvaluator::EvaluateDegraded(
    const core::SliceSet& set, const core::SliceLineConfig& config) const {
  if (!faults_.fallback_local) {
    obs::TraceInstant("dist", "fallback_local");
  }
  faults_.fallback_local = true;
  if (fallback_ == nullptr) {
    fallback_ = std::make_unique<core::SliceEvaluator>(full_x0_, offsets_,
                                                       full_errors_);
  }
  PublishDistStats(cost_, faults_);
  return fallback_->Evaluate(set, config);
}

StatusOr<core::EvalResult> RemoteSliceEvaluator::Evaluate(
    const core::SliceSet& set, const core::SliceLineConfig& config) const {
  const size_t count = static_cast<size_t>(set.size());
  core::EvalResult out;
  out.sizes.assign(count, 0.0);
  out.error_sums.assign(count, 0.0);
  out.max_errors.assign(count, 0.0);
  if (count == 0) return out;

  const int64_t round = next_round_++;
  TRACE_SPAN("dist/evaluate_round", round);
  if (round_hook_) round_hook_(round);
  if (fallback_ != nullptr) return EvaluateDegraded(set, config);
  if (alive_count_ == 0) return EvaluateDegraded(set, config);

  Stopwatch round_watch;
  cost_.rounds += 1;

  // One task per (shard, slice block). The block bound caps how much work a
  // lost request forfeits; done-flags make speculative duplicates idempotent.
  struct Task {
    int64_t shard = 0;
    int64_t begin = 0;  ///< slice range [begin, end) of the full set
    int64_t end = 0;
    int attempts = 0;       ///< transient failures on the current owner
    bool speculated = false;
    bool done = false;
  };
  std::vector<Task> tasks;
  const int64_t num_shards = static_cast<int64_t>(shards_.size());
  for (int64_t s = 0; s < num_shards; ++s) {
    for (int64_t begin = 0; begin < set.size();
         begin += options_.max_block_slices) {
      Task task;
      task.shard = s;
      task.begin = begin;
      task.end = std::min(set.size(), begin + options_.max_block_slices);
      tasks.push_back(task);
    }
  }
  std::deque<size_t> pending;
  for (size_t t = 0; t < tasks.size(); ++t) pending.push_back(t);

  // Per-shard full-width partials, filled block by block; aggregated in
  // shard order at the end (bit-identical to the simulated evaluator).
  std::vector<core::EvalResult> partials(static_cast<size_t>(num_shards));
  for (core::EvalResult& partial : partials) {
    partial.sizes.assign(count, 0.0);
    partial.error_sums.assign(count, 0.0);
    partial.max_errors.assign(count, 0.0);
  }

  // Per-link in-flight request (at most one), by task index.
  struct InFlight {
    int task = -1;
    double sent_at = 0.0;
    std::string request_id;
    bool speculative = false;
  };
  std::vector<InFlight> inflight(links_.size());
  size_t tasks_done = 0;

  const RunContext* ctx = config.run_context;

  // Requeues the task (unless a speculative twin already finished it) and
  // applies the transient-failure bookkeeping for `worker`. Returns false
  // when the failure escalated past max_lost_fraction (degrade).
  auto fail_inflight = [&](size_t worker, bool close_connection) -> bool {
    InFlight& flight = inflight[worker];
    const int ti = flight.task;
    flight.task = -1;
    ++faults_.transient_failures;
    if (close_connection) {
      links_[worker].connected = false;
      links_[worker].conn.Close();
    }
    if (ti < 0 || tasks[static_cast<size_t>(ti)].done) return true;
    Task& task = tasks[static_cast<size_t>(ti)];
    if (flight.speculative) {
      // The primary copy is still in flight; just drop the backup.
      task.speculated = false;
      return true;
    }
    ++task.attempts;
    if (task.attempts > options_.max_retries) {
      task.attempts = 0;
      pending.push_front(static_cast<size_t>(ti));
      return LoseWorker(worker);
    }
    const double backoff =
        options_.backoff_base_seconds *
        std::pow(options_.backoff_multiplier, task.attempts - 1);
    links_[worker].ready_at = MonotonicSeconds() + backoff;
    ++faults_.retries;
    ++faults_.backoff_events;
    faults_.backoff_seconds += backoff;
    cost_.rounds += 1;  // the retry is a fresh broadcast wave for this block
    pending.push_front(static_cast<size_t>(ti));
    return true;
  };

  auto dispatch = [&](size_t worker, size_t ti, bool speculative) -> Status {
    Link& link = links_[worker];
    const Task& task = tasks[ti];
    SLICELINE_RETURN_NOT_OK(EnsureShardLoaded(link, task.shard));
    serve::WorkerRequest request;
    request.type = serve::WorkerRequestType::kEvalBlock;
    request.dataset_hash = dataset_hash_;
    request.shard = task.shard;
    request.strategy = StrategyName(config.eval_strategy);
    request.block_size = config.eval_block_size;
    // Propagate the trace context: the worker stamps its spans with the
    // trace id and records the 1-based round as their remote parent.
    request.trace_id = options_.trace_id;
    request.parent_span_id = round + 1;
    for (int64_t i = task.begin; i < task.end; ++i) {
      request.slices.Add(set.Columns(i), set.Columns(i) + set.Length(i));
    }
    request.id = "r" + std::to_string(round) + "-t" + std::to_string(ti) +
                 "-q" + std::to_string(link.next_request++);
    const std::string line = serve::SerializeWorkerRequest(request);
    SLICELINE_RETURN_NOT_OK(
        link.conn.WriteLine(line, serve::kWorkerMaxLineBytes));
    cost_.broadcast_bytes += static_cast<int64_t>(line.size());
    inflight[worker] =
        InFlight{static_cast<int>(ti), MonotonicSeconds(), request.id,
                 speculative};
    return Status::OK();
  };

  while (tasks_done < tasks.size()) {
    if (ctx != nullptr && ctx->ShouldStop()) {
      return StopReasonToStatus(ctx->CheckStop());
    }
    const double now = MonotonicSeconds();
    bool progressed = false;

    // Dispatch pending tasks to their (current) shard owners.
    for (size_t p = 0; p < pending.size();) {
      const size_t ti = pending[p];
      if (tasks[ti].done) {
        // Finished by a speculative twin while queued for retry; the
        // receive path already counted it.
        pending.erase(pending.begin() + static_cast<int64_t>(p));
        continue;
      }
      const size_t owner =
          static_cast<size_t>(shard_owner_[static_cast<size_t>(
              tasks[ti].shard)]);
      Link& link = links_[owner];
      if (!link.alive || inflight[owner].task >= 0 || now < link.ready_at) {
        ++p;
        continue;
      }
      pending.erase(pending.begin() + static_cast<int64_t>(p));
      Status st = dispatch(owner, ti, /*speculative=*/false);
      if (st.ok()) {
        progressed = true;
      } else {
        inflight[owner].task = static_cast<int>(ti);
        inflight[owner].speculative = false;
        if (!fail_inflight(owner, /*close_connection=*/true)) {
          return EvaluateDegraded(set, config);
        }
      }
    }

    // Straggler detection: dispatch a speculative backup of an old in-flight
    // block to an idle survivor (first valid response wins).
    if (options_.speculative_execution) {
      for (size_t w = 0; w < links_.size(); ++w) {
        const InFlight& flight = inflight[w];
        if (flight.task < 0 || flight.speculative) continue;
        Task& task = tasks[static_cast<size_t>(flight.task)];
        if (task.done || task.speculated) continue;
        if ((now - flight.sent_at) * 1000.0 <
            static_cast<double>(options_.straggler_after_ms)) {
          continue;
        }
        ++faults_.stragglers;
        obs::TraceInstant("dist", "straggler", static_cast<int64_t>(w));
        task.speculated = true;
        for (size_t helper = 0; helper < links_.size(); ++helper) {
          Link& candidate = links_[helper];
          if (helper == w || !candidate.alive ||
              inflight[helper].task >= 0 || now < candidate.ready_at) {
            continue;
          }
          if (dispatch(helper, static_cast<size_t>(flight.task),
                       /*speculative=*/true)
                  .ok()) {
            ++faults_.speculative_reexecutions;
            obs::TraceInstant("dist", "speculative_reexecution",
                              static_cast<int64_t>(helper));
          } else {
            inflight[helper].task = -1;
            candidate.connected = false;
            candidate.conn.Close();
          }
          break;
        }
      }
    }

    // Receive phase: poll every link with an in-flight request.
    for (size_t w = 0; w < links_.size(); ++w) {
      if (inflight[w].task < 0) continue;
      Link& link = links_[w];
      StatusOr<bool> readable = link.conn.WaitReadable(2);
      if (!readable.ok()) {
        if (!fail_inflight(w, true)) return EvaluateDegraded(set, config);
        continue;
      }
      if (!readable.value()) {
        // Round-trip deadline: a worker that holds a request past the
        // timeout is treated as transiently failed (it may be wedged, dead,
        // or partitioned -- indistinguishable from here).
        if ((MonotonicSeconds() - inflight[w].sent_at) * 1000.0 >
            static_cast<double>(options_.request_timeout_ms)) {
          if (!fail_inflight(w, true)) return EvaluateDegraded(set, config);
        }
        continue;
      }
      StatusOr<std::string> line =
          link.conn.ReadLine(serve::kWorkerMaxLineBytes, 50);
      if (!line.ok()) {
        if (line.status().code() == StatusCode::kDeadlineExceeded) {
          continue;  // partial frame; bytes stay buffered for the next poll
        }
        if (!fail_inflight(w, true)) return EvaluateDegraded(set, config);
        continue;
      }
      cost_.gather_bytes += static_cast<int64_t>(line.value().size());
      progressed = true;

      const int ti = inflight[w].task;
      Task& task = tasks[static_cast<size_t>(ti)];
      const bool speculative = inflight[w].speculative;
      StatusOr<obs::JsonValue> root = obs::ParseJson(line.value());
      if (!root.ok() || !root->is_object() ||
          root->GetStringOr("id", "") != inflight[w].request_id) {
        if (!fail_inflight(w, true)) return EvaluateDegraded(set, config);
        continue;
      }
      if (!root->GetBoolOr("ok", false)) {
        // Structured worker error (e.g. "shard not loaded" after a restart
        // the session check has not seen yet): the connection is fine, but
        // the shard belief is stale.
        link.loaded.erase(task.shard);
        if (!fail_inflight(w, false)) return EvaluateDegraded(set, config);
        continue;
      }
      uint64_t sent_checksum = 0;
      StatusOr<core::EvalResult> partial =
          serve::ParseEvalPayload(*root, &sent_checksum);
      const int64_t shard_rows =
          shards_[static_cast<size_t>(task.shard)].range.size();
      const size_t block = static_cast<size_t>(task.end - task.begin);
      if (!partial.ok() ||
          ChecksumPartial(partial.value()) != sent_checksum ||
          !PartialInvariantsOk(partial.value(), shard_rows, block)) {
        ++faults_.corrupted_partials;
        obs::TraceInstant("dist", "corrupted_partial", task.shard);
        if (!fail_inflight(w, false)) return EvaluateDegraded(set, config);
        continue;
      }
      cost_.worker_busy_seconds += MonotonicSeconds() - inflight[w].sent_at;
      link.last_heartbeat = MonotonicSeconds();
      inflight[w].task = -1;
      if (task.done) continue;  // the speculative twin already landed
      core::EvalResult& shard_partial =
          partials[static_cast<size_t>(task.shard)];
      for (size_t i = 0; i < block; ++i) {
        const size_t at = static_cast<size_t>(task.begin) + i;
        shard_partial.sizes[at] = partial.value().sizes[i];
        shard_partial.error_sums[at] = partial.value().error_sums[i];
        shard_partial.max_errors[at] = partial.value().max_errors[i];
      }
      task.done = true;
      (void)speculative;
      eval_slices_accepted_ += task.end - task.begin;
      ++tasks_done;
      // If a twin of this task is still in flight elsewhere (the straggling
      // primary, or a backup the primary beat), cancel it by dropping that
      // connection -- the link frees up for new work instead of sitting on
      // a response nobody needs.
      for (size_t other = 0; other < links_.size(); ++other) {
        if (other == w || inflight[other].task != ti) continue;
        inflight[other].task = -1;
        links_[other].connected = false;
        links_[other].conn.Close();
      }
    }

    // Liveness probes for idle connected links, so silently dead workers
    // are noticed before work (or speculation) is routed to them.
    for (size_t w = 0; w < links_.size(); ++w) {
      Link& link = links_[w];
      if (!link.alive || !link.connected || inflight[w].task >= 0) continue;
      if ((MonotonicSeconds() - link.last_heartbeat) * 1000.0 <
          static_cast<double>(options_.heartbeat_interval_ms)) {
        continue;
      }
      serve::WorkerRequest beat;
      beat.type = serve::WorkerRequestType::kHeartbeat;
      if (!RoundTrip(link, std::move(beat),
                     std::min(options_.request_timeout_ms, 250))
               .ok()) {
        link.connected = false;
        link.conn.Close();
      }
    }

    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Aggregate in shard order: shard boundaries never change, so every
  // floating-point sum happens in the same order as the simulated evaluator
  // (and any fault-free run).
  for (size_t s = 0; s < static_cast<size_t>(num_shards); ++s) {
    for (size_t i = 0; i < count; ++i) {
      out.sizes[i] += partials[s].sizes[i];
      out.error_sums[i] += partials[s].error_sums[i];
      out.max_errors[i] =
          std::max(out.max_errors[i], partials[s].max_errors[i]);
    }
  }
  cost_.critical_path_seconds += round_watch.ElapsedSeconds();
  PublishDistStats(cost_, faults_);
  // Round boundary: drain worker span buffers + counter deltas while the
  // connections are warm (outside the critical-path clock).
  CollectRoundObs();
  return out;
}

obs::DistObsBundle RemoteSliceEvaluator::TakeObsBundle() {
  obs::DistObsBundle bundle;
  bundle.trace_id = options_.trace_id;
  for (size_t w = 0; w < link_obs_.size(); ++w) {
    LinkObs& lo = link_obs_[w];
    if (lo.spans.empty() && lo.counter_deltas.empty()) continue;
    obs::ProcessObs process;
    process.label =
        "worker " +
        (lo.session.empty() ? "#" + std::to_string(w) : lo.session);
    process.os_pid = lo.os_pid;
    process.clock_offset_us =
        lo.best_rtt_us == std::numeric_limits<int64_t>::max()
            ? 0
            : lo.clock_offset_us;
    process.spans = std::move(lo.spans);
    lo.spans.clear();
    for (const auto& [name, value] : lo.counter_deltas) {
      process.counters.emplace_back(name, value);
    }
    lo.counter_deltas.clear();
    bundle.workers.push_back(std::move(process));
  }
  bundle.sections["dist_cost"] = {
      {"rounds", static_cast<double>(cost_.rounds)},
      {"broadcast_bytes", static_cast<double>(cost_.broadcast_bytes)},
      {"gather_bytes", static_cast<double>(cost_.gather_bytes)},
      {"worker_busy_seconds", cost_.worker_busy_seconds},
      {"critical_path_seconds", cost_.critical_path_seconds},
      {"eval_slices_accepted", static_cast<double>(eval_slices_accepted_)},
      {"workers", static_cast<double>(links_.size())},
      {"alive_workers", static_cast<double>(alive_count_)},
  };
  bundle.sections["dist_faults"] = {
      {"transient_failures", static_cast<double>(faults_.transient_failures)},
      {"retries", static_cast<double>(faults_.retries)},
      {"backoff_events", static_cast<double>(faults_.backoff_events)},
      {"backoff_seconds", faults_.backoff_seconds},
      {"stragglers", static_cast<double>(faults_.stragglers)},
      {"speculative_reexecutions",
       static_cast<double>(faults_.speculative_reexecutions)},
      {"corrupted_partials", static_cast<double>(faults_.corrupted_partials)},
      {"workers_lost", static_cast<double>(faults_.workers_lost)},
      {"reshards", static_cast<double>(faults_.reshards)},
      {"fallback_local", faults_.fallback_local ? 1.0 : 0.0},
  };
  return bundle;
}

StatusOr<core::SliceLineResult> RunSliceLineRemote(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const core::SliceLineConfig& config, const RemoteDistOptions& options,
    DistCostStats* cost_out, DistFaultStats* faults_out,
    obs::DistObsBundle* obs_out) {
  SLICELINE_ASSIGN_OR_RETURN(std::unique_ptr<RemoteSliceEvaluator> eval,
                             RemoteSliceEvaluator::Create(x0, errors,
                                                          options));
  SLICELINE_ASSIGN_OR_RETURN(core::SliceLineResult result,
                             core::RunSliceLineWithBackend(*eval, config));
  result.outcome.dist_fallback_local = eval->faults().fallback_local;
  if (cost_out != nullptr) *cost_out = eval->cost();
  if (faults_out != nullptr) *faults_out = eval->faults();
  if (obs_out != nullptr) *obs_out = eval->TakeObsBundle();
  return result;
}

}  // namespace sliceline::dist
