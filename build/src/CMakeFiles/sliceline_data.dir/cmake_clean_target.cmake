file(REMOVE_RECURSE
  "libsliceline_data.a"
)
