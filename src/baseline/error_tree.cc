#include "baseline/error_tree.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace sliceline::baseline {

namespace {

struct Node {
  std::vector<std::pair<int, int32_t>> predicates;  ///< path from the root
  std::vector<int32_t> rows;
  double error_sum = 0.0;
  double error_sq_sum = 0.0;
  double max_error = 0.0;

  double Mean() const {
    return rows.empty() ? 0.0
                        : error_sum / static_cast<double>(rows.size());
  }
  double Sse() const {
    if (rows.empty()) return 0.0;
    const double mean = Mean();
    return error_sq_sum - mean * error_sum;
  }
};

Node MakeNode(const std::vector<int32_t>& rows,
              const std::vector<double>& errors,
              std::vector<std::pair<int, int32_t>> predicates) {
  Node node;
  node.predicates = std::move(predicates);
  node.rows = rows;
  for (int32_t r : rows) {
    const double e = errors[r];
    node.error_sum += e;
    node.error_sq_sum += e * e;
    node.max_error = std::max(node.max_error, e);
  }
  return node;
}

/// Best (feature = value) vs rest split of `node` by error-variance
/// reduction; returns the gain and writes the chosen predicate. A split is
/// admissible when the matching side satisfies the support threshold (the
/// complement keeps flowing down the "rest" branch).
double BestSplit(const Node& node, const data::IntMatrix& x0,
                 const std::vector<double>& errors, int64_t sigma,
                 int* best_feature, int32_t* best_code) {
  const double parent_sse = node.Sse();
  double best_gain = 0.0;
  *best_feature = -1;
  for (int f = 0; f < static_cast<int>(x0.cols()); ++f) {
    // Skip features already bound on this path.
    bool bound = false;
    for (const auto& [bf, bc] : node.predicates) bound |= bf == f;
    if (bound) continue;
    int32_t dom = 0;
    for (int32_t r : node.rows) dom = std::max(dom, x0.At(r, f));
    if (dom <= 1) continue;
    // Per-code error statistics in one pass.
    std::vector<double> sum(static_cast<size_t>(dom), 0.0);
    std::vector<double> sq(static_cast<size_t>(dom), 0.0);
    std::vector<int64_t> count(static_cast<size_t>(dom), 0);
    for (int32_t r : node.rows) {
      const int32_t c = x0.At(r, f) - 1;
      const double e = errors[r];
      sum[c] += e;
      sq[c] += e * e;
      ++count[c];
    }
    const int64_t total = static_cast<int64_t>(node.rows.size());
    for (int32_t code = 0; code < dom; ++code) {
      if (count[code] < sigma || total - count[code] < sigma) continue;
      const double in_mean = sum[code] / static_cast<double>(count[code]);
      const double in_sse = sq[code] - in_mean * sum[code];
      const double out_sum = node.error_sum - sum[code];
      const double out_sq = node.error_sq_sum - sq[code];
      const double out_mean =
          out_sum / static_cast<double>(total - count[code]);
      const double out_sse = out_sq - out_mean * out_sum;
      const double gain = parent_sse - in_sse - out_sse;
      if (gain > best_gain) {
        best_gain = gain;
        *best_feature = f;
        *best_code = code + 1;
      }
    }
  }
  return best_gain;
}

}  // namespace

StatusOr<ErrorTreeResult> RunErrorTree(const data::IntMatrix& x0,
                                       const std::vector<double>& errors,
                                       const ErrorTreeConfig& config) {
  const int64_t n = x0.rows();
  if (n == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != n) {
    return Status::InvalidArgument("error vector size mismatch");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (config.max_depth < 1) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  Stopwatch watch;
  core::SliceLineConfig sigma_config;
  sigma_config.min_support = config.min_support;
  const int64_t sigma = core::ResolveMinSupport(sigma_config, n);

  ErrorTreeResult result;
  std::vector<Node> leaves;
  {
    std::vector<int32_t> all(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all[i] = static_cast<int32_t>(i);
    leaves.push_back(MakeNode(all, errors, {}));
    result.nodes = 1;
  }

  // Breadth-first greedy growth: each expandable leaf is split into the
  // (feature = value) side -- which gains one predicate -- and the rest side
  // -- which keeps the same predicates (an implicit negation, so leaf
  // predicates remain pure conjunctions as in slice finding).
  std::vector<Node> final_leaves;
  for (int depth = 0; depth < config.max_depth && !leaves.empty(); ++depth) {
    std::vector<Node> next;
    for (Node& node : leaves) {
      int feature = -1;
      int32_t code = 0;
      const double gain = BestSplit(node, x0, errors, sigma, &feature, &code);
      // A node with (numerically) zero error variance has nothing to
      // separate; guard against splitting on floating-point dust.
      const double denom = node.Sse();
      const bool splittable =
          feature >= 0 && denom > 1e-9 * std::max(node.error_sq_sum, 1e-300) &&
          gain / denom >= config.min_gain;
      if (!splittable) {
        final_leaves.push_back(std::move(node));
        continue;
      }
      std::vector<int32_t> in_rows;
      std::vector<int32_t> out_rows;
      for (int32_t r : node.rows) {
        (x0.At(r, feature) == code ? in_rows : out_rows).push_back(r);
      }
      auto in_preds = node.predicates;
      in_preds.emplace_back(feature, code);
      next.push_back(MakeNode(in_rows, errors, std::move(in_preds)));
      next.push_back(MakeNode(out_rows, errors, node.predicates));
      result.nodes += 2;
    }
    leaves = std::move(next);
  }
  for (Node& node : leaves) final_leaves.push_back(std::move(node));
  result.leaves = static_cast<int>(final_leaves.size());

  // Report the K highest-mean-error leaves that are genuine slices (at
  // least one predicate; the "rest" root leaf is not a conjunction).
  std::stable_sort(final_leaves.begin(), final_leaves.end(),
                   [](const Node& a, const Node& b) {
                     return a.Mean() > b.Mean();
                   });
  for (const Node& node : final_leaves) {
    if (static_cast<int>(result.slices.size()) >= config.k) break;
    if (node.predicates.empty()) continue;
    if (static_cast<int64_t>(node.rows.size()) < sigma) continue;
    core::Slice slice;
    slice.predicates = node.predicates;
    std::sort(slice.predicates.begin(), slice.predicates.end());
    slice.stats = {node.Mean(), node.error_sum, node.max_error,
                   static_cast<int64_t>(node.rows.size())};
    result.slices.push_back(std::move(slice));
  }
  result.total_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sliceline::baseline
