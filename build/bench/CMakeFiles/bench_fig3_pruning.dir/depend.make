# Empty dependencies file for bench_fig3_pruning.
# This may be replaced when dependencies are built.
