#include "core/evaluator.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "linalg/kernels_simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::core {

void SliceSet::Add(const int64_t* begin, const int64_t* end) {
  SLICELINE_DCHECK(std::is_sorted(begin, end));
  columns_.insert(columns_.end(), begin, end);
  offsets_.push_back(static_cast<int64_t>(columns_.size()));
}

void SliceSet::Reserve(int64_t slices, int64_t total_columns) {
  offsets_.reserve(offsets_.size() + slices);
  columns_.reserve(columns_.size() + total_columns);
}

SliceEvaluator::SliceEvaluator(const data::IntMatrix& x0,
                               const data::FeatureOffsets& offsets,
                               const std::vector<double>& errors)
    : x0_(&x0), offsets_(&offsets), errors_(&errors),
      packed_bitmaps_(x0.rows(), offsets.total) {
  const int64_t n = x0.rows();
  const int64_t m = x0.cols();
  const int64_t l = offsets.total;
  SLICELINE_CHECK_EQ(static_cast<int64_t>(errors.size()), n);
  SLICELINE_CHECK_LT(n, std::numeric_limits<int32_t>::max());
  for (double e : errors) {
    SLICELINE_CHECK_GE(e, 0.0);
    total_error_ += e;
  }

  // Build the CSC inverted index and the level-1 statistics in two passes.
  basic_sizes_.assign(static_cast<size_t>(l), 0);
  basic_error_sums_.assign(static_cast<size_t>(l), 0.0);
  basic_max_errors_.assign(static_cast<size_t>(l), 0.0);
  col_ptr_.assign(static_cast<size_t>(l) + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    const int32_t* row = x0.row(i);
    const double e = errors[i];
    for (int64_t j = 0; j < m; ++j) {
      SLICELINE_CHECK(row[j] >= 1 && row[j] <= offsets.fdom[j])
          << "X0 code out of domain at (" << i << "," << j << ")";
      const int64_t c = offsets.fb[j] + row[j] - 1;
      ++basic_sizes_[c];
      basic_error_sums_[c] += e;
      if (e > basic_max_errors_[c]) basic_max_errors_[c] = e;
      ++col_ptr_[c + 1];
    }
  }
  for (int64_t c = 0; c < l; ++c) col_ptr_[c + 1] += col_ptr_[c];
  rows_.resize(static_cast<size_t>(n * m));
  std::vector<int64_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (int64_t i = 0; i < n; ++i) {
    const int32_t* row = x0.row(i);
    for (int64_t j = 0; j < m; ++j) {
      const int64_t c = offsets_->fb[j] + row[j] - 1;
      rows_[cursor[c]++] = static_cast<int32_t>(i);
    }
  }
}

void SliceEvaluator::EvaluateOne(const int64_t* cols, int64_t len,
                                 double* size, double* error_sum,
                                 double* max_error) const {
  SLICELINE_DCHECK(len >= 1);
  // Drive the scan from the rarest predicate's inverted list and verify the
  // remaining predicates with O(1) probes into X0.
  int64_t best = 0;
  for (int64_t k = 1; k < len; ++k) {
    if (col_ptr_[cols[k] + 1] - col_ptr_[cols[k]] <
        col_ptr_[cols[best] + 1] - col_ptr_[cols[best]]) {
      best = k;
    }
  }
  struct Predicate {
    int feature;
    int32_t code;
  };
  // Small inline buffer for the common shallow-lattice case.
  Predicate inline_preds[16];
  std::vector<Predicate> heap_preds;
  Predicate* preds = inline_preds;
  if (len - 1 > 16) {
    heap_preds.resize(static_cast<size_t>(len - 1));
    preds = heap_preds.data();
  }
  int64_t num_preds = 0;
  for (int64_t k = 0; k < len; ++k) {
    if (k == best) continue;
    const int f = offsets_->FeatureOfColumn(cols[k]);
    preds[num_preds++] = {f, offsets_->CodeOfColumn(cols[k])};
  }
  double ss = 0.0;
  double se = 0.0;
  double sm = 0.0;
  const int64_t drive = cols[best];
  for (int64_t p = col_ptr_[drive]; p < col_ptr_[drive + 1]; ++p) {
    const int32_t r = rows_[p];
    bool match = true;
    for (int64_t k = 0; k < num_preds; ++k) {
      if (x0_->At(r, preds[k].feature) != preds[k].code) {
        match = false;
        break;
      }
    }
    if (match) {
      const double e = (*errors_)[r];
      ss += 1.0;
      se += e;
      if (e > sm) sm = e;
    }
  }
  *size = ss;
  *error_sum = se;
  *max_error = sm;
}

namespace {

/// Poll stride for governance checks inside slice loops: frequent enough to
/// stop within one batch, rare enough to stay off the profile.
constexpr size_t kGovernanceStride = 64;

}  // namespace

void SliceEvaluator::EvaluateIndex(const SliceSet& set, bool parallel,
                                   const RunContext* ctx,
                                   EvalResult* out) const {
  const int64_t count = set.size();
  auto body = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (ctx != nullptr && (i - begin) % kGovernanceStride == 0 &&
          ctx->ShouldStop()) {
        return;
      }
      EvaluateOne(set.Columns(i), set.Length(i), &out->sizes[i],
                  &out->error_sums[i], &out->max_errors[i]);
    }
  };
  if (parallel) {
    GlobalThreadPool().ParallelForRange(static_cast<size_t>(count), ctx, body);
  } else {
    body(0, static_cast<size_t>(count));
  }
}

void SliceEvaluator::EvaluateScanBlock(const SliceSet& set, int block_size,
                                       bool parallel, const RunContext* ctx,
                                       EvalResult* out) const {
  const int64_t count = set.size();
  const int64_t n = x0_->rows();
  const int64_t m = x0_->cols();
  const int b = std::max(1, block_size);

  for (int64_t block_begin = 0; block_begin < count; block_begin += b) {
    if (ctx != nullptr && ctx->ShouldStop()) return;
    const int64_t block_end = std::min<int64_t>(block_begin + b, count);
    const int64_t bs = block_end - block_begin;
    // Column -> slices-in-block adjacency, plus required match counts.
    // (This mirrors the paper's X * S_b^T product: each row contributes one
    // count per matching predicate; a row is in slice s iff count == L_s.)
    std::vector<std::vector<int32_t>> col_slices(
        static_cast<size_t>(offsets_->total));
    std::vector<int32_t> lengths(static_cast<size_t>(bs));
    for (int64_t s = block_begin; s < block_end; ++s) {
      lengths[s - block_begin] = static_cast<int32_t>(set.Length(s));
      for (int64_t k = 0; k < set.Length(s); ++k) {
        col_slices[set.Columns(s)[k]].push_back(
            static_cast<int32_t>(s - block_begin));
      }
    }

    struct Partial {
      std::vector<double> ss, se, sm;
    };
    auto scan = [&](int64_t row_begin, int64_t row_end, Partial* acc) {
      std::vector<int32_t> counts(static_cast<size_t>(bs), 0);
      std::vector<int32_t> touched;
      touched.reserve(static_cast<size_t>(bs));
      for (int64_t i = row_begin; i < row_end; ++i) {
        // Row-strided governance poll; a stop mid-scan leaves this block's
        // partial sums incomplete, which is fine -- the caller discards the
        // whole EvalResult on a governance status.
        if (ctx != nullptr &&
            (i - row_begin) % (kGovernanceStride * 64) == 0 &&
            ctx->ShouldStop()) {
          return;
        }
        const int32_t* row = x0_->row(i);
        touched.clear();
        for (int64_t j = 0; j < m; ++j) {
          const int64_t c = offsets_->fb[j] + row[j] - 1;
          for (int32_t s : col_slices[c]) {
            if (counts[s]++ == 0) touched.push_back(s);
          }
        }
        const double e = (*errors_)[i];
        for (int32_t s : touched) {
          if (counts[s] == lengths[s]) {
            acc->ss[s] += 1.0;
            acc->se[s] += e;
            if (e > acc->sm[s]) acc->sm[s] = e;
          }
          counts[s] = 0;
        }
      }
    };

    auto merge_into = [&](const Partial& acc) {
      for (int64_t s = 0; s < bs; ++s) {
        out->sizes[block_begin + s] += acc.ss[s];
        out->error_sums[block_begin + s] += acc.se[s];
        out->max_errors[block_begin + s] =
            std::max(out->max_errors[block_begin + s], acc.sm[s]);
      }
    };

    if (parallel && GlobalThreadPool().num_threads() > 1) {
      std::mutex merge_mutex;
      GlobalThreadPool().ParallelForRange(
          static_cast<size_t>(n), ctx, [&](size_t rb, size_t re) {
            Partial acc;
            acc.ss.assign(static_cast<size_t>(bs), 0.0);
            acc.se.assign(static_cast<size_t>(bs), 0.0);
            acc.sm.assign(static_cast<size_t>(bs), 0.0);
            scan(static_cast<int64_t>(rb), static_cast<int64_t>(re), &acc);
            std::lock_guard<std::mutex> lock(merge_mutex);
            merge_into(acc);
          });
    } else {
      Partial acc;
      acc.ss.assign(static_cast<size_t>(bs), 0.0);
      acc.se.assign(static_cast<size_t>(bs), 0.0);
      acc.sm.assign(static_cast<size_t>(bs), 0.0);
      scan(0, n, &acc);
      merge_into(acc);
    }
  }
}

void SliceEvaluator::EvaluateBitset(const SliceSet& set, bool parallel,
                                    const RunContext* ctx,
                                    EvalResult* out) const {
  // Resolve the ISA dispatch once on the coordinating thread; every worker
  // uses the same kernel table, so a concurrent ForceIsa cannot split one
  // evaluation across ISA levels.
  const linalg::SimdKernels& kernels = linalg::ActiveKernels();

  // Serial pre-pass: pack bitmaps for every distinct column that is not
  // cached yet (lazy, so ultra-wide one-hot spaces only pay for the columns
  // candidate slices actually touch). Each column packs its CSC inverted
  // list exactly once per dataset lifetime.
  {
    std::lock_guard<std::mutex> lock(bitmap_mutex_);
    for (int64_t s = 0; s < set.size(); ++s) {
      for (int64_t k = 0; k < set.Length(s); ++k) {
        const int64_t c = set.Columns(s)[k];
        if (!packed_bitmaps_.Has(c)) {
          packed_bitmaps_.Build(c, rows_.data() + col_ptr_[c],
                                col_ptr_[c + 1] - col_ptr_[c]);
        }
      }
    }
  }

  const int64_t words = packed_bitmaps_.words();
  const double* errors = errors_->data();
  auto body = [&](size_t begin, size_t end) {
    // Gather each candidate's column bitmap pointers into one arena, then
    // hand contiguous chunks to the cache-blocked SIMD loop. Chunks double
    // as the strided governance poll boundary.
    int64_t range_columns = 0;
    for (size_t s = begin; s < end; ++s) range_columns += set.Length(s);
    std::vector<const uint64_t*> arena;
    arena.reserve(static_cast<size_t>(range_columns));
    std::vector<size_t> arena_offsets(end - begin);
    for (size_t s = begin; s < end; ++s) {
      arena_offsets[s - begin] = arena.size();
      for (int64_t k = 0; k < set.Length(s); ++k) {
        arena.push_back(packed_bitmaps_.Get(set.Columns(s)[k]));
      }
    }
    std::vector<linalg::CandidateColumns> candidates(end - begin);
    for (size_t s = begin; s < end; ++s) {
      candidates[s - begin] = {arena.data() + arena_offsets[s - begin],
                               static_cast<int32_t>(set.Length(s))};
    }
    for (size_t chunk = begin; chunk < end; chunk += kGovernanceStride) {
      if (ctx != nullptr && ctx->ShouldStop()) return;
      const size_t chunk_end = std::min(end, chunk + kGovernanceStride);
      linalg::EvaluateCandidatesBlocked(
          kernels, candidates.data() + (chunk - begin),
          static_cast<int64_t>(chunk_end - chunk), words, errors,
          out->sizes.data() + chunk, out->error_sums.data() + chunk,
          out->max_errors.data() + chunk);
    }
  };
  if (parallel) {
    GlobalThreadPool().ParallelForRange(static_cast<size_t>(set.size()), ctx,
                                        body);
  } else {
    body(0, static_cast<size_t>(set.size()));
  }
}

StatusOr<EvalResult> SliceEvaluator::Evaluate(
    const SliceSet& set, const SliceLineConfig& config) const {
  const RunContext* ctx = config.run_context;
  EvalResult out;
  const size_t count = static_cast<size_t>(set.size());
  out.sizes.assign(count, 0.0);
  out.error_sums.assign(count, 0.0);
  out.max_errors.assign(count, 0.0);
  if (count == 0) return out;
  TRACE_SPAN("evaluator/evaluate", set.size());
  if (obs::MetricsEnabled()) {
    static const char* kStrategyCounters[] = {
        "evaluator/index/slices", "evaluator/scan_block/slices",
        "evaluator/bitset/slices"};
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    registry->GetCounter("evaluator/slices_evaluated")->Add(set.size());
    registry
        ->GetCounter(
            kStrategyCounters[static_cast<int>(config.eval_strategy)])
        ->Add(set.size());
    if (config.eval_strategy == SliceLineConfig::EvalStrategy::kBitset) {
      // Which ISA level the packed kernels dispatched at, attributable in
      // registry snapshots and RunReport JSON.
      registry
          ->GetCounter(std::string("evaluator/simd_isa/") +
                       linalg::SelectedIsaName())
          ->Add(set.size());
    }
  }
  switch (config.eval_strategy) {
    case SliceLineConfig::EvalStrategy::kIndex:
      EvaluateIndex(set, config.parallel, ctx, &out);
      break;
    case SliceLineConfig::EvalStrategy::kScanBlock:
      EvaluateScanBlock(set, config.eval_block_size, config.parallel, ctx,
                        &out);
      break;
    case SliceLineConfig::EvalStrategy::kBitset:
      EvaluateBitset(set, config.parallel, ctx, &out);
      break;
  }
  // A stop observed mid-evaluation leaves `out` incomplete; report the
  // governance status so the engine discards it and packages best-so-far
  // results from fully evaluated levels only.
  if (ctx != nullptr && ctx->ShouldStop()) {
    return StopReasonToStatus(ctx->CheckStop());
  }
  return out;
}

}  // namespace sliceline::core
