#ifndef SLICELINE_CORE_SLICELINE_LA_H_
#define SLICELINE_CORE_SLICELINE_LA_H_

#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "data/encoded_dataset.h"
#include "data/int_matrix.h"

namespace sliceline::core {

/// Linear-algebra transliteration of Algorithm 1: every enumeration step is
/// expressed with the CsrMatrix kernels of linalg/ exactly as the paper's
/// DML script expresses them with SystemDS operations -- one-hot encoding via
/// table(), basic slices via colSums / e^T X, the pair self-join via
/// upper.tri((S S^T) == L-2), pair merging via selection-matrix products
/// P = ((P1 S) + (P2 S)) != 0, and blocked slice evaluation via
/// I = ((X S^T) == L) with colSums / e^T I / colMaxs(I * e) aggregations.
///
/// Two documented deviations from the literal script:
///  * at level 2 the overlap target is 0, which in a sparse self-join output
///    is an implicit zero, so level-2 pairs are formed directly from all
///    feature-compatible basic-slice pairs (SystemDS relies on a dense
///    (M == 0) comparison there);
///  * slice-ID deduplication uses hashed column-set identity instead of the
///    ND-array index plus frame recoding, which is the same mapping without
///    the overflow workaround.
///
/// Results are identical to RunSliceLine (tests assert this); the engines
/// differ only in execution strategy, which is what the paper's
/// "ML systems comparison" (R vs SystemDS) measures.
StatusOr<SliceLineResult> RunSliceLineLA(const data::IntMatrix& x0,
                                         const std::vector<double>& errors,
                                         const SliceLineConfig& config);

/// Convenience overload using a prepared dataset's features and errors.
StatusOr<SliceLineResult> RunSliceLineLA(const data::EncodedDataset& dataset,
                                         const SliceLineConfig& config);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_SLICELINE_LA_H_
