#include "core/sliceline_bestfirst.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "common/stopwatch.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/governance.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::core {

namespace {

struct QueueEntry {
  double bound;                  ///< upper bound on any strict descendant
  std::vector<int64_t> columns;  ///< one-hot columns of the slice
  int last_feature;              ///< highest bound feature (-1 for root)
  int64_t size;                  ///< |S| of this slice (n for the root)

  bool operator<(const QueueEntry& other) const {
    return bound < other.bound;  // max-heap on the bound
  }
};

std::vector<std::pair<int, int32_t>> DecodeColumns(
    const data::FeatureOffsets& offsets, const std::vector<int64_t>& cols) {
  std::vector<std::pair<int, int32_t>> preds;
  preds.reserve(cols.size());
  for (int64_t c : cols) {
    preds.emplace_back(offsets.FeatureOfColumn(c), offsets.CodeOfColumn(c));
  }
  return preds;
}

}  // namespace

StatusOr<SliceLineResult> RunSliceLineBestFirst(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const SliceLineConfig& config) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument("error vector size mismatch");
  }
  if (!(config.alpha > 0.0 && config.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  for (double e : errors) {
    if (!(e >= 0.0) || std::isnan(e)) {
      return Status::InvalidArgument("errors must be non-negative and finite");
    }
  }
  Stopwatch total_watch;
  TRACE_SPAN("bestfirst/run");

  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  const SliceEvaluator evaluator(x0, offsets, errors);
  const int64_t n = x0.rows();
  const int64_t sigma = ResolveMinSupport(config, n);
  const int m = offsets.num_features();
  const int max_level =
      config.max_level > 0 ? std::min(config.max_level, m) : m;

  SliceLineResult result;
  result.min_support = sigma;
  result.average_error =
      evaluator.total_error() / static_cast<double>(n);
  if (evaluator.total_error() <= 0.0) {
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }
  const ScoringContext context(n, evaluator.total_error(), config.alpha);
  TopK topk(config.k, sigma);

  // Per-depth evaluation counters, reported through LevelStats.
  std::vector<int64_t> evaluated_at_level(static_cast<size_t>(max_level) + 1,
                                          0);

  GovernanceController gov(config, sigma, max_level);
  std::optional<ScopedMemoryBudget> scoped_budget;
  if (config.run_context != nullptr &&
      config.run_context->memory_budget() != nullptr) {
    scoped_budget.emplace(config.run_context->memory_budget());
  }
  StopReason stop = StopReason::kNone;
  int stopped_level = 0;

  std::priority_queue<QueueEntry> queue;
  queue.push(QueueEntry{std::numeric_limits<double>::infinity(), {}, -1, n});

  while (!queue.empty()) {
    QueueEntry entry = queue.top();
    queue.pop();
    // Admissible-bound early exit: nothing left can beat the K-th score
    // (or reach a positive score at all).
    if (entry.bound <= std::max(topk.Threshold(), 0.0)) break;
    const int level = static_cast<int>(entry.columns.size()) + 1;
    stop = gov.CheckBoundary();
    if (stop != StopReason::kNone) {
      stopped_level = level;
      break;
    }
    gov.MaybeDegrade(level);
    if (level > gov.effective_max_level()) continue;

    // Expand: one extra predicate on each feature after the last bound one.
    SliceSet children;
    std::vector<std::vector<int64_t>> child_columns;
    for (int f = entry.last_feature + 1; f < m; ++f) {
      for (int32_t code = 1; code <= offsets.fdom[f]; ++code) {
        std::vector<int64_t> cols = entry.columns;
        cols.push_back(offsets.ColumnOf(f, code));
        children.Add(cols);
        child_columns.push_back(std::move(cols));
      }
    }
    if (children.size() == 0) continue;
    StatusOr<EvalResult> eval = evaluator.Evaluate(children, config);
    if (!eval.ok()) {
      // A governance stop mid-evaluation is a graceful exit with the
      // best-so-far top-K; any other error propagates.
      if (IsGovernanceStatus(eval.status())) {
        stop = StopReasonFromStatus(eval.status());
        stopped_level = level;
        break;
      }
      return eval.status();
    }
    EvalResult stats = std::move(eval).value();
    evaluated_at_level[level] += children.size();

    for (int64_t i = 0; i < children.size(); ++i) {
      const int64_t size = static_cast<int64_t>(stats.sizes[i]);
      const double se = stats.error_sums[i];
      if (size < sigma) continue;  // size monotone: no valid descendants
      const double score = context.Score(size, se);
      if (score > 0.0) {
        Slice slice;
        slice.predicates = DecodeColumns(offsets, child_columns[i]);
        slice.stats = {score, se, stats.max_errors[i], size};
        topk.Offer(std::move(slice));
      }
      if (se <= 0.0 || level >= gov.effective_max_level()) continue;
      // Degradation raises the sigma used for *expansion* only; admission
      // above kept the run's base sigma.
      if (size < gov.effective_sigma()) continue;
      // Bound on descendants from the child's own (exact) statistics.
      ParentBounds bounds;
      bounds.AddParent(size, se, stats.max_errors[i]);
      const double bound =
          UpperBoundScore(context, gov.effective_sigma(), bounds);
      if (bound > std::max(topk.Threshold(), 0.0)) {
        const int last_feature =
            offsets.FeatureOfColumn(child_columns[i].back());
        queue.push(QueueEntry{bound, std::move(child_columns[i]),
                              last_feature, size});
      }
    }
  }

  for (int level = 1; level <= max_level; ++level) {
    if (evaluated_at_level[level] == 0 && level > 1) continue;
    LevelStats stats;
    stats.level = level;
    stats.candidates = evaluated_at_level[level];
    obs::RecordLevelMetrics("bestfirst", stats.level, stats.candidates,
                            stats.valid, stats.pruned, stats.seconds);
    result.levels.push_back(stats);
    result.total_evaluated += evaluated_at_level[level];
  }
  result.outcome = gov.Finish(stop, stopped_level, false);
  result.top_k = topk.Slices();
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

StatusOr<SliceLineResult> RunSliceLineBestFirst(
    const data::EncodedDataset& dataset, const SliceLineConfig& config) {
  if (dataset.errors.empty()) {
    return Status::InvalidArgument(
        "dataset has no materialized error vector; train a model via "
        "ml::TrainAndMaterializeErrors or use a generator");
  }
  return RunSliceLineBestFirst(dataset.x0, dataset.errors, config);
}

}  // namespace sliceline::core
