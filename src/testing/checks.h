#ifndef SLICELINE_TESTING_CHECKS_H_
#define SLICELINE_TESTING_CHECKS_H_

#include <cstdint>
#include <string>

#include "testing/random_dataset.h"

namespace sliceline::testing {

/// Deliberate defects the harness can inject into the system under test.
/// Used to validate the harness itself: an injected bug must be caught,
/// shrunk, and written to a replay file within a bounded number of cases.
enum class InjectedBug {
  kNone = 0,
  /// The native engine's scores are recomputed with an off-by-one average
  /// error (e-bar over n-1 rows) before comparison against the oracle.
  kScoring,
  /// ColSums drops the first stored entry of every non-empty row before
  /// comparison against the dense reference.
  kKernel,
};

/// Score comparisons tolerate this absolute difference (engines sum errors
/// in different orders).
inline constexpr double kScoreTolerance = 1e-9;

/// Oracle differential: RunSliceLine, RunSliceLineLA, and
/// RunSliceLineBestFirst against the exhaustive enumerator on the case's
/// dataset and config. Asserts identical top-K sizes, rank-wise score
/// equality within tolerance, and -- for every slice scoring strictly above
/// the K-th score (i.e. not in a boundary tie group) -- identical predicate
/// sets across engines. Returns "" on agreement, else a description of the
/// first divergence.
std::string CheckOracleDifferential(const FuzzCase& fuzz_case,
                                    InjectedBug inject = InjectedBug::kNone);

/// Kernel differential: draws random CSR matrices from `seed` and checks
/// every sparse kernel in linalg/kernels.h against its dense reference
/// (testing/reference_kernels.h), including CSR structural invariants of
/// matrix-valued outputs. Runs `rounds` independent matrix draws.
std::string CheckKernelDifferential(uint64_t seed, int rounds,
                                    InjectedBug inject = InjectedBug::kNone);

/// Metamorphic invariants on the case's dataset:
///  * reported stats match a brute-force row scan and Equation 1 rescoring;
///  * row-permutation invariance of the top-K;
///  * 2x row duplication with doubled sigma preserves all scores;
///  * the best score is non-decreasing in alpha.
std::string CheckMetamorphic(const FuzzCase& fuzz_case);

/// Determinism: identical results across repeated runs, thread-pool sizes
/// {1, 2, 8} (bit-identical for per-slice strategies, tolerance for the
/// scan-block merge), distributed shard counts {1, 3, 7} versus the local
/// engine, and fault-injected distributed runs versus fault-free ones
/// (bit-identical short of local fallback, with reproducible fault stats).
std::string CheckDeterminism(const FuzzCase& fuzz_case);

/// SIMD differential: every bit-packed evaluation kernel
/// (linalg/kernels_simd.h) at every ISA level available on this host against
/// the always-compiled scalar reference — seeded random bitmaps (word-tail
/// row counts, all-zero and full columns) through each kernel, then the
/// case's dataset end to end: RunSliceLine on the kBitset strategy under
/// each forced ISA must return a top-K bit-identical to the scalar-forced
/// run (scores, error sums, max errors, predicates).
std::string CheckSimdDifferential(const FuzzCase& fuzz_case);

/// Stream equivalence: the case's dataset split into a base plus a seeded
/// append sequence, run through the incremental StreamingSliceFinder with
/// finds interleaved between appends, must be bit-identical (top-K
/// predicates, scores, error sums, max errors, and level accounting) to a
/// one-shot run on the concatenated data — at every prefix, for every
/// available ISA, with compaction on and off, and through the full-rerun
/// fallback. A repeat find without an append must answer fully from cache.
std::string CheckStreamEquivalence(const FuzzCase& fuzz_case);

/// Governance robustness on the case's dataset: every engine is run
/// pre-cancelled, under a randomized simulated-time deadline, and under a
/// randomized memory budget. Each run must return gracefully (no error
/// status, no crash) with a structurally well-formed RunOutcome and a
/// sorted, finite top-K; an unconstrained governed run must match the
/// ungoverned top-K exactly.
std::string CheckGovernance(const FuzzCase& fuzz_case);

}  // namespace sliceline::testing

#endif  // SLICELINE_TESTING_CHECKS_H_
