#ifndef SLICELINE_DIST_WORKER_H_
#define SLICELINE_DIST_WORKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "data/int_matrix.h"
#include "data/onehot.h"
#include "serve/worker_protocol.h"

namespace sliceline::dist {

/// Worker process configuration. Exactly one of `unix_socket` / `tcp_port`
/// selects the transport (an empty socket path means TCP; tcp_port 0 asks
/// the kernel for a port -- see Worker::tcp_port() after Start()).
struct WorkerOptions {
  std::string unix_socket;
  int tcp_port = 0;
  /// Test-only chaos: abruptly close the connection instead of serving
  /// every `drop_every`-th request (1-based count across the process
  /// lifetime; 0 disables). Exercises the coordinator's transient-failure
  /// retry path with real mid-protocol disconnects.
  int64_t drop_every = 0;
};

/// One slice-evaluation worker: owns a row shard of the one-hot matrix and
/// its aligned error vector, shipped by the coordinator over the worker
/// protocol (serve/worker_protocol.h), and evaluates candidate blocks on it
/// with the local SliceEvaluator. Serves one coordinator connection at a
/// time; when the connection drops the worker returns to accepting, so a
/// coordinator can reconnect and re-enlist mid-run. Shards survive
/// reconnects (keyed by dataset fingerprint), which is what the has_shard
/// probe exploits; they do not survive process restarts, which the session
/// string exposes.
class Worker {
 public:
  explicit Worker(const WorkerOptions& options);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Binds the listen socket and starts the serving thread.
  Status Start();

  /// Kernel-assigned TCP port (valid after Start() on the TCP transport).
  int tcp_port() const { return tcp_port_; }

  /// Session identifier reported on enlist; unique per Worker instance so
  /// a restarted worker (new instance, same endpoint) is detectable.
  const std::string& session() const { return session_; }

  /// Asks the serving thread to exit after the in-flight request (also
  /// triggered remotely by a shutdown request).
  void RequestShutdown() { shutdown_.store(true); }

  /// Joins the serving thread. Safe to call more than once.
  void Wait();

  /// Requests fully served over the process lifetime (tests).
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  /// A fully loaded shard: stable-address storage for the matrix, errors,
  /// and offsets, because SliceEvaluator keeps pointers to all three.
  struct ShardState {
    data::IntMatrix x0;
    std::vector<double> errors;
    data::FeatureOffsets offsets;
    int64_t row_begin = 0;
    int64_t row_end = 0;
    std::unique_ptr<core::SliceEvaluator> evaluator;
  };

  /// In-flight chunked transfer of one shard.
  struct ShardStaging {
    int64_t row_begin = 0;
    int64_t row_end = 0;
    int64_t cols = 0;
    int64_t chunks = 1;
    int64_t next_chunk = 0;
    std::vector<int32_t> codes;
    std::vector<double> errors;
    std::vector<int32_t> fdom;
  };

  using ShardKey = std::pair<std::string, int64_t>;  ///< (dataset hash, shard)

  void Serve();
  /// Serves one coordinator connection until EOF/shutdown/drop.
  void ServeConnection(SocketConnection conn);
  /// Handles one request; returns the LF-terminated response line.
  std::string Handle(const serve::WorkerRequest& request);

  StatusOr<std::string> HandleEnlist(const serve::WorkerRequest& request);
  StatusOr<std::string> HandleLoadShard(const serve::WorkerRequest& request);
  StatusOr<std::string> HandleBasicStats(const serve::WorkerRequest& request);
  StatusOr<std::string> HandleEvalBlock(const serve::WorkerRequest& request);
  StatusOr<std::string> HandleGetSpans(const serve::WorkerRequest& request);

  WorkerOptions options_;
  std::string session_;
  ListenSocket listener_;
  int tcp_port_ = -1;
  std::thread thread_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> requests_served_{0};
  int64_t requests_seen_ = 0;  ///< serving thread only (drop_every counter)

  // Serving-thread state: one connection at a time, so no locking.
  std::map<ShardKey, std::unique_ptr<ShardState>> shards_;
  std::map<ShardKey, ShardStaging> staging_;
};

}  // namespace sliceline::dist

#endif  // SLICELINE_DIST_WORKER_H_
