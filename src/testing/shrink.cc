#include "testing/shrink.h"

#include <utility>
#include <vector>

namespace sliceline::testing {
namespace {

/// Builds the candidate keeping only rows with keep[i] != 0.
FuzzCase KeepRows(const FuzzCase& base, const std::vector<char>& keep) {
  int64_t kept = 0;
  for (char k : keep) kept += k != 0;
  FuzzCase out;
  out.config = base.config;
  out.profile = base.profile;
  out.seed = base.seed;
  out.x0 = data::IntMatrix(kept, base.x0.cols());
  out.errors.reserve(static_cast<size_t>(kept));
  int64_t w = 0;
  for (int64_t i = 0; i < base.x0.rows(); ++i) {
    if (!keep[static_cast<size_t>(i)]) continue;
    for (int64_t j = 0; j < base.x0.cols(); ++j) {
      out.x0.At(w, j) = base.x0.At(i, j);
    }
    out.errors.push_back(base.errors[static_cast<size_t>(i)]);
    ++w;
  }
  return out;
}

/// Builds the candidate dropping feature column `drop`.
FuzzCase DropColumn(const FuzzCase& base, int64_t drop) {
  FuzzCase out;
  out.config = base.config;
  out.profile = base.profile;
  out.seed = base.seed;
  out.errors = base.errors;
  out.x0 = data::IntMatrix(base.x0.rows(), base.x0.cols() - 1);
  for (int64_t i = 0; i < base.x0.rows(); ++i) {
    int64_t w = 0;
    for (int64_t j = 0; j < base.x0.cols(); ++j) {
      if (j == drop) continue;
      out.x0.At(i, w++) = base.x0.At(i, j);
    }
  }
  return out;
}

}  // namespace

ShrinkResult Shrink(const FuzzCase& original, const std::string& failure,
                    const ShrinkCheckFn& check) {
  ShrinkResult result;
  result.fuzz_case = original;
  result.failure = failure;

  auto try_candidate = [&](FuzzCase candidate) {
    ++result.attempts;
    std::string diff = check(candidate);
    if (diff.empty()) return false;
    result.fuzz_case = std::move(candidate);
    result.failure = std::move(diff);
    ++result.steps;
    return true;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    const int64_t n = result.fuzz_case.x0.rows();
    const int64_t m = result.fuzz_case.x0.cols();

    // Row halving: first half, second half, then the even/odd interleaves
    // (which preserve duplicated-row structure the contiguous halves break).
    if (n > 1) {
      const int64_t half = n / 2;
      std::vector<std::vector<char>> masks;
      masks.emplace_back(n, 0);
      for (int64_t i = 0; i < half; ++i) masks.back()[i] = 1;
      masks.emplace_back(n, 0);
      for (int64_t i = half; i < n; ++i) masks.back()[i] = 1;
      masks.emplace_back(n, 0);
      for (int64_t i = 0; i < n; i += 2) masks.back()[i] = 1;
      for (const auto& mask : masks) {
        if (try_candidate(KeepRows(result.fuzz_case, mask))) {
          progressed = true;
          break;
        }
      }
      if (progressed) continue;
    }

    // Column dropping, one at a time (slices over a dropped feature vanish,
    // so acceptance means the defect did not need that feature).
    if (m > 1) {
      for (int64_t j = 0; j < m; ++j) {
        if (try_candidate(DropColumn(result.fuzz_case, j))) {
          progressed = true;
          break;
        }
      }
      if (progressed) continue;
    }

    // Error simplification: zero the second half of the error vector.
    {
      const auto& errors = result.fuzz_case.errors;
      const size_t half = errors.size() / 2;
      bool has_tail = false;
      for (size_t i = half; i < errors.size(); ++i) {
        has_tail |= errors[i] != 0.0;
      }
      if (has_tail) {
        FuzzCase candidate = result.fuzz_case;
        for (size_t i = half; i < candidate.errors.size(); ++i) {
          candidate.errors[i] = 0.0;
        }
        if (try_candidate(std::move(candidate))) {
          progressed = true;
          continue;
        }
      }
    }
  }
  return result;
}

}  // namespace sliceline::testing
