#ifndef SLICELINE_CORE_REPORT_H_
#define SLICELINE_CORE_REPORT_H_

#include <string>

#include "core/slice.h"
#include "data/encoded_dataset.h"

namespace sliceline::core {

/// Renders the top-K table (rank, predicates, score, size, errors) plus the
/// per-level enumeration statistics, using the dataset's feature names when
/// available. This is the human-facing output of the examples.
std::string FormatResult(const SliceLineResult& result,
                         const std::vector<std::string>& feature_names = {});

/// One-line summary: "top-1 score=... size=... | levels=... evaluated=...".
std::string SummarizeResult(const SliceLineResult& result);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_REPORT_H_
