// Reproduces Figure 6(b) (hybrid slice evaluation): end-to-end runtime as a
// function of the evaluation block size b. Two sweeps:
//  (1) the generic-kernel (LA) engine, which -- like the paper's ML-system
//      execution -- materializes the (X S_b^T) intermediate of ~nrow(X) x b
//      per block, so the curve is U-shaped: small b pays one X scan per
//      block, large b pays allocation/sorting of oversized intermediates;
//  (2) the native streaming scan-block evaluator, which shares scans
//      without materializing intermediates, isolating the pure
//      scan-sharing gain.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 6(b): Hybrid Slice Evaluation Block Size",
                "SliceLine Figure 6(b)");
  const std::vector<int> blocks = {1, 2, 4, 8, 16, 32, 64, 256, 1024};

  std::printf("(1) LA engine, materialized (X S_b^T) intermediates\n");
  for (const char* name : {"adult", "uscensus"}) {
    // The LA pair join is quadratic in valid slices; keep inputs small and
    // cap uscensus (correlated, wide level 2) at ceil(L) = 2.
    const bool wide = std::string(name) == "uscensus";
    data::EncodedDataset ds = bench::Load(name, wide ? 4000 : 8000);
    std::printf("  %s (n=%s, ceil(L)=%d):\n", name,
                FormatWithCommas(ds.n()).c_str(), wide ? 2 : 3);
    std::printf("    %-8s %12s %12s\n", "b", "time[s]", "evaluated");
    for (int b : blocks) {
      core::SliceLineConfig config;
      config.alpha = 0.95;
      config.k = 4;
      config.max_level = wide ? 2 : 3;
      config.eval_block_size = b;
      auto result = core::RunSliceLineLA(ds, config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("    %-8d %12s %12s\n", b,
                  FormatDouble(result->total_seconds, 3).c_str(),
                  FormatWithCommas(result->total_evaluated).c_str());
    }
  }

  std::printf("\n(2) native engine, streaming scan-shared evaluation\n");
  for (const char* name : {"adult", "uscensus"}) {
    data::EncodedDataset ds =
        bench::Load(name, std::string(name) == "adult" ? 8000 : 4000);
    std::printf("  %s (n=%s):\n", name, FormatWithCommas(ds.n()).c_str());
    std::printf("    %-8s %12s %12s\n", "b", "time[s]", "evaluated");
    for (int b : blocks) {
      core::SliceLineConfig config;
      config.alpha = 0.95;
      config.k = 4;
      config.max_level = 3;
      config.eval_strategy = core::SliceLineConfig::EvalStrategy::kScanBlock;
      config.eval_block_size = b;
      auto result = core::RunSliceLine(ds, config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("    %-8d %12s %12s\n", b,
                  FormatDouble(result->total_seconds, 3).c_str(),
                  FormatWithCommas(result->total_evaluated).c_str());
    }
    // Reference points: the indexed and bitmap per-slice evaluators.
    core::SliceLineConfig config;
    config.alpha = 0.95;
    config.k = 4;
    config.max_level = 3;
    config.eval_strategy = core::SliceLineConfig::EvalStrategy::kIndex;
    auto result = core::RunSliceLine(ds, config);
    if (result.ok()) {
      std::printf("    %-8s %12s   (indexed per-slice reference)\n", "index",
                  FormatDouble(result->total_seconds, 3).c_str());
    }
    config.eval_strategy = core::SliceLineConfig::EvalStrategy::kBitset;
    result = core::RunSliceLine(ds, config);
    if (result.ok()) {
      std::printf("    %-8s %12s   (bitmap-intersection reference)\n",
                  "bitset", FormatDouble(result->total_seconds, 3).c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper): on the materializing engine runtime\n"
      "improves from b=1 via scan sharing, then degrades once the\n"
      "nrow(X) x b intermediates dominate (paper default b=16); the\n"
      "streaming engine keeps improving and bounds the achievable gain.\n");
  return 0;
}
