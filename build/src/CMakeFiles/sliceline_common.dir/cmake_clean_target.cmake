file(REMOVE_RECURSE
  "libsliceline_common.a"
)
