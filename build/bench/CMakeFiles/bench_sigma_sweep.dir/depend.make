# Empty dependencies file for bench_sigma_sweep.
# This may be replaced when dependencies are built.
