# Empty dependencies file for salary_regression_debugging.
# This may be replaced when dependencies are built.
