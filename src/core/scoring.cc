#include "core/scoring.h"

#include "common/logging.h"

namespace sliceline::core {

ScoringContext::ScoringContext(int64_t n, double total_error, double alpha)
    : n_(n),
      total_error_(total_error),
      average_error_(n > 0 ? total_error / static_cast<double>(n) : 0.0),
      alpha_(alpha) {
  SLICELINE_CHECK_GT(n, 0);
  SLICELINE_CHECK(alpha > 0.0 && alpha <= 1.0)
      << "alpha must be in (0, 1], got " << alpha;
  SLICELINE_CHECK_GE(total_error, 0.0);
}

double ScoringContext::Score(int64_t size, double error_sum) const {
  if (size <= 0) return kMinusInfinity;
  if (average_error_ <= 0.0) return kMinusInfinity;  // perfect model
  const double nd = static_cast<double>(n_);
  const double sd = static_cast<double>(size);
  const double avg_slice_error = error_sum / sd;
  return alpha_ * (avg_slice_error / average_error_ - 1.0) -
         (1.0 - alpha_) * (nd / sd - 1.0);
}

std::vector<double> ScoringContext::ScoreAll(
    const std::vector<double>& sizes,
    const std::vector<double>& error_sums) const {
  SLICELINE_CHECK_EQ(sizes.size(), error_sums.size());
  std::vector<double> out(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    out[i] = Score(static_cast<int64_t>(sizes[i]), error_sums[i]);
  }
  return out;
}

}  // namespace sliceline::core
