file(REMOVE_RECURSE
  "libsliceline_dist.a"
)
