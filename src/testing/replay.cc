#include "testing/replay.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace sliceline::testing {
namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

const char* StrategyName(core::SliceLineConfig::EvalStrategy s) {
  switch (s) {
    case core::SliceLineConfig::EvalStrategy::kIndex: return "index";
    case core::SliceLineConfig::EvalStrategy::kScanBlock: return "scan-block";
    case core::SliceLineConfig::EvalStrategy::kBitset: return "bitset";
  }
  return "index";
}

// ---------------------------------------------------------------------------
// Parser: the minimal JSON subset the writer emits (one object, nested
// "config" object, flat number arrays, escaped strings, bools).
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status Fail(const std::string& what) {
    std::ostringstream os;
    os << what << " at offset " << pos_;
    return Status::InvalidArgument(os.str());
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          if (value > 0x7f) return Fail("non-ASCII \\u escape unsupported");
          out->push_back(static_cast<char>(value));
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    if (!Consume('"')) return Fail("unterminated string");
    return Status::OK();
  }

  Status ParseDouble(double* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    // A separate null-terminated copy keeps strtod off the document tail.
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    return Status::OK();
  }

  Status ParseInt(int64_t* out) {
    double d = 0.0;
    auto status = ParseDouble(&d);
    if (!status.ok()) return status;
    *out = static_cast<int64_t>(d);
    if (static_cast<double>(*out) != d) return Fail("expected integer");
    return Status::OK();
  }

  Status ParseUint64(uint64_t* out) {
    // Seeds use the full 64-bit range, which a double cannot hold; they are
    // written as decimal strings.
    std::string s;
    auto status = ParseString(&s);
    if (!status.ok()) return status;
    if (s.empty()) return Fail("empty seed");
    uint64_t value = 0;
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Fail("non-decimal seed");
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = value;
    return Status::OK();
  }

  Status ParseBool(bool* out) {
    SkipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return Status::OK();
    }
    return Fail("expected bool");
  }

  Status ParseDoubleArray(std::vector<double>* out) {
    out->clear();
    if (!Consume('[')) return Fail("expected array");
    if (Consume(']')) return Status::OK();
    for (;;) {
      double v = 0.0;
      auto status = ParseDouble(&v);
      if (!status.ok()) return status;
      out->push_back(v);
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected , or ] in array");
    }
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Status ParseConfig(JsonParser* p, core::SliceLineConfig* config) {
  if (!p->Consume('{')) return p->Fail("expected config object");
  bool first = true;
  while (!p->Consume('}')) {
    if (!first && !p->Consume(',')) return p->Fail("expected , in config");
    first = false;
    std::string key;
    auto status = p->ParseString(&key);
    if (!status.ok()) return status;
    if (!p->Consume(':')) return p->Fail("expected : in config");
    if (key == "k") {
      int64_t v = 0;
      if (auto s = p->ParseInt(&v); !s.ok()) return s;
      config->k = static_cast<int>(v);
    } else if (key == "alpha") {
      if (auto s = p->ParseDouble(&config->alpha); !s.ok()) return s;
    } else if (key == "min_support") {
      if (auto s = p->ParseInt(&config->min_support); !s.ok()) return s;
    } else if (key == "max_level") {
      int64_t v = 0;
      if (auto s = p->ParseInt(&v); !s.ok()) return s;
      config->max_level = static_cast<int>(v);
    } else if (key == "prune_size") {
      if (auto s = p->ParseBool(&config->prune_size); !s.ok()) return s;
    } else if (key == "prune_score") {
      if (auto s = p->ParseBool(&config->prune_score); !s.ok()) return s;
    } else if (key == "prune_parents") {
      if (auto s = p->ParseBool(&config->prune_parents); !s.ok()) return s;
    } else if (key == "deduplicate") {
      if (auto s = p->ParseBool(&config->deduplicate); !s.ok()) return s;
    } else if (key == "eval_strategy") {
      std::string name;
      if (auto s = p->ParseString(&name); !s.ok()) return s;
      if (name == "index") {
        config->eval_strategy = core::SliceLineConfig::EvalStrategy::kIndex;
      } else if (name == "scan-block") {
        config->eval_strategy = core::SliceLineConfig::EvalStrategy::kScanBlock;
      } else if (name == "bitset") {
        config->eval_strategy = core::SliceLineConfig::EvalStrategy::kBitset;
      } else {
        return Status::InvalidArgument("unknown eval_strategy: " + name);
      }
    } else if (key == "eval_block_size") {
      int64_t v = 0;
      if (auto s = p->ParseInt(&v); !s.ok()) return s;
      config->eval_block_size = static_cast<int>(v);
    } else if (key == "parallel") {
      if (auto s = p->ParseBool(&config->parallel); !s.ok()) return s;
    } else {
      return Status::InvalidArgument("unknown config key: " + key);
    }
  }
  return Status::OK();
}

}  // namespace

std::string ReplayToJson(const ReplayRecord& record) {
  const core::SliceLineConfig& c = record.fuzz_case.config;
  std::string out = "{\n  \"check\": ";
  AppendEscaped(&out, record.check);
  out += ",\n  \"failure\": ";
  AppendEscaped(&out, record.failure);
  out += ",\n  \"case_index\": " + std::to_string(record.case_index);
  out += ",\n  \"kernel_rounds\": " + std::to_string(record.kernel_rounds);
  out += ",\n  \"seed\": \"" + std::to_string(record.fuzz_case.seed) + "\"";
  out += ",\n  \"profile\": ";
  AppendEscaped(&out, record.fuzz_case.profile);
  out += ",\n  \"rows\": " + std::to_string(record.fuzz_case.x0.rows());
  out += ",\n  \"cols\": " + std::to_string(record.fuzz_case.x0.cols());
  out += ",\n  \"x0\": [";
  const data::IntMatrix& x0 = record.fuzz_case.x0;
  for (int64_t i = 0; i < x0.rows() * x0.cols(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(x0.data()[i]);
  }
  out += "],\n  \"errors\": [";
  for (size_t i = 0; i < record.fuzz_case.errors.size(); ++i) {
    if (i > 0) out += ",";
    AppendDouble(&out, record.fuzz_case.errors[i]);
  }
  out += "],\n  \"config\": {\"k\": " + std::to_string(c.k);
  out += ", \"alpha\": ";
  AppendDouble(&out, c.alpha);
  out += ", \"min_support\": " + std::to_string(c.min_support);
  out += ", \"max_level\": " + std::to_string(c.max_level);
  out += std::string(", \"prune_size\": ") + (c.prune_size ? "true" : "false");
  out += std::string(", \"prune_score\": ") + (c.prune_score ? "true" : "false");
  out += std::string(", \"prune_parents\": ") +
         (c.prune_parents ? "true" : "false");
  out += std::string(", \"deduplicate\": ") + (c.deduplicate ? "true" : "false");
  out += std::string(", \"eval_strategy\": \"") + StrategyName(c.eval_strategy) +
         "\"";
  out += ", \"eval_block_size\": " + std::to_string(c.eval_block_size);
  out += std::string(", \"parallel\": ") + (c.parallel ? "true" : "false");
  out += "}\n}\n";
  return out;
}

StatusOr<ReplayRecord> ReplayFromJson(const std::string& json) {
  JsonParser p(json);
  ReplayRecord record;
  int64_t rows = -1;
  int64_t cols = -1;
  std::vector<double> x0_flat;
  if (!p.Consume('{')) return p.Fail("expected top-level object");
  bool first = true;
  while (!p.Consume('}')) {
    if (!first && !p.Consume(',')) return p.Fail("expected , in object");
    first = false;
    std::string key;
    if (auto s = p.ParseString(&key); !s.ok()) return s;
    if (!p.Consume(':')) return p.Fail("expected :");
    if (key == "check") {
      if (auto s = p.ParseString(&record.check); !s.ok()) return s;
    } else if (key == "failure") {
      if (auto s = p.ParseString(&record.failure); !s.ok()) return s;
    } else if (key == "case_index") {
      int64_t v = 0;
      if (auto s = p.ParseInt(&v); !s.ok()) return s;
      record.case_index = static_cast<uint64_t>(v);
    } else if (key == "kernel_rounds") {
      int64_t v = 0;
      if (auto s = p.ParseInt(&v); !s.ok()) return s;
      record.kernel_rounds = static_cast<int>(v);
    } else if (key == "seed") {
      if (auto s = p.ParseUint64(&record.fuzz_case.seed); !s.ok()) return s;
    } else if (key == "profile") {
      if (auto s = p.ParseString(&record.fuzz_case.profile); !s.ok()) return s;
    } else if (key == "rows") {
      if (auto s = p.ParseInt(&rows); !s.ok()) return s;
    } else if (key == "cols") {
      if (auto s = p.ParseInt(&cols); !s.ok()) return s;
    } else if (key == "x0") {
      if (auto s = p.ParseDoubleArray(&x0_flat); !s.ok()) return s;
    } else if (key == "errors") {
      if (auto s = p.ParseDoubleArray(&record.fuzz_case.errors); !s.ok()) {
        return s;
      }
    } else if (key == "config") {
      if (auto s = ParseConfig(&p, &record.fuzz_case.config); !s.ok()) return s;
    } else {
      return Status::InvalidArgument("unknown replay key: " + key);
    }
  }
  if (!p.AtEnd()) return p.Fail("trailing garbage");
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("replay missing rows/cols");
  }
  if (static_cast<int64_t>(x0_flat.size()) != rows * cols) {
    return Status::InvalidArgument("x0 length != rows * cols");
  }
  if (record.check != "kernel" &&
      static_cast<int64_t>(record.fuzz_case.errors.size()) != rows) {
    return Status::InvalidArgument("errors length != rows");
  }
  data::IntMatrix x0(rows, cols);
  for (int64_t i = 0; i < rows * cols; ++i) {
    const auto code = static_cast<int32_t>(x0_flat[i]);
    if (static_cast<double>(code) != x0_flat[i]) {
      return Status::InvalidArgument("non-integer x0 entry");
    }
    x0.At(i / cols, i % cols) = code;
  }
  record.fuzz_case.x0 = std::move(x0);
  return record;
}

Status WriteReplayFile(const std::string& path, const ReplayRecord& record) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ReplayToJson(record);
  out.flush();
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

StatusOr<ReplayRecord> ReadReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReplayFromJson(buffer.str());
}

}  // namespace sliceline::testing
