#ifndef SLICELINE_SERVE_DATASET_REGISTRY_H_
#define SLICELINE_SERVE_DATASET_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoded_dataset.h"
#include "serve/protocol.h"

namespace sliceline::serve {

/// One dataset loaded, preprocessed, and error-materialized exactly once,
/// then shared immutably across every request that names it. The data hash
/// fingerprints the encoded feature matrix plus the materialized error
/// vector (shared FNV-1a from common/hashing.h), and is one half of the
/// result-cache key.
struct RegisteredDataset {
  std::string name;
  std::string csv_path;
  data::EncodedDataset dataset;  ///< errors materialized; never mutated
  uint64_t data_hash = 0;
  double mean_error = 0.0;  ///< training-error mean from the ml pipeline
  double load_seconds = 0.0;
};

/// Fingerprint of an encoded dataset's slice-finding-relevant content:
/// dimensions, per-column domains, every feature code, and every
/// materialized error. Two registrations with equal hashes produce
/// identical find_slices results for any config.
uint64_t HashEncodedDataset(const data::EncodedDataset& dataset);

/// Thread-safe name -> RegisteredDataset map. Loading happens outside the
/// registry lock (CSV parse + model training dominate); concurrent
/// registrations of the same name race benignly -- the first insert wins and
/// the loser is accepted iff its content hash matches (idempotent retry) and
/// rejected otherwise.
class DatasetRegistry {
 public:
  struct RegisterOutcome {
    std::shared_ptr<const RegisteredDataset> dataset;
    bool already_registered = false;  ///< idempotent re-registration
  };

  /// Loads `request.csv_path`, preprocesses (recode/bin/drop), trains the
  /// task's model to materialize errors, and publishes the result.
  StatusOr<RegisterOutcome> Register(const RegisterDatasetRequest& request);

  /// nullptr when unknown.
  std::shared_ptr<const RegisteredDataset> Find(const std::string& name) const;

  /// Registration-name-sorted snapshot.
  std::vector<std::shared_ptr<const RegisteredDataset>> List() const;

  int64_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const RegisteredDataset>> datasets_;
};

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_DATASET_REGISTRY_H_
