#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace sliceline::data {

namespace {

/// Three-way field classification: a clean number, a number whose magnitude
/// overflows double (e.g. "1e999" -- would silently become +inf or fall back
/// to categorical), or a non-numeric token.
enum class FieldKind { kNumeric, kOverflow, kText };

FieldKind ClassifyField(const std::string& field) {
  auto parsed = ParseDouble(field);
  if (parsed.ok()) return FieldKind::kNumeric;
  return parsed.status().code() == StatusCode::kOutOfRange
             ? FieldKind::kOverflow
             : FieldKind::kText;
}

}  // namespace

StatusOr<Frame> ParseCsv(const std::string& content,
                         const CsvOptions& options) {
  std::vector<std::vector<std::string>> cells;
  // Physical (1-based) line number of each kept row, for error context.
  std::vector<size_t> line_numbers;
  std::istringstream in(content);
  std::string line;
  size_t width = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, options.delimiter);
    for (auto& f : fields) f = std::string(Trim(f));
    if (width == 0) {
      width = fields.size();
    } else if (fields.size() != width) {
      return Status::InvalidArgument(
          "ragged CSV: line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(width) + " (as in line " +
          std::to_string(line_numbers.empty() ? 1 : line_numbers.front()) +
          ")");
    }
    cells.push_back(std::move(fields));
    line_numbers.push_back(line_no);
  }
  if (cells.empty()) {
    return Status::InvalidArgument("empty CSV input: no non-blank lines");
  }

  std::vector<std::string> names;
  size_t first_row = 0;
  if (options.has_header) {
    names = cells[0];
    first_row = 1;
    if (cells.size() == 1) {
      return Status::InvalidArgument(
          "CSV has a header but no data rows");
    }
  } else {
    for (size_t j = 0; j < width; ++j) names.push_back("C" + std::to_string(j));
  }
  const size_t n = cells.size() - first_row;

  Frame frame;
  for (size_t j = 0; j < width; ++j) {
    // Infer the column type from every non-missing field. A column with any
    // true text falls back to categorical; an otherwise-numeric column with
    // an overflowing field (e.g. "1e999") is an error with row/column
    // context rather than a silent +/-inf or categorical fallback.
    bool has_text = false;
    size_t overflow_row = 0;
    const std::string* overflow_field = nullptr;
    for (size_t i = first_row; i < cells.size() && !has_text; ++i) {
      const std::string& f = cells[i][j];
      if (f.empty() || f == options.missing_marker) continue;
      switch (ClassifyField(f)) {
        case FieldKind::kNumeric:
          break;
        case FieldKind::kOverflow:
          if (overflow_field == nullptr) {
            overflow_row = i;
            overflow_field = &f;
          }
          break;
        case FieldKind::kText:
          has_text = true;
          break;
      }
    }
    if (!has_text && overflow_field != nullptr) {
      return Status::OutOfRange(
          "numeric overflow in column '" + names[j] + "' at line " +
          std::to_string(line_numbers[overflow_row]) + ": '" +
          *overflow_field + "'");
    }
    const bool numeric = !has_text && overflow_field == nullptr;
    Status st;
    if (numeric) {
      std::vector<double> vals;
      vals.reserve(n);
      for (size_t i = first_row; i < cells.size(); ++i) {
        const std::string& f = cells[i][j];
        if (f.empty() || f == options.missing_marker) {
          vals.push_back(std::numeric_limits<double>::quiet_NaN());
        } else {
          auto parsed = ParseDouble(f);
          if (!parsed.ok()) {
            return Status::InvalidArgument(
                "unparseable numeric in column '" + names[j] + "' at line " +
                std::to_string(line_numbers[i]) + ": '" + f + "' (" +
                parsed.status().message() + ")");
          }
          vals.push_back(*parsed);
        }
      }
      st = frame.AddColumn(Column(names[j], std::move(vals)));
    } else {
      std::vector<std::string> vals;
      vals.reserve(n);
      for (size_t i = first_row; i < cells.size(); ++i) {
        const std::string& f = cells[i][j];
        vals.push_back(f.empty() ? options.missing_marker : f);
      }
      st = frame.AddColumn(Column(names[j], std::move(vals)));
    }
    if (!st.ok()) return st;
  }
  return frame;
}

StatusOr<Frame> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read error on '" + path + "'");
  return ParseCsv(buf.str(), options);
}

Status WriteCsv(const Frame& frame, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write '" + path + "'");
  for (int64_t j = 0; j < frame.num_columns(); ++j) {
    if (j > 0) out << delimiter;
    out << frame.column(j).name();
  }
  out << "\n";
  for (int64_t i = 0; i < frame.num_rows(); ++i) {
    for (int64_t j = 0; j < frame.num_columns(); ++j) {
      if (j > 0) out << delimiter;
      out << frame.column(j).ValueToString(i);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("error while writing '" + path + "'");
  return Status::OK();
}

}  // namespace sliceline::data
