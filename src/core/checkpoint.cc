#include "core/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "linalg/matrix_io.h"

namespace sliceline::core {

namespace {

constexpr char kHeader[] = "sliceline-checkpoint v1";
constexpr char kFileName[] = "sliceline.ckpt";

/// %.17g: shortest text that round-trips an IEEE double exactly, which is
/// what makes a resumed run's top-K bit-identical to an uninterrupted one.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Reads one line and binds the remainder after `key ` to an istringstream.
Status ReadKeyLine(std::istringstream& in, const char* key,
                   std::istringstream* fields) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(std::string("checkpoint truncated before '") +
                           key + "'");
  }
  const std::string prefix = std::string(key) + " ";
  if (line.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument(std::string("checkpoint expected '") +
                                   key + "', got '" + line + "'");
  }
  fields->clear();
  fields->str(line.substr(prefix.size()));
  return Status::OK();
}

template <typename T>
Status ReadScalar(std::istringstream& in, const char* key, T* out) {
  std::istringstream fields;
  SLICELINE_RETURN_NOT_OK(ReadKeyLine(in, key, &fields));
  if (!(fields >> *out)) {
    return Status::InvalidArgument(std::string("checkpoint bad value for '") +
                                   key + "'");
  }
  return Status::OK();
}

}  // namespace

uint64_t HashConfigForCheckpoint(const SliceLineConfig& config, int64_t sigma,
                                 const std::string& engine) {
  Fnv1a h;
  h.AddString(engine);
  h.Add64(static_cast<uint64_t>(config.k));
  h.AddDouble(config.alpha);
  h.Add64(static_cast<uint64_t>(sigma));
  h.Add64(static_cast<uint64_t>(config.max_level));
  h.Add64((config.prune_size ? 1u : 0u) | (config.prune_score ? 2u : 0u) |
          (config.prune_parents ? 4u : 0u) | (config.deduplicate ? 8u : 0u));
  h.Add64(static_cast<uint64_t>(config.eval_strategy));
  return h.hash();
}

std::string CheckpointFilePath(const std::string& dir) {
  if (dir.empty()) return kFileName;
  return dir.back() == '/' ? dir + kFileName : dir + "/" + kFileName;
}

bool CheckpointFileExists(const std::string& dir) {
  std::ifstream in(CheckpointFilePath(dir));
  return in.good();
}

Status SaveCheckpoint(const std::string& dir, const CheckpointState& state) {
  if (static_cast<int64_t>(state.frontier_ss.size()) !=
          state.frontier.rows() ||
      state.frontier_se.size() != state.frontier_ss.size() ||
      state.frontier_sm.size() != state.frontier_ss.size()) {
    return Status::InvalidArgument(
        "checkpoint frontier stats not aligned with the frontier matrix");
  }
  std::ostringstream os;
  os << kHeader << "\n";
  os << "engine " << state.engine << "\n";
  os << "config_hash " << state.config_hash << "\n";
  os << "data_hash " << state.data_hash << "\n";
  os << "aux_hash " << state.aux_hash << "\n";
  os << "level " << state.level << "\n";
  os << "effective_sigma " << state.effective_sigma << "\n";
  os << "degradation_steps " << state.degradation_steps << "\n";
  os << "candidates_capped " << state.candidates_capped << "\n";
  os << "total_evaluated " << state.total_evaluated << "\n";
  os << "rng_state " << state.rng_state[0] << " " << state.rng_state[1] << " "
     << state.rng_state[2] << " " << state.rng_state[3] << "\n";
  os << "levels " << state.levels.size() << "\n";
  for (const LevelStats& s : state.levels) {
    os << s.level << " " << s.candidates << " " << s.valid << " " << s.pruned
       << " " << FormatDouble(s.seconds) << "\n";
  }
  os << "topk " << state.topk.size() << "\n";
  for (const Slice& slice : state.topk) {
    os << slice.predicates.size() << " " << FormatDouble(slice.stats.score)
       << " " << FormatDouble(slice.stats.error_sum) << " "
       << FormatDouble(slice.stats.max_error) << " " << slice.stats.size
       << "\n";
    for (size_t i = 0; i < slice.predicates.size(); ++i) {
      os << (i > 0 ? " " : "") << slice.predicates[i].first << " "
         << slice.predicates[i].second;
    }
    os << "\n";
  }
  os << "frontier_stats " << state.frontier_ss.size() << "\n";
  for (size_t i = 0; i < state.frontier_ss.size(); ++i) {
    os << FormatDouble(state.frontier_ss[i]) << " "
       << FormatDouble(state.frontier_se[i]) << " "
       << FormatDouble(state.frontier_sm[i]) << "\n";
  }
  const std::string mm = linalg::ToMatrixMarketString(state.frontier);
  os << "frontier " << mm.size() << "\n" << mm;

  const std::string payload = os.str();
  Fnv1a checksum;
  checksum.AddString(payload);

  const std::string path = CheckpointFilePath(dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write '" + tmp + "'");
    out << payload << "checksum " << checksum.hash() << "\n";
    if (!out.flush()) {
      return Status::IoError("error while writing '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

StatusOr<CheckpointState> LoadCheckpoint(const std::string& dir) {
  const std::string path = CheckpointFilePath(dir);
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("no checkpoint at '" + path + "'");
  std::ostringstream buf;
  buf << file.rdbuf();
  const std::string content = buf.str();

  // Split off and verify the trailing checksum line.
  const size_t tail = content.rfind("\nchecksum ");
  if (tail == std::string::npos) {
    return Status::InvalidArgument("checkpoint missing checksum: '" + path +
                                   "'");
  }
  const std::string payload = content.substr(0, tail + 1);
  uint64_t stored = 0;
  if (std::sscanf(content.c_str() + tail + 1, "checksum %" SCNu64, &stored) !=
      1) {
    return Status::InvalidArgument("checkpoint malformed checksum line");
  }
  Fnv1a checksum;
  checksum.AddString(payload);
  if (checksum.hash() != stored) {
    return Status::InvalidArgument("checkpoint checksum mismatch in '" + path +
                                   "' (corrupt or partially written)");
  }

  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("unsupported checkpoint header: '" + line +
                                   "'");
  }

  CheckpointState state;
  std::istringstream fields;
  SLICELINE_RETURN_NOT_OK(ReadKeyLine(in, "engine", &fields));
  fields >> state.engine;
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "config_hash", &state.config_hash));
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "data_hash", &state.data_hash));
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "aux_hash", &state.aux_hash));
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "level", &state.level));
  SLICELINE_RETURN_NOT_OK(
      ReadScalar(in, "effective_sigma", &state.effective_sigma));
  SLICELINE_RETURN_NOT_OK(
      ReadScalar(in, "degradation_steps", &state.degradation_steps));
  SLICELINE_RETURN_NOT_OK(
      ReadScalar(in, "candidates_capped", &state.candidates_capped));
  SLICELINE_RETURN_NOT_OK(
      ReadScalar(in, "total_evaluated", &state.total_evaluated));
  SLICELINE_RETURN_NOT_OK(ReadKeyLine(in, "rng_state", &fields));
  for (uint64_t& w : state.rng_state) {
    if (!(fields >> w)) {
      return Status::InvalidArgument("checkpoint bad rng_state");
    }
  }

  int64_t num_levels = 0;
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "levels", &num_levels));
  if (num_levels < 0 || num_levels > 1000000) {
    return Status::OutOfRange("checkpoint level count out of range");
  }
  state.levels.reserve(static_cast<size_t>(num_levels));
  for (int64_t i = 0; i < num_levels; ++i) {
    LevelStats s;
    if (!std::getline(in, line)) {
      return Status::IoError("checkpoint truncated in levels");
    }
    std::istringstream row(line);
    if (!(row >> s.level >> s.candidates >> s.valid >> s.pruned >>
          s.seconds)) {
      return Status::InvalidArgument("checkpoint bad level line: '" + line +
                                     "'");
    }
    state.levels.push_back(s);
  }

  int64_t num_topk = 0;
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "topk", &num_topk));
  if (num_topk < 0 || num_topk > 1000000) {
    return Status::OutOfRange("checkpoint top-K count out of range");
  }
  state.topk.reserve(static_cast<size_t>(num_topk));
  for (int64_t i = 0; i < num_topk; ++i) {
    if (!std::getline(in, line)) {
      return Status::IoError("checkpoint truncated in top-K");
    }
    std::istringstream head(line);
    int64_t num_preds = 0;
    Slice slice;
    if (!(head >> num_preds >> slice.stats.score >> slice.stats.error_sum >>
          slice.stats.max_error >> slice.stats.size) ||
        num_preds < 0 || num_preds > 1000000) {
      return Status::InvalidArgument("checkpoint bad top-K line: '" + line +
                                     "'");
    }
    if (!std::getline(in, line)) {
      return Status::IoError("checkpoint truncated in top-K predicates");
    }
    std::istringstream preds(line);
    slice.predicates.reserve(static_cast<size_t>(num_preds));
    for (int64_t p = 0; p < num_preds; ++p) {
      int feature = 0;
      int32_t code = 0;
      if (!(preds >> feature >> code)) {
        return Status::InvalidArgument("checkpoint bad predicate line: '" +
                                       line + "'");
      }
      slice.predicates.emplace_back(feature, code);
    }
    state.topk.push_back(std::move(slice));
  }

  int64_t num_stats = 0;
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "frontier_stats", &num_stats));
  if (num_stats < 0 || num_stats > (int64_t{1} << 40)) {
    return Status::OutOfRange("checkpoint frontier size out of range");
  }
  state.frontier_ss.reserve(static_cast<size_t>(num_stats));
  state.frontier_se.reserve(static_cast<size_t>(num_stats));
  state.frontier_sm.reserve(static_cast<size_t>(num_stats));
  for (int64_t i = 0; i < num_stats; ++i) {
    if (!std::getline(in, line)) {
      return Status::IoError("checkpoint truncated in frontier stats");
    }
    std::istringstream row(line);
    double ss = 0.0;
    double se = 0.0;
    double sm = 0.0;
    if (!(row >> ss >> se >> sm)) {
      return Status::InvalidArgument("checkpoint bad frontier stats: '" +
                                     line + "'");
    }
    state.frontier_ss.push_back(ss);
    state.frontier_se.push_back(se);
    state.frontier_sm.push_back(sm);
  }

  int64_t mm_bytes = 0;
  SLICELINE_RETURN_NOT_OK(ReadScalar(in, "frontier", &mm_bytes));
  const std::streampos at = in.tellg();
  if (mm_bytes < 0 || at == std::streampos(-1) ||
      static_cast<size_t>(at) + static_cast<size_t>(mm_bytes) >
          payload.size()) {
    return Status::InvalidArgument("checkpoint frontier size inconsistent");
  }
  SLICELINE_ASSIGN_OR_RETURN(
      state.frontier,
      linalg::ParseMatrixMarket(
          payload.substr(static_cast<size_t>(at),
                         static_cast<size_t>(mm_bytes))));
  if (state.frontier.rows() != num_stats) {
    return Status::InvalidArgument(
        "checkpoint frontier matrix row count does not match its stats");
  }
  return state;
}

linalg::CsrMatrix SliceSetToCsr(const SliceSet& set, int64_t cols) {
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  row_ptr.reserve(static_cast<size_t>(set.size()) + 1);
  row_ptr.push_back(0);
  for (int64_t i = 0; i < set.size(); ++i) {
    const int64_t* c = set.Columns(i);
    col_idx.insert(col_idx.end(), c, c + set.Length(i));
    row_ptr.push_back(static_cast<int64_t>(col_idx.size()));
  }
  std::vector<double> values(col_idx.size(), 1.0);
  return linalg::CsrMatrix(set.size(), cols, std::move(row_ptr),
                           std::move(col_idx), std::move(values));
}

SliceSet CsrToSliceSet(const linalg::CsrMatrix& matrix) {
  SliceSet set;
  set.Reserve(matrix.rows(), matrix.nnz());
  for (int64_t r = 0; r < matrix.rows(); ++r) {
    set.Add(matrix.RowCols(r), matrix.RowCols(r) + matrix.RowNnz(r));
  }
  return set;
}

}  // namespace sliceline::core
