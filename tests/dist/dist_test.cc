#include "dist/distributed_evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"
#include "dist/partition.h"

namespace sliceline::dist {
namespace {

TEST(PartitionTest, CoversAllRowsWithoutOverlap) {
  for (int workers : {1, 3, 7, 16}) {
    std::vector<RowRange> parts = PartitionRows(100, workers);
    int64_t covered = 0;
    int64_t expected_begin = 0;
    for (const RowRange& r : parts) {
      EXPECT_EQ(r.begin, expected_begin);
      EXPECT_GE(r.size(), 0);
      covered += r.size();
      expected_begin = r.end;
    }
    EXPECT_EQ(covered, 100);
  }
}

TEST(PartitionTest, MoreWorkersThanRows) {
  std::vector<RowRange> parts = PartitionRows(3, 10);
  EXPECT_EQ(parts.size(), 3u);
  for (const RowRange& r : parts) EXPECT_EQ(r.size(), 1);
}

TEST(PartitionTest, BalancedSizes) {
  std::vector<RowRange> parts = PartitionRows(10, 3);
  EXPECT_EQ(parts[0].size(), 4);
  EXPECT_EQ(parts[1].size(), 3);
  EXPECT_EQ(parts[2].size(), 3);
}

TEST(PartitionTest, MakeShardCopiesRows) {
  data::IntMatrix x0(4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    x0.At(i, 0) = static_cast<int32_t>(i + 1);
    x0.At(i, 1) = 1;
  }
  std::vector<double> errors = {0.0, 0.1, 0.2, 0.3};
  Shard shard = MakeShard(x0, errors, {1, 3});
  EXPECT_EQ(shard.x0.rows(), 2);
  EXPECT_EQ(shard.x0.At(0, 0), 2);
  EXPECT_EQ(shard.x0.At(1, 0), 3);
  EXPECT_EQ(shard.errors, (std::vector<double>{0.1, 0.2}));
}

struct RandomInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

RandomInput MakeRandom(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  RandomInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) e = rng.NextBool(0.3) ? rng.NextDouble() : 0.0;
  return input;
}

class DistributedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedEquivalenceTest, MatchesLocalExecution) {
  const int workers = GetParam();
  RandomInput input = MakeRandom(11, 600, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  DistOptions options;
  options.workers = workers;
  DistCostStats cost;
  auto distributed = RunSliceLineDistributed(input.x0, input.errors, config,
                                             options, &cost);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(distributed.ok());
  ASSERT_EQ(local->top_k.size(), distributed->top_k.size());
  for (size_t i = 0; i < local->top_k.size(); ++i) {
    EXPECT_NEAR(local->top_k[i].stats.score,
                distributed->top_k[i].stats.score, 1e-9);
    EXPECT_EQ(local->top_k[i].stats.size, distributed->top_k[i].stats.size);
    EXPECT_EQ(local->top_k[i].predicates, distributed->top_k[i].predicates);
  }
  // Per-level enumeration identical (same pruning decisions).
  ASSERT_EQ(local->levels.size(), distributed->levels.size());
  for (size_t i = 0; i < local->levels.size(); ++i) {
    EXPECT_EQ(local->levels[i].candidates, distributed->levels[i].candidates);
  }
  if (distributed->levels.size() > 1) {
    EXPECT_GT(cost.rounds, 0);
    EXPECT_GT(cost.broadcast_bytes, 0);
    EXPECT_GT(cost.gather_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, DistributedEquivalenceTest,
                         ::testing::Values(1, 2, 4, 9));

TEST(DistributedTest, ShardDomainSmallerThanGlobal) {
  // A code that appears only in the last shard must still be handled
  // correctly by every worker (global offsets are shared).
  data::IntMatrix x0(100, 1);
  for (int64_t i = 0; i < 100; ++i) x0.At(i, 0) = 1;
  x0.At(99, 0) = 5;  // only the last row has the high code
  std::vector<double> errors(100, 0.1);
  errors[99] = 1.0;
  core::SliceLineConfig config;
  config.min_support = 1;
  config.k = 3;
  DistOptions options;
  options.workers = 4;
  auto result =
      RunSliceLineDistributed(x0, errors, config, options, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top_k.empty());
  EXPECT_EQ(result->top_k[0].predicates[0], (std::pair<int, int32_t>{0, 5}));
  EXPECT_EQ(result->top_k[0].stats.size, 1);
}

TEST(DistributedTest, CostEstimateUsesOptions) {
  DistCostStats cost;
  cost.rounds = 10;
  cost.broadcast_bytes = 1000000;
  cost.gather_bytes = 500000;
  DistOptions options;
  options.network_bytes_per_second = 1e6;
  options.latency_per_round_seconds = 0.01;
  EXPECT_NEAR(cost.EstimatedCommSeconds(options), 1.5 + 0.1, 1e-9);
}

TEST(DistributedTest, ValidatesInputs) {
  RandomInput input = MakeRandom(13, 50, 2, 3);
  DistOptions options;
  options.workers = 0;
  EXPECT_FALSE(RunSliceLineDistributed(input.x0, input.errors,
                                       core::SliceLineConfig(), options,
                                       nullptr)
                   .ok());
  options.workers = 2;
  std::vector<double> wrong(10, 0.1);
  EXPECT_FALSE(RunSliceLineDistributed(input.x0, wrong,
                                       core::SliceLineConfig(), options,
                                       nullptr)
                   .ok());
}

}  // namespace
}  // namespace sliceline::dist
