#include "data/onehot.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/preprocess.h"
#include "linalg/kernels.h"

namespace sliceline::data {
namespace {

IntMatrix SmallX0() {
  // Features: A with domain 2, B with domain 3.
  IntMatrix x0(4, 2);
  const int32_t values[4][2] = {{1, 1}, {2, 3}, {1, 2}, {2, 2}};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j) x0.At(i, j) = values[i][j];
  return x0;
}

TEST(OffsetsTest, ComputeOffsets) {
  FeatureOffsets off = ComputeOffsets(SmallX0());
  EXPECT_EQ(off.num_features(), 2);
  EXPECT_EQ(off.fdom, (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(off.fb, (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(off.fe, (std::vector<int64_t>{2, 5}));
  EXPECT_EQ(off.total, 5);
}

TEST(OffsetsTest, ColumnLookups) {
  FeatureOffsets off = ComputeOffsets(SmallX0());
  EXPECT_EQ(off.FeatureOfColumn(0), 0);
  EXPECT_EQ(off.FeatureOfColumn(1), 0);
  EXPECT_EQ(off.FeatureOfColumn(2), 1);
  EXPECT_EQ(off.FeatureOfColumn(4), 1);
  EXPECT_EQ(off.CodeOfColumn(1), 2);
  EXPECT_EQ(off.CodeOfColumn(4), 3);
  EXPECT_EQ(off.ColumnOf(1, 2), 3);
  EXPECT_EQ(off.ColumnOf(0, 1), 0);
}

TEST(OneHotTest, EncodesRowsWithOneEntryPerFeature) {
  IntMatrix x0 = SmallX0();
  FeatureOffsets off = ComputeOffsets(x0);
  linalg::CsrMatrix x = OneHotEncode(x0, off);
  EXPECT_EQ(x.rows(), 4);
  EXPECT_EQ(x.cols(), 5);
  EXPECT_EQ(x.nnz(), 8);  // n * m
  // Row 1 = {A=2, B=3} -> columns 1 and 4.
  EXPECT_DOUBLE_EQ(x.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(x.At(1, 4), 1.0);
  EXPECT_DOUBLE_EQ(x.At(1, 0), 0.0);
}

TEST(OneHotTest, MatchesTableFormulation) {
  Rng rng(31);
  IntMatrix x0(50, 4);
  for (int64_t i = 0; i < 50; ++i)
    for (int j = 0; j < 4; ++j)
      x0.At(i, j) = static_cast<int32_t>(rng.NextInt(1, 2 + j));
  FeatureOffsets off = ComputeOffsets(x0);
  EXPECT_TRUE(OneHotEncode(x0, off).Equals(OneHotEncodeViaTable(x0, off)));
}

TEST(OneHotTest, ColSumsArePerValueCounts) {
  IntMatrix x0 = SmallX0();
  FeatureOffsets off = ComputeOffsets(x0);
  std::vector<double> counts = linalg::ColSums(OneHotEncode(x0, off));
  EXPECT_DOUBLE_EQ(counts[0], 2);  // A=1 twice
  EXPECT_DOUBLE_EQ(counts[1], 2);  // A=2 twice
  EXPECT_DOUBLE_EQ(counts[2], 1);  // B=1 once
  EXPECT_DOUBLE_EQ(counts[3], 2);  // B=2 twice
  EXPECT_DOUBLE_EQ(counts[4], 1);  // B=3 once
}

TEST(IntMatrixTest, ReplicateRows) {
  IntMatrix x0 = SmallX0();
  IntMatrix rep = x0.ReplicateRows(3);
  EXPECT_EQ(rep.rows(), 12);
  for (int64_t i = 0; i < 12; ++i)
    for (int j = 0; j < 2; ++j) EXPECT_EQ(rep.At(i, j), x0.At(i % 4, j));
}

TEST(PreprocessTest, EncodesFrameToDataset) {
  Frame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column("cat", std::vector<std::string>{
                                               "a", "b", "a", "c"}))
                  .ok());
  ASSERT_TRUE(
      frame.AddColumn(Column("num", std::vector<double>{0, 5, 10, 2})).ok());
  ASSERT_TRUE(
      frame.AddColumn(Column("id", std::vector<double>{1, 2, 3, 4})).ok());
  ASSERT_TRUE(
      frame.AddColumn(Column("y", std::vector<double>{1, 2, 3, 4})).ok());
  PreprocessOptions opts;
  opts.label_column = "y";
  opts.task = Task::kRegression;
  opts.num_bins = 5;
  opts.drop_columns = {"id"};
  auto ds = Preprocess(frame, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->m(), 2);
  EXPECT_EQ(ds->n(), 4);
  EXPECT_EQ(ds->x0.At(0, 0), 1);  // "a"
  EXPECT_EQ(ds->x0.At(3, 0), 3);  // "c"
  EXPECT_EQ(ds->y[2], 3.0);
  EXPECT_EQ(ds->feature_names, (std::vector<std::string>{"cat", "num"}));
}

TEST(PreprocessTest, ClassificationLabelRecoded) {
  Frame frame;
  ASSERT_TRUE(
      frame.AddColumn(Column("f", std::vector<double>{1, 2, 3})).ok());
  ASSERT_TRUE(frame
                  .AddColumn(Column("label", std::vector<std::string>{
                                                 "no", "yes", "no"}))
                  .ok());
  PreprocessOptions opts;
  opts.label_column = "label";
  opts.task = Task::kClassification;
  auto ds = Preprocess(frame, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_classes, 2);
  EXPECT_EQ(ds->y, (std::vector<double>{0, 1, 0}));
}

TEST(PreprocessTest, MissingLabelColumnFails) {
  Frame frame;
  ASSERT_TRUE(frame.AddColumn(Column("f", std::vector<double>{1})).ok());
  PreprocessOptions opts;
  opts.label_column = "nope";
  EXPECT_FALSE(Preprocess(frame, opts).ok());
}

TEST(PreprocessTest, NoFeaturesLeftFails) {
  Frame frame;
  ASSERT_TRUE(frame.AddColumn(Column("y", std::vector<double>{1})).ok());
  PreprocessOptions opts;
  opts.label_column = "y";
  EXPECT_FALSE(Preprocess(frame, opts).ok());
}

}  // namespace
}  // namespace sliceline::data
