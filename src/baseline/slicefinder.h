#ifndef SLICELINE_BASELINE_SLICEFINDER_H_
#define SLICELINE_BASELINE_SLICEFINDER_H_

#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "data/int_matrix.h"

namespace sliceline::baseline {

/// Configuration of the SliceFinder-style heuristic baseline.
struct SliceFinderConfig {
  int k = 4;                   ///< stop once K problematic slices are found
  double effect_size_min = 0.3;///< minimum effect size T
  double t_critical = 2.0;     ///< Welch t-statistic threshold (~p < 0.05)
  int64_t min_support = 0;     ///< 0 = max(32, ceil(n/100)), as in SliceLine
  int max_level = 0;           ///< lattice depth cap; 0 = number of features
};

/// Output of the baseline: slices in discovery order plus search counters.
struct SliceFinderResult {
  std::vector<core::Slice> slices;  ///< effect size stored in stats.score
  int64_t evaluated = 0;            ///< lattice nodes whose rows were scanned
  double total_seconds = 0.0;
  int levels_expanded = 0;
};

/// Reimplementation of the lattice-search SliceFinder baseline
/// (Chung et al., ICDE'19 / TKDE'20) that the paper compares against in
/// Section 5.4: a breadth-first, level-wise search ordered by increasing
/// number of literals and decreasing slice size, reporting slices whose
/// error distribution differs from the complement by (1) effect size >= T
/// and (2) a significant Welch's t-test, subject to the dominance constraint
/// (a slice is not reported when an already-reported coarser slice covers
/// it), with heuristic level-wise termination once K slices are found. It
/// does not guarantee finding the true top-K -- that gap is SliceLine's core
/// motivation, and the comparison benchmark demonstrates it.
StatusOr<SliceFinderResult> RunSliceFinder(const data::IntMatrix& x0,
                                           const std::vector<double>& errors,
                                           const SliceFinderConfig& config);

}  // namespace sliceline::baseline

#endif  // SLICELINE_BASELINE_SLICEFINDER_H_
