file(REMOVE_RECURSE
  "CMakeFiles/sliceline_cli.dir/sliceline_cli.cc.o"
  "CMakeFiles/sliceline_cli.dir/sliceline_cli.cc.o.d"
  "sliceline_cli"
  "sliceline_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
