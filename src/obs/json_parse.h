#ifndef SLICELINE_OBS_JSON_PARSE_H_
#define SLICELINE_OBS_JSON_PARSE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sliceline::obs {

/// Parsed strict-JSON document tree. The grammar accepted is exactly the
/// one ValidateStrictJson enforces (RFC 8259: no trailing commas, no
/// NaN/Infinity, no comments), so a document that validates also parses and
/// vice versa. Objects preserve insertion order; duplicate keys are a parse
/// error (the wire protocol treats them as malformed requests, and nothing
/// in this repo emits them).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // -- typed object-member accessors for protocol decoding ------------------
  // Get*Or returns the default when the key is absent; Require* returns an
  // InvalidArgument Status naming the key when it is absent or mistyped
  // (the wire protocol's structured "invalid_argument" errors come from
  // these messages).
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;
  double GetNumberOr(const std::string& key, double fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  StatusOr<std::string> RequireString(const std::string& key) const;
  StatusOr<double> RequireNumber(const std::string& key) const;
  StatusOr<int64_t> RequireInt(const std::string& key) const;

  // -- construction (parser + tests) ----------------------------------------
  static JsonValue Null();
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses exactly one strict-JSON document (trailing whitespace allowed,
/// anything else after it is an error). Errors carry "<message> at byte
/// <offset>" like ValidateStrictJson.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_JSON_PARSE_H_
