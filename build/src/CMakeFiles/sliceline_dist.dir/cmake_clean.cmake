file(REMOVE_RECURSE
  "CMakeFiles/sliceline_dist.dir/dist/distributed_evaluator.cc.o"
  "CMakeFiles/sliceline_dist.dir/dist/distributed_evaluator.cc.o.d"
  "CMakeFiles/sliceline_dist.dir/dist/partition.cc.o"
  "CMakeFiles/sliceline_dist.dir/dist/partition.cc.o.d"
  "libsliceline_dist.a"
  "libsliceline_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
