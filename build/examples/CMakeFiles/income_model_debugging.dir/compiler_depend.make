# Empty compiler generated dependencies file for income_model_debugging.
# This may be replaced when dependencies are built.
