#include "ml/split.h"

#include <algorithm>
#include <numeric>

#include "data/onehot.h"
#include "ml/error_functions.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"

namespace sliceline::ml {

namespace {

data::EncodedDataset TakeRows(const data::EncodedDataset& dataset,
                              const std::vector<int64_t>& rows,
                              const char* suffix) {
  data::EncodedDataset out;
  out.name = dataset.name + suffix;
  out.task = dataset.task;
  out.num_classes = dataset.num_classes;
  out.feature_names = dataset.feature_names;
  out.planted = dataset.planted;
  out.x0 = data::IntMatrix(static_cast<int64_t>(rows.size()),
                           dataset.x0.cols());
  out.y.reserve(rows.size());
  const bool has_errors = !dataset.errors.empty();
  out.errors.reserve(has_errors ? rows.size() : 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t j = 0; j < dataset.x0.cols(); ++j) {
      out.x0.At(static_cast<int64_t>(i), j) = dataset.x0.At(rows[i], j);
    }
    out.y.push_back(dataset.y[rows[i]]);
    if (has_errors) out.errors.push_back(dataset.errors[rows[i]]);
  }
  return out;
}

}  // namespace

StatusOr<TrainTestSplit> SplitTrainTest(const data::EncodedDataset& dataset,
                                        double test_fraction, uint64_t seed) {
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  const int64_t n = dataset.n();
  if (n < 2) return Status::InvalidArgument("need at least 2 rows to split");
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(order);
  int64_t test_count = static_cast<int64_t>(test_fraction * n);
  if (test_count < 1) test_count = 1;
  if (test_count >= n) test_count = n - 1;

  TrainTestSplit split;
  split.test_rows.assign(order.begin(), order.begin() + test_count);
  split.train_rows.assign(order.begin() + test_count, order.end());
  std::sort(split.test_rows.begin(), split.test_rows.end());
  std::sort(split.train_rows.begin(), split.train_rows.end());
  split.train = TakeRows(dataset, split.train_rows, "_train");
  split.test = TakeRows(dataset, split.test_rows, "_test");
  return split;
}

StatusOr<double> TrainOnSplitAndScoreTest(TrainTestSplit* split) {
  // Encode both splits with the TRAIN split's structure extended to cover
  // test codes (domains are per-column maxima over both splits so the
  // one-hot spaces align).
  data::IntMatrix combined(split->train.n() + split->test.n(),
                           split->train.m());
  for (int64_t i = 0; i < split->train.n(); ++i) {
    for (int64_t j = 0; j < split->train.m(); ++j) {
      combined.At(i, j) = split->train.x0.At(i, j);
    }
  }
  for (int64_t i = 0; i < split->test.n(); ++i) {
    for (int64_t j = 0; j < split->test.m(); ++j) {
      combined.At(split->train.n() + i, j) = split->test.x0.At(i, j);
    }
  }
  const data::FeatureOffsets offsets = data::ComputeOffsets(combined);
  const linalg::CsrMatrix x_train =
      data::OneHotEncode(split->train.x0, offsets);
  const linalg::CsrMatrix x_test = data::OneHotEncode(split->test.x0, offsets);

  if (split->train.task == data::Task::kRegression) {
    SLICELINE_ASSIGN_OR_RETURN(
        LinearRegression model,
        LinearRegression::Fit(x_train, split->train.y));
    split->test.errors = SquaredLoss(split->test.y, model.Predict(x_test));
  } else {
    LogisticRegression::Options opts;
    opts.num_classes = split->train.num_classes;
    SLICELINE_ASSIGN_OR_RETURN(
        LogisticRegression model,
        LogisticRegression::Fit(x_train, split->train.y, opts));
    split->test.errors = Inaccuracy(split->test.y, model.Predict(x_test));
  }
  return Mean(split->test.errors);
}

}  // namespace sliceline::ml
