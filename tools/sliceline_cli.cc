// Command-line slice finder: read a CSV, preprocess it (recode + bin),
// train the task-appropriate model (lm / mlogit), and print the top-K
// problematic slices.
//
// Usage:
//   sliceline_cli --csv data.csv --label target [--task reg|class]
//                 [--k 4] [--alpha 0.95] [--sigma 0] [--max-level 0]
//                 [--bins 10] [--drop col1,col2]
//                 [--engine native|la|dist|remote]
//                 [--workers 4] [--fault-seed S] [--fault-transient P]
//                 [--fault-loss P] [--fault-straggler P] [--fault-corrupt P]
//                 [--worker-ports p1,p2,...]
//                 [--deadline-ms MS] [--memory-budget-mb MB]
//                 [--checkpoint-dir DIR] [--resume]
//                 [--metrics-json PATH|-] [--trace-out PATH]
//                 [--log-level debug|info|warn|error]
//
// Every flag also accepts the --flag=value spelling. With --metrics-json=-
// the JSON report owns stdout and all human-readable progress moves to
// stderr, so `sliceline_cli ... --metrics-json=- | jq` just works.
//
// Exit code 0 on success, 1 on usage or data errors.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/run_context.h"
#include "common/string_util.h"
#include "core/report.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "dist/coordinator.h"
#include "dist/distributed_evaluator.h"
#include "ml/pipeline.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace {

struct CliOptions {
  std::string csv_path;
  std::string label;
  std::string task = "reg";
  std::string engine = "native";
  std::vector<std::string> drop;
  std::vector<std::string> worker_ports;
  int k = 4;
  double alpha = 0.95;
  int64_t sigma = 0;
  int max_level = 0;
  int bins = 10;
  int workers = 4;
  uint64_t fault_seed = 0;
  double fault_transient = 0.0;
  double fault_loss = 0.0;
  double fault_straggler = 0.0;
  double fault_corrupt = 0.0;
  int64_t deadline_ms = 0;       ///< 0 = no deadline
  int64_t memory_budget_mb = 0;  ///< 0 = unlimited
  std::string checkpoint_dir;
  bool resume = false;
  std::string metrics_json;  ///< run-report path; "-" = stdout, "" = off
  std::string trace_out;     ///< Chrome trace path; "" = tracing off
  std::string log_level = "info";
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: sliceline_cli --csv FILE --label COLUMN [options]\n"
      "  --task reg|class     prediction task (default reg)\n"
      "  --k N                top-K slices (default 4)\n"
      "  --alpha A            error/size weight in (0,1] (default 0.95)\n"
      "  --sigma S            min support; 0 = max(32, ceil(n/100))\n"
      "  --max-level L        lattice depth cap; 0 = unbounded\n"
      "  --bins B             equi-width bins for numeric features (10)\n"
      "  --drop a,b,c         columns to drop (e.g. ID columns)\n"
      "  --engine native|la|dist|remote  enumeration engine (default\n"
      "                       native); 'remote' runs against real\n"
      "                       sliceline_worker processes\n"
      "  --workers N          simulated workers for --engine dist (4)\n"
      "  --worker-ports p1,p2,...  loopback TCP ports of running\n"
      "                       sliceline_worker processes (--engine remote)\n"
      "  --fault-seed S       fault-injection seed for --engine dist\n"
      "  --fault-transient P  per-round transient worker failure rate\n"
      "  --fault-loss P       per-round permanent worker loss rate\n"
      "  --fault-straggler P  per-round straggler rate\n"
      "  --fault-corrupt P    per-round partial-corruption rate\n"
      "  --deadline-ms MS     wall-clock deadline; exceeding it returns the\n"
      "                       best-so-far top-K marked PARTIAL (0 = none)\n"
      "  --memory-budget-mb MB  memory budget; soft pressure degrades the\n"
      "                       search, hard pressure stops it (0 = unlimited)\n"
      "  --checkpoint-dir DIR save a resumable checkpoint per level\n"
      "  --resume             continue from DIR's checkpoint if compatible\n"
      "  --metrics-json PATH  write the machine-readable run report (config,\n"
      "                       per-level table, top-K, outcome, metrics\n"
      "                       registry) as strict JSON; '-' writes it to\n"
      "                       stdout and moves human output to stderr\n"
      "  --trace-out PATH     write a Chrome/Perfetto trace of the run\n"
      "  --log-level LEVEL    debug|info|warn|error (default info); logs go\n"
      "                       to stderr\n"
      "Every flag also accepts --flag=value.\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Both "--flag value" and "--flag=value" are accepted; split the inline
    // form here so every branch below sees just the flag name.
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* name) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      options->csv_path = v;
    } else if (arg == "--label") {
      const char* v = next("--label");
      if (v == nullptr) return false;
      options->label = v;
    } else if (arg == "--task") {
      const char* v = next("--task");
      if (v == nullptr) return false;
      options->task = v;
    } else if (arg == "--engine") {
      const char* v = next("--engine");
      if (v == nullptr) return false;
      options->engine = v;
    } else if (arg == "--k") {
      const char* v = next("--k");
      if (v == nullptr) return false;
      options->k = std::atoi(v);
    } else if (arg == "--alpha") {
      const char* v = next("--alpha");
      if (v == nullptr) return false;
      options->alpha = std::atof(v);
    } else if (arg == "--sigma") {
      const char* v = next("--sigma");
      if (v == nullptr) return false;
      options->sigma = std::atoll(v);
    } else if (arg == "--max-level") {
      const char* v = next("--max-level");
      if (v == nullptr) return false;
      options->max_level = std::atoi(v);
    } else if (arg == "--bins") {
      const char* v = next("--bins");
      if (v == nullptr) return false;
      options->bins = std::atoi(v);
    } else if (arg == "--drop") {
      const char* v = next("--drop");
      if (v == nullptr) return false;
      options->drop = sliceline::Split(v, ',');
    } else if (arg == "--worker-ports") {
      const char* v = next("--worker-ports");
      if (v == nullptr) return false;
      options->worker_ports = sliceline::Split(v, ',');
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      options->workers = std::atoi(v);
    } else if (arg == "--fault-seed") {
      const char* v = next("--fault-seed");
      if (v == nullptr) return false;
      options->fault_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--fault-transient") {
      const char* v = next("--fault-transient");
      if (v == nullptr) return false;
      options->fault_transient = std::atof(v);
    } else if (arg == "--fault-loss") {
      const char* v = next("--fault-loss");
      if (v == nullptr) return false;
      options->fault_loss = std::atof(v);
    } else if (arg == "--fault-straggler") {
      const char* v = next("--fault-straggler");
      if (v == nullptr) return false;
      options->fault_straggler = std::atof(v);
    } else if (arg == "--fault-corrupt") {
      const char* v = next("--fault-corrupt");
      if (v == nullptr) return false;
      options->fault_corrupt = std::atof(v);
    } else if (arg == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return false;
      options->deadline_ms = std::atoll(v);
    } else if (arg == "--memory-budget-mb") {
      const char* v = next("--memory-budget-mb");
      if (v == nullptr) return false;
      options->memory_budget_mb = std::atoll(v);
    } else if (arg == "--checkpoint-dir") {
      const char* v = next("--checkpoint-dir");
      if (v == nullptr) return false;
      options->checkpoint_dir = v;
    } else if (arg == "--metrics-json") {
      const char* v = next("--metrics-json");
      if (v == nullptr) return false;
      options->metrics_json = v;
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) return false;
      options->trace_out = v;
    } else if (arg == "--log-level") {
      const char* v = next("--log-level");
      if (v == nullptr) return false;
      options->log_level = v;
    } else if (arg == "--resume") {
      if (has_inline) {
        std::fprintf(stderr, "--resume takes no value\n");
        return false;
      }
      options->resume = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (options->csv_path.empty() || options->label.empty()) {
    std::fprintf(stderr, "--csv and --label are required\n");
    return false;
  }
  return true;
}

/// Rejects semantically invalid option values before any work starts, with
/// one specific message per failure (exit code 1 via main).
bool ValidateOptions(const CliOptions& options) {
  struct stat st;
  if (stat(options.csv_path.c_str(), &st) != 0) {
    std::fprintf(stderr, "--csv path does not exist: %s\n",
                 options.csv_path.c_str());
    return false;
  }
  if (options.task != "reg" && options.task != "class") {
    std::fprintf(stderr, "--task must be 'reg' or 'class', got '%s'\n",
                 options.task.c_str());
    return false;
  }
  if (options.engine != "native" && options.engine != "la" &&
      options.engine != "dist" && options.engine != "remote") {
    std::fprintf(stderr,
                 "--engine must be 'native', 'la', 'dist' or 'remote', got "
                 "'%s'\n", options.engine.c_str());
    return false;
  }
  if (options.engine == "remote" && options.worker_ports.empty()) {
    std::fprintf(stderr, "--engine remote needs --worker-ports\n");
    return false;
  }
  if (options.k <= 0) {
    std::fprintf(stderr, "--k must be positive, got %d\n", options.k);
    return false;
  }
  if (!(options.alpha > 0.0 && options.alpha <= 1.0)) {
    std::fprintf(stderr, "--alpha must be in (0, 1], got %g\n",
                 options.alpha);
    return false;
  }
  if (options.sigma < 0) {
    std::fprintf(stderr, "--sigma must be >= 0, got %lld\n",
                 static_cast<long long>(options.sigma));
    return false;
  }
  if (options.max_level < 0) {
    std::fprintf(stderr, "--max-level must be >= 0, got %d\n",
                 options.max_level);
    return false;
  }
  if (options.bins <= 0) {
    std::fprintf(stderr, "--bins must be positive, got %d\n", options.bins);
    return false;
  }
  if (options.engine == "dist" && options.workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1, got %d\n", options.workers);
    return false;
  }
  if (options.deadline_ms < 0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0, got %lld\n",
                 static_cast<long long>(options.deadline_ms));
    return false;
  }
  if (options.memory_budget_mb < 0) {
    std::fprintf(stderr, "--memory-budget-mb must be >= 0, got %lld\n",
                 static_cast<long long>(options.memory_budget_mb));
    return false;
  }
  if (options.log_level != "debug" && options.log_level != "info" &&
      options.log_level != "warn" && options.log_level != "error") {
    std::fprintf(stderr,
                 "--log-level must be debug|info|warn|error, got '%s'\n",
                 options.log_level.c_str());
    return false;
  }
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return false;
  }
  if (!options.checkpoint_dir.empty() &&
      (stat(options.checkpoint_dir.c_str(), &st) != 0 ||
       !S_ISDIR(st.st_mode))) {
    std::fprintf(stderr, "--checkpoint-dir is not a directory: %s\n",
                 options.checkpoint_dir.c_str());
    return false;
  }
  return true;
}

/// Shared tail for every engine: writes the optional trace file and the
/// machine-readable run report. `dist_cost`/`dist_faults` are empty for
/// single-node engines. Returns the process exit code.
int EmitObservabilityOutputs(
    const CliOptions& cli, const sliceline::core::SliceLineConfig& config,
    const sliceline::core::SliceLineResult& result,
    const std::vector<std::string>& feature_names,
    std::vector<std::pair<std::string, double>> dist_cost,
    std::vector<std::pair<std::string, double>> dist_faults) {
  namespace obs = sliceline::obs;
  if (!cli.trace_out.empty()) {
    std::ofstream os(cli.trace_out);
    if (!os) {
      std::fprintf(stderr, "cannot open --trace-out path: %s\n",
                   cli.trace_out.c_str());
      return 1;
    }
    obs::TraceRecorder::Default()->ExportChromeTrace(os);
  }
  if (!cli.metrics_json.empty()) {
    obs::RunReport report;
    report.set_tool("sliceline_cli");
    report.set_engine(cli.engine);
    report.set_dataset(cli.csv_path);
    report.SetConfig(config);
    report.SetResult(result, feature_names);
    if (!dist_cost.empty()) {
      report.AddNumericSection("dist_cost", std::move(dist_cost));
    }
    if (!dist_faults.empty()) {
      report.AddNumericSection("dist_faults", std::move(dist_faults));
    }
    auto status = obs::WriteRunReportJson(report, cli.metrics_json);
    if (!status.ok()) {
      std::fprintf(stderr, "writing --metrics-json failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sliceline;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage();
    return 1;
  }
  if (!ValidateOptions(cli)) return 1;

  if (cli.log_level == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (cli.log_level == "warn") {
    SetLogLevel(LogLevel::kWarning);
  } else if (cli.log_level == "error") {
    SetLogLevel(LogLevel::kError);
  } else {
    SetLogLevel(LogLevel::kInfo);
  }
  if (!cli.metrics_json.empty()) obs::SetMetricsEnabled(true);
  if (!cli.trace_out.empty()) obs::TraceRecorder::Default()->SetEnabled(true);
  // With --metrics-json=- the JSON report owns stdout; human-readable
  // progress moves to stderr so stdout stays machine-parseable.
  std::FILE* human = cli.metrics_json == "-" ? stderr : stdout;

  auto frame = data::ReadCsv(cli.csv_path);
  if (!frame.ok()) {
    std::fprintf(stderr, "error reading CSV: %s\n",
                 frame.status().ToString().c_str());
    return 1;
  }
  std::fprintf(human, "read %lld rows x %lld columns from %s\n",
               static_cast<long long>(frame->num_rows()),
               static_cast<long long>(frame->num_columns()),
               cli.csv_path.c_str());

  data::PreprocessOptions popts;
  popts.label_column = cli.label;
  popts.task = cli.task == "class" ? data::Task::kClassification
                                   : data::Task::kRegression;
  popts.num_bins = cli.bins;
  popts.drop_columns = cli.drop;
  auto ds = data::Preprocess(*frame, popts);
  if (!ds.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }

  auto mean_error = ml::TrainAndMaterializeErrors(&*ds);
  if (!mean_error.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 mean_error.status().ToString().c_str());
    return 1;
  }
  std::fprintf(human, "trained %s; mean error = %.6f\n",
               popts.task == data::Task::kRegression ? "lm" : "mlogit",
               *mean_error);

  core::SliceLineConfig config;
  config.k = cli.k;
  config.alpha = cli.alpha;
  config.min_support = cli.sigma;
  config.max_level = cli.max_level;
  config.checkpoint_dir = cli.checkpoint_dir;
  config.resume = cli.resume;
  RunContext run_context;
  MemoryBudget memory_budget(cli.memory_budget_mb * (1 << 20));
  if (cli.deadline_ms > 0 || cli.memory_budget_mb > 0) {
    if (cli.deadline_ms > 0) {
      run_context.SetDeadlineAfterSeconds(
          static_cast<double>(cli.deadline_ms) / 1000.0);
    }
    if (cli.memory_budget_mb > 0) {
      run_context.set_memory_budget(&memory_budget);
    }
    config.run_context = &run_context;
  }
  if (cli.engine == "dist") {
    dist::DistOptions dopts;
    dopts.workers = cli.workers;
    dopts.fault.seed = cli.fault_seed;
    dopts.fault.transient_rate = cli.fault_transient;
    dopts.fault.loss_rate = cli.fault_loss;
    dopts.fault.straggler_rate = cli.fault_straggler;
    dopts.fault.corruption_rate = cli.fault_corrupt;
    dist::DistCostStats cost;
    dist::DistFaultStats faults;
    auto result = dist::RunSliceLineDistributed(ds->x0, ds->errors, config,
                                                dopts, &cost, &faults);
    if (!result.ok()) {
      std::fprintf(stderr, "slice finding failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(human,
                 "distributed: %d workers, %lld rounds, simulated wall-clock "
                 "%.3fs (compute %.3fs + comm %.3fs)\n",
                 dopts.workers, static_cast<long long>(cost.rounds),
                 cost.critical_path_seconds + cost.EstimatedCommSeconds(dopts),
                 cost.critical_path_seconds, cost.EstimatedCommSeconds(dopts));
    std::fprintf(human, "fault recovery: %s\n", faults.Summary().c_str());
    std::fprintf(human, "\n%s",
                 core::FormatResult(*result, ds->feature_names).c_str());
    return EmitObservabilityOutputs(
        cli, config, *result, ds->feature_names,
        {{"workers", static_cast<double>(dopts.workers)},
         {"rounds", static_cast<double>(cost.rounds)},
         {"broadcast_bytes", static_cast<double>(cost.broadcast_bytes)},
         {"gather_bytes", static_cast<double>(cost.gather_bytes)},
         {"worker_busy_seconds", cost.worker_busy_seconds},
         {"critical_path_seconds", cost.critical_path_seconds},
         {"estimated_comm_seconds", cost.EstimatedCommSeconds(dopts)}},
        {{"transient_failures",
          static_cast<double>(faults.transient_failures)},
         {"retries", static_cast<double>(faults.retries)},
         {"backoff_events", static_cast<double>(faults.backoff_events)},
         {"backoff_seconds", faults.backoff_seconds},
         {"stragglers", static_cast<double>(faults.stragglers)},
         {"speculative_reexecutions",
          static_cast<double>(faults.speculative_reexecutions)},
         {"corrupted_partials",
          static_cast<double>(faults.corrupted_partials)},
         {"workers_lost", static_cast<double>(faults.workers_lost)},
         {"reshards", static_cast<double>(faults.reshards)},
         {"fallback_local", faults.fallback_local ? 1.0 : 0.0}});
  }
  if (cli.engine == "remote") {
    dist::RemoteDistOptions ropts;
    for (const std::string& port : cli.worker_ports) {
      dist::WorkerEndpoint endpoint;
      endpoint.tcp_port = std::atoi(port.c_str());
      if (endpoint.tcp_port <= 0) {
        std::fprintf(stderr, "bad --worker-ports entry: '%s'\n", port.c_str());
        return 1;
      }
      ropts.endpoints.push_back(endpoint);
    }
    dist::DistCostStats cost;
    dist::DistFaultStats faults;
    auto result = dist::RunSliceLineRemote(ds->x0, ds->errors, config, ropts,
                                           &cost, &faults);
    if (!result.ok()) {
      std::fprintf(stderr, "slice finding failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(human,
                 "remote: %zu workers, %lld rounds, coordinator wall-clock "
                 "%.3fs (worker busy %.3fs)\n",
                 ropts.endpoints.size(), static_cast<long long>(cost.rounds),
                 cost.critical_path_seconds, cost.worker_busy_seconds);
    std::fprintf(human, "fault recovery: %s\n", faults.Summary().c_str());
    std::fprintf(human, "\n%s",
                 core::FormatResult(*result, ds->feature_names).c_str());
    return EmitObservabilityOutputs(
        cli, config, *result, ds->feature_names,
        {{"workers", static_cast<double>(ropts.endpoints.size())},
         {"rounds", static_cast<double>(cost.rounds)},
         {"broadcast_bytes", static_cast<double>(cost.broadcast_bytes)},
         {"gather_bytes", static_cast<double>(cost.gather_bytes)},
         {"worker_busy_seconds", cost.worker_busy_seconds},
         {"critical_path_seconds", cost.critical_path_seconds}},
        {{"transient_failures",
          static_cast<double>(faults.transient_failures)},
         {"retries", static_cast<double>(faults.retries)},
         {"backoff_events", static_cast<double>(faults.backoff_events)},
         {"backoff_seconds", faults.backoff_seconds},
         {"stragglers", static_cast<double>(faults.stragglers)},
         {"speculative_reexecutions",
          static_cast<double>(faults.speculative_reexecutions)},
         {"corrupted_partials",
          static_cast<double>(faults.corrupted_partials)},
         {"workers_lost", static_cast<double>(faults.workers_lost)},
         {"reshards", static_cast<double>(faults.reshards)},
         {"fallback_local", faults.fallback_local ? 1.0 : 0.0}});
  }
  auto result = cli.engine == "la"
                    ? core::RunSliceLineLA(*ds, config)
                    : core::RunSliceLine(*ds, config);
  if (!result.ok()) {
    std::fprintf(stderr, "slice finding failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(human, "\n%s",
               core::FormatResult(*result, ds->feature_names).c_str());
  return EmitObservabilityOutputs(cli, config, *result, ds->feature_names,
                                  {}, {});
}
