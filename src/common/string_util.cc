#include "common/string_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sliceline {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

StatusOr<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty numeric field");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric overflow: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer field");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflow: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace sliceline
