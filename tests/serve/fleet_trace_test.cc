// Fleet-tracing integration: an in-process Server wired to two real
// sliceline_worker processes (SLICELINE_WORKER_BIN, injected by CMake) runs
// a find_slices job with engine "remote", then the persisted artifacts are
// checked end to end — the merged Chrome trace must be strict JSON with
// spans from three distinct processes (server + both workers) sharing one
// trace id, and the run report's per-worker work accounting must sum to the
// coordinator's own DistCost in this fault-free run.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sliceline.h"
#include "dist/coordinator.h"
#include "obs/json_parse.h"
#include "obs/json_validate.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace sliceline::serve {
namespace {

/// One real worker process; stdout is piped so the test can wait for the
/// READY line and discover the kernel-assigned port (same pattern as the
/// dist chaos suite).
class WorkerProcess {
 public:
  ~WorkerProcess() { Kill(); }

  bool Start() {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::close(pipe_fds[0]);
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[1]);
      std::vector<std::string> args = {SLICELINE_WORKER_BIN, "--port", "0",
                                       "--log-level", "error"};
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    std::string line;
    char ch = 0;
    while (::read(pipe_fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    ::close(pipe_fds[0]);
    const std::string prefix = "READY port=";
    if (line.compare(0, prefix.size(), prefix) != 0) return false;
    port_ = std::atoi(line.c_str() + prefix.size());
    return port_ > 0;
  }

  int port() const { return port_; }

  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

 private:
  pid_t pid_ = -1;
  int port_ = -1;
};

double SectionValue(const obs::JsonValue& report, const std::string& section,
                    const std::string& key, double fallback = -1.0) {
  const obs::JsonValue* sections = report.Find("sections");
  if (sections == nullptr) return fallback;
  const obs::JsonValue* values = sections->Find(section);
  if (values == nullptr) return fallback;
  return values->GetNumberOr(key, fallback);
}

TEST(FleetTraceTest, RemoteJobProducesMergedTraceAndConsistentReport) {
  // -- fleet + server ------------------------------------------------------
  std::vector<std::unique_ptr<WorkerProcess>> fleet;
  std::vector<dist::WorkerEndpoint> endpoints;
  for (int i = 0; i < 2; ++i) {
    auto worker = std::make_unique<WorkerProcess>();
    ASSERT_TRUE(worker->Start()) << "worker " << i;
    endpoints.push_back(dist::WorkerEndpoint{"", worker->port()});
    fleet.push_back(std::move(worker));
  }

  ServerOptions options;
  options.unix_socket = ::testing::TempDir() + "/" +
                        std::to_string(::getpid()) + "_fleet_trace.sock";
  options.workers = 2;
  // Same wiring as tools/sliceline_server.cc: a fresh coordinator per job.
  options.remote_engine =
      [endpoints](const data::EncodedDataset& dataset,
                  const core::SliceLineConfig& config, uint64_t trace_id,
                  obs::DistObsBundle* obs_out)
      -> StatusOr<core::SliceLineResult> {
    dist::RemoteDistOptions remote;
    remote.endpoints = endpoints;
    remote.trace_id = trace_id;
    return dist::RunSliceLineRemote(dataset.x0, dataset.errors, config,
                                    remote, /*cost_out=*/nullptr,
                                    /*faults_out=*/nullptr, obs_out);
  };
  Server server(options);
  const Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  // -- register + run one remote job --------------------------------------
  const std::string csv_path = ::testing::TempDir() + "/" +
                               std::to_string(::getpid()) + "_fleet_trace.csv";
  WriteFileOrDie(csv_path, MakeCsvText(500, 4, 3, 77));

  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  RegisterDatasetRequest register_request;
  register_request.name = "fleet";
  register_request.csv_path = csv_path;
  register_request.label = "target";
  ASSERT_TRUE(client->RegisterDataset(register_request).ok());

  FindSlicesRequest find_request;
  find_request.dataset = "fleet";
  find_request.engine = "remote";
  find_request.k = 4;
  auto reply = client->FindSlices(find_request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_GE(reply->job_id, 1);
  EXPECT_FALSE(reply->result.top_k.empty());

  auto report_text = client->GetReport(reply->job_id);
  ASSERT_TRUE(report_text.ok()) << report_text.status().ToString();
  auto trace_text = client->GetTrace(reply->job_id);
  ASSERT_TRUE(trace_text.ok()) << trace_text.status().ToString();

  server.RequestShutdown();
  EXPECT_EQ(server.Wait(), 0);
  std::remove(csv_path.c_str());

  // -- the report: per-worker accounting vs coordinator DistCost -----------
  ASSERT_EQ(obs::ValidateStrictJson(*report_text), "");
  auto report = obs::ParseJson(*report_text);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const obs::JsonValue* annotations = report->Find("annotations");
  ASSERT_NE(annotations, nullptr);
  const std::string trace_id = annotations->GetStringOr("trace_id", "0");
  EXPECT_NE(trace_id, "0");

  // Fault-free run over the full fleet.
  EXPECT_EQ(SectionValue(*report, "dist_cost", "workers"), 2.0);
  EXPECT_EQ(SectionValue(*report, "dist_cost", "alive_workers"), 2.0);
  EXPECT_EQ(SectionValue(*report, "dist_faults", "workers_lost"), 0.0);
  EXPECT_EQ(SectionValue(*report, "dist_faults", "fallback_local"), 0.0);
  EXPECT_GE(SectionValue(*report, "dist_cost", "rounds"), 1.0);
  EXPECT_EQ(SectionValue(*report, "dist_trace", "processes"), 3.0);

  // Every evaluated slice the coordinator accepted was counted by exactly
  // one worker (no faults, so no speculative duplicates): the fleet-wide
  // sum of worker-side eval counters equals the coordinator's DistCost.
  const double accepted =
      SectionValue(*report, "dist_cost", "eval_slices_accepted");
  EXPECT_GT(accepted, 0.0);
  double worker_slices = 0.0;
  double worker_spans = 0.0;
  for (int w = 0; w < 2; ++w) {
    const std::string section = "worker_" + std::to_string(w);
    const double slices =
        SectionValue(*report, section, "worker/eval_slices", -1.0);
    ASSERT_GE(slices, 0.0) << "missing section " << section;
    worker_slices += slices;
    const double spans = SectionValue(*report, section, "spans");
    EXPECT_GT(spans, 0.0) << section;
    worker_spans += spans;
    EXPECT_NE(annotations->GetStringOr(section + "_label", ""), "");
  }
  EXPECT_EQ(worker_slices, accepted);
  const double server_spans =
      SectionValue(*report, "dist_trace", "server_spans");
  EXPECT_GT(server_spans, 0.0);
  EXPECT_EQ(SectionValue(*report, "dist_trace", "worker_spans"),
            worker_spans);

  // -- the merged timeline: 3 process lanes, one shared trace id -----------
  ASSERT_EQ(obs::ValidateStrictJson(*trace_text), "");
  auto trace = obs::ParseJson(*trace_text);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const obs::JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<int64_t, std::string> lane_labels;
  std::map<int64_t, int64_t> lane_spans;
  int64_t total_spans = 0;
  for (const obs::JsonValue& event : events->array_items()) {
    const int64_t pid = event.GetIntOr("pid", -1);
    if (event.GetStringOr("ph", "") == "M") {
      const obs::JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      lane_labels[pid] = args->GetStringOr("name", "");
      continue;
    }
    // Every real span carries the one job-wide trace id.
    const obs::JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr) << event.GetStringOr("name", "?");
    EXPECT_EQ(args->GetStringOr("trace_id", ""), trace_id)
        << event.GetStringOr("name", "?");
    ++lane_spans[pid];
    ++total_spans;
  }
  // Three distinct processes, each with at least one span: the server lane
  // plus one lane per worker, labels matching the report's attribution.
  ASSERT_EQ(lane_spans.size(), 3u);
  std::set<std::string> labels;
  for (const auto& [pid, count] : lane_spans) {
    EXPECT_GT(count, 0) << "pid " << pid;
    ASSERT_NE(lane_labels.find(pid), lane_labels.end());
    labels.insert(lane_labels[pid]);
  }
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_NE(labels.count("server"), 0u);
  // The timeline and the report agree on the span census.
  EXPECT_EQ(total_spans,
            static_cast<int64_t>(server_spans) +
                static_cast<int64_t>(worker_spans));
}

}  // namespace
}  // namespace sliceline::serve
