// Run-level governance: deadlines (simulated time), cooperative
// cancellation across threads, memory-budget degradation and hard stops,
// and the structural RunOutcome invariants -- on every engine.
#include "core/governance.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/thread_pool.h"
#include "core/exhaustive.h"
#include "core/sliceline.h"
#include "core/sliceline_bestfirst.h"
#include "core/sliceline_la.h"
#include "linalg/dense_matrix.h"

namespace sliceline::core {
namespace {

using EngineFn = StatusOr<SliceLineResult> (*)(const data::IntMatrix&,
                                               const std::vector<double>&,
                                               const SliceLineConfig&);

struct NamedEngine {
  const char* name;
  EngineFn run;
};

const NamedEngine kEngines[] = {
    {"native", RunSliceLine},
    {"la", RunSliceLineLA},
    {"bestfirst", RunSliceLineBestFirst},
    {"exhaustive", RunExhaustive},
};

/// A dataset big enough that every engine enumerates several levels.
struct Input {
  data::IntMatrix x0;
  std::vector<double> errors;
};

Input MakeInput(uint64_t seed, int64_t n = 600, int m = 6, int max_dom = 3) {
  Rng rng(seed);
  Input input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) {
    e = rng.NextBool(0.4) ? rng.NextDouble() : 0.0;
  }
  return input;
}

SliceLineConfig BaseConfig() {
  SliceLineConfig config;
  config.k = 4;
  config.min_support = 8;
  return config;
}

TEST(GovernanceTest, UngovernedRunReportsCompletedOutcome) {
  const Input input = MakeInput(11);
  for (const NamedEngine& engine : kEngines) {
    auto result = engine.run(input.x0, input.errors, BaseConfig());
    ASSERT_TRUE(result.ok()) << engine.name;
    EXPECT_EQ(result->outcome.termination, RunOutcome::Termination::kCompleted)
        << engine.name;
    EXPECT_FALSE(result->outcome.partial) << engine.name;
    EXPECT_TRUE(result->outcome.WellFormed()) << engine.name;
  }
}

TEST(GovernanceTest, PreCancelledRunReturnsPartialBestSoFar) {
  const Input input = MakeInput(12);
  for (const NamedEngine& engine : kEngines) {
    SliceLineConfig config = BaseConfig();
    RunContext ctx;
    ctx.cancellation().Cancel();
    config.run_context = &ctx;
    auto result = engine.run(input.x0, input.errors, config);
    ASSERT_TRUE(result.ok()) << engine.name;
    EXPECT_TRUE(result->outcome.partial) << engine.name;
    EXPECT_EQ(result->outcome.termination, RunOutcome::Termination::kCancelled)
        << engine.name;
    EXPECT_TRUE(result->outcome.WellFormed()) << engine.name;
  }
}

TEST(GovernanceTest, CrossThreadCancellationStopsARunningEnumeration) {
  // A worker thread starts the run against a gate the main thread opens
  // only after it has already cancelled, so the poll result is
  // deterministic regardless of scheduling.
  const Input input = MakeInput(13, /*n=*/2000, /*m=*/8, /*max_dom=*/4);
  for (const NamedEngine& engine : kEngines) {
    SliceLineConfig config = BaseConfig();
    config.min_support = 2;
    RunContext ctx;
    config.run_context = &ctx;
    StatusOr<SliceLineResult> result = Status::Internal("not run");
    std::thread worker([&] {
      result = engine.run(input.x0, input.errors, config);
    });
    ctx.cancellation().Cancel();
    worker.join();
    ASSERT_TRUE(result.ok()) << engine.name;
    EXPECT_TRUE(result->outcome.WellFormed()) << engine.name;
    // The cancel raced run start, so either it finished first (tiny chance
    // on a loaded machine is impossible here: the dataset enumerates far
    // longer than one poll interval) or it observed the flag.
    EXPECT_TRUE(result->outcome.partial ||
                result->outcome.termination ==
                    RunOutcome::Termination::kCompleted)
        << engine.name;
  }
}

TEST(GovernanceTest, SimulatedDeadlineStopsMidEnumerationDeterministically) {
  const Input input = MakeInput(14);
  for (const NamedEngine& engine : kEngines) {
    SliceLineConfig config = BaseConfig();
    config.min_support = 2;
    // Every governance poll advances simulated time by 1s; a 5s deadline
    // therefore fires on the 6th poll, long before the run is done.
    SimulatedClock clock(0.0, 1.0);
    RunContext ctx;
    ctx.set_clock(&clock);
    ctx.set_deadline_seconds(5.0);
    config.run_context = &ctx;
    auto result = engine.run(input.x0, input.errors, config);
    ASSERT_TRUE(result.ok()) << engine.name;
    EXPECT_TRUE(result->outcome.partial) << engine.name;
    EXPECT_EQ(result->outcome.termination,
              RunOutcome::Termination::kDeadlineExceeded)
        << engine.name;
    EXPECT_GT(result->outcome.stopped_at_level, 0) << engine.name;
    EXPECT_TRUE(result->outcome.WellFormed()) << engine.name;

    // Deterministic: the same simulated schedule stops at the same point.
    SimulatedClock clock2(0.0, 1.0);
    RunContext ctx2;
    ctx2.set_clock(&clock2);
    ctx2.set_deadline_seconds(5.0);
    config.run_context = &ctx2;
    auto again = engine.run(input.x0, input.errors, config);
    ASSERT_TRUE(again.ok()) << engine.name;
    ASSERT_EQ(result->top_k.size(), again->top_k.size()) << engine.name;
    for (size_t i = 0; i < result->top_k.size(); ++i) {
      EXPECT_EQ(result->top_k[i].stats.score, again->top_k[i].stats.score)
          << engine.name << " rank " << i;
    }
    EXPECT_EQ(result->outcome.stopped_at_level,
              again->outcome.stopped_at_level)
        << engine.name;
  }
}

TEST(GovernanceTest, SoftMemoryPressureClimbsTheDegradationLadder) {
  const Input input = MakeInput(15, /*n=*/1200, /*m=*/8, /*max_dom=*/4);
  for (const NamedEngine& engine : kEngines) {
    if (engine.run == RunExhaustive) continue;  // oracle does not degrade
    SliceLineConfig config = BaseConfig();
    config.min_support = 2;
    // Pre-charge the budget to sit between the soft (80%) and hard limits:
    // sustained soft pressure without a hard stop.
    MemoryBudget budget(int64_t{1} << 30);
    budget.Charge((int64_t{1} << 30) * 9 / 10);
    RunContext ctx;
    ctx.set_memory_budget(&budget);
    config.run_context = &ctx;
    auto result = engine.run(input.x0, input.errors, config);
    ASSERT_TRUE(result.ok()) << engine.name;
    EXPECT_EQ(result->outcome.termination, RunOutcome::Termination::kDegraded)
        << engine.name;
    EXPECT_TRUE(result->outcome.partial) << engine.name;
    EXPECT_GT(result->outcome.degradation_steps, 0) << engine.name;
    EXPECT_GT(result->outcome.sigma_raised_to, config.min_support)
        << engine.name;
    EXPECT_GT(result->outcome.peak_memory_bytes, 0) << engine.name;
    EXPECT_TRUE(result->outcome.WellFormed()) << engine.name;
  }
}

TEST(GovernanceTest, HardMemoryLimitStopsTheRun) {
  const Input input = MakeInput(16);
  for (const NamedEngine& engine : kEngines) {
    SliceLineConfig config = BaseConfig();
    config.min_support = 2;
    MemoryBudget budget(1024);
    budget.Charge(4096);  // instantly over the hard limit
    RunContext ctx;
    ctx.set_memory_budget(&budget);
    config.run_context = &ctx;
    auto result = engine.run(input.x0, input.errors, config);
    ASSERT_TRUE(result.ok()) << engine.name;
    EXPECT_TRUE(result->outcome.partial) << engine.name;
    EXPECT_EQ(result->outcome.termination,
              RunOutcome::Termination::kBudgetExhausted)
        << engine.name;
    EXPECT_TRUE(result->outcome.WellFormed()) << engine.name;
  }
}

TEST(GovernanceTest, GovernedRunWithoutLimitsMatchesUngovernedTopK) {
  const Input input = MakeInput(17);
  for (const NamedEngine& engine : kEngines) {
    SliceLineConfig config = BaseConfig();
    auto plain = engine.run(input.x0, input.errors, config);
    RunContext ctx;
    config.run_context = &ctx;
    auto governed = engine.run(input.x0, input.errors, config);
    ASSERT_TRUE(plain.ok() && governed.ok()) << engine.name;
    EXPECT_FALSE(governed->outcome.partial) << engine.name;
    ASSERT_EQ(plain->top_k.size(), governed->top_k.size()) << engine.name;
    for (size_t i = 0; i < plain->top_k.size(); ++i) {
      EXPECT_EQ(plain->top_k[i].stats.score, governed->top_k[i].stats.score)
          << engine.name << " rank " << i;
      EXPECT_EQ(plain->top_k[i].predicates, governed->top_k[i].predicates)
          << engine.name << " rank " << i;
    }
  }
}

TEST(GovernanceTest, CancellableParallelForRangeSkipsChunksAfterStop) {
  ThreadPool pool(4);
  RunContext ctx;
  std::atomic<int64_t> ran{0};
  EXPECT_TRUE(pool.ParallelForRange(1000, &ctx, [&](size_t b, size_t e) {
    ran += static_cast<int64_t>(e - b);
  }));
  EXPECT_EQ(ran.load(), 1000);

  ctx.cancellation().Cancel();
  std::atomic<int64_t> ran_after{0};
  EXPECT_FALSE(pool.ParallelForRange(1000, &ctx, [&](size_t b, size_t e) {
    ran_after += static_cast<int64_t>(e - b);
  }));
  EXPECT_EQ(ran_after.load(), 0);
}

TEST(GovernanceTest, MemoryBudgetAccountingAndPressureFlags) {
  MemoryBudget budget(1000);
  EXPECT_FALSE(budget.OverSoftLimit());
  budget.Charge(700);
  EXPECT_EQ(budget.used_bytes(), 700);
  EXPECT_FALSE(budget.OverSoftLimit());
  budget.Charge(200);
  EXPECT_TRUE(budget.OverSoftLimit());
  EXPECT_FALSE(budget.OverHardLimit());
  budget.Charge(200);
  EXPECT_TRUE(budget.OverHardLimit());
  EXPECT_EQ(budget.peak_bytes(), 1100);
  budget.Release(900);
  EXPECT_FALSE(budget.OverSoftLimit());
  EXPECT_EQ(budget.peak_bytes(), 1100);

  // Unlimited budget only accounts.
  MemoryBudget unlimited(0);
  unlimited.Charge(int64_t{1} << 40);
  EXPECT_FALSE(unlimited.OverSoftLimit());
  EXPECT_FALSE(unlimited.OverHardLimit());
}

TEST(GovernanceTest, ScopedBudgetChargesMatrixAllocations) {
  MemoryBudget budget(0);
  {
    ScopedMemoryBudget scope(&budget);
    linalg::DenseMatrix m(64, 64);
    EXPECT_GE(budget.used_bytes(),
              static_cast<int64_t>(64 * 64 * sizeof(double)));
  }
  EXPECT_EQ(budget.used_bytes(), 0);  // released with the matrix
}

TEST(GovernanceTest, RunOutcomeWellFormedRejectsInconsistentRecords) {
  RunOutcome ok;
  EXPECT_TRUE(ok.WellFormed());

  RunOutcome bad_partial;
  bad_partial.partial = true;  // but termination says completed
  EXPECT_FALSE(bad_partial.WellFormed());

  RunOutcome bad_degraded;
  bad_degraded.termination = RunOutcome::Termination::kDegraded;
  bad_degraded.partial = true;
  bad_degraded.degradation_steps = 0;  // degraded without any step
  EXPECT_FALSE(bad_degraded.WellFormed());

  RunOutcome bad_counters;
  bad_counters.sigma_raised_to = 64;  // raised sigma without a step
  EXPECT_FALSE(bad_counters.WellFormed());
}

TEST(GovernanceTest, StopReasonStatusBridgeRoundTrips) {
  for (StopReason reason :
       {StopReason::kCancelled, StopReason::kDeadlineExceeded,
        StopReason::kBudgetExhausted}) {
    const Status status = StopReasonToStatus(reason);
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(IsGovernanceStatus(status));
    EXPECT_EQ(StopReasonFromStatus(status), reason);
  }
  EXPECT_TRUE(StopReasonToStatus(StopReason::kNone).ok());
  EXPECT_FALSE(IsGovernanceStatus(Status::Internal("boom")));
  EXPECT_EQ(StopReasonFromStatus(Status::Internal("boom")), StopReason::kNone);
}

}  // namespace
}  // namespace sliceline::core
