// Reproduces Table 1 (Dataset Characteristics): n rows, m columns before
// one-hot encoding, l columns after one-hot encoding, and the ML task, for
// every dataset generator, alongside the paper's reported values.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "data/generators/generators.h"

int main() {
  using namespace sliceline;
  bench::Banner("Table 1: Dataset Characteristics",
                "SliceLine Table 1 (synthetic lookalikes; see DESIGN.md)");
  std::printf("%-12s %14s %14s %6s %12s %14s %9s\n", "Dataset", "n (ours)",
              "n (paper)", "m", "l (ours)", "l (paper)", "Task");
  for (const data::DatasetInfo& info : data::ListDatasets()) {
    data::EncodedDataset ds = bench::Load(info.name);
    std::printf("%-12s %14s %14s %6lld %12s %14s %9s\n", info.name.c_str(),
                FormatWithCommas(ds.n()).c_str(),
                FormatWithCommas(info.paper_rows).c_str(),
                static_cast<long long>(ds.m()),
                FormatWithCommas(ds.OneHotWidth()).c_str(),
                FormatWithCommas(info.paper_onehot).c_str(),
                info.task.c_str());
  }
  std::printf(
      "\nNote: fixed-domain generators (adult/covtype/uscensus/salaries)\n"
      "match the paper's l exactly; kdd98/criteo domains are declared at\n"
      "full width but small samples may not observe every category.\n");
  return 0;
}
