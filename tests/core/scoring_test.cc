#include "core/scoring.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sliceline::core {
namespace {

TEST(ScoringTest, EntireDatasetScoresZero) {
  // Property from Section 2.2: independent of alpha, sc(X) == 0.
  for (double alpha : {0.1, 0.5, 0.95, 1.0}) {
    ScoringContext ctx(1000, 250.0, alpha);
    EXPECT_NEAR(ctx.Score(1000, 250.0), 0.0, 1e-12) << "alpha " << alpha;
  }
}

TEST(ScoringTest, BalancedAtHalf) {
  // Property from Section 2.2: under alpha = 0.5, a slice with twice the
  // relative error but half the size of another has the same score.
  ScoringContext ctx(10000, 1000.0, 0.5);
  // Slice A: size 500, avg error 2x overall -> se = 500 * 0.2.
  const double score_a = ctx.Score(500, 500 * 0.2);
  // Slice B: size 250, avg error 4x overall -> se = 250 * 0.4.
  const double score_b = ctx.Score(250, 250 * 0.4);
  EXPECT_NEAR(score_a - score_b,
              0.5 * ((0.2 / 0.1 - 1) - (0.4 / 0.1 - 1)) -
                  0.5 * ((10000.0 / 500 - 1) - (10000.0 / 250 - 1)),
              1e-9);
  // The analytic relation: the error-term difference (-1.0) cancels the
  // size-term difference (+... ) only when the doubling is exact:
  // alpha*(2eb - eb)/e ... verify the paper's exact statement instead:
  // "twice the relative error but half the size" => equal score requires
  // the size ratio terms to match; check numerically via the definition.
  const double rel_err_b = (250 * 0.4 / 250) / (1000.0 / 10000);
  const double rel_err_a = (500 * 0.2 / 500) / (1000.0 / 10000);
  EXPECT_NEAR(rel_err_b, 2 * rel_err_a, 1e-12);
}

TEST(ScoringTest, PaperBalanceProperty) {
  // Direct check of the claim with the linearized form: with alpha = 0.5,
  // sc = 0.5 * (rel_err - 1) - 0.5 * (n/|S| - 1). Doubling (rel_err - 1)'s
  // "surplus" while doubling (n/|S| - 1) keeps the score equal.
  ScoringContext ctx(1000, 100.0, 0.5);
  const double n = 1000;
  // Slice A: size 100 (n/|S| = 10), rel err surplus r.
  // Slice B: size 50 (n/|S| = 20), rel err surplus 2r + something?
  // Verify equality for the constructed pair where both components double.
  const double avg = 0.1;
  const double score_a = ctx.Score(100, 100 * (3.0 * avg));  // rel 3
  const double score_b =
      ctx.Score(50, 50 * avg * (3.0 + (n / 50 - n / 100)));  // rel 3 + 10
  EXPECT_NEAR(score_a, score_b, 1e-9);
}

TEST(ScoringTest, EmptySliceIsMinusInfinity) {
  ScoringContext ctx(100, 10.0, 0.9);
  EXPECT_EQ(ctx.Score(0, 0.0), ScoringContext::kMinusInfinity);
  EXPECT_EQ(ctx.Score(-5, 0.0), ScoringContext::kMinusInfinity);
}

TEST(ScoringTest, MonotoneInErrorForFixedSize) {
  ScoringContext ctx(1000, 200.0, 0.8);
  EXPECT_LT(ctx.Score(100, 10.0), ctx.Score(100, 20.0));
  EXPECT_LT(ctx.Score(100, 20.0), ctx.Score(100, 40.0));
}

TEST(ScoringTest, HigherAlphaWeightsErrorMore) {
  // A small high-error slice gains score as alpha increases.
  const int64_t n = 10000;
  const double total = 1000.0;
  const int64_t size = 200;
  const double se = 200 * 0.5;  // 5x average error
  double prev = -1e300;
  for (double alpha : {0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99}) {
    ScoringContext ctx(n, total, alpha);
    const double score = ctx.Score(size, se);
    EXPECT_GT(score, prev) << "alpha " << alpha;
    prev = score;
  }
}

TEST(ScoringTest, AlphaOneIgnoresSize) {
  ScoringContext ctx(1000, 100.0, 1.0);
  // With alpha = 1 the size term vanishes: score depends on rel error only.
  EXPECT_NEAR(ctx.Score(10, 10 * 0.3), ctx.Score(500, 500 * 0.3), 1e-9);
}

TEST(ScoringTest, VectorizedMatchesScalar) {
  ScoringContext ctx(500, 77.0, 0.9);
  std::vector<double> sizes = {10, 100, 250};
  std::vector<double> errs = {5.0, 10.0, 60.0};
  std::vector<double> scores = ctx.ScoreAll(sizes, errs);
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i],
                     ctx.Score(static_cast<int64_t>(sizes[i]), errs[i]));
  }
}

TEST(ScoringTest, AccessorsExposeContext) {
  ScoringContext ctx(200, 50.0, 0.7);
  EXPECT_EQ(ctx.n(), 200);
  EXPECT_DOUBLE_EQ(ctx.total_error(), 50.0);
  EXPECT_DOUBLE_EQ(ctx.average_error(), 0.25);
  EXPECT_DOUBLE_EQ(ctx.alpha(), 0.7);
}

}  // namespace
}  // namespace sliceline::core
