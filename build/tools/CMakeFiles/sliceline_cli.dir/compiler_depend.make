# Empty compiler generated dependencies file for sliceline_cli.
# This may be replaced when dependencies are built.
