// Trace recorder: enable/disable semantics, span and instant recording
// across threads, the structured-event counter side channel, and
// Chrome-trace export validity (strict JSON with the traceEvents envelope).
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TraceRecorder::Default()->enabled();
    metrics_were_enabled_ = MetricsEnabled();
    TraceRecorder::Default()->Clear();
    TraceRecorder::Default()->SetEnabled(true);
    SetMetricsEnabled(true);
    MetricsRegistry::Default()->ResetValues();
  }
  void TearDown() override {
    TraceRecorder::Default()->Clear();
    TraceRecorder::Default()->SetEnabled(was_enabled_);
    MetricsRegistry::Default()->ResetValues();
    SetMetricsEnabled(metrics_were_enabled_);
  }

 private:
  bool was_enabled_ = false;
  bool metrics_were_enabled_ = false;
};

TEST_F(TraceTest, DisabledRecorderDropsSpans) {
  TraceRecorder::Default()->SetEnabled(false);
  { TRACE_SPAN("test/disabled"); }
  TraceInstant("test", "disabled_instant");
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 0u);
}

TEST_F(TraceTest, SpansAndInstantsAreRecorded) {
  {
    TRACE_SPAN("test/outer");
    { TRACE_SPAN("test/inner", 3); }
  }
  TraceInstant("test", "marker", 7);
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 3u);
}

TEST_F(TraceTest, InstantBumpsStructuredEventCounter) {
  TraceInstant("governance", "degrade_raise_sigma", 2);
  TraceInstant("governance", "degrade_raise_sigma", 3);
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetCounter("events/governance/degrade_raise_sigma")
                ->Value(),
            2);
}

TEST_F(TraceTest, ExportIsStrictJsonWithEnvelope) {
  {
    TRACE_SPAN("test/span", 42);
  }
  TraceInstant("test", "instant");
  std::ostringstream os;
  TraceRecorder::Default()->ExportChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_EQ(ValidateStrictJson(trace), "") << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"test/span\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"v\":42}"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceExportsValidJson) {
  std::ostringstream os;
  TraceRecorder::Default()->ExportChromeTrace(os);
  EXPECT_EQ(ValidateStrictJson(os.str()), "") << os.str();
}

TEST_F(TraceTest, ConcurrentSpansAllLand) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TRACE_SPAN("test/concurrent", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(TraceRecorder::Default()->EventCount(),
            static_cast<size_t>(kThreads) * kSpans);
  std::ostringstream os;
  TraceRecorder::Default()->ExportChromeTrace(os);
  EXPECT_EQ(ValidateStrictJson(os.str()), "");
}

TEST_F(TraceTest, ClearDropsEverything) {
  { TRACE_SPAN("test/span"); }
  ASSERT_GT(TraceRecorder::Default()->EventCount(), 0u);
  TraceRecorder::Default()->Clear();
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 0u);
}

TEST_F(TraceTest, BoundedBuffersDropPastCapAndCountDrops) {
  // A long-running daemon with tracing left on must not grow without
  // limit: events past kMaxEventsPerThread are dropped, and the loss is
  // visible on the dropped-events counter. Flood from a dedicated thread
  // so only that thread's buffer fills.
  constexpr size_t kOverflow = 100;
  std::thread([&] {
    for (size_t i = 0;
         i < TraceRecorder::kMaxEventsPerThread + kOverflow; ++i) {
      TRACE_SPAN("test/flood");
    }
  }).join();
  EXPECT_EQ(TraceRecorder::Default()->EventCount(),
            TraceRecorder::kMaxEventsPerThread);
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetCounter("obs/trace/dropped_events")
                ->Value(),
            static_cast<double>(kOverflow));
}

TEST_F(TraceTest, ScopedTraceContextStampsEventsAndNests) {
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
  {
    ScopedTraceContext outer({/*trace_id=*/42, /*parent_span_id=*/7});
    EXPECT_EQ(CurrentTraceContext().trace_id, 42u);
    EXPECT_EQ(CurrentTraceContext().parent_span_id, 7);
    { TRACE_SPAN("test/outer_ctx"); }
    {
      ScopedTraceContext inner({/*trace_id=*/43, /*parent_span_id=*/0});
      { TRACE_SPAN("test/inner_ctx"); }
    }
    // Nested contexts restore: back on the outer identity.
    EXPECT_EQ(CurrentTraceContext().trace_id, 42u);
    TraceInstant("test", "outer_instant");
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);

  const std::vector<TraceEvent> events =
      TraceRecorder::Default()->TakeEvents();
  ASSERT_EQ(events.size(), 3u);
  size_t stamped_42 = 0;
  size_t stamped_43 = 0;
  for (const TraceEvent& event : events) {
    if (event.trace_id == 42u) {
      EXPECT_EQ(event.parent_span_id, 7);
      ++stamped_42;
    } else if (event.trace_id == 43u) {
      EXPECT_EQ(event.parent_span_id, 0);
      ++stamped_43;
    }
  }
  EXPECT_EQ(stamped_42, 2u);  // outer span + instant
  EXPECT_EQ(stamped_43, 1u);
}

TEST_F(TraceTest, TakeEventsForTraceDrainsOnlyThatJob) {
  // Two jobs and ambient (untraced) activity share one process-wide
  // recorder; draining one job's id must not disturb the others.
  {
    ScopedTraceContext job_a({/*trace_id=*/0xA11CE, /*parent_span_id=*/0});
    { TRACE_SPAN("test/job_a_1"); }
    { TRACE_SPAN("test/job_a_2"); }
  }
  {
    ScopedTraceContext job_b({/*trace_id=*/0xB0B, /*parent_span_id=*/0});
    { TRACE_SPAN("test/job_b"); }
  }
  { TRACE_SPAN("test/ambient"); }
  ASSERT_EQ(TraceRecorder::Default()->EventCount(), 4u);

  std::vector<TraceEvent> job_a_events =
      TraceRecorder::Default()->TakeEventsForTrace(0xA11CE);
  ASSERT_EQ(job_a_events.size(), 2u);
  for (const TraceEvent& event : job_a_events) {
    EXPECT_EQ(event.trace_id, 0xA11CEu);
  }
  // Job B's span and the ambient span are still buffered.
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 2u);
  // A second drain of the same id comes back empty.
  EXPECT_TRUE(TraceRecorder::Default()->TakeEventsForTrace(0xA11CE).empty());
  EXPECT_EQ(TraceRecorder::Default()->TakeEventsForTrace(0xB0B).size(), 1u);
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 1u);
}

TEST_F(TraceTest, SpanStartedWhileEnabledRecordsAfterDisable) {
  // The enabled check is at construction: a span that begins enabled must
  // not vanish because tracing flipped off before it ended.
  {
    TRACE_SPAN("test/straddler");
    TraceRecorder::Default()->SetEnabled(false);
  }
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 1u);
}

}  // namespace
}  // namespace sliceline::obs
