#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::data {

// Covtype-like forest-cover dataset: 10 binned continuous features (10 bins
// each), 4 binary wilderness indicators, and 40 binary soil-type indicators,
// for l = 100 + 8 + 80 = 188 (Table 1). As in the real data exactly one
// wilderness and one soil indicator is set per row, which creates the strong
// correlations (conjunctions of many "absent" indicators remain huge slices)
// that force the paper to cap the lattice at ⌈L⌉ = 4.
EncodedDataset MakeCovtype(const DatasetOptions& options) {
  const int64_t n = internal::ResolveRows(options, 29051);  // paper: 581012
  Rng rng(options.seed + 2);

  const int kContinuous = 10;
  const int kWilderness = 4;
  const int kSoil = 40;
  const int m = kContinuous + kWilderness + kSoil;

  EncodedDataset ds;
  ds.name = "covtype";
  ds.task = Task::kClassification;
  ds.num_classes = 7;
  ds.x0 = IntMatrix(n, m);
  for (int j = 0; j < kContinuous; ++j) {
    ds.feature_names.push_back("cont" + std::to_string(j) + "_bin");
  }
  for (int j = 0; j < kWilderness; ++j) {
    ds.feature_names.push_back("wilderness" + std::to_string(j));
  }
  for (int j = 0; j < kSoil; ++j) {
    ds.feature_names.push_back("soil" + std::to_string(j));
  }

  // Two correlated groups among the continuous features (elevation drives
  // several derived measurements in the real data).
  FillCorrelatedGroup(ds.x0, {0, 1, 2}, {10, 10, 10}, 0.10, rng);
  FillCorrelatedGroup(ds.x0, {3, 4}, {10, 10}, 0.15, rng);
  for (int j = 5; j < kContinuous; ++j) {
    FillCategorical(ds.x0, j, 10, 0.25, rng);
  }

  ds.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // One-hot wilderness: feature code 2 = present, 1 = absent.
    const int wilderness = static_cast<int>(
        rng.NextCategorical({0.45, 0.30, 0.20, 0.05}));
    for (int j = 0; j < kWilderness; ++j) {
      ds.x0.At(i, kContinuous + j) = (j == wilderness) ? 2 : 1;
    }
    // One-hot soil type, heavy-tailed.
    const int soil = static_cast<int>(rng.NextZipf(kSoil, 0.9));
    for (int j = 0; j < kSoil; ++j) {
      ds.x0.At(i, kContinuous + kWilderness + j) = (j == soil) ? 2 : 1;
    }
    // Cover type driven by elevation-ish feature 0 and wilderness.
    int cls = (ds.x0.At(i, 0) * 7) / 11 + (wilderness % 2);
    if (rng.NextBool(0.2)) cls = static_cast<int>(rng.NextUint64(7));
    ds.y[i] = std::min(cls, 6);
  }

  ds.planted.push_back(PlantedSlice{{{0, 10}, {10, 2}}, 1.7});
  ds.planted.push_back(PlantedSlice{{{14, 2}, {3, 1}}, 1.5});

  // Bake the planted difficulty into the labels so trained models
  // genuinely struggle on these slices (held-out debugging works).
  InjectPlantedDifficulty(&ds, 0.0, 0.25, rng);

  ErrorSimOptions err;
  err.base_rate = 0.22;
  err.planted_rate = 0.50;
  ds.errors = SimulateModelErrors(ds, err, rng);
  return ds;
}

}  // namespace sliceline::data
