# Empty dependencies file for bench_systems_compare.
# This may be replaced when dependencies are built.
