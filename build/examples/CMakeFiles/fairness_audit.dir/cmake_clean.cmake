file(REMOVE_RECURSE
  "CMakeFiles/fairness_audit.dir/fairness_audit.cpp.o"
  "CMakeFiles/fairness_audit.dir/fairness_audit.cpp.o.d"
  "fairness_audit"
  "fairness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
