#include "stream/segment.h"

#include <cmath>
#include <utility>

#include "common/hashing.h"

namespace sliceline::stream {

uint64_t ChainFingerprint(uint64_t parent, const data::IntMatrix& delta,
                          const std::vector<double>& errors) {
  Fnv1a h;
  h.Add64(parent);
  h.Add64(static_cast<uint64_t>(delta.rows()));
  h.Add64(static_cast<uint64_t>(delta.cols()));
  if (!delta.data().empty()) {
    h.AddBytes(delta.data().data(),
               delta.data().size() * sizeof(delta.data()[0]));
  }
  for (double e : errors) h.AddDouble(e);
  return h.hash();
}

uint64_t BaseFingerprint(const data::IntMatrix& x0,
                         const std::vector<double>& errors) {
  return ChainFingerprint(0, x0, errors);
}

data::FeatureOffsets OffsetsFromDomains(const std::vector<int32_t>& domains) {
  data::FeatureOffsets offsets;
  offsets.fdom = domains;
  offsets.fb.reserve(domains.size());
  offsets.fe.reserve(domains.size());
  int64_t at = 0;
  for (int32_t d : domains) {
    offsets.fb.push_back(at);
    at += d;
    offsets.fe.push_back(at);
  }
  offsets.total = at;
  return offsets;
}

StatusOr<SegmentStore> SegmentStore::Create(data::IntMatrix base_x0,
                                            std::vector<double> base_errors,
                                            std::vector<int32_t> domains) {
  if (base_x0.rows() < 1) {
    return Status::InvalidArgument("segment store needs a non-empty base");
  }
  if (domains.empty()) {
    domains = base_x0.ColMaxs();
  } else if (domains.size() != static_cast<size_t>(base_x0.cols())) {
    return Status::InvalidArgument("domains size does not match columns");
  }
  SegmentStore store;
  store.offsets_ = OffsetsFromDomains(domains);
  store.x0_ = data::IntMatrix(0, base_x0.cols());
  store.basic_sizes_.assign(static_cast<size_t>(store.offsets_.total), 0);
  store.basic_error_sums_.assign(static_cast<size_t>(store.offsets_.total),
                                 0.0);
  store.basic_max_errors_.assign(static_cast<size_t>(store.offsets_.total),
                                 0.0);
  store.col_words_.resize(static_cast<size_t>(store.offsets_.total));
  store.boundary_counts_[0] = store.basic_sizes_;
  SLICELINE_RETURN_NOT_OK(store.Validate(base_x0, base_errors));
  store.Ingest(base_x0, base_errors);
  store.fingerprint_ = BaseFingerprint(base_x0, base_errors);
  store.base_rows_ = base_x0.rows();
  return store;
}

Status SegmentStore::Validate(const data::IntMatrix& delta,
                              const std::vector<double>& errors) const {
  if (delta.rows() < 1) {
    return Status::InvalidArgument("append must carry at least one row");
  }
  if (delta.cols() != x0_.cols()) {
    return Status::InvalidArgument("append column count mismatch");
  }
  if (errors.size() != static_cast<size_t>(delta.rows())) {
    return Status::InvalidArgument("append errors size mismatch");
  }
  for (double e : errors) {
    if (!std::isfinite(e) || e < 0.0) {
      return Status::InvalidArgument(
          "errors must be non-negative finite values");
    }
  }
  for (int64_t r = 0; r < delta.rows(); ++r) {
    const int32_t* row = delta.row(r);
    for (int64_t j = 0; j < delta.cols(); ++j) {
      if (row[j] < 1 || row[j] > offsets_.fdom[static_cast<size_t>(j)]) {
        return Status::InvalidArgument(
            "code " + std::to_string(row[j]) + " outside frozen domain [1, " +
            std::to_string(offsets_.fdom[static_cast<size_t>(j)]) +
            "] for feature " + std::to_string(j));
      }
    }
  }
  return Status::OK();
}

void SegmentStore::Ingest(const data::IntMatrix& delta,
                          const std::vector<double>& delta_errors) {
  const int64_t row_begin = x0_.rows();
  const int64_t new_n = row_begin + delta.rows();
  const int64_t new_words = linalg::BitmapWords(new_n);
  if (new_words != words_) {
    // Padded word counts only grow, and prefix words keep their values, so
    // segment bitmaps concatenate without repacking.
    for (auto& words : col_words_) {
      words.resize(static_cast<size_t>(new_words), 0);
    }
    words_ = new_words;
  }
  // One ascending-row pass extends every per-column float chain in order:
  // the continuation of the exact chain a from-scratch build would run.
  for (int64_t r = 0; r < delta.rows(); ++r) {
    const int64_t row = row_begin + r;
    const double e = delta_errors[static_cast<size_t>(r)];
    const int32_t* codes = delta.row(r);
    for (int64_t j = 0; j < delta.cols(); ++j) {
      const size_t col = static_cast<size_t>(
          offsets_.fb[static_cast<size_t>(j)] + codes[j] - 1);
      col_words_[col][static_cast<size_t>(row >> 6)] |= 1ULL
                                                        << (row & 63);
      basic_sizes_[col] += 1;
      basic_error_sums_[col] += e;
      if (e > basic_max_errors_[col]) basic_max_errors_[col] = e;
    }
    total_error_ += e;
    errors_.push_back(e);
  }
  x0_.AppendRows(delta);
}

Status SegmentStore::Append(const data::IntMatrix& delta_x0,
                            const std::vector<double>& delta_errors,
                            double ingest_seconds) {
  SLICELINE_RETURN_NOT_OK(Validate(delta_x0, delta_errors));
  const int64_t row_begin = x0_.rows();
  // Snapshot cumulative counts at the boundary *before* ingesting, so the
  // untouched-column fast path can ask "did any rows in [P, n) hit column
  // c" by differencing against the current counts.
  boundary_counts_[row_begin] = basic_sizes_;
  Ingest(delta_x0, delta_errors);
  fingerprint_ = ChainFingerprint(fingerprint_, delta_x0, delta_errors);
  DeltaSegment segment;
  segment.row_begin = row_begin;
  segment.row_end = x0_.rows();
  segment.fingerprint = fingerprint_;
  segment.ingest_seconds = ingest_seconds;
  segments_.push_back(segment);
  return Status::OK();
}

void SegmentStore::Compact() {
  if (segments_.empty()) return;
  base_rows_ = x0_.rows();
  segments_.clear();
  boundary_counts_.clear();
  boundary_counts_[0].assign(static_cast<size_t>(offsets_.total), 0);
  ++compactions_;
}

bool SegmentStore::MaybeCompact(double ratio) {
  if (segments_.empty() || ratio <= 0.0) return false;
  const int64_t delta_rows = x0_.rows() - base_rows_;
  if (static_cast<double>(delta_rows) <=
      ratio * static_cast<double>(base_rows_)) {
    return false;
  }
  Compact();
  return true;
}

const std::vector<int64_t>* SegmentStore::BoundaryCounts(int64_t row) const {
  auto it = boundary_counts_.find(row);
  if (it == boundary_counts_.end()) return nullptr;
  return &it->second;
}

}  // namespace sliceline::stream
