#ifndef SLICELINE_BASELINE_ERROR_TREE_H_
#define SLICELINE_BASELINE_ERROR_TREE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "data/int_matrix.h"

namespace sliceline::baseline {

/// Configuration of the decision-tree baseline.
struct ErrorTreeConfig {
  int max_depth = 3;        ///< maximum predicates per leaf slice
  int64_t min_support = 0;  ///< 0 = max(32, ceil(n/100))
  /// Minimum relative improvement in weighted error variance for a split.
  double min_gain = 1e-3;
  int k = 4;                ///< leaves reported (highest mean error first)
};

/// Result: the worst leaves as slices plus tree statistics. Leaf row sets
/// partition the data (non-overlapping by construction); the reported
/// predicate lists are the positive path conjunctions with the negated
/// "rest" branches elided, and stats describe the actual leaf rows.
struct ErrorTreeResult {
  std::vector<core::Slice> slices;  ///< stats.score = mean leaf error
  int nodes = 0;
  int leaves = 0;
  double total_seconds = 0.0;
};

/// Decision-tree slice baseline (the non-overlapping alternative the
/// SliceFinder work proposes and the paper contrasts against): greedily
/// grows a tree that partitions the data by equality predicates, choosing
/// at each node the (feature = value) split that best separates high-error
/// from low-error rows (variance reduction on e). Leaves with the highest
/// mean error become the reported slices. Because the leaves partition X,
/// overlapping problem slices -- SliceLine's specialty -- cannot be
/// expressed, which is exactly the gap the comparison benchmark shows.
StatusOr<ErrorTreeResult> RunErrorTree(const data::IntMatrix& x0,
                                       const std::vector<double>& errors,
                                       const ErrorTreeConfig& config);

}  // namespace sliceline::baseline

#endif  // SLICELINE_BASELINE_ERROR_TREE_H_
