// Distributed-style model debugging: run the identical SliceLine search
// with the row-sharded, broadcast-based executor (the shape of the paper's
// Spark deployment) and inspect the communication profile. Results are
// bit-identical to local execution; only the execution strategy differs.
#include <cstdio>

#include "core/report.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"
#include "dist/distributed_evaluator.h"

int main() {
  using namespace sliceline;

  data::DatasetOptions options;
  options.rows = 30000;
  data::EncodedDataset ds = data::MakeUsCensus(options);
  std::printf("dataset: %s, n=%lld, m=%lld\n\n", ds.name.c_str(),
              static_cast<long long>(ds.n()),
              static_cast<long long>(ds.m()));

  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  config.max_level = 3;

  auto local = core::RunSliceLine(ds, config);
  if (!local.ok()) {
    std::fprintf(stderr, "local run failed: %s\n",
                 local.status().ToString().c_str());
    return 1;
  }

  dist::DistOptions dopts;
  dopts.workers = 8;
  dist::DistCostStats cost;
  auto distributed =
      dist::RunSliceLineDistributed(ds.x0, ds.errors, config, dopts, &cost);
  if (!distributed.ok()) {
    std::fprintf(stderr, "distributed run failed: %s\n",
                 distributed.status().ToString().c_str());
    return 1;
  }

  std::printf("local:       %s\n",
              core::SummarizeResult(*local).c_str());
  std::printf("distributed: %s\n\n",
              core::SummarizeResult(*distributed).c_str());
  std::printf("distributed profile (%d workers):\n", dopts.workers);
  std::printf("  evaluation rounds : %lld (one slice-set broadcast each)\n",
              static_cast<long long>(cost.rounds));
  std::printf("  broadcast bytes   : %lld\n",
              static_cast<long long>(cost.broadcast_bytes));
  std::printf("  gather bytes      : %lld\n",
              static_cast<long long>(cost.gather_bytes));
  std::printf("  worker busy time  : %.3fs (sum over workers)\n",
              cost.worker_busy_seconds);
  std::printf("  critical path     : %.3fs (slowest worker per round)\n",
              cost.critical_path_seconds);
  std::printf("  comm estimate     : %.3fs (10GbE model)\n\n",
              cost.EstimatedCommSeconds(dopts));

  std::printf("top slices (identical under both executors):\n%s",
              core::FormatResult(*distributed, ds.feature_names).c_str());
  return 0;
}
