#include "data/preprocess.h"

#include <algorithm>
#include <cmath>

#include "data/binning.h"
#include "data/recode.h"

namespace sliceline::data {

StatusOr<EncodedDataset> Preprocess(const Frame& frame,
                                    const PreprocessOptions& options) {
  if (options.label_column.empty()) {
    return Status::InvalidArgument("label_column must be set");
  }
  SLICELINE_ASSIGN_OR_RETURN(int64_t label_idx,
                             frame.ColumnIndex(options.label_column));

  std::vector<int64_t> feature_cols;
  for (int64_t j = 0; j < frame.num_columns(); ++j) {
    if (j == label_idx) continue;
    const std::string& name = frame.column(j).name();
    if (std::find(options.drop_columns.begin(), options.drop_columns.end(),
                  name) != options.drop_columns.end()) {
      continue;
    }
    feature_cols.push_back(j);
  }
  if (feature_cols.empty()) {
    return Status::InvalidArgument("no feature columns left after drops");
  }

  const int64_t n = frame.num_rows();
  EncodedDataset ds;
  ds.task = options.task;
  ds.x0 = IntMatrix(n, static_cast<int64_t>(feature_cols.size()));

  for (size_t fj = 0; fj < feature_cols.size(); ++fj) {
    const Column& col = frame.column(feature_cols[fj]);
    ds.feature_names.push_back(col.name());
    if (col.is_numeric()) {
      SLICELINE_ASSIGN_OR_RETURN(
          EquiWidthBinner binner,
          EquiWidthBinner::Fit(col.numeric(), options.num_bins));
      const std::vector<int32_t> codes = binner.EncodeAll(col.numeric());
      for (int64_t i = 0; i < n; ++i) ds.x0.At(i, fj) = codes[i];
    } else {
      const RecodeMap map = RecodeMap::Fit(col.categorical());
      SLICELINE_ASSIGN_OR_RETURN(std::vector<int32_t> codes,
                                 map.EncodeAll(col.categorical()));
      for (int64_t i = 0; i < n; ++i) ds.x0.At(i, fj) = codes[i];
    }
  }

  const Column& label = frame.column(label_idx);
  ds.y.resize(n);
  if (options.task == Task::kRegression) {
    if (!label.is_numeric()) {
      return Status::InvalidArgument("regression label must be numeric");
    }
    for (int64_t i = 0; i < n; ++i) {
      const double v = label.numeric()[i];
      if (std::isnan(v)) {
        return Status::InvalidArgument("regression label has missing values");
      }
      ds.y[i] = v;
    }
  } else {
    // Classification: recode (string) or round (numeric) to 0-based classes.
    if (label.is_numeric()) {
      double max_class = 0;
      for (int64_t i = 0; i < n; ++i) {
        ds.y[i] = label.numeric()[i];
        max_class = std::max(max_class, ds.y[i]);
      }
      ds.num_classes = static_cast<int>(max_class) + 1;
    } else {
      const RecodeMap map = RecodeMap::Fit(label.categorical());
      SLICELINE_ASSIGN_OR_RETURN(std::vector<int32_t> codes,
                                 map.EncodeAll(label.categorical()));
      for (int64_t i = 0; i < n; ++i) ds.y[i] = codes[i] - 1;
      ds.num_classes = map.domain();
    }
  }
  return ds;
}

}  // namespace sliceline::data
