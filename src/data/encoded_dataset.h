#ifndef SLICELINE_DATA_ENCODED_DATASET_H_
#define SLICELINE_DATA_ENCODED_DATASET_H_

#include <string>
#include <vector>

#include "data/int_matrix.h"

namespace sliceline::data {

/// Prediction task type of a dataset.
enum class Task {
  kRegression,
  kClassification,
};

/// A ground-truth problematic slice planted by a synthetic generator:
/// rows matching all (feature, code) predicates received elevated error.
struct PlantedSlice {
  /// Pairs of (feature index, 1-based code).
  std::vector<std::pair<int, int32_t>> predicates;
  /// Multiplier / flip probability applied to the matching rows' errors.
  double severity = 2.0;
};

/// A fully prepared slice-finding input: integer-encoded features, labels,
/// task type, and (for synthetic data) the generator's ground truth. This is
/// what Table 1 of the paper characterizes per dataset.
struct EncodedDataset {
  std::string name;
  IntMatrix x0;              ///< n x m feature codes, 1-based per column.
  std::vector<double> y;     ///< labels: target (regression) or class id.
  Task task = Task::kClassification;
  int num_classes = 2;       ///< classification only.

  std::vector<std::string> feature_names;           ///< size m (optional).
  std::vector<PlantedSlice> planted;                ///< synthetic only.

  /// Pre-materialized model errors e >= 0 (squared loss or inaccuracy),
  /// row-aligned with x0. Generators fill this with the errors of the
  /// simulated model so benchmarks match the paper's setup (errors are
  /// materialized before slice finding); examples instead train a real model
  /// via ml/ and overwrite it.
  std::vector<double> errors;

  int64_t n() const { return x0.rows(); }
  int64_t m() const { return x0.cols(); }

  /// Total one-hot width l = sum of feature domains.
  int64_t OneHotWidth() const {
    int64_t l = 0;
    for (int32_t d : x0.ColMaxs()) l += d;
    return l;
  }
};

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_ENCODED_DATASET_H_
