#include "obs/trace_merge.h"

#include "obs/json_writer.h"

namespace sliceline::obs {

RemoteSpan RemoteSpanFromEvent(const TraceEvent& event) {
  RemoteSpan span;
  span.name = event.name;
  span.category = event.category;
  span.phase = event.phase;
  span.ts_us = event.ts_us;
  span.dur_us = event.dur_us;
  span.tid = static_cast<int64_t>(event.tid);
  span.has_arg = event.has_arg;
  span.arg = event.arg;
  span.trace_id = event.trace_id;
  span.parent_span_id = event.parent_span_id;
  span.detail = event.detail;
  return span;
}

void WriteMergedChromeTrace(const std::vector<ProcessTrack>& tracks,
                            std::ostream& os) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (size_t i = 0; i < tracks.size(); ++i) {
    const ProcessTrack& track = tracks[i];
    const int64_t pid = static_cast<int64_t>(i) + 1;
    // Name the lane: Perfetto's track-per-process view keys on this.
    json.BeginObject();
    json.Key("name");
    json.String("process_name");
    json.Key("ph");
    json.String("M");
    json.Key("pid");
    json.Int(pid);
    json.Key("tid");
    json.Int(0);
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    json.String(track.label);
    json.EndObject();
    json.EndObject();
    for (const RemoteSpan& span : track.spans) {
      json.BeginObject();
      json.Key("name");
      json.String(span.name);
      json.Key("cat");
      json.String(span.category);
      json.Key("ph");
      json.String(std::string(1, span.phase));
      json.Key("ts");
      json.Int(span.ts_us - track.clock_offset_us);
      if (span.phase == 'X') {
        json.Key("dur");
        json.Int(span.dur_us);
      }
      if (span.phase == 'i') {
        json.Key("s");
        json.String("t");
      }
      json.Key("pid");
      json.Int(pid);
      json.Key("tid");
      json.Int(span.tid);
      const bool has_args = span.has_arg || !span.detail.empty() ||
                            span.trace_id != 0 || span.parent_span_id != 0;
      if (has_args) {
        json.Key("args");
        json.BeginObject();
        if (span.has_arg) {
          json.Key("v");
          json.Int(span.arg);
        }
        if (!span.detail.empty()) {
          json.Key("detail");
          json.String(span.detail);
        }
        if (span.trace_id != 0) {
          json.Key("trace_id");
          json.String(std::to_string(span.trace_id));
        }
        if (span.parent_span_id != 0) {
          json.Key("parent_span_id");
          json.Int(span.parent_span_id);
        }
        json.EndObject();
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.EndObject();
}

}  // namespace sliceline::obs
