file(REMOVE_RECURSE
  "CMakeFiles/sliceline_linalg.dir/linalg/csr_matrix.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/csr_matrix.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/dense_matrix.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/dense_matrix.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_construct.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_construct.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_elementwise.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_elementwise.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_reduce.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_reduce.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_select.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_select.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_spgemm.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/kernels_spgemm.cc.o.d"
  "CMakeFiles/sliceline_linalg.dir/linalg/matrix_io.cc.o"
  "CMakeFiles/sliceline_linalg.dir/linalg/matrix_io.cc.o.d"
  "libsliceline_linalg.a"
  "libsliceline_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
