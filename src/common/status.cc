#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace sliceline {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace sliceline
