#ifndef SLICELINE_OBS_PROMETHEUS_VALIDATE_H_
#define SLICELINE_OBS_PROMETHEUS_VALIDATE_H_

#include <string>

namespace sliceline::obs {

/// Validates `text` against the Prometheus text exposition format subset
/// that RunReport::WritePrometheus emits:
///   * every metric family is introduced by exactly one
///     `# TYPE <name> counter|gauge|histogram` line;
///   * sample lines are `<name>[{le="<bound>"}] <value>` where <name> is a
///     valid Prometheus identifier matching the family (histograms may
///     append _bucket/_sum/_count) and <value> parses as a decimal number;
///   * histogram bucket counts are cumulative and end with an le="+Inf"
///     bucket equal to <name>_count.
/// Returns the empty string when valid, otherwise "<message> at line <n>".
/// Shared by the /metrics endpoint tests and the run-report schema tests so
/// "valid exposition" means the same thing everywhere.
std::string ValidatePrometheusText(const std::string& text);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_PROMETHEUS_VALIDATE_H_
