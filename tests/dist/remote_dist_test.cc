#include "dist/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/sliceline.h"
#include "dist/distributed_evaluator.h"
#include "dist/worker.h"

namespace sliceline::dist {
namespace {

struct RandomInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

RandomInput MakeRandom(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  RandomInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) e = rng.NextBool(0.3) ? rng.NextDouble() : 0.0;
  return input;
}

/// An in-process worker fleet on kernel-assigned loopback ports.
class WorkerFleet {
 public:
  explicit WorkerFleet(int count, int64_t drop_every = 0) {
    for (int i = 0; i < count; ++i) {
      WorkerOptions options;
      options.tcp_port = 0;
      options.drop_every = drop_every;
      workers_.push_back(std::make_unique<Worker>(options));
      EXPECT_TRUE(workers_.back()->Start().ok());
    }
  }

  std::vector<WorkerEndpoint> endpoints() const {
    std::vector<WorkerEndpoint> out;
    for (const auto& worker : workers_) {
      out.push_back(WorkerEndpoint{"", worker->tcp_port()});
    }
    return out;
  }

  /// Stops worker `i` (its port stays closed afterwards).
  void Kill(size_t i) {
    workers_[i]->RequestShutdown();
    workers_[i]->Wait();
  }

  /// Restarts worker `i` on its previous port with a fresh session.
  void Restart(size_t i) {
    const int port = workers_[i]->tcp_port();
    Kill(i);
    WorkerOptions options;
    options.tcp_port = port;
    workers_[i] = std::make_unique<Worker>(options);
    ASSERT_TRUE(workers_[i]->Start().ok());
  }

  Worker& worker(size_t i) { return *workers_[i]; }

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
};

RemoteDistOptions FastOptions(const WorkerFleet& fleet) {
  RemoteDistOptions options;
  options.endpoints = fleet.endpoints();
  options.connect_timeout_ms = 500;
  options.request_timeout_ms = 5000;
  options.straggler_after_ms = 60000;  // no spurious speculation in tests
  options.max_retries = 3;
  options.backoff_base_seconds = 0.005;
  return options;
}

TEST(RemoteDistTest, BitIdenticalToSimulatedEvaluator) {
  RandomInput input = MakeRandom(11, 400, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 10;

  WorkerFleet fleet(3);
  DistCostStats cost;
  DistFaultStats faults;
  auto remote = RunSliceLineRemote(input.x0, input.errors, config,
                                   FastOptions(fleet), &cost, &faults);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  DistOptions sim_options;
  sim_options.workers = 3;
  auto simulated = RunSliceLineDistributed(input.x0, input.errors, config,
                                           sim_options);
  ASSERT_TRUE(simulated.ok());

  // Same shard boundaries, same per-shard evaluation, same shard-order
  // merge: every floating-point value must match bit for bit.
  ASSERT_EQ(remote->top_k.size(), simulated->top_k.size());
  for (size_t i = 0; i < remote->top_k.size(); ++i) {
    EXPECT_EQ(remote->top_k[i].stats.score, simulated->top_k[i].stats.score);
    EXPECT_EQ(remote->top_k[i].stats.size, simulated->top_k[i].stats.size);
    EXPECT_EQ(remote->top_k[i].predicates, simulated->top_k[i].predicates);
  }
  ASSERT_EQ(remote->levels.size(), simulated->levels.size());
  for (size_t i = 0; i < remote->levels.size(); ++i) {
    EXPECT_EQ(remote->levels[i].candidates, simulated->levels[i].candidates);
  }
  EXPECT_EQ(faults.workers_lost, 0);
  EXPECT_FALSE(faults.fallback_local);
  EXPECT_FALSE(remote->outcome.dist_fallback_local);
  EXPECT_GT(cost.broadcast_bytes, 0);
  EXPECT_GT(cost.gather_bytes, 0);
}

TEST(RemoteDistTest, MatchesLocalExecution) {
  RandomInput input = MakeRandom(29, 500, 4, 3);
  core::SliceLineConfig config;
  config.k = 4;
  config.min_support = 12;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  WorkerFleet fleet(4);
  auto remote = RunSliceLineRemote(input.x0, input.errors, config,
                                   FastOptions(fleet));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->top_k.size(), local->top_k.size());
  for (size_t i = 0; i < remote->top_k.size(); ++i) {
    EXPECT_NEAR(remote->top_k[i].stats.score, local->top_k[i].stats.score,
                1e-9);
    EXPECT_EQ(remote->top_k[i].stats.size, local->top_k[i].stats.size);
    EXPECT_EQ(remote->top_k[i].predicates, local->top_k[i].predicates);
  }
}

TEST(RemoteDistTest, WorkerDeathMidRunReshardsOntoSurvivors) {
  RandomInput input = MakeRandom(7, 400, 4, 3);
  core::SliceLineConfig config;
  config.k = 4;
  config.min_support = 10;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  WorkerFleet fleet(3);
  RemoteDistOptions options = FastOptions(fleet);
  options.request_timeout_ms = 1000;
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) fleet.Kill(1);
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ((*eval)->faults().workers_lost, 1);
  EXPECT_GT((*eval)->faults().reshards, 0);
  EXPECT_GT((*eval)->faults().transient_failures, 0);
  EXPECT_FALSE((*eval)->faults().fallback_local);
  EXPECT_EQ((*eval)->alive_workers(), 2);

  // Shard boundaries never changed, so recovery is invisible in the result.
  ASSERT_EQ(result->top_k.size(), local->top_k.size());
  for (size_t i = 0; i < result->top_k.size(); ++i) {
    EXPECT_NEAR(result->top_k[i].stats.score, local->top_k[i].stats.score,
                1e-9);
    EXPECT_EQ(result->top_k[i].predicates, local->top_k[i].predicates);
  }
}

TEST(RemoteDistTest, TooManyDeathsDegradeToLocalFallback) {
  RandomInput input = MakeRandom(17, 300, 4, 3);
  core::SliceLineConfig config;
  config.k = 4;
  config.min_support = 8;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  WorkerFleet fleet(4);
  RemoteDistOptions options = FastOptions(fleet);
  options.request_timeout_ms = 1000;
  options.max_lost_fraction = 0.25;  // a second loss crosses the threshold
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) {
      fleet.Kill(0);
      fleet.Kill(2);
    }
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE((*eval)->faults().fallback_local);
  EXPECT_GE((*eval)->faults().workers_lost, 1);
  // The fallback evaluates the full matrix locally: results stay exact.
  ASSERT_EQ(result->top_k.size(), local->top_k.size());
  for (size_t i = 0; i < result->top_k.size(); ++i) {
    EXPECT_NEAR(result->top_k[i].stats.score, local->top_k[i].stats.score,
                1e-9);
    EXPECT_EQ(result->top_k[i].predicates, local->top_k[i].predicates);
  }
}

TEST(RemoteDistTest, DegradationIsRecordedInRunOutcome) {
  RandomInput input = MakeRandom(17, 200, 3, 3);
  core::SliceLineConfig config;
  config.k = 3;
  config.min_support = 8;
  // Endpoints that point at nothing: every worker is unreachable, so setup
  // degrades immediately and the run completes on the local fallback.
  RemoteDistOptions options;
  options.endpoints = {WorkerEndpoint{"", 1}, WorkerEndpoint{"", 1}};
  options.connect_timeout_ms = 100;
  options.request_timeout_ms = 200;
  options.max_retries = 0;
  options.backoff_base_seconds = 0.001;
  DistFaultStats faults;
  auto result = RunSliceLineRemote(input.x0, input.errors, config, options,
                                   nullptr, &faults);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(faults.fallback_local);
  EXPECT_TRUE(result->outcome.dist_fallback_local);
  EXPECT_TRUE(result->outcome.WellFormed());
  EXPECT_FALSE(result->outcome.partial);

  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(result->top_k.size(), local->top_k.size());
  for (size_t i = 0; i < result->top_k.size(); ++i) {
    EXPECT_EQ(result->top_k[i].predicates, local->top_k[i].predicates);
  }
}

TEST(RemoteDistTest, TransientDropsAreRetriedTransparently) {
  RandomInput input = MakeRandom(41, 300, 4, 3);
  core::SliceLineConfig config;
  config.k = 4;
  config.min_support = 10;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  // Every 7th request is answered by an abrupt disconnect. Small eval
  // blocks force enough requests per worker that several drops fire.
  WorkerFleet fleet(2, /*drop_every=*/7);
  RemoteDistOptions options = FastOptions(fleet);
  options.request_timeout_ms = 1000;
  options.max_block_slices = 4;
  DistFaultStats faults;
  auto remote = RunSliceLineRemote(input.x0, input.errors, config, options,
                                   nullptr, &faults);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_GT(faults.transient_failures, 0);
  EXPECT_GT(faults.retries, 0);
  EXPECT_GT(faults.backoff_seconds, 0.0);
  EXPECT_FALSE(faults.fallback_local);
  ASSERT_EQ(remote->top_k.size(), local->top_k.size());
  for (size_t i = 0; i < remote->top_k.size(); ++i) {
    EXPECT_NEAR(remote->top_k[i].stats.score, local->top_k[i].stats.score,
                1e-9);
    EXPECT_EQ(remote->top_k[i].predicates, local->top_k[i].predicates);
  }
}

TEST(RemoteDistTest, WorkerRestartIsReenlistedAndReshipped) {
  RandomInput input = MakeRandom(53, 300, 4, 3);
  core::SliceLineConfig config;
  config.k = 4;
  config.min_support = 10;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  WorkerFleet fleet(2);
  RemoteDistOptions options = FastOptions(fleet);
  options.request_timeout_ms = 1000;
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  const std::string session_before = fleet.worker(1).session();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) fleet.Restart(1);
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The restarted worker came back with a fresh session; the coordinator
  // re-enlisted it and re-shipped its shard instead of losing it.
  EXPECT_NE(fleet.worker(1).session(), session_before);
  EXPECT_EQ((*eval)->faults().workers_lost, 0);
  EXPECT_FALSE((*eval)->faults().fallback_local);
  EXPECT_EQ((*eval)->alive_workers(), 2);
  ASSERT_EQ(result->top_k.size(), local->top_k.size());
  for (size_t i = 0; i < result->top_k.size(); ++i) {
    EXPECT_NEAR(result->top_k[i].stats.score, local->top_k[i].stats.score,
                1e-9);
    EXPECT_EQ(result->top_k[i].predicates, local->top_k[i].predicates);
  }
}

TEST(RemoteDistTest, ValidatesInputs) {
  RandomInput input = MakeRandom(13, 50, 2, 3);
  RemoteDistOptions options;  // no endpoints
  EXPECT_FALSE(
      RemoteSliceEvaluator::Create(input.x0, input.errors, options).ok());
  options.endpoints = {WorkerEndpoint{"", 1}};
  std::vector<double> wrong(10, 0.1);
  EXPECT_FALSE(RemoteSliceEvaluator::Create(input.x0, wrong, options).ok());
  options.max_lost_fraction = 2.0;
  EXPECT_FALSE(
      RemoteSliceEvaluator::Create(input.x0, input.errors, options).ok());
}

}  // namespace
}  // namespace sliceline::dist
