#ifndef SLICELINE_COMMON_SOCKET_H_
#define SLICELINE_COMMON_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sliceline {

/// Thin RAII wrapper over a connected stream socket (TCP or Unix-domain).
/// The serving layer's wire protocol is newline-delimited JSON, so the
/// primary read primitive is a length-guarded ReadLine; writes are
/// write-all with EINTR retry. Move-only; the destructor closes the fd.
class SocketConnection {
 public:
  SocketConnection() = default;
  explicit SocketConnection(int fd) : fd_(fd) {}
  ~SocketConnection();

  SocketConnection(const SocketConnection&) = delete;
  SocketConnection& operator=(const SocketConnection&) = delete;
  SocketConnection(SocketConnection&& other) noexcept;
  SocketConnection& operator=(SocketConnection&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads until '\n' (consumed, not returned) or EOF. A line longer than
  /// `max_bytes` returns ResourceExhausted without consuming the rest --
  /// the caller should drop the connection (the stream is desynchronized).
  /// EOF with no buffered bytes returns NotFound("eof").
  StatusOr<std::string> ReadLine(size_t max_bytes);

  /// ReadLine with a wall-clock deadline: waits at most `timeout_ms` in
  /// total (across however many reads the line needs) and returns
  /// DeadlineExceeded when the peer has not completed a line in time.
  /// `timeout_ms < 0` blocks indefinitely (same as the overload above).
  /// Bytes read before the deadline stay buffered, so a later retry on the
  /// same connection resumes mid-line instead of desynchronizing.
  StatusOr<std::string> ReadLine(size_t max_bytes, int timeout_ms);

  /// Reads until EOF or `max_bytes` (whichever first) and returns everything,
  /// including bytes buffered by a previous ReadLine. Used for HTTP-style
  /// responses that are terminated by connection close.
  StatusOr<std::string> ReadAll(size_t max_bytes);

  /// Waits up to `timeout_ms` for the connection to become readable (or to
  /// reach EOF). Returns true when readable, false on timeout. Lets a server
  /// poll for the next request while checking its shutdown flag.
  StatusOr<bool> WaitReadable(int timeout_ms);

  /// Writes all of `data`, retrying on EINTR / short writes. A closed peer
  /// surfaces as an EPIPE IoError Status (MSG_NOSIGNAL), never as SIGPIPE.
  Status WriteAll(const std::string& data);

  /// Length-guarded write of one LF-terminated protocol line: the same
  /// `max_bytes` guard the read side enforces, applied before anything hits
  /// the wire. `line` must include its trailing '\n' (which does not count
  /// against the guard, mirroring ReadLine). An oversized line returns
  /// ResourceExhausted without writing a single byte, so the stream stays
  /// synchronized and the caller can send a structured error instead.
  Status WriteLine(const std::string& line, size_t max_bytes);

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// Listening socket bound to either a loopback TCP port or a Unix-domain
/// socket path. Accept() polls with a timeout so a server can interleave
/// accepting with shutdown checks.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;

  /// Binds 127.0.0.1:`port` (port 0 = kernel-assigned; see bound_port()).
  static StatusOr<ListenSocket> ListenTcp(int port, int backlog = 64);

  /// Binds a Unix-domain socket at `path` (an existing socket file at the
  /// path is unlinked first; the file is unlinked again on destruction).
  static StatusOr<ListenSocket> ListenUnix(const std::string& path,
                                           int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  int bound_port() const { return port_; }
  const std::string& unix_path() const { return path_; }

  /// Waits up to `timeout_ms` for a connection. Returns the accepted
  /// connection, or NotFound("accept timeout") when the poll expires
  /// (callers loop on that while checking their shutdown flag).
  StatusOr<SocketConnection> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  int port_ = -1;
  std::string path_;
};

/// Connects to 127.0.0.1:`port`. With `timeout_ms >= 0` the connect is
/// performed non-blocking and polled, so a black-holed peer surfaces as
/// DeadlineExceeded after `timeout_ms` instead of hanging for the kernel's
/// SYN-retry budget; `timeout_ms < 0` (default) blocks indefinitely.
StatusOr<SocketConnection> ConnectTcp(int port, int timeout_ms = -1);

/// Connects to the Unix-domain socket at `path` (same timeout contract).
StatusOr<SocketConnection> ConnectUnix(const std::string& path,
                                       int timeout_ms = -1);

}  // namespace sliceline

#endif  // SLICELINE_COMMON_SOCKET_H_
