# Empty compiler generated dependencies file for distributed_debugging.
# This may be replaced when dependencies are built.
