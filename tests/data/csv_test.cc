#include "data/csv.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

namespace sliceline::data {
namespace {

TEST(CsvTest, ParsesTypedColumns) {
  auto frame = ParseCsv("age,city,salary\n30,boston,70000\n25,nyc,65000\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2);
  EXPECT_EQ(frame->num_columns(), 3);
  EXPECT_TRUE(frame->column(0).is_numeric());
  EXPECT_FALSE(frame->column(1).is_numeric());
  EXPECT_DOUBLE_EQ(frame->column(2).numeric()[1], 65000);
  EXPECT_EQ(frame->column(1).categorical()[0], "boston");
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions opts;
  opts.has_header = false;
  auto frame = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->column(0).name(), "C0");
  EXPECT_EQ(frame->num_rows(), 2);
}

TEST(CsvTest, MissingValuesBecomeNaN) {
  auto frame = ParseCsv("a,b\n1,x\n?,y\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->column(0).is_numeric());
  EXPECT_TRUE(std::isnan(frame->column(0).numeric()[1]));
}

TEST(CsvTest, MixedColumnFallsBackToCategorical) {
  auto frame = ParseCsv("a\n1\nfoo\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->column(0).is_numeric());
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, HandlesCrlfAndBlankLines) {
  auto frame = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2);
  EXPECT_DOUBLE_EQ(frame->column(1).numeric()[1], 4);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  auto frame = ParseCsv("a;b\n1;2\n", opts);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_columns(), 2);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Frame f;
  ASSERT_TRUE(f.AddColumn(Column("n", std::vector<double>{1.5, -2})).ok());
  ASSERT_TRUE(
      f.AddColumn(Column("c", std::vector<std::string>{"x", "y"})).ok());
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(WriteCsv(f, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2);
  EXPECT_DOUBLE_EQ(back->column(0).numeric()[0], 1.5);
  EXPECT_EQ(back->column(1).categorical()[1], "y");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/definitely/missing.csv").ok());
}

}  // namespace
}  // namespace sliceline::data
