// Microbenchmarks (google-benchmark) of the linear-algebra kernels the
// SliceLine enumeration is built from: one-hot encoding, colSums, the
// vector-matrix error aggregation e^T X, the S*S^T pair join, the X*S^T
// evaluation product, and table()-based selection-matrix construction.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/onehot.h"
#include "linalg/kernels.h"

namespace {

using namespace sliceline;

const data::EncodedDataset& AdultDataset() {
  static const data::EncodedDataset* ds = [] {
    data::DatasetOptions options;
    options.rows = 20000;
    return new data::EncodedDataset(data::MakeAdult(options));
  }();
  return *ds;
}

void BM_OneHotEncode(benchmark::State& state) {
  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::OneHotEncode(ds.x0, offsets));
  }
  state.SetItemsProcessed(state.iterations() * ds.n());
}
BENCHMARK(BM_OneHotEncode);

void BM_OneHotEncodeViaTable(benchmark::State& state) {
  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::OneHotEncodeViaTable(ds.x0, offsets));
  }
  state.SetItemsProcessed(state.iterations() * ds.n());
}
BENCHMARK(BM_OneHotEncodeViaTable);

void BM_ColSums(benchmark::State& state) {
  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  const linalg::CsrMatrix x = data::OneHotEncode(ds.x0, offsets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::ColSums(x));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_ColSums);

void BM_ErrorAggregation(benchmark::State& state) {
  // se0 = (e^T X)^T, Equation 4.
  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  const linalg::CsrMatrix x = data::OneHotEncode(ds.x0, offsets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::TransposeMatVec(x, ds.errors));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_ErrorAggregation);

linalg::CsrMatrix RandomSliceMatrix(int64_t slices, int64_t cols, int level,
                                    uint64_t seed) {
  Rng rng(seed);
  linalg::CooBuilder builder(slices, cols);
  for (int64_t s = 0; s < slices; ++s) {
    for (int k = 0; k < level; ++k) {
      builder.Add(s, rng.NextUint64(cols), 1.0);
    }
  }
  return builder.Build();
}

void BM_PairJoinSSt(benchmark::State& state) {
  const linalg::CsrMatrix s =
      RandomSliceMatrix(state.range(0), 162, 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MultiplyABt(s, s));
  }
}
BENCHMARK(BM_PairJoinSSt)->Arg(128)->Arg(512)->Arg(2048);

void BM_EvalProductXSt(benchmark::State& state) {
  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  const linalg::CsrMatrix x = data::OneHotEncode(ds.x0, offsets);
  const linalg::CsrMatrix s =
      RandomSliceMatrix(state.range(0), offsets.total, 2, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::FilterEquals(linalg::MultiplyABt(x, s), 2.0));
  }
  state.SetItemsProcessed(state.iterations() * x.rows() * state.range(0));
}
BENCHMARK(BM_EvalProductXSt)->Arg(16)->Arg(64);

void BM_TableConstruction(benchmark::State& state) {
  Rng rng(13);
  const int64_t n = state.range(0);
  std::vector<int64_t> rix(n);
  std::vector<int64_t> cix(n);
  for (int64_t i = 0; i < n; ++i) {
    rix[i] = i;
    cix[i] = static_cast<int64_t>(rng.NextUint64(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Table(rix, cix, n, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TableConstruction)->Arg(10000)->Arg(100000);

void BM_SpGemmTranspose(benchmark::State& state) {
  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  const linalg::CsrMatrix x = data::OneHotEncode(ds.x0, offsets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Transpose(x));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_SpGemmTranspose);

}  // namespace

BENCHMARK_MAIN();
