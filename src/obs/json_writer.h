#ifndef SLICELINE_OBS_JSON_WRITER_H_
#define SLICELINE_OBS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sliceline::obs {

/// Minimal streaming writer for strict (RFC 8259) JSON: proper string
/// escaping, no trailing commas, no NaN/Infinity (non-finite doubles are
/// emitted as null), round-trippable doubles (%.17g). The run report, the
/// Chrome trace exporter, and the CLI's machine output all go through this
/// one writer so "strict JSON" is enforced in a single place.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key (must be inside an object, before its value).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

 private:
  /// Emits a separating comma if the current container already has a value.
  void MaybeComma();
  void WriteEscaped(std::string_view s);

  std::ostream& os_;
  /// One flag per open container: has anything been emitted inside it?
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

/// Escapes `s` as a JSON string literal (with quotes).
std::string JsonQuote(std::string_view s);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_JSON_WRITER_H_
