#ifndef SLICELINE_SERVE_PROTOCOL_H_
#define SLICELINE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "obs/json_parse.h"
#include "obs/json_writer.h"

namespace sliceline::serve {

/// Wire protocol of the slice-finding daemon: one strict-JSON object per
/// LF-terminated line in each direction, over TCP (loopback) or a
/// Unix-domain socket. Requests carry a client-chosen correlation "id" that
/// every response echoes. Responses are either
///   {"id":..., "ok":true, ...payload...}
/// or the structured error shape
///   {"id":..., "ok":false, "error":{"code":"...", "message":"..."}}.
/// Lines are length-guarded (kMaxLineBytes) on both sides; a connection
/// whose peer exceeds the guard is desynchronized and must be dropped.

inline constexpr int kProtocolVersion = 1;

/// Per-line length guard. Large enough for a full find_slices response
/// (top-K with predicates plus the per-level table), small enough to bound
/// per-connection memory.
inline constexpr size_t kMaxLineBytes = 1 << 20;

/// Structured error codes carried in error responses. These mirror the
/// Status codes the handlers produce; admission-control rejections use
/// "resource_exhausted" and a draining server uses "unavailable".
std::string ErrorCodeForStatus(const Status& status);

/// Inverse mapping used by clients to surface server errors as Status.
Status StatusFromError(const std::string& code, const std::string& message);

enum class RequestType {
  kRegisterDataset,
  kFindSlices,
  kGetStatus,
  kCancel,
  kListDatasets,
  kServerStats,
  /// get_report: the finished job's obs::RunReport document. The payload
  /// field "report" carries the exact bytes of the strict-JSON report as a
  /// JSON string (not spliced as an object) so 64-bit ids inside survive
  /// double-typed re-encoding and clients can dump it verbatim.
  kGetReport,
  /// get_trace: the finished job's merged Chrome/Perfetto timeline, carried
  /// the same way ("trace" is a JSON string holding the trace document).
  kGetTrace,
  /// append_rows: stream raw rows (plus their model errors) into a
  /// registered dataset. Rows are recoded against the dictionary frozen at
  /// registration; the dataset hash advances along an FNV fingerprint chain
  /// and cached results for the previous hash are invalidated. Chunked like
  /// the distributed load_shard transfer: chunks 0..chunks-1 under one
  /// transfer id, applied atomically on the last chunk.
  kAppendRows,
  /// watch: attach (or replace) a sliding-window monitor on a dataset.
  /// Every subsequent append re-runs incremental slice finding over the
  /// window and fires an alert once per upward tau-crossing.
  kWatchDataset,
  /// unwatch: detach a dataset's monitor.
  kUnwatchDataset,
  /// unregister_dataset: drop a dataset so a long-lived streaming server
  /// can reclaim memory. Refused while jobs or watches reference it.
  kUnregisterDataset,
};

const char* RequestTypeName(RequestType type);
StatusOr<RequestType> RequestTypeFromName(const std::string& name);

/// register_dataset: load a CSV, preprocess it (recode/bin/drop), train the
/// task's model to materialize errors, and publish it under `name`.
/// Registering the same name with identical content is idempotent;
/// registering different content under an existing name is already_exists.
struct RegisterDatasetRequest {
  std::string name;
  std::string csv_path;  ///< server-side path to the CSV file
  std::string label;
  std::string task = "reg";  ///< "reg" | "class"
  int64_t bins = 10;
  std::vector<std::string> drop;
};

/// find_slices: run the enumeration against a registered dataset. With
/// wait=true (default) the response carries the full result; with
/// wait=false it carries the job id for get_status polling.
struct FindSlicesRequest {
  std::string dataset;
  std::string engine = "native";  ///< "native" | "la"
  int64_t k = 4;
  double alpha = 0.95;
  int64_t sigma = 0;      ///< 0 = paper default max(32, ceil(n/100))
  int64_t max_level = 0;  ///< 0 = unbounded
  int64_t deadline_ms = 0;        ///< 0 = none; measured from execution start
  int64_t memory_budget_mb = 0;   ///< 0 = server-wide budget
  bool wait = true;
};

/// append_rows: one chunk of a streaming append. Each row carries one raw
/// string cell per feature (encoder order, the feature_names order minus
/// dropped/label columns) plus its model error -- the caller's model scores
/// new rows, the server recodes them against the frozen dictionary. The
/// whole transfer is applied atomically when the final chunk arrives; a
/// chunk arriving out of order voids the transfer.
struct AppendRowsRequest {
  std::string dataset;
  std::string xfer;    ///< transfer id correlating chunks ("" fine for 1 chunk)
  int64_t chunk = 0;   ///< 0-based index of this chunk
  int64_t chunks = 1;  ///< total chunks in the transfer
  std::vector<std::vector<std::string>> rows;  ///< raw cells, encoder order
  std::vector<double> errors;                  ///< per-row model errors
};

/// watch: sliding-window monitoring parameters for one dataset. The slice
/// config mirrors find_slices; window_rows/window_seconds bound the
/// evaluated window (0 = unbounded) and hysteresis debounces re-arming.
struct WatchRequest {
  std::string dataset;
  double tau = 1.0;
  double hysteresis = 0.0;
  int64_t window_rows = 0;
  double window_seconds = 0.0;
  int64_t k = 4;
  double alpha = 0.95;
  int64_t sigma = 0;      ///< 0 = paper default max(32, ceil(n/100))
  int64_t max_level = 0;  ///< 0 = unbounded
};

/// One parsed request line. `type` selects which payload fields are
/// meaningful; unknown JSON fields are ignored for forward compatibility.
struct Request {
  RequestType type = RequestType::kServerStats;
  std::string id;  ///< correlation id echoed in the response ("" allowed)
  RegisterDatasetRequest register_dataset;
  FindSlicesRequest find_slices;
  AppendRowsRequest append_rows;
  WatchRequest watch;
  int64_t job_id = -1;  ///< get_status / cancel / get_report / get_trace
  /// unwatch / unregister_dataset target; also selects the watch-status
  /// form of get_status (dataset instead of job).
  std::string dataset;
};

/// Validates (strict JSON) and decodes one request line.
StatusOr<Request> ParseRequest(const std::string& line);

/// Encodes `request` as one LF-terminated line (client side).
std::string SerializeRequest(const Request& request);

// -- response helpers (server side) -----------------------------------------

/// `{"id":..., "ok":false, "error":{"code":..., "message":...}}\n`.
std::string MakeErrorLine(const std::string& id, const Status& status);

/// Writes the shared `"id":..., "ok":true` prefix of a success response;
/// the caller adds payload keys and closes the object.
void BeginOkResponse(obs::JsonWriter* writer, const std::string& id);

/// Serializes a full SliceLineResult (top-K with predicates rendered
/// against `feature_names`, per-level table, totals, outcome) under the
/// current writer position as one object value. Doubles go through the
/// %.17g writer, so a client that re-parses them recovers bit-identical
/// values and can reproduce core::FormatResult output exactly.
void WriteResultJson(obs::JsonWriter* writer,
                     const core::SliceLineResult& result,
                     const std::vector<std::string>& feature_names);

/// Inverse of WriteResultJson: rebuilds the result (and feature names) from
/// a response's "result" object.
StatusOr<core::SliceLineResult> ParseResultJson(
    const obs::JsonValue& value, std::vector<std::string>* feature_names);

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_PROTOCOL_H_
