#ifndef SLICELINE_COMMON_THREAD_POOL_H_
#define SLICELINE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sliceline {

class RunContext;

/// Fixed-size worker pool for the task-parallel slice evaluation ("parfor"
/// in Algorithm 1 line 17) and for data-parallel kernels. Degrades to inline
/// execution with num_threads <= 1 so single-core machines pay no
/// synchronization cost.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// hardware_concurrency(). `inline_when_single` keeps the historical
  /// degradation to inline execution for <= 1 thread; pass false to force a
  /// dedicated worker thread even then (the serve scheduler needs Run() to
  /// be asynchronous regardless of worker count).
  explicit ThreadPool(size_t num_threads = 0, bool inline_when_single = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  /// Enqueues one independent task for asynchronous execution (the serve
  /// scheduler's job dispatch). In inline mode the task runs on the calling
  /// thread. Tasks must not throw; completion signalling and error capture
  /// are the caller's responsibility.
  void Run(std::function<void()> task);

  /// Runs body(i) for i in [0, count), blocking until all iterations finish.
  /// Iterations are chunked to amortize dispatch overhead. If any iteration
  /// throws, the first captured exception is rethrown on the calling thread
  /// after all chunks have drained (remaining iterations still run).
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Runs body(begin, end) over disjoint ranges covering [0, count). Same
  /// exception contract as ParallelFor.
  void ParallelForRange(
      size_t count,
      const std::function<void(size_t begin, size_t end)>& body);

  /// Cancellable variant: each chunk polls `ctx` (when non-null) before
  /// running and is skipped once the run is stopped, so a cancellation or
  /// deadline observed mid-dispatch drains the remaining chunks without
  /// executing them. Already-running chunks finish (they poll internally via
  /// their own strided checks). Returns true when every chunk ran, false
  /// when any chunk was skipped.
  bool ParallelForRange(
      size_t count, const RunContext* ctx,
      const std::function<void(size_t begin, size_t end)>& body);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Shared process-wide pool sized from SLICELINE_NUM_THREADS (default:
/// hardware concurrency).
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` workers (0 restores
/// the SLICELINE_NUM_THREADS / hardware default). Testing hook for the
/// determinism checks — must not be called while parallel work is in
/// flight, and references previously obtained from GlobalThreadPool() are
/// invalidated.
void ResizeGlobalThreadPoolForTesting(size_t num_threads);

}  // namespace sliceline

#endif  // SLICELINE_COMMON_THREAD_POOL_H_
