#include "stream/watcher.h"

#include <algorithm>
#include <utility>

namespace sliceline::stream {

StatusOr<std::unique_ptr<SliceWatcher>> SliceWatcher::Create(
    std::string dataset, const data::IntMatrix& base_x0,
    const std::vector<double>& base_errors,
    std::vector<std::string> feature_names, WatchOptions options,
    const Clock* clock) {
  if (clock == nullptr) clock = SteadyClock::Default();
  if (options.tau <= 0.0) {
    return Status::InvalidArgument("watch tau must be positive");
  }
  if (options.hysteresis < 0.0 || options.hysteresis >= options.tau) {
    return Status::InvalidArgument("hysteresis must be in [0, tau)");
  }
  if (options.window_rows < 0 || options.window_seconds < 0.0) {
    return Status::InvalidArgument("window bounds must be non-negative");
  }
  if (options.stream.domains.empty()) {
    // Freeze domains now: window rebuilds must keep the one-hot layout of
    // the slices being monitored even when the current window no longer
    // exercises every code.
    options.stream.domains = base_x0.ColMaxs();
  }
  std::unique_ptr<SliceWatcher> watcher(new SliceWatcher(
      std::move(dataset), std::move(feature_names), std::move(options),
      clock));
  SLICELINE_ASSIGN_OR_RETURN(
      watcher->finder_,
      StreamingSliceFinder::Create(base_x0, base_errors,
                                   watcher->options_.stream));
  watcher->buffer_x0_ = base_x0;
  watcher->buffer_errors_ = base_errors;
  watcher->buffer_times_.assign(static_cast<size_t>(base_x0.rows()),
                                clock->NowSeconds());
  watcher->total_rows_ = base_x0.rows();
  return watcher;
}

Status SliceWatcher::RebuildFromTail(int64_t new_start) {
  const int64_t rows = buffer_x0_.rows();
  // Never evaluate an empty window: keep at least the newest row.
  new_start = std::min(new_start, rows - 1);
  if (new_start <= 0) return Status::OK();
  const int64_t kept = rows - new_start;
  data::IntMatrix tail(kept, buffer_x0_.cols());
  for (int64_t r = 0; r < kept; ++r) {
    const int32_t* src = buffer_x0_.row(new_start + r);
    std::copy(src, src + buffer_x0_.cols(), tail.row(r));
  }
  std::vector<double> tail_errors(
      buffer_errors_.begin() + static_cast<size_t>(new_start),
      buffer_errors_.end());
  buffer_times_.erase(buffer_times_.begin(),
                      buffer_times_.begin() + static_cast<size_t>(new_start));
  SLICELINE_ASSIGN_OR_RETURN(
      finder_, StreamingSliceFinder::Create(tail, tail_errors,
                                            options_.stream));
  buffer_x0_ = std::move(tail);
  buffer_errors_ = std::move(tail_errors);
  ++window_rebuilds_;
  return Status::OK();
}

StatusOr<std::optional<StreamAlert>> SliceWatcher::OnAppend(
    const data::IntMatrix& delta_x0,
    const std::vector<double>& delta_errors) {
  const double now = clock_->NowSeconds();

  // Ingest into the incremental finder first: it validates the delta
  // against the frozen domains before any watcher state changes.
  SLICELINE_RETURN_NOT_OK(finder_->Append(delta_x0, delta_errors, now));
  buffer_x0_.AppendRows(delta_x0);
  buffer_errors_.insert(buffer_errors_.end(), delta_errors.begin(),
                        delta_errors.end());
  buffer_times_.insert(buffer_times_.end(),
                       static_cast<size_t>(delta_x0.rows()), now);
  total_rows_ += delta_x0.rows();

  // Lazy batched eviction: trigger only when the buffer holds 2x the live
  // window, then cut back to exactly the window bound.
  const int64_t rows = buffer_x0_.rows();
  int64_t new_start = 0;
  bool evict = false;
  if (options_.window_rows > 0 && rows > 2 * options_.window_rows) {
    new_start = std::max(new_start, rows - options_.window_rows);
    evict = true;
  }
  if (options_.window_seconds > 0.0) {
    const double cutoff = now - options_.window_seconds;
    const auto first_live = std::lower_bound(buffer_times_.begin(),
                                             buffer_times_.end(), cutoff);
    const int64_t expired =
        static_cast<int64_t>(first_live - buffer_times_.begin());
    if (expired * 2 > rows) {
      new_start = std::max(new_start, expired);
      evict = true;
    }
  }
  if (evict) {
    SLICELINE_RETURN_NOT_OK(RebuildFromTail(new_start));
  }

  SLICELINE_ASSIGN_OR_RETURN(core::SliceLineResult result,
                             finder_->Find(options_.config));
  ++evaluations_;
  last_score_ = result.top_k.empty() ? 0.0 : result.top_k[0].stats.score;

  std::optional<StreamAlert> alert;
  if (armed_ && last_score_ >= options_.tau && !result.top_k.empty()) {
    StreamAlert fired;
    fired.dataset = dataset_;
    fired.slice_display = result.top_k[0].ToString(feature_names_);
    fired.score = last_score_;
    fired.at_rows = total_rows_;
    fired.at_seconds = now;
    fired.fingerprint = finder_->fingerprint();
    alert = std::move(fired);
    armed_ = false;
    ++alerts_fired_;
  } else if (!armed_ && last_score_ < options_.tau - options_.hysteresis) {
    armed_ = true;
  }
  return alert;
}

}  // namespace sliceline::stream
