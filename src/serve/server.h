#ifndef SLICELINE_SERVE_SERVER_H_
#define SLICELINE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/run_context.h"
#include "common/socket.h"
#include "common/status.h"
#include "serve/dataset_registry.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "stream/watcher.h"

namespace sliceline::serve {

struct ServerOptions {
  /// Unix-domain socket path; listened on when non-empty.
  std::string unix_socket;
  /// Loopback TCP port; listened on when >= 0 (0 = kernel-assigned, see
  /// Server::tcp_port()). At least one of the two listeners must be set.
  int tcp_port = -1;
  int workers = 4;
  /// Admission bound: jobs admitted and not yet finished.
  int max_queue = 16;
  /// Server-wide memory budget shared by all jobs; 0 = unlimited.
  int64_t memory_budget_mb = 0;
  /// Result-cache entries; 0 disables caching.
  int64_t cache_capacity = 128;
  /// Concurrent connections; excess connections get one structured
  /// resource_exhausted error line and are closed.
  int max_connections = 64;
  /// Applied to find_slices requests that carry no deadline; 0 = none.
  double default_deadline_seconds = 0.0;
  /// When non-empty, spans are recorded and the Chrome trace is flushed
  /// here during shutdown and on every server_stats request.
  std::string trace_out;
  /// Fleet tracing: every job gets a nonzero trace id, the recorder is
  /// enabled (process label "server"), and each finished job keeps its
  /// merged per-process timeline for get_trace. Bounded per-thread buffers
  /// keep the always-on cost flat.
  bool fleet_tracing = true;
  /// Backs the "remote" engine (distributed runs over sliceline_worker
  /// processes); find_slices with engine "remote" is rejected when unset.
  RemoteEngineFn remote_engine;
  /// Clock driving watch sliding windows and alert timestamps; borrowed,
  /// must outlive the server. nullptr uses the steady clock. Tests inject
  /// a SimulatedClock to make wall-clock windows deterministic.
  const Clock* clock = nullptr;
};

/// The slice-finding daemon: accepts newline-delimited JSON requests over
/// TCP and/or a Unix-domain socket (see protocol.h), plus minimal HTTP GET
/// endpoints on the same listeners: /metrics (Prometheus text format),
/// /healthz (liveness, always 200 while serving), and /readyz (readiness,
/// 503 once draining). One thread per connection; jobs run on the
/// scheduler's worker pool.
///
/// Shutdown (SIGTERM path): RequestShutdown() is async-signal-safe (one
/// atomic store). Wait() then stops accepting, lets every connection finish
/// the request it is serving, drains admitted jobs, flushes the trace, and
/// returns 0.
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the accept threads.
  Status Start();

  /// Begins graceful shutdown. Safe to call from a signal handler and from
  /// any thread; idempotent.
  void RequestShutdown() { shutdown_.store(true, std::memory_order_release); }
  bool ShutdownRequested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Blocks until shutdown is requested and the drain completes. Returns
  /// the process exit code (0 on a clean drain).
  int Wait();

  /// Bound TCP port after Start() (-1 when no TCP listener).
  int tcp_port() const { return tcp_port_; }

  // -- test access ----------------------------------------------------------
  Scheduler& scheduler() { return *scheduler_; }
  DatasetRegistry& registry() { return registry_; }
  ResultCache& cache() { return cache_; }
  int64_t watch_count() const;
  int64_t stream_alerts_total() const;

  /// The /metrics payload (Prometheus text exposition of the registry).
  static std::string MetricsText();

 private:
  void AcceptLoop(ListenSocket* listener);
  void HandleConnection(SocketConnection connection);
  /// Serves one protocol request line; returns the LF-terminated response.
  std::string HandleRequestLine(const std::string& line);
  std::string HandleRegisterDataset(const Request& request);
  std::string HandleFindSlices(const Request& request);
  std::string HandleGetStatus(const Request& request);
  std::string HandleCancel(const Request& request);
  std::string HandleListDatasets(const Request& request);
  std::string HandleServerStats(const Request& request);
  std::string HandleGetReport(const Request& request);
  std::string HandleGetTrace(const Request& request);
  std::string HandleAppendRows(const Request& request);
  std::string HandleWatch(const Request& request);
  std::string HandleUnwatch(const Request& request);
  std::string HandleUnregisterDataset(const Request& request);
  /// get_status with a "dataset" field: the watch's monitoring state.
  std::string HandleWatchStatus(const Request& request);
  /// Shared by get_report/get_trace: resolves the job and hands back the
  /// requested persisted document (field "report" or "trace") as a JSON
  /// string value, or a structured error for unknown / unfinished jobs.
  std::string HandleJobDocument(const Request& request, const char* type_name,
                                const char* field,
                                std::string Job::*document);
  /// Serves "GET <path> HTTP/1.x": drains the header block, writes a full
  /// HTTP/1.0 response, and leaves the connection to be closed.
  void HandleHttp(SocketConnection* connection, const std::string& request_line);
  /// Builds the find_slices/get_status success payload around a result.
  std::string MakeResultResponse(const std::string& id, int64_t job_id,
                                 bool cache_hit,
                                 const core::SliceLineResult& result,
                                 const std::vector<std::string>& feature_names);

  /// One in-flight chunked append transfer, keyed by (dataset, xfer).
  struct PendingAppend {
    int64_t chunks = 0;    ///< total expected
    int64_t received = 0;  ///< chunks buffered so far
    std::vector<std::vector<std::string>> rows;
    std::vector<double> errors;
  };

  const ServerOptions options_;
  DatasetRegistry registry_;
  ResultCache cache_;
  std::unique_ptr<Scheduler> scheduler_;

  /// Serializes the streaming surface: appends, watch attach/detach,
  /// unregister, chunk buffers, and the alert ring. Watch evaluation runs
  /// under it too -- an append's find completes before the handler returns,
  /// which is what makes alerts survive the drain/SIGTERM path (connections
  /// finish their current request before Wait() proceeds).
  mutable std::mutex stream_mutex_;
  std::map<std::string, std::unique_ptr<stream::SliceWatcher>> watches_;
  std::map<std::string, PendingAppend> pending_appends_;
  std::deque<stream::StreamAlert> recent_alerts_;  ///< newest first, bounded
  int64_t appends_total_ = 0;
  int64_t alerts_total_ = 0;

  ListenSocket tcp_listener_;
  ListenSocket unix_listener_;
  int tcp_port_ = -1;

  std::atomic<bool> shutdown_{false};
  bool started_ = false;
  bool waited_ = false;
  double start_seconds_ = 0.0;

  std::vector<std::thread> accept_threads_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::atomic<int> open_connections_{0};
};

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_SERVER_H_
