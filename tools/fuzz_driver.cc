// Seeded differential / metamorphic fuzzer for the SliceLine engines and
// sparse kernels.
//
//   fuzz_driver --seed=7 --cases=200                 # all six checks
//   fuzz_driver --checks=oracle,kernel --cases=50
//   fuzz_driver --inject-bug=scoring --cases=200     # harness self-test
//   fuzz_driver --replay=replay_oracle_case12.json   # re-run a failure
//
// Exit codes: 0 all cases green (or replay passes), 1 a check failed,
// 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "testing/fuzz_harness.h"

namespace {

using sliceline::testing::FuzzOptions;
using sliceline::testing::FuzzReport;
using sliceline::testing::InjectedBug;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fuzz_driver [options]\n"
      "  --seed=N             base seed of the case stream (default 1)\n"
      "  --cases=N            number of generated cases (default 100)\n"
      "  --checks=a,b,...     subset of oracle,kernel,metamorphic,\n"
      "                       determinism,governance,kernels-simd,\n"
      "                       stream-equivalence (default: all)\n"
      "  --kernel-rounds=N    matrix draws per kernel case (default 2)\n"
      "  --determinism-stride=N  run the determinism check every N-th case\n"
      "                       (default 8; it swaps thread pools, so it is\n"
      "                       the most expensive check)\n"
      "  --max-failures=N     stop after N failures (default 1)\n"
      "  --replay-dir=DIR     where replay files are written (default .;\n"
      "                       empty disables)\n"
      "  --no-shrink          skip dataset shrinking on failure\n"
      "  --inject-bug=KIND    none|scoring|kernel: deliberately corrupt the\n"
      "                       system under test (harness self-validation)\n"
      "  --replay=FILE        re-run a recorded failure instead of fuzzing\n"
      "  --verbose            per-case progress on stderr\n");
}

bool ParseFlagInt(const std::string& arg, const char* name, int64_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (!sliceline::StartsWith(arg, prefix)) return false;
  auto parsed = sliceline::ParseInt64(arg.substr(prefix.size()));
  if (!parsed.ok()) {
    std::fprintf(stderr, "fuzz_driver: bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  *out = *parsed;
  return true;
}

int RunReplayFile(const std::string& path, InjectedBug inject) {
  auto record = sliceline::testing::ReadReplayFile(path);
  if (!record.ok()) {
    std::fprintf(stderr, "fuzz_driver: cannot load replay %s: %s\n",
                 path.c_str(), record.status().ToString().c_str());
    return 2;
  }
  std::printf("replaying %s check (case %llu, profile %s, %lldx%lld)\n",
              record->check.c_str(),
              static_cast<unsigned long long>(record->case_index),
              record->fuzz_case.profile.c_str(),
              static_cast<long long>(record->fuzz_case.x0.rows()),
              static_cast<long long>(record->fuzz_case.x0.cols()));
  std::printf("recorded failure: %s\n", record->failure.c_str());
  const std::string failure = sliceline::testing::RunReplay(*record, inject);
  if (failure.empty()) {
    std::printf("replay PASSES on this build\n");
    return 0;
  }
  std::printf("replay still FAILS: %s\n", failure.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (ParseFlagInt(arg, "--seed", &value)) {
      options.seed = static_cast<uint64_t>(value);
    } else if (ParseFlagInt(arg, "--cases", &value)) {
      options.cases = static_cast<int>(value);
    } else if (ParseFlagInt(arg, "--kernel-rounds", &value)) {
      options.kernel_rounds = static_cast<int>(value);
    } else if (ParseFlagInt(arg, "--determinism-stride", &value)) {
      options.determinism_stride = static_cast<int>(value);
    } else if (ParseFlagInt(arg, "--max-failures", &value)) {
      options.max_failures = static_cast<int>(value);
    } else if (sliceline::StartsWith(arg, "--checks=")) {
      for (const std::string& check :
           sliceline::Split(arg.substr(sizeof("--checks=") - 1), ',')) {
        bool known = false;
        for (const char* name : sliceline::testing::kCheckNames) {
          known |= check == name;
        }
        if (!known) {
          std::fprintf(stderr, "fuzz_driver: unknown check '%s'\n",
                       check.c_str());
          return 2;
        }
        options.checks.push_back(check);
      }
    } else if (sliceline::StartsWith(arg, "--replay-dir=")) {
      options.replay_dir = arg.substr(sizeof("--replay-dir=") - 1);
    } else if (sliceline::StartsWith(arg, "--replay=")) {
      replay_path = arg.substr(sizeof("--replay=") - 1);
    } else if (sliceline::StartsWith(arg, "--inject-bug=")) {
      const std::string kind = arg.substr(sizeof("--inject-bug=") - 1);
      if (kind == "none") {
        options.inject = InjectedBug::kNone;
      } else if (kind == "scoring") {
        options.inject = InjectedBug::kScoring;
      } else if (kind == "kernel") {
        options.inject = InjectedBug::kKernel;
      } else {
        std::fprintf(stderr, "fuzz_driver: unknown bug kind '%s'\n",
                     kind.c_str());
        return 2;
      }
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::fprintf(stderr, "fuzz_driver: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (!replay_path.empty()) return RunReplayFile(replay_path, options.inject);

  const FuzzReport report = RunFuzz(options);
  std::printf("fuzz: %d cases, %lld check executions, %zu failure(s)\n",
              report.cases_run, static_cast<long long>(report.checks_run),
              report.failures.size());
  for (const auto& failure : report.failures) {
    std::printf("FAIL [%s, case %llu, shrunk %d steps] %s\n",
                failure.check.c_str(),
                static_cast<unsigned long long>(failure.case_index),
                failure.shrink_steps, failure.failure.c_str());
    if (!failure.replay_path.empty()) {
      std::printf("  replay: fuzz_driver --replay=%s\n",
                  failure.replay_path.c_str());
    }
  }
  if (report.ok()) {
    std::printf("OK\n");
    return 0;
  }
  return 1;
}
