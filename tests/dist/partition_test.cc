// Row partitioning edge cases: degenerate inputs (zero rows, one row, more
// shards than rows) and the disjoint-and-covering contract over a sweep of
// (n, workers) shapes, plus shard materialization at the range boundaries.
#include "dist/partition.h"

#include <gtest/gtest.h>

#include <vector>

namespace sliceline::dist {
namespace {

TEST(PartitionEdgeTest, ZeroRowsYieldsOneEmptyShard) {
  // n = 0 must not fan out into `workers` zero-size shards: the evaluator
  // treats every returned range as a unit of work.
  for (int workers : {1, 4, 16}) {
    std::vector<RowRange> parts = PartitionRows(0, workers);
    ASSERT_EQ(parts.size(), 1u) << "workers=" << workers;
    EXPECT_EQ(parts[0].begin, 0);
    EXPECT_EQ(parts[0].end, 0);
    EXPECT_EQ(parts[0].size(), 0);
  }
}

TEST(PartitionEdgeTest, SingleRowYieldsSingleShard) {
  for (int workers : {1, 2, 8}) {
    std::vector<RowRange> parts = PartitionRows(1, workers);
    ASSERT_EQ(parts.size(), 1u) << "workers=" << workers;
    EXPECT_EQ(parts[0].begin, 0);
    EXPECT_EQ(parts[0].end, 1);
  }
}

TEST(PartitionEdgeTest, FewerRowsThanShardsCapsShardCount) {
  // Every shard must hold at least one row; the shard count collapses to n.
  for (int64_t n : {2, 3, 5}) {
    for (int workers : {7, 16, 100}) {
      std::vector<RowRange> parts = PartitionRows(n, workers);
      ASSERT_EQ(parts.size(), static_cast<size_t>(n))
          << "n=" << n << " workers=" << workers;
      for (const RowRange& r : parts) EXPECT_EQ(r.size(), 1);
    }
  }
}

TEST(PartitionEdgeTest, ShardsAreDisjointCoveringAndBalanced) {
  for (int64_t n : {1, 2, 7, 64, 1000, 1001}) {
    for (int workers : {1, 2, 3, 8, 63, 64, 65}) {
      std::vector<RowRange> parts = PartitionRows(n, workers);
      // Contiguous cover of [0, n) with no gaps or overlap.
      int64_t expected_begin = 0;
      for (const RowRange& r : parts) {
        EXPECT_EQ(r.begin, expected_begin) << "n=" << n << " w=" << workers;
        EXPECT_GT(r.size(), 0) << "n=" << n << " w=" << workers;
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " w=" << workers;
      // Near-equal: sizes differ by at most one row.
      int64_t smallest = parts[0].size();
      int64_t largest = parts[0].size();
      for (const RowRange& r : parts) {
        smallest = std::min(smallest, r.size());
        largest = std::max(largest, r.size());
      }
      EXPECT_LE(largest - smallest, 1) << "n=" << n << " w=" << workers;
    }
  }
}

data::IntMatrix MakeMatrix(int64_t rows, int64_t cols) {
  data::IntMatrix x0(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      x0.At(i, j) = static_cast<int32_t>(i * cols + j);
    }
  }
  return x0;
}

TEST(PartitionEdgeTest, MakeShardHandlesEmptyRange) {
  const data::IntMatrix x0 = MakeMatrix(5, 2);
  const std::vector<double> errors = {0.0, 0.1, 0.2, 0.3, 0.4};
  Shard shard = MakeShard(x0, errors, {3, 3});
  EXPECT_EQ(shard.x0.rows(), 0);
  EXPECT_TRUE(shard.errors.empty());
  EXPECT_EQ(shard.range.begin, 3);
  EXPECT_EQ(shard.range.end, 3);
}

TEST(PartitionEdgeTest, MakeShardFullRangeCopiesEverything) {
  const data::IntMatrix x0 = MakeMatrix(4, 3);
  const std::vector<double> errors = {0.5, 0.25, 0.125, 0.0625};
  Shard shard = MakeShard(x0, errors, {0, 4});
  ASSERT_EQ(shard.x0.rows(), 4);
  ASSERT_EQ(shard.x0.cols(), 3);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(shard.x0.At(i, j), x0.At(i, j));
    }
  }
  EXPECT_EQ(shard.errors, errors);
}

TEST(PartitionEdgeTest, ShardsReassembleTheInput) {
  // Materializing every shard of a partition and concatenating them must
  // reproduce the original rows and errors exactly, for shapes that include
  // single-row shards and an uneven final shard.
  const data::IntMatrix x0 = MakeMatrix(11, 2);
  std::vector<double> errors(11);
  for (size_t i = 0; i < errors.size(); ++i) {
    errors[i] = static_cast<double>(i) * 0.5;
  }
  for (int workers : {1, 3, 4, 11, 20}) {
    std::vector<RowRange> parts = PartitionRows(11, workers);
    int64_t row = 0;
    std::vector<double> reassembled;
    for (const RowRange& range : parts) {
      Shard shard = MakeShard(x0, errors, range);
      EXPECT_EQ(shard.range.begin, range.begin);
      EXPECT_EQ(shard.range.end, range.end);
      for (int64_t i = 0; i < shard.x0.rows(); ++i, ++row) {
        for (int64_t j = 0; j < shard.x0.cols(); ++j) {
          EXPECT_EQ(shard.x0.At(i, j), x0.At(row, j)) << "w=" << workers;
        }
      }
      reassembled.insert(reassembled.end(), shard.errors.begin(),
                         shard.errors.end());
    }
    EXPECT_EQ(row, 11) << "w=" << workers;
    EXPECT_EQ(reassembled, errors) << "w=" << workers;
  }
}

}  // namespace
}  // namespace sliceline::dist
