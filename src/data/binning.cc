#include "data/binning.h"

#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace sliceline::data {

StatusOr<EquiWidthBinner> EquiWidthBinner::Fit(
    const std::vector<double>& values, int num_bins) {
  if (num_bins < 1) return Status::InvalidArgument("num_bins must be >= 1");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any_finite = false;
  bool any_missing = false;
  for (double v : values) {
    if (std::isnan(v)) {
      any_missing = true;
      continue;
    }
    any_finite = true;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!any_finite) {
    return Status::InvalidArgument("cannot bin a column with no finite values");
  }
  return EquiWidthBinner(lo, hi, num_bins, any_missing);
}

int32_t EquiWidthBinner::Encode(double v) const {
  if (std::isnan(v)) {
    return has_missing_bin_ ? static_cast<int32_t>(num_bins_ + 1) : 1;
  }
  if (hi_ == lo_) return 1;
  const double t = (v - lo_) / (hi_ - lo_);
  int32_t bin = static_cast<int32_t>(t * num_bins_) + 1;
  if (bin < 1) bin = 1;
  if (bin > num_bins_) bin = num_bins_;
  return bin;
}

std::vector<int32_t> EquiWidthBinner::EncodeAll(
    const std::vector<double>& values) const {
  std::vector<int32_t> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Encode(v));
  return out;
}

std::string EquiWidthBinner::BinLabel(int32_t code) const {
  if (has_missing_bin_ && code == num_bins_ + 1) return "<missing>";
  const double width = (hi_ - lo_) / num_bins_;
  const double b = lo_ + (code - 1) * width;
  const double e = code == num_bins_ ? hi_ : b + width;
  return "[" + FormatDouble(b, 3) + ", " + FormatDouble(e, 3) +
         (code == num_bins_ ? "]" : ")");
}

}  // namespace sliceline::data
