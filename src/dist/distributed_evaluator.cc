#include "dist/distributed_evaluator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::dist {

bool PartialInvariantsOk(const core::EvalResult& partial, int64_t shard_rows,
                         size_t count) {
  if (partial.sizes.size() != count || partial.error_sums.size() != count ||
      partial.max_errors.size() != count) {
    return false;
  }
  for (size_t i = 0; i < count; ++i) {
    const double ss = partial.sizes[i];
    if (!(ss >= 0.0) || ss > static_cast<double>(shard_rows) ||
        ss != std::floor(ss)) {
      return false;
    }
    if (!std::isfinite(partial.error_sums[i]) ||
        !std::isfinite(partial.max_errors[i])) {
      return false;
    }
  }
  return true;
}

void PublishDistStats(const DistCostStats& cost, const DistFaultStats& faults) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
  r->GetGauge("dist/rounds")->Set(static_cast<double>(cost.rounds));
  r->GetGauge("dist/broadcast_bytes")
      ->Set(static_cast<double>(cost.broadcast_bytes));
  r->GetGauge("dist/gather_bytes")
      ->Set(static_cast<double>(cost.gather_bytes));
  r->GetGauge("dist/worker_busy_seconds")->Set(cost.worker_busy_seconds);
  r->GetGauge("dist/critical_path_seconds")->Set(cost.critical_path_seconds);
  r->GetGauge("dist/transient_failures")
      ->Set(static_cast<double>(faults.transient_failures));
  r->GetGauge("dist/retries")->Set(static_cast<double>(faults.retries));
  r->GetGauge("dist/backoff_events")
      ->Set(static_cast<double>(faults.backoff_events));
  r->GetGauge("dist/backoff_seconds")->Set(faults.backoff_seconds);
  r->GetGauge("dist/stragglers")->Set(static_cast<double>(faults.stragglers));
  r->GetGauge("dist/speculative_reexecutions")
      ->Set(static_cast<double>(faults.speculative_reexecutions));
  r->GetGauge("dist/corrupted_partials")
      ->Set(static_cast<double>(faults.corrupted_partials));
  r->GetGauge("dist/workers_lost")
      ->Set(static_cast<double>(faults.workers_lost));
  r->GetGauge("dist/reshards")->Set(static_cast<double>(faults.reshards));
  r->GetGauge("dist/fallback_local")->Set(faults.fallback_local ? 1.0 : 0.0);
}

std::string DistFaultStats::Summary() const {
  std::ostringstream out;
  out << "transient=" << transient_failures << " retries=" << retries
      << " backoff=" << backoff_seconds << "s stragglers=" << stragglers
      << " speculative=" << speculative_reexecutions
      << " corrupted=" << corrupted_partials << " lost=" << workers_lost
      << " reshards=" << reshards
      << " fallback=" << (fallback_local ? "yes" : "no");
  return out.str();
}

DistributedSliceEvaluator::DistributedSliceEvaluator(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const DistOptions& options)
    : offsets_(data::ComputeOffsets(x0)),
      options_(options),
      n_(x0.rows()),
      injector_(options.fault),
      full_x0_(x0),
      full_errors_(errors) {
  const std::vector<RowRange> ranges = PartitionRows(n_, options.workers);
  shards_.reserve(ranges.size());
  for (const RowRange& range : ranges) {
    ShardUnit unit;
    unit.shard = MakeShard(x0, errors, range);
    shards_.push_back(std::move(unit));
  }
  // The evaluator holds pointers into its shard, so it is built only after
  // the shard has reached its final address. Workers share the driver's
  // global feature offsets so one-hot column ids align across shards (a
  // shard may not observe every code).
  for (ShardUnit& unit : shards_) {
    unit.evaluator = std::make_unique<core::SliceEvaluator>(
        unit.shard.x0, offsets_, unit.shard.errors);
  }
  shard_owner_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_owner_[s] = static_cast<int>(s);
  }
  worker_alive_.assign(shards_.size(), 1);
  alive_count_ = static_cast<int>(shards_.size());

  // Aggregate the level-1 statistics: counts and error sums add, maxima max.
  const int64_t l = offsets_.total;
  basic_sizes_.assign(static_cast<size_t>(l), 0);
  basic_error_sums_.assign(static_cast<size_t>(l), 0.0);
  basic_max_errors_.assign(static_cast<size_t>(l), 0.0);
  for (const ShardUnit& unit : shards_) {
    total_error_ += unit.evaluator->total_error();
    for (int64_t c = 0; c < l; ++c) {
      basic_sizes_[c] += unit.evaluator->basic_sizes()[c];
      basic_error_sums_[c] += unit.evaluator->basic_error_sums()[c];
      basic_max_errors_[c] = std::max(basic_max_errors_[c],
                                      unit.evaluator->basic_max_errors()[c]);
    }
  }
}

StatusOr<std::unique_ptr<DistributedSliceEvaluator>>
DistributedSliceEvaluator::Create(const data::IntMatrix& x0,
                                  const std::vector<double>& errors,
                                  const DistOptions& options) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument(
        "error vector size " + std::to_string(errors.size()) +
        " does not match " + std::to_string(x0.rows()) + " rows");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("need at least one worker");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (!(options.max_lost_fraction >= 0.0 && options.max_lost_fraction <= 1.0)) {
    return Status::InvalidArgument("max_lost_fraction must be in [0, 1]");
  }
  return std::unique_ptr<DistributedSliceEvaluator>(
      new DistributedSliceEvaluator(x0, errors, options));
}

StatusOr<core::EvalResult> DistributedSliceEvaluator::EvaluateDegraded(
    const core::SliceSet& set, const core::SliceLineConfig& config) const {
  if (!faults_.fallback_local) {
    obs::TraceInstant("dist", "fallback_local");
  }
  faults_.fallback_local = true;
  if (fallback_ == nullptr) {
    fallback_ = std::make_unique<core::SliceEvaluator>(full_x0_, offsets_,
                                                       full_errors_);
  }
  PublishDistStats(cost_, faults_);
  return fallback_->Evaluate(set, config);
}

void DistributedSliceEvaluator::ReshardLostWorkers() const {
  int next_alive = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (worker_alive_[static_cast<size_t>(shard_owner_[s])]) continue;
    // Round-robin adoption keeps survivor load balanced.
    while (!worker_alive_[static_cast<size_t>(next_alive)]) {
      next_alive = (next_alive + 1) % static_cast<int>(shards_.size());
    }
    shard_owner_[s] = next_alive;
    next_alive = (next_alive + 1) % static_cast<int>(shards_.size());
    ++faults_.reshards;
    obs::TraceInstant("dist", "reshard", static_cast<int64_t>(s));
  }
}

StatusOr<core::EvalResult> DistributedSliceEvaluator::Evaluate(
    const core::SliceSet& set, const core::SliceLineConfig& config) const {
  const size_t count = static_cast<size_t>(set.size());
  core::EvalResult out;
  out.sizes.assign(count, 0.0);
  out.error_sums.assign(count, 0.0);
  out.max_errors.assign(count, 0.0);
  if (count == 0) return out;

  const int64_t round = next_round_++;
  TRACE_SPAN("dist/evaluate_round", round);
  if (fallback_ != nullptr) return EvaluateDegraded(set, config);

  // Broadcast cost: the slice set is shipped to every participating worker
  // (column ids + row offsets); gather cost: 3 doubles per slice per shard.
  int64_t slice_bytes = 0;
  for (int64_t i = 0; i < set.size(); ++i) {
    slice_bytes += 8 * (set.Length(i) + 1);
  }

  // Per-worker evaluation on its shard; each worker uses a serial local
  // evaluator (the cluster's intra-node parallelism is modeled by the
  // per-worker busy time, not nested threading).
  core::SliceLineConfig worker_config = config;
  worker_config.parallel = false;

  const size_t num_shards = shards_.size();
  std::vector<char> shard_valid(num_shards, 0);
  std::vector<core::EvalResult> partials(num_shards);
  size_t needed = num_shards;

  const RunContext* ctx = config.run_context;
  for (int attempt = 0; attempt <= options_.max_retries && needed > 0;
       ++attempt) {
    // Governance boundary: a cancelled / expired / over-budget run stops
    // between waves instead of burning a full retry schedule. Workers also
    // poll the same context inside their shard evaluations.
    if (ctx != nullptr && ctx->ShouldStop()) {
      return StopReasonToStatus(ctx->CheckStop());
    }
    if (attempt > 0) {
      // Exponential backoff before the retry wave; simulated time only.
      const double backoff =
          options_.backoff_base_seconds *
          std::pow(options_.backoff_multiplier, attempt - 1);
      cost_.critical_path_seconds += backoff;
      faults_.backoff_seconds += backoff;
      faults_.backoff_events += 1;
      faults_.retries += static_cast<int64_t>(needed);
      obs::TraceInstant("dist", "retry_wave", attempt);
    }

    // Group the still-missing shards by their (alive) owner.
    struct WaveWorker {
      int id = 0;
      std::vector<size_t> shard_ids;
      FaultType fault = FaultType::kNone;
      double compute_seconds = 0.0;
    };
    std::vector<WaveWorker> wave;
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_valid[s]) continue;
      const int owner = shard_owner_[s];
      auto it = std::find_if(wave.begin(), wave.end(),
                             [owner](const WaveWorker& w) {
                               return w.id == owner;
                             });
      if (it == wave.end()) {
        wave.push_back(WaveWorker{owner, {s}, FaultType::kNone, 0.0});
      } else {
        it->shard_ids.push_back(s);
      }
    }

    cost_.rounds += 1;
    cost_.broadcast_bytes += slice_bytes * static_cast<int64_t>(wave.size());

    // Fault decisions are drawn serially before any evaluation: they are
    // pure hashes of (seed, round, worker, attempt), so the schedule is
    // identical whether shards run serially or on the pool.
    for (WaveWorker& w : wave) {
      w.fault = injector_.Sample(round, w.id, attempt);
    }

    // Evaluate every shard whose worker did not fail-stop this wave.
    struct ShardJob {
      size_t shard_id;
      size_t wave_index;
    };
    std::vector<ShardJob> jobs;
    for (size_t wi = 0; wi < wave.size(); ++wi) {
      if (wave[wi].fault == FaultType::kTransient ||
          wave[wi].fault == FaultType::kPermanentLoss) {
        continue;
      }
      for (size_t s : wave[wi].shard_ids) jobs.push_back({s, wi});
    }
    std::vector<core::EvalResult> job_results(jobs.size());
    std::vector<double> job_seconds(jobs.size(), 0.0);
    std::vector<Status> job_status(jobs.size());
    auto run_job = [&](size_t j) {
      Stopwatch watch;
      auto result = shards_[jobs[j].shard_id].evaluator->Evaluate(
          set, worker_config);
      if (result.ok()) {
        job_results[j] = std::move(result).value();
      } else {
        job_status[j] = result.status();
      }
      job_seconds[j] = watch.ElapsedSeconds();
    };
    if (options_.use_threads && GlobalThreadPool().num_threads() > 1) {
      GlobalThreadPool().ParallelFor(jobs.size(), run_job);
    } else {
      for (size_t j = 0; j < jobs.size(); ++j) run_job(j);
    }
    for (const Status& st : job_status) {
      // A genuine (non-injected) evaluation error is a programming error,
      // not a simulated fault; surface it instead of retrying.
      SLICELINE_RETURN_NOT_OK(st);
    }

    // Gather phase: process outcomes serially.
    std::vector<double> job_by_shard(num_shards, 0.0);
    if (obs::MetricsEnabled()) {
      obs::Histogram* worker_seconds =
          obs::MetricsRegistry::Default()->GetHistogram(
              "dist/worker_shard_seconds");
      for (double seconds : job_seconds) worker_seconds->Observe(seconds);
    }
    for (size_t j = 0; j < jobs.size(); ++j) {
      job_by_shard[jobs[j].shard_id] = job_seconds[j];
    }
    double wave_slowest = 0.0;
    std::vector<int> lost_workers;
    for (WaveWorker& w : wave) {
      switch (w.fault) {
        case FaultType::kTransient:
          ++faults_.transient_failures;
          obs::TraceInstant("dist", "transient_failure", w.id);
          break;  // its shards stay missing; the next wave retries them
        case FaultType::kPermanentLoss:
          lost_workers.push_back(w.id);
          break;
        default: {
          for (size_t s : w.shard_ids) w.compute_seconds += job_by_shard[s];
          cost_.worker_busy_seconds += w.compute_seconds;
          double effective_seconds = w.compute_seconds;
          if (w.fault == FaultType::kStraggler) {
            ++faults_.stragglers;
            obs::TraceInstant("dist", "straggler", w.id);
            if (options_.speculative_execution && alive_count_ > 1) {
              // Speculative re-execution: a backup copy of the whole round
              // runs on an idle survivor and finishes at normal compute
              // speed, masking the injected delay. The copy's payload is
              // cross-checked against the original below.
              ++faults_.speculative_reexecutions;
              obs::TraceInstant("dist", "speculative_reexecution", w.id);
              cost_.worker_busy_seconds += w.compute_seconds;
            } else {
              effective_seconds += injector_.straggler_delay_seconds();
            }
          }
          wave_slowest = std::max(wave_slowest, effective_seconds);
          bool first_shard = true;
          for (size_t s : w.shard_ids) {
            size_t j = 0;
            while (jobs[j].shard_id != s) ++j;
            core::EvalResult partial = std::move(job_results[j]);
            // "Sender-side" checksum before the simulated transfer.
            const uint64_t sent_checksum = ChecksumPartial(partial);
            if (w.fault == FaultType::kCorruption && first_shard) {
              injector_.CorruptPartial(round, w.id, &partial);
            }
            if (w.fault == FaultType::kStraggler &&
                options_.speculative_execution && alive_count_ > 1) {
              // The speculative copy really re-evaluates the shard; the two
              // independently computed payloads must agree bit-for-bit.
              auto copy = shards_[s].evaluator->Evaluate(set, worker_config);
              SLICELINE_RETURN_NOT_OK(copy.status());
              if (ChecksumPartial(*copy) != sent_checksum) {
                ++faults_.corrupted_partials;
                obs::TraceInstant("dist", "corrupted_partial",
                                  static_cast<int64_t>(s));
                first_shard = false;
                continue;  // shard stays missing; retried next wave
              }
            }
            first_shard = false;
            cost_.gather_bytes += static_cast<int64_t>(3 * 8 * count);
            if (ChecksumPartial(partial) != sent_checksum ||
                !PartialInvariantsOk(partial, shards_[s].shard.range.size(),
                                     count)) {
              ++faults_.corrupted_partials;
              obs::TraceInstant("dist", "corrupted_partial",
                                static_cast<int64_t>(s));
              continue;  // rejected; retried next wave
            }
            partials[s] = std::move(partial);
            shard_valid[s] = 1;
            --needed;
          }
          break;
        }
      }
    }
    cost_.critical_path_seconds += wave_slowest;

    // Permanent losses: mark dead, degrade past the threshold, otherwise
    // re-assign the lost shards to survivors (lineage re-execution).
    if (!lost_workers.empty()) {
      for (int wid : lost_workers) {
        worker_alive_[static_cast<size_t>(wid)] = 0;
        --alive_count_;
        ++faults_.workers_lost;
        obs::TraceInstant("dist", "worker_lost", wid);
      }
      const double lost_fraction =
          1.0 - static_cast<double>(alive_count_) /
                    static_cast<double>(shards_.size());
      if (alive_count_ == 0 || lost_fraction > options_.max_lost_fraction) {
        return EvaluateDegraded(set, config);
      }
      ReshardLostWorkers();
    }
  }

  if (needed > 0) {
    // Retry budget exhausted (persistent transient faults or corruption):
    // graceful degradation instead of failing the query.
    return EvaluateDegraded(set, config);
  }

  // Aggregate in shard order: shard boundaries never change (shards move
  // between workers wholesale), so every floating-point sum is performed in
  // the same order as a fault-free run -- bit-identical results.
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t i = 0; i < count; ++i) {
      out.sizes[i] += partials[s].sizes[i];
      out.error_sums[i] += partials[s].error_sums[i];
      out.max_errors[i] =
          std::max(out.max_errors[i], partials[s].max_errors[i]);
    }
  }
  PublishDistStats(cost_, faults_);
  return out;
}

StatusOr<core::SliceLineResult> RunSliceLineDistributed(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const core::SliceLineConfig& config, const DistOptions& options,
    DistCostStats* cost_out, DistFaultStats* faults_out) {
  SLICELINE_ASSIGN_OR_RETURN(std::unique_ptr<DistributedSliceEvaluator> eval,
                             DistributedSliceEvaluator::Create(x0, errors,
                                                               options));
  SLICELINE_ASSIGN_OR_RETURN(core::SliceLineResult result,
                             core::RunSliceLineWithBackend(*eval, config));
  result.outcome.dist_fallback_local = eval->faults().fallback_local;
  if (cost_out != nullptr) *cost_out = eval->cost();
  if (faults_out != nullptr) *faults_out = eval->faults();
  return result;
}

}  // namespace sliceline::dist
