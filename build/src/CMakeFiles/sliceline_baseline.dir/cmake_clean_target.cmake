file(REMOVE_RECURSE
  "libsliceline_baseline.a"
)
