#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::core {
namespace {

/// The Figure 3 ablation configurations, most- to least-pruned.
std::vector<SliceLineConfig> AblationConfigs() {
  SliceLineConfig all;                    // (1) all pruning
  SliceLineConfig no_parent = all;        // (2) no parent handling
  no_parent.prune_parents = false;
  SliceLineConfig no_score = no_parent;   // (3) + no score pruning
  no_score.prune_score = false;
  SliceLineConfig no_size = no_score;     // (4) + no size pruning
  no_size.prune_size = false;
  SliceLineConfig none = no_size;         // (5) + no deduplication
  none.deduplicate = false;
  return {all, no_parent, no_score, no_size, none};
}

data::EncodedDataset AblationDataset() {
  data::DatasetOptions opts;
  opts.rows = 397;
  return data::Replicate(data::MakeSalaries(opts), 2, 2);
}

TEST(AblationTest, AllConfigurationsFindTheSameTopK) {
  // Pruning is safe: disabling any pruning technique must not change the
  // returned top-K (only the amount of work).
  data::EncodedDataset ds = AblationDataset();
  std::vector<SliceLineConfig> configs = AblationConfigs();
  SliceLineConfig base = configs[0];
  base.k = 4;
  base.max_level = 4;  // keep the unpruned variants tractable
  auto reference = RunSliceLine(ds, base);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->top_k.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    SliceLineConfig config = configs[c];
    config.k = 4;
    config.max_level = 4;
    auto result = RunSliceLine(ds, config);
    ASSERT_TRUE(result.ok()) << "config " << c;
    ASSERT_EQ(result->top_k.size(), reference->top_k.size()) << "config " << c;
    for (size_t i = 0; i < reference->top_k.size(); ++i) {
      EXPECT_NEAR(result->top_k[i].stats.score,
                  reference->top_k[i].stats.score, 1e-9)
          << "config " << c << " rank " << i;
    }
  }
}

TEST(AblationTest, MorePruningNeverEnumeratesMore) {
  data::EncodedDataset ds = AblationDataset();
  std::vector<SliceLineConfig> configs = AblationConfigs();
  int64_t prev_total = -1;
  for (size_t c = 0; c < configs.size(); ++c) {
    SliceLineConfig config = configs[c];
    config.k = 4;
    config.max_level = 4;
    auto result = RunSliceLine(ds, config);
    ASSERT_TRUE(result.ok());
    if (prev_total >= 0) {
      EXPECT_GE(result->total_evaluated, prev_total)
          << "config " << c << " should enumerate at least as much as "
          << c - 1;
    }
    prev_total = result->total_evaluated;
  }
}

TEST(AblationTest, DeduplicationShrinksDeeperLevels) {
  data::EncodedDataset ds = AblationDataset();
  SliceLineConfig with_dedup;
  with_dedup.max_level = 3;
  with_dedup.prune_parents = false;
  with_dedup.prune_score = false;
  with_dedup.prune_size = false;
  SliceLineConfig without = with_dedup;
  without.deduplicate = false;
  auto a = RunSliceLine(ds, with_dedup);
  auto b = RunSliceLine(ds, without);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_GE(a->levels.size(), 3u);
  ASSERT_GE(b->levels.size(), 3u);
  // At level 3 each slice has up to 3 generating pairs; without dedup the
  // candidate count must be strictly larger.
  EXPECT_GT(b->levels[2].candidates, a->levels[2].candidates);
}

TEST(AblationTest, ScorePruningReducesWorkOnPlantedData) {
  data::DatasetOptions opts;
  opts.rows = 5000;
  data::EncodedDataset ds = data::MakeAdult(opts);
  SliceLineConfig pruned;
  pruned.max_level = 3;
  SliceLineConfig unpruned = pruned;
  unpruned.prune_score = false;
  auto a = RunSliceLine(ds, pruned);
  auto b = RunSliceLine(ds, unpruned);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(a->total_evaluated, b->total_evaluated);
  // Same answers either way.
  ASSERT_EQ(a->top_k.size(), b->top_k.size());
  for (size_t i = 0; i < a->top_k.size(); ++i) {
    EXPECT_NEAR(a->top_k[i].stats.score, b->top_k[i].stats.score, 1e-9);
  }
}

}  // namespace
}  // namespace sliceline::core
