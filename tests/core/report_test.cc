#include "core/report.h"

#include <gtest/gtest.h>

namespace sliceline::core {
namespace {

SliceLineResult SampleResult() {
  SliceLineResult result;
  result.min_support = 32;
  result.average_error = 0.125;
  result.total_seconds = 1.5;
  result.total_evaluated = 1234;
  Slice slice;
  slice.predicates = {{0, 2}, {2, 1}};
  slice.stats = {0.75, 12.5, 1.0, 64};
  result.top_k.push_back(slice);
  LevelStats level;
  level.level = 1;
  level.candidates = 10;
  level.valid = 8;
  level.pruned = 2;
  level.seconds = 0.5;
  result.levels.push_back(level);
  return result;
}

TEST(ReportTest, FormatResultContainsAllSections) {
  const std::string report =
      FormatResult(SampleResult(), {"age", "job", "city"});
  EXPECT_NE(report.find("Top-1 slices"), std::string::npos);
  EXPECT_NE(report.find("sigma=32"), std::string::npos);
  EXPECT_NE(report.find("age=2"), std::string::npos);
  EXPECT_NE(report.find("city=1"), std::string::npos);
  EXPECT_NE(report.find("level 1: candidates=10 valid=8 pruned=2"),
            std::string::npos);
  EXPECT_NE(report.find("1,234 slices evaluated"), std::string::npos);
}

TEST(ReportTest, EmptyResultExplainsItself) {
  SliceLineResult result;
  result.min_support = 50;
  const std::string report = FormatResult(result);
  EXPECT_NE(report.find("no slice satisfies"), std::string::npos);
}

TEST(ReportTest, SummaryLine) {
  const std::string summary = SummarizeResult(SampleResult());
  EXPECT_NE(summary.find("top-1 score=0.7500"), std::string::npos);
  EXPECT_NE(summary.find("size=64"), std::string::npos);
  EXPECT_NE(summary.find("evaluated=1,234"), std::string::npos);
  SliceLineResult empty;
  EXPECT_NE(SummarizeResult(empty).find("top-1: none"), std::string::npos);
}

}  // namespace
}  // namespace sliceline::core
