#ifndef SLICELINE_COMMON_RNG_H_
#define SLICELINE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sliceline {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). All synthetic data in this repo is generated through this
/// class so experiments are reproducible bit-for-bit across runs and
/// platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound), bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p);

  /// Samples an index in [0, weights.size()) proportionally to the
  /// (non-negative) weights. Weights need not be normalized.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Zipf-like draw in [0, n): probability of rank r proportional to
  /// 1/(r+1)^exponent. Used for heavy-tailed category frequencies
  /// (Criteo-like generators).
  size_t NextZipf(size_t n, double exponent);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double next_gaussian_ = 0.0;
};

}  // namespace sliceline

#endif  // SLICELINE_COMMON_RNG_H_
