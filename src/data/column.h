#ifndef SLICELINE_DATA_COLUMN_H_
#define SLICELINE_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sliceline::data {

/// Physical type of a frame column.
enum class ColumnType {
  kNumeric,      ///< double values (continuous features, labels)
  kCategorical,  ///< string categories (to be recoded)
};

/// A named, typed column of a Frame. Exactly one of the two value vectors is
/// populated, matching type().
class Column {
 public:
  /// Creates a numeric column.
  Column(std::string name, std::vector<double> values);
  /// Creates a categorical (string) column.
  Column(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  int64_t size() const;

  bool is_numeric() const { return type_ == ColumnType::kNumeric; }

  const std::vector<double>& numeric() const;
  const std::vector<std::string>& categorical() const;

  /// Renders row i as a string (for CSV output and reports).
  std::string ValueToString(int64_t i) const;

 private:
  std::string name_;
  ColumnType type_;
  std::vector<double> numeric_;
  std::vector<std::string> categorical_;
};

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_COLUMN_H_
