#include "common/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sliceline {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// SIGPIPE on a peer-closed socket must surface as an EPIPE Status, not
/// kill the server; MSG_NOSIGNAL handles it per-send without touching the
/// process signal disposition.
ssize_t SendSome(int fd, const char* data, size_t len) {
  return ::send(fd, data, len, MSG_NOSIGNAL);
}

}  // namespace

SocketConnection::~SocketConnection() { Close(); }

SocketConnection::SocketConnection(SocketConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

SocketConnection& SocketConnection::operator=(
    SocketConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void SocketConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<std::string> SocketConnection::ReadLine(size_t max_bytes) {
  if (fd_ < 0) return Status::InvalidArgument("read on closed connection");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (line.size() > max_bytes) {
        return Status::ResourceExhausted("line exceeds " +
                                         std::to_string(max_bytes) + " bytes");
      }
      return line;
    }
    if (buffer_.size() > max_bytes) {
      return Status::ResourceExhausted("line exceeds " +
                                       std::to_string(max_bytes) + " bytes");
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) {
      if (buffer_.empty()) return Status::NotFound("eof");
      // Tolerate a missing trailing newline on the final line.
      std::string line = std::move(buffer_);
      buffer_.clear();
      if (line.size() > max_bytes) {
        return Status::ResourceExhausted("line exceeds " +
                                         std::to_string(max_bytes) + " bytes");
      }
      return line;
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

StatusOr<std::string> SocketConnection::ReadAll(size_t max_bytes) {
  if (fd_ < 0) return Status::InvalidArgument("read on closed connection");
  std::string out = std::move(buffer_);
  buffer_.clear();
  char chunk[4096];
  while (out.size() < max_bytes) {
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) return out;
    out.append(chunk, static_cast<size_t>(got));
  }
  return Status::ResourceExhausted("response exceeds " +
                                   std::to_string(max_bytes) + " bytes");
}

StatusOr<bool> SocketConnection::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("poll on closed connection");
  if (!buffer_.empty()) return true;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return false;
    return Errno("poll");
  }
  return ready > 0;
}

Status SocketConnection::WriteAll(const std::string& data) {
  if (fd_ < 0) return Status::InvalidArgument("write on closed connection");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = SendSome(fd_, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

StatusOr<ListenSocket> ListenSocket::ListenTcp(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(bound.sin_port);
  return out;
}

StatusOr<ListenSocket> ListenSocket::ListenUnix(const std::string& path,
                                                int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind " + path);
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen " + path);
    ::close(fd);
    return st;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.path_ = path;
  return out;
}

StatusOr<SocketConnection> ListenSocket::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::NotFound("accept timeout");
    return Errno("poll");
  }
  if (ready == 0) return Status::NotFound("accept timeout");
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR) return Status::NotFound("accept timeout");
    return Errno("accept");
  }
  return SocketConnection(client);
}

StatusOr<SocketConnection> ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return st;
  }
  return SocketConnection(fd);
}

StatusOr<SocketConnection> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect " + path);
    ::close(fd);
    return st;
  }
  return SocketConnection(fd);
}

}  // namespace sliceline
