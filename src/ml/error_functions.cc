#include "ml/error_functions.h"

#include <cmath>

#include "common/logging.h"

namespace sliceline::ml {

std::vector<double> SquaredLoss(const std::vector<double>& y,
                                const std::vector<double>& y_hat) {
  SLICELINE_CHECK_EQ(y.size(), y_hat.size());
  std::vector<double> e(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - y_hat[i];
    e[i] = d * d;
  }
  return e;
}

std::vector<double> Inaccuracy(const std::vector<double>& y,
                               const std::vector<double>& y_hat) {
  SLICELINE_CHECK_EQ(y.size(), y_hat.size());
  std::vector<double> e(y.size());
  for (size_t i = 0; i < y.size(); ++i) e[i] = y[i] != y_hat[i] ? 1.0 : 0.0;
  return e;
}

std::vector<double> AbsoluteLoss(const std::vector<double>& y,
                                 const std::vector<double>& y_hat) {
  SLICELINE_CHECK_EQ(y.size(), y_hat.size());
  std::vector<double> e(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    e[i] = y[i] >= y_hat[i] ? y[i] - y_hat[i] : y_hat[i] - y[i];
  }
  return e;
}

std::vector<double> BinaryLogLoss(const std::vector<double>& y,
                                  const std::vector<double>& p, double eps) {
  SLICELINE_CHECK_EQ(y.size(), p.size());
  std::vector<double> e(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    double prob = y[i] != 0.0 ? p[i] : 1.0 - p[i];
    if (prob < eps) prob = eps;
    if (prob > 1.0 - eps) prob = 1.0 - eps;
    e[i] = -std::log(prob);
  }
  return e;
}

std::vector<double> ClassWeightedInaccuracy(
    const std::vector<double>& y, const std::vector<double>& y_hat,
    const std::vector<double>& class_weights) {
  SLICELINE_CHECK_EQ(y.size(), y_hat.size());
  std::vector<double> e(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] == y_hat[i]) continue;
    const size_t cls = static_cast<size_t>(y[i]);
    SLICELINE_CHECK_LT(cls, class_weights.size());
    SLICELINE_CHECK_GE(class_weights[cls], 0.0);
    e[i] = class_weights[cls];
  }
  return e;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

}  // namespace sliceline::ml
