#include "obs/json_validate.h"

#include <cctype>

namespace sliceline::obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipWhitespace();
    if (!ParseValue()) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return true;
  }

  const std::string& error() const { return error_; }
  size_t error_pos() const { return error_pos_; }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_pos_ = pos_;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool ParseValue() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    bool ok = ParseValueInner();
    --depth_;
    return ok;
  }

  bool ParseValueInner() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("invalid literal, expected ") + literal);
      }
      ++pos_;
    }
    return true;
  }

  bool ParseObject() {
    ++pos_;  // consume '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      if (!ParseString()) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray() {
    ++pos_;  // consume '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString() {
    ++pos_;  // consume opening quote
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size() ||
                  !std::isxdigit(
                      static_cast<unsigned char>(text_[pos_]))) {
                return Fail("invalid \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return Fail("invalid escape character");
        }
      } else {
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero must not be followed by digits
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digits after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digits in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("invalid number");
    return true;
  }

  static constexpr int kMaxDepth = 512;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
  size_t error_pos_ = 0;
};

}  // namespace

std::string ValidateStrictJson(const std::string& text) {
  Parser parser(text);
  if (parser.Validate()) return "";
  return parser.error() + " at byte " + std::to_string(parser.error_pos());
}

}  // namespace sliceline::obs
