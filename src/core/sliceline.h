#ifndef SLICELINE_CORE_SLICELINE_H_
#define SLICELINE_CORE_SLICELINE_H_

#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "data/encoded_dataset.h"
#include "data/int_matrix.h"

namespace sliceline::core {

/// Runs the SliceLine enumeration (Algorithm 1) over an integer-encoded
/// feature matrix and its row-aligned error vector: one-hot preparation,
/// basic-slice initialization, level-wise candidate generation with the
/// Section 3.2 pruning, vectorized evaluation, and top-K maintenance.
/// This is the native engine; see sliceline_la.h for the linear-algebra
/// transliteration that executes the same logic with CsrMatrix kernels.
StatusOr<SliceLineResult> RunSliceLine(const data::IntMatrix& x0,
                                       const std::vector<double>& errors,
                                       const SliceLineConfig& config);

/// Convenience overload using a prepared dataset's features and errors.
StatusOr<SliceLineResult> RunSliceLine(const data::EncodedDataset& dataset,
                                       const SliceLineConfig& config);

class EvaluatorBackend;  // core/evaluator.h

/// Runs the enumeration against any evaluation backend. This is how the
/// simulated distributed executor (dist/) reuses the exact same level-wise
/// enumeration, pruning, and top-K logic with sharded evaluation.
StatusOr<SliceLineResult> RunSliceLineWithBackend(
    const EvaluatorBackend& evaluator, const SliceLineConfig& config);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_SLICELINE_H_
