// Extension ablation (the paper's "priority-based enumeration" future-work
// direction, Section 7): level-wise SliceLine vs. the best-first engine
// that expands candidates in descending score-upper-bound order and stops
// when the best remaining bound cannot beat the K-th score. Both are exact;
// the comparison measures evaluated-slice counts and runtime.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "core/sliceline_bestfirst.h"

int main() {
  using namespace sliceline;
  bench::Banner("Extension: Level-Wise vs Best-First Enumeration",
                "SliceLine Section 7 future work (priority enumeration)");
  std::printf("%-12s %6s | %14s %10s | %14s %10s | %s\n", "dataset", "K",
              "levelwise-eval", "time[s]", "bestfirst-eval", "time[s]",
              "top1-agree");
  for (const char* name : {"salaries", "adult", "uscensus"}) {
    data::EncodedDataset ds = bench::Load(
        name, std::string(name) == "uscensus" ? 12000 : 0);
    for (int k : {1, 4, 16}) {
      core::SliceLineConfig config;
      config.alpha = 0.95;
      config.k = k;
      config.max_level = 3;
      auto level_wise = core::RunSliceLine(ds, config);
      auto best_first = core::RunSliceLineBestFirst(ds, config);
      if (!level_wise.ok() || !best_first.ok()) {
        std::fprintf(stderr, "%s failed\n", name);
        return 1;
      }
      const bool agree =
          level_wise->top_k.size() == best_first->top_k.size() &&
          (level_wise->top_k.empty() ||
           std::abs(level_wise->top_k[0].stats.score -
                    best_first->top_k[0].stats.score) < 1e-9);
      std::printf("%-12s %6d | %14s %10s | %14s %10s | %s\n", name, k,
                  FormatWithCommas(level_wise->total_evaluated).c_str(),
                  FormatDouble(level_wise->total_seconds, 3).c_str(),
                  FormatWithCommas(best_first->total_evaluated).c_str(),
                  FormatDouble(best_first->total_seconds, 3).c_str(),
                  agree ? "yes" : "NO");
    }
  }
  std::printf(
      "\nExpected shape: identical top-K (both engines are exact). The\n"
      "measured trade-off motivates the paper's level-wise choice: the\n"
      "best-first order must enumerate every child of an expanded node and\n"
      "only carries single-parent bounds, so on correlated data it\n"
      "evaluates MORE slices than the level-wise sweep with all-parent\n"
      "minima -- the early-exit only wins on small K with one dominant\n"
      "problem slice (cf. salaries K=1 vs K=16 growth).\n");
  return 0;
}
