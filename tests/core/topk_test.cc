#include "core/topk.h"

#include <gtest/gtest.h>

namespace sliceline::core {
namespace {

/// Distinct `code` values make distinct slice identities; TopK holds at most
/// one entry per predicate set.
Slice MakeSlice(double score, int64_t size, int32_t code = 1) {
  Slice s;
  s.predicates = {{0, code}};
  s.stats = {score, 1.0, 0.5, size};
  return s;
}

TEST(TopKTest, KeepsBestK) {
  TopK topk(2, 10);
  topk.Offer(MakeSlice(0.5, 100, 1));
  topk.Offer(MakeSlice(1.5, 100, 2));
  topk.Offer(MakeSlice(1.0, 100, 3));
  ASSERT_EQ(topk.Slices().size(), 2u);
  EXPECT_DOUBLE_EQ(topk.Slices()[0].stats.score, 1.5);
  EXPECT_DOUBLE_EQ(topk.Slices()[1].stats.score, 1.0);
}

TEST(TopKTest, RejectsDuplicateSliceIdentity) {
  // The candidate-deduplication ablation evaluates the same slice several
  // times; a re-offer must not occupy a second slot.
  TopK topk(3, 1);
  topk.Offer(MakeSlice(1.0, 10, 1));
  topk.Offer(MakeSlice(1.0, 10, 1));
  EXPECT_EQ(topk.Slices().size(), 1u);
  topk.Offer(MakeSlice(1.0, 10, 2));
  EXPECT_EQ(topk.Slices().size(), 2u);
}

TEST(TopKTest, RejectsNonPositiveScores) {
  TopK topk(3, 10);
  topk.Offer(MakeSlice(0.0, 100));
  topk.Offer(MakeSlice(-0.5, 100));
  EXPECT_TRUE(topk.Slices().empty());
}

TEST(TopKTest, RejectsBelowMinSupport) {
  TopK topk(3, 50);
  topk.Offer(MakeSlice(2.0, 49));
  EXPECT_TRUE(topk.Slices().empty());
  topk.Offer(MakeSlice(2.0, 50));
  EXPECT_EQ(topk.Slices().size(), 1u);
}

TEST(TopKTest, ThresholdIsMonotone) {
  TopK topk(2, 1);
  EXPECT_DOUBLE_EQ(topk.Threshold(), 0.0);
  topk.Offer(MakeSlice(1.0, 10, 1));
  EXPECT_DOUBLE_EQ(topk.Threshold(), 0.0);  // not yet full
  topk.Offer(MakeSlice(3.0, 10, 2));
  EXPECT_DOUBLE_EQ(topk.Threshold(), 1.0);  // full: K-th score
  topk.Offer(MakeSlice(2.0, 10, 3));
  EXPECT_DOUBLE_EQ(topk.Threshold(), 2.0);  // improved
  topk.Offer(MakeSlice(0.5, 10, 4));
  EXPECT_DOUBLE_EQ(topk.Threshold(), 2.0);  // rejected, unchanged
}

TEST(TopKTest, StableOrderOnTies) {
  TopK topk(3, 1);
  Slice a = MakeSlice(1.0, 10);
  a.predicates = {{0, 1}};
  Slice b = MakeSlice(1.0, 20);
  b.predicates = {{1, 2}};
  topk.Offer(a);
  topk.Offer(b);
  ASSERT_EQ(topk.Slices().size(), 2u);
  EXPECT_EQ(topk.Slices()[0].predicates[0].first, 0);  // first offered first
}

TEST(TopKTest, FullDetection) {
  TopK topk(1, 1);
  EXPECT_FALSE(topk.Full());
  topk.Offer(MakeSlice(1.0, 5));
  EXPECT_TRUE(topk.Full());
}

TEST(SliceTest, ToStringIncludesNamesAndStats) {
  Slice s;
  s.predicates = {{0, 2}, {3, 1}};
  s.stats = {0.5, 10.0, 2.0, 42};
  const std::string rendered = s.ToString({"age", "b", "c", "sex"});
  EXPECT_NE(rendered.find("age=2"), std::string::npos);
  EXPECT_NE(rendered.find("sex=1"), std::string::npos);
  EXPECT_NE(rendered.find("size=42"), std::string::npos);
  // Without names, generic F<idx> labels are used.
  EXPECT_NE(s.ToString().find("F0=2"), std::string::npos);
}

TEST(SliceTest, MatchesChecksAllPredicates) {
  data::IntMatrix x0(2, 3);
  x0.At(0, 0) = 1;
  x0.At(0, 1) = 2;
  x0.At(0, 2) = 3;
  x0.At(1, 0) = 1;
  x0.At(1, 1) = 1;
  x0.At(1, 2) = 3;
  Slice s;
  s.predicates = {{0, 1}, {1, 2}};
  EXPECT_TRUE(s.Matches(x0, 0));
  EXPECT_FALSE(s.Matches(x0, 1));
}

TEST(ResolveMinSupportTest, PaperDefault) {
  SliceLineConfig config;
  EXPECT_EQ(ResolveMinSupport(config, 100), 32);    // max(32, 1)
  EXPECT_EQ(ResolveMinSupport(config, 3200), 32);   // max(32, 32)
  EXPECT_EQ(ResolveMinSupport(config, 100000), 1000);
  EXPECT_EQ(ResolveMinSupport(config, 101), 32);    // ceil(101/100) = 2
  config.min_support = 7;
  EXPECT_EQ(ResolveMinSupport(config, 100000), 7);
}

}  // namespace
}  // namespace sliceline::core
