#!/usr/bin/env bash
# Builds the asan preset (-fsanitize=address,undefined) and runs the tier-1
# ctest suite under it, so the concurrency paths (thread pool, distributed
# fault recovery) are exercised with sanitizers on every change. Then runs
# the fixed-seed fuzz smoke batches (label "fuzz") under the same build:
# the fuzzer's randomized datasets and config combinations reach kernel and
# enumeration paths the unit suites hold constant. Skip them with
# SLICELINE_SKIP_FUZZ_SMOKE=1 when iterating on an unrelated failure.
#
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --preset asan "$@"
if [[ "${SLICELINE_SKIP_FUZZ_SMOKE:-0}" != "1" ]]; then
  ctest --preset asan-fuzz-smoke "$@"
fi
