#ifndef SLICELINE_DIST_FAULT_INJECTION_H_
#define SLICELINE_DIST_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <utility>

#include "core/evaluator.h"

namespace sliceline::dist {

/// Failure taxonomy for the simulated cluster (Section 4.4's broadcast/
/// gather execution). Each worker's evaluation round can independently
/// fail-stop transiently, be lost for good, straggle, or ship a corrupted
/// partial back to the driver.
enum class FaultType : uint8_t {
  kNone = 0,
  /// The worker's round fails but the worker survives; a retry (after
  /// backoff) re-evaluates its shards.
  kTransient = 1,
  /// The worker is gone for the rest of the run; its shards are re-assigned
  /// to survivors (lineage-style re-execution).
  kPermanentLoss = 2,
  /// The worker's round takes `straggler_delay_seconds` longer than its
  /// compute; speculative re-execution can mask the delay.
  kStraggler = 3,
  /// The worker's gathered partial is bit-flipped in transit; the driver's
  /// checksum/invariant validation detects it and re-requests the shard.
  kCorruption = 4,
};

/// Returns a human-readable name ("transient", "loss", ...).
const char* FaultTypeToString(FaultType type);

/// Random fault rates plus determinism controls. All draws are pure hashes
/// of (seed, round, worker, attempt), so a given plan produces the same
/// fault schedule regardless of thread interleaving or evaluation order —
/// the property the deterministic-stats tests rely on.
struct FaultPlan {
  uint64_t seed = 0;
  /// Per-(worker, round, attempt) probabilities in [0, 1]. At most one
  /// fault fires per draw; they are tested in the order loss, transient,
  /// corruption, straggler.
  double loss_rate = 0.0;
  double transient_rate = 0.0;
  double corruption_rate = 0.0;
  double straggler_rate = 0.0;
  /// Simulated extra latency an injected straggler adds to its round.
  double straggler_delay_seconds = 0.05;

  bool HasRandomFaults() const {
    return loss_rate > 0.0 || transient_rate > 0.0 || corruption_rate > 0.0 ||
           straggler_rate > 0.0;
  }
};

/// Deterministic, seedable fault source for the distributed evaluator.
/// Supports both rate-based random schedules (FaultPlan) and exact scripted
/// faults at a given (round, worker) for unit tests. Random faults only
/// fire on a worker's first attempt of a round unless re-drawn on retry
/// (transient/corruption re-draw, so an unlucky seed can exhaust the retry
/// budget — by design, that is what graceful degradation is for).
class FaultInjector {
 public:
  /// Disabled injector: every draw returns kNone.
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan);

  /// Schedules an exact fault for worker `worker`'s evaluation in logical
  /// round `round` (attempt 0 only). Overwrites any previous script for the
  /// same cell.
  void Script(int64_t round, int worker, FaultType type);

  bool enabled() const { return plan_.HasRandomFaults() || !scripted_.empty(); }

  /// Draws the fault decision for worker `worker`, logical round `round`,
  /// retry attempt `attempt` (0 = first try). Pure function of the seed and
  /// arguments: order- and thread-independent.
  FaultType Sample(int64_t round, int worker, int attempt) const;

  /// Simulated extra delay for an injected straggler.
  double straggler_delay_seconds() const {
    return plan_.straggler_delay_seconds;
  }

  /// Deterministically perturbs a worker's partial result in a way that a
  /// payload checksum (and usually the size invariants too) will catch.
  void CorruptPartial(int64_t round, int worker,
                      core::EvalResult* partial) const;

 private:
  FaultPlan plan_;
  std::map<std::pair<int64_t, int>, FaultType> scripted_;
};

/// Order-sensitive FNV-1a style checksum over a partial's payload bytes.
/// The driver validates every gathered partial against the checksum taken
/// on the worker before (simulated) transmission.
uint64_t ChecksumPartial(const core::EvalResult& partial);

}  // namespace sliceline::dist

#endif  // SLICELINE_DIST_FAULT_INJECTION_H_
