// Regression debugging via the CSV workflow: write a raw CSV, read it back,
// preprocess (recode categoricals, bin continuous features into 10
// equi-width bins, exactly as the paper's Section 5.1), train a linear
// model, and debug its squared-loss errors with SliceLine.
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/report.h"
#include "core/sliceline.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "ml/pipeline.h"

int main() {
  using namespace sliceline;

  // Synthesize a salaries-style CSV: the model will underfit the
  // "consulting" department whose pay scale follows different rules.
  std::string csv = "department,seniority,city,years,salary\n";
  Rng rng(7);
  const char* departments[4] = {"engineering", "sales", "consulting", "hr"};
  const char* cities[3] = {"vienna", "graz", "linz"};
  for (int i = 0; i < 8000; ++i) {
    const char* dept = departments[rng.NextUint64(4)];
    const int seniority = static_cast<int>(rng.NextUint64(5)) + 1;
    const char* city = cities[rng.NextUint64(3)];
    const double years = rng.NextDouble(0.0, 30.0);
    double salary = 40000.0 + 8000.0 * seniority + 600.0 * years;
    if (dept == departments[2]) {
      // Consulting pay is dominated by (unobserved) billed hours.
      salary += rng.NextGaussian() * 25000.0;
    } else {
      salary += rng.NextGaussian() * 2500.0;
    }
    csv += std::string(dept) + "," + std::to_string(seniority) + "," + city +
           "," + std::to_string(years) + "," + std::to_string(salary) + "\n";
  }

  auto frame = data::ParseCsv(csv);
  if (!frame.ok()) {
    std::fprintf(stderr, "CSV parse failed: %s\n",
                 frame.status().ToString().c_str());
    return 1;
  }
  data::PreprocessOptions popts;
  popts.label_column = "salary";
  popts.task = data::Task::kRegression;
  popts.num_bins = 10;
  auto ds = data::Preprocess(*frame, popts);
  if (!ds.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  std::printf("encoded %lld rows x %lld features (l=%lld one-hot)\n",
              static_cast<long long>(ds->n()),
              static_cast<long long>(ds->m()),
              static_cast<long long>(ds->OneHotWidth()));

  auto mse = ml::TrainAndMaterializeErrors(&*ds);
  if (!mse.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 mse.status().ToString().c_str());
    return 1;
  }
  std::printf("trained lm; mean squared error = %.1f\n\n", *mse);

  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.9;
  auto result = core::RunSliceLine(*ds, config);
  if (!result.ok()) {
    std::fprintf(stderr, "SliceLine failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", core::FormatResult(*result, ds->feature_names).c_str());
  std::printf(
      "The top slice should isolate department=consulting (category code\n"
      "3 under first-occurrence recoding depends on the data order) --\n"
      "the subgroup whose salaries the linear model cannot explain.\n");
  return 0;
}
