#ifndef SLICELINE_TESTING_RANDOM_DATASET_H_
#define SLICELINE_TESTING_RANDOM_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/slice.h"
#include "data/int_matrix.h"

namespace sliceline::testing {

/// One generated differential-testing input: a dataset (integer-encoded
/// features + error vector) together with the SliceLineConfig the checks run
/// it under. `profile` names the generation recipe (for failure reports) and
/// `seed` the exact Rng seed that reproduces the case from scratch.
struct FuzzCase {
  data::IntMatrix x0;
  std::vector<double> errors;
  core::SliceLineConfig config;
  std::string profile;
  uint64_t seed = 0;
};

/// Size caps for generated datasets. The oracle-differential check runs the
/// exhaustive enumerator, so defaults are deliberately small; metamorphic and
/// determinism checks pass larger caps.
struct RandomDatasetOptions {
  int64_t min_rows = 4;
  int64_t max_rows = 220;
  int min_cols = 2;
  int max_cols = 6;
  int32_t max_domain = 5;
};

/// Seeded generator of randomized slice-finding inputs. Each case draws a
/// profile covering both "typical" distributions (uniform, zipf-skewed,
/// planted problem slices, correlated duplicate columns) and the pathological
/// shapes slicing systems historically break on (constant columns, all-zero
/// errors, uniform errors, heavy score ties, single-row slices, tiny inputs).
/// The enumeration config (k, alpha, sigma, max level, pruning toggles,
/// evaluation strategy) is fuzzed alongside the data: SliceLine's exactness
/// claim must hold for every combination.
class RandomDatasetGenerator {
 public:
  explicit RandomDatasetGenerator(uint64_t seed,
                                  RandomDatasetOptions options = {});

  /// Generates the next case (profile drawn at random).
  FuzzCase Next();

  /// Generates a case with a fixed profile index in [0, num_profiles()).
  FuzzCase NextWithProfile(int profile);

  static int num_profiles();
  static const char* ProfileName(int profile);

 private:
  friend FuzzCase RegenerateCase(uint64_t seed, int profile,
                                 const RandomDatasetOptions& options);

  /// Builds a full case from the generator's current Rng state, recording
  /// `recorded_seed` as the case's reproduction seed.
  FuzzCase Generate(int profile, uint64_t recorded_seed);
  void FillFeatures(FuzzCase* fuzz_case, int profile);
  void FillErrors(FuzzCase* fuzz_case, int profile);
  void SampleConfig(FuzzCase* fuzz_case);

  Rng rng_;
  RandomDatasetOptions options_;
};

/// Re-derives the case a (seed, profile) pair produces; used by replay files
/// that only record the recipe instead of the full matrix.
FuzzCase RegenerateCase(uint64_t seed, int profile,
                        const RandomDatasetOptions& options = {});

}  // namespace sliceline::testing

#endif  // SLICELINE_TESTING_RANDOM_DATASET_H_
