#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/binning.h"
#include "data/recode.h"

namespace sliceline::data {
namespace {

TEST(RecodeTest, FirstOccurrenceOrder) {
  RecodeMap map = RecodeMap::Fit({"b", "a", "b", "c"});
  EXPECT_EQ(map.domain(), 3);
  EXPECT_EQ(map.Encode("b").value(), 1);
  EXPECT_EQ(map.Encode("a").value(), 2);
  EXPECT_EQ(map.Encode("c").value(), 3);
}

TEST(RecodeTest, UnseenCategoryFails) {
  RecodeMap map = RecodeMap::Fit({"a"});
  EXPECT_FALSE(map.Encode("zzz").ok());
}

TEST(RecodeTest, DecodeRoundTrip) {
  RecodeMap map = RecodeMap::Fit({"x", "y"});
  EXPECT_EQ(map.Decode(map.Encode("y").value()).value(), "y");
  EXPECT_FALSE(map.Decode(0).ok());
  EXPECT_FALSE(map.Decode(3).ok());
}

TEST(RecodeTest, EncodeAll) {
  RecodeMap map = RecodeMap::Fit({"a", "b"});
  auto codes = map.EncodeAll({"b", "a", "a"});
  ASSERT_TRUE(codes.ok());
  EXPECT_EQ(*codes, (std::vector<int32_t>{2, 1, 1}));
}

TEST(BinningTest, EquiWidthCodes) {
  auto binner = EquiWidthBinner::Fit({0, 10}, 10);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->domain(), 10);
  EXPECT_EQ(binner->Encode(0.0), 1);
  EXPECT_EQ(binner->Encode(0.99), 1);
  EXPECT_EQ(binner->Encode(5.0), 6);
  EXPECT_EQ(binner->Encode(10.0), 10);  // max clamps into last bin
}

TEST(BinningTest, OutOfRangeClamps) {
  auto binner = EquiWidthBinner::Fit({0, 10}, 5);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->Encode(-100.0), 1);
  EXPECT_EQ(binner->Encode(100.0), 5);
}

TEST(BinningTest, MissingGetsExtraBin) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto binner = EquiWidthBinner::Fit({1.0, 2.0, nan}, 4);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->domain(), 5);
  EXPECT_EQ(binner->Encode(nan), 5);
  EXPECT_EQ(binner->BinLabel(5), "<missing>");
}

TEST(BinningTest, ConstantColumnAllBinOne) {
  auto binner = EquiWidthBinner::Fit({3.0, 3.0, 3.0}, 10);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->Encode(3.0), 1);
}

TEST(BinningTest, RejectsAllMissing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(EquiWidthBinner::Fit({nan, nan}, 10).ok());
}

TEST(BinningTest, RejectsZeroBins) {
  EXPECT_FALSE(EquiWidthBinner::Fit({1.0}, 0).ok());
}

TEST(BinningTest, EncodeAllMatchesEncode) {
  auto binner = EquiWidthBinner::Fit({0, 100}, 10);
  ASSERT_TRUE(binner.ok());
  std::vector<double> vals = {5, 55, 99};
  auto codes = binner->EncodeAll(vals);
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(codes[i], binner->Encode(vals[i]));
  }
}

}  // namespace
}  // namespace sliceline::data
