#include "obs/prometheus_validate.h"

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <vector>

namespace sliceline::obs {

namespace {

bool IsMetricNameChar(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

bool IsMetricName(const std::string& s) {
  if (s.empty()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (!IsMetricNameChar(s[i], i == 0)) return false;
  }
  return true;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// Splits a sample line into (name, optional le label, value token).
bool SplitSample(const std::string& line, std::string* name, bool* has_le,
                 std::string* le, std::string* value) {
  *has_le = false;
  size_t i = 0;
  while (i < line.size() && IsMetricNameChar(line[i], i == 0)) ++i;
  if (i == 0) return false;
  *name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    const std::string prefix = "{le=\"";
    if (line.compare(i, prefix.size(), prefix) != 0) return false;
    i += prefix.size();
    const size_t close = line.find("\"}", i);
    if (close == std::string::npos) return false;
    *le = line.substr(i, close - i);
    *has_le = true;
    i = close + 2;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  *value = line.substr(i + 1);
  return !value->empty() && value->find(' ') == std::string::npos;
}

}  // namespace

std::string ValidatePrometheusText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  std::string family;       // current # TYPE family name
  std::string family_type;  // counter | gauge | histogram
  std::set<std::string> seen_families;
  // Histogram bookkeeping for the current family.
  double last_bucket = 0.0;
  bool saw_inf_bucket = false;
  bool saw_sum = false;
  bool saw_count = false;
  double inf_bucket_value = 0.0;
  double prev_cumulative = -1.0;

  const auto fail = [&lineno](const std::string& message) {
    return message + " at line " + std::to_string(lineno);
  };

  const auto finish_family = [&]() -> std::string {
    if (family_type == "histogram") {
      if (!saw_inf_bucket) return "histogram missing le=\"+Inf\" bucket";
      if (!saw_sum) return "histogram missing _sum sample";
      if (!saw_count) return "histogram missing _count sample";
    }
    return "";
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string err = finish_family();
      if (!err.empty()) return fail(err);
      std::istringstream fields(line);
      std::string hash, kw, name, type;
      std::string extra;
      if (!(fields >> hash >> kw >> name >> type) || hash != "#" ||
          kw != "TYPE" || (fields >> extra)) {
        return fail("malformed # TYPE line");
      }
      if (!IsMetricName(name)) return fail("invalid metric name '" + name +
                                           "'");
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unknown metric type '" + type + "'");
      }
      if (!seen_families.insert(name).second) {
        return fail("duplicate # TYPE for family '" + name + "'");
      }
      family = name;
      family_type = type;
      last_bucket = 0.0;
      saw_inf_bucket = saw_sum = saw_count = false;
      prev_cumulative = -1.0;
      inf_bucket_value = 0.0;
      continue;
    }

    std::string name, le, value_token;
    bool has_le = false;
    if (!SplitSample(line, &name, &has_le, &le, &value_token)) {
      return fail("malformed sample line '" + line + "'");
    }
    double value = 0.0;
    if (!ParseNumber(value_token, &value)) {
      return fail("non-numeric sample value '" + value_token + "'");
    }
    if (family.empty()) return fail("sample before any # TYPE line");

    if (family_type == "histogram") {
      if (name == family + "_bucket") {
        if (!has_le) return fail("histogram bucket without le label");
        if (saw_inf_bucket) return fail("bucket after le=\"+Inf\"");
        if (le == "+Inf") {
          saw_inf_bucket = true;
          inf_bucket_value = value;
        } else {
          double bound = 0.0;
          if (!ParseNumber(le, &bound)) {
            return fail("non-numeric bucket bound '" + le + "'");
          }
          if (prev_cumulative >= 0.0 && bound <= last_bucket) {
            return fail("bucket bounds not increasing");
          }
          last_bucket = bound;
        }
        if (prev_cumulative >= 0.0 && value < prev_cumulative) {
          return fail("bucket counts not cumulative");
        }
        prev_cumulative = value;
      } else if (name == family + "_sum") {
        if (has_le) return fail("unexpected le label on _sum");
        saw_sum = true;
      } else if (name == family + "_count") {
        if (has_le) return fail("unexpected le label on _count");
        saw_count = true;
        if (saw_inf_bucket && value != inf_bucket_value) {
          return fail("_count differs from le=\"+Inf\" bucket");
        }
      } else {
        return fail("sample '" + name + "' outside family '" + family + "'");
      }
    } else {
      if (has_le) return fail("unexpected le label on " + family_type);
      if (name != family) {
        return fail("sample '" + name + "' outside family '" + family + "'");
      }
      if (family_type == "counter" && value < 0.0) {
        return fail("negative counter value");
      }
    }
  }
  ++lineno;
  const std::string err = finish_family();
  if (!err.empty()) return fail(err);
  return "";
}

}  // namespace sliceline::obs
