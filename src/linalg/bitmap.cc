#include "linalg/bitmap.h"

#include <bit>

#include "common/logging.h"

namespace sliceline::linalg {

int64_t Bitmap::PopCount() const {
  int64_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::vector<int64_t> Bitmap::SetRows() const {
  std::vector<int64_t> out;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(static_cast<int64_t>(w) * 64 + bit);
    }
  }
  return out;
}

Bitmap Bitmap::FromRows(int64_t rows, const std::vector<int64_t>& set_rows) {
  Bitmap bm(rows);
  for (int64_t r : set_rows) {
    SLICELINE_DCHECK(r >= 0 && r < rows);
    bm.Set(r);
  }
  return bm;
}

const uint64_t* ColumnBitmaps::Build(int64_t col, const int32_t* row_ids,
                                     int64_t count) {
  auto [it, inserted] = columns_.try_emplace(col);
  if (inserted) {
    it->second.assign(static_cast<size_t>(words_), 0);
    uint64_t* words = it->second.data();
    for (int64_t k = 0; k < count; ++k) {
      const int32_t r = row_ids[k];
      SLICELINE_DCHECK(r >= 0 && r < rows_);
      words[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
  return it->second.data();
}

}  // namespace sliceline::linalg
