#include "core/evaluator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::core {
namespace {

struct Fixture {
  data::IntMatrix x0;
  data::FeatureOffsets offsets;
  std::vector<double> errors;
};

Fixture RandomFixture(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  Fixture f;
  f.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      f.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  f.offsets = data::ComputeOffsets(f.x0);
  f.errors.resize(n);
  for (auto& e : f.errors) e = rng.NextBool(0.4) ? rng.NextDouble() : 0.0;
  return f;
}

/// Brute-force slice statistics by scanning every row.
void BruteForce(const Fixture& f, const std::vector<int64_t>& cols,
                double* ss, double* se, double* sm) {
  *ss = *se = *sm = 0.0;
  for (int64_t i = 0; i < f.x0.rows(); ++i) {
    bool match = true;
    for (int64_t c : cols) {
      const int feat = f.offsets.FeatureOfColumn(c);
      if (f.x0.At(i, feat) != f.offsets.CodeOfColumn(c)) {
        match = false;
        break;
      }
    }
    if (match) {
      *ss += 1.0;
      *se += f.errors[i];
      *sm = std::max(*sm, f.errors[i]);
    }
  }
}

TEST(SliceSetTest, AddAndAccess) {
  SliceSet set;
  EXPECT_EQ(set.size(), 0);
  set.Add({1, 5});
  set.Add({0, 3, 7});
  EXPECT_EQ(set.size(), 2);
  EXPECT_EQ(set.Length(0), 2);
  EXPECT_EQ(set.Length(1), 3);
  EXPECT_EQ(set.Columns(1)[2], 7);
}

TEST(EvaluatorTest, BasicStatsMatchBruteForce) {
  Fixture f = RandomFixture(1, 500, 4, 5);
  SliceEvaluator eval(f.x0, f.offsets, f.errors);
  for (int64_t c = 0; c < f.offsets.total; ++c) {
    double ss, se, sm;
    BruteForce(f, {c}, &ss, &se, &sm);
    EXPECT_DOUBLE_EQ(static_cast<double>(eval.basic_sizes()[c]), ss);
    EXPECT_NEAR(eval.basic_error_sums()[c], se, 1e-9);
    EXPECT_DOUBLE_EQ(eval.basic_max_errors()[c], sm);
  }
  EXPECT_EQ(eval.n(), 500);
}

class EvaluatorStrategyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EvaluatorStrategyTest, MatchesBruteForce) {
  const auto [strategy, block] = GetParam();
  Fixture f = RandomFixture(7, 400, 5, 4);
  SliceEvaluator eval(f.x0, f.offsets, f.errors);

  // Random multi-column slices (distinct features).
  Rng rng(13);
  SliceSet set;
  std::vector<std::vector<int64_t>> expected_cols;
  for (int s = 0; s < 40; ++s) {
    const int len = 1 + static_cast<int>(rng.NextUint64(3));
    std::vector<int> feats = {0, 1, 2, 3, 4};
    rng.Shuffle(feats);
    std::vector<int64_t> cols;
    for (int k = 0; k < len; ++k) {
      const int32_t code = static_cast<int32_t>(
          rng.NextUint64(f.offsets.fdom[feats[k]])) + 1;
      cols.push_back(f.offsets.ColumnOf(feats[k], code));
    }
    std::sort(cols.begin(), cols.end());
    set.Add(cols);
    expected_cols.push_back(cols);
  }

  SliceLineConfig config;
  config.eval_strategy = static_cast<SliceLineConfig::EvalStrategy>(strategy);
  config.eval_block_size = block;
  config.parallel = block % 2 == 0;  // exercise both code paths
  EvalResult result = eval.Evaluate(set, config).value();

  for (size_t s = 0; s < expected_cols.size(); ++s) {
    double ss, se, sm;
    BruteForce(f, expected_cols[s], &ss, &se, &sm);
    EXPECT_DOUBLE_EQ(result.sizes[s], ss) << "slice " << s;
    EXPECT_NEAR(result.error_sums[s], se, 1e-9) << "slice " << s;
    EXPECT_DOUBLE_EQ(result.max_errors[s], sm) << "slice " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndBlocks, EvaluatorStrategyTest,
    ::testing::Values(std::make_tuple(0, 1),    // kIndex
                      std::make_tuple(0, 16),
                      std::make_tuple(1, 1),    // kScanBlock, task-parallel
                      std::make_tuple(1, 4),
                      std::make_tuple(1, 16),
                      std::make_tuple(1, 1000), // one block for all slices
                      std::make_tuple(2, 1),    // kBitset
                      std::make_tuple(2, 16)));

TEST(EvaluatorTest, StrategiesAgreeOnLargerInput) {
  Fixture f = RandomFixture(21, 3000, 6, 8);
  SliceEvaluator eval(f.x0, f.offsets, f.errors);
  Rng rng(23);
  SliceSet set;
  for (int s = 0; s < 100; ++s) {
    std::vector<int64_t> cols;
    const int f1 = static_cast<int>(rng.NextUint64(6));
    int f2 = static_cast<int>(rng.NextUint64(6));
    if (f2 == f1) f2 = (f1 + 1) % 6;
    cols.push_back(f.offsets.ColumnOf(
        f1, static_cast<int32_t>(rng.NextUint64(f.offsets.fdom[f1])) + 1));
    cols.push_back(f.offsets.ColumnOf(
        f2, static_cast<int32_t>(rng.NextUint64(f.offsets.fdom[f2])) + 1));
    std::sort(cols.begin(), cols.end());
    set.Add(cols);
  }
  SliceLineConfig index_cfg;
  index_cfg.eval_strategy = SliceLineConfig::EvalStrategy::kIndex;
  SliceLineConfig scan_cfg;
  scan_cfg.eval_strategy = SliceLineConfig::EvalStrategy::kScanBlock;
  scan_cfg.eval_block_size = 8;
  SliceLineConfig bitset_cfg;
  bitset_cfg.eval_strategy = SliceLineConfig::EvalStrategy::kBitset;
  EvalResult a = eval.Evaluate(set, index_cfg).value();
  EvalResult b = eval.Evaluate(set, scan_cfg).value();
  EvalResult c = eval.Evaluate(set, bitset_cfg).value();
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.sizes, c.sizes);
  for (size_t i = 0; i < a.error_sums.size(); ++i) {
    EXPECT_NEAR(a.error_sums[i], b.error_sums[i], 1e-9);
    EXPECT_DOUBLE_EQ(a.max_errors[i], b.max_errors[i]);
    EXPECT_NEAR(a.error_sums[i], c.error_sums[i], 1e-9);
    EXPECT_DOUBLE_EQ(a.max_errors[i], c.max_errors[i]);
  }
}

TEST(EvaluatorTest, BitsetCacheReusedAcrossCalls) {
  Fixture f = RandomFixture(41, 500, 3, 4);
  SliceEvaluator eval(f.x0, f.offsets, f.errors);
  SliceSet set;
  set.Add({f.offsets.ColumnOf(0, 1)});
  set.Add({f.offsets.ColumnOf(0, 1), f.offsets.ColumnOf(1, 2)});
  SliceLineConfig cfg;
  cfg.eval_strategy = SliceLineConfig::EvalStrategy::kBitset;
  EvalResult first = eval.Evaluate(set, cfg).value();
  EvalResult second = eval.Evaluate(set, cfg).value();  // cached bitmaps path
  EXPECT_EQ(first.sizes, second.sizes);
  EXPECT_EQ(first.error_sums, second.error_sums);
}

TEST(EvaluatorTest, EmptySliceSet) {
  Fixture f = RandomFixture(31, 50, 2, 3);
  SliceEvaluator eval(f.x0, f.offsets, f.errors);
  EvalResult r = eval.Evaluate(SliceSet(), SliceLineConfig()).value();
  EXPECT_TRUE(r.sizes.empty());
}

TEST(EvaluatorTest, TotalErrorAccumulates) {
  Fixture f = RandomFixture(33, 100, 2, 3);
  SliceEvaluator eval(f.x0, f.offsets, f.errors);
  double expect = 0.0;
  for (double e : f.errors) expect += e;
  EXPECT_NEAR(eval.total_error(), expect, 1e-9);
}

}  // namespace
}  // namespace sliceline::core
