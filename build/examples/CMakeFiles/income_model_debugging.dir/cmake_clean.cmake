file(REMOVE_RECURSE
  "CMakeFiles/income_model_debugging.dir/income_model_debugging.cpp.o"
  "CMakeFiles/income_model_debugging.dir/income_model_debugging.cpp.o.d"
  "income_model_debugging"
  "income_model_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/income_model_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
