#include "baseline/slicefinder.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace sliceline::baseline {

namespace {

struct Node {
  std::vector<std::pair<int, int32_t>> predicates;
  std::vector<int32_t> rows;
};

struct ErrorMoments {
  double mean = 0.0;
  double variance = 0.0;
  int64_t count = 0;
};

ErrorMoments MomentsOf(const std::vector<double>& errors,
                       const std::vector<int32_t>& rows) {
  ErrorMoments m;
  m.count = static_cast<int64_t>(rows.size());
  if (m.count == 0) return m;
  double sum = 0.0;
  for (int32_t r : rows) sum += errors[r];
  m.mean = sum / static_cast<double>(m.count);
  double sq = 0.0;
  for (int32_t r : rows) {
    const double d = errors[r] - m.mean;
    sq += d * d;
  }
  m.variance = m.count > 1 ? sq / static_cast<double>(m.count - 1) : 0.0;
  return m;
}

/// Cohen's-d style effect size between slice and complement.
double EffectSize(const ErrorMoments& s, const ErrorMoments& rest) {
  const double pooled = std::sqrt((s.variance + rest.variance) / 2.0);
  if (pooled <= 0.0) return s.mean > rest.mean ? 1e9 : 0.0;
  return (s.mean - rest.mean) / pooled;
}

/// Welch's t-statistic for "slice errors larger than complement errors".
double WelchT(const ErrorMoments& s, const ErrorMoments& rest) {
  const double denom = std::sqrt(
      s.variance / std::max<int64_t>(s.count, 1) +
      rest.variance / std::max<int64_t>(rest.count, 1));
  if (denom <= 0.0) return s.mean > rest.mean ? 1e9 : 0.0;
  return (s.mean - rest.mean) / denom;
}

/// True if `fine` contains every predicate of `coarse`.
bool Dominates(const std::vector<std::pair<int, int32_t>>& coarse,
               const std::vector<std::pair<int, int32_t>>& fine) {
  for (const auto& pred : coarse) {
    if (std::find(fine.begin(), fine.end(), pred) == fine.end()) return false;
  }
  return true;
}

}  // namespace

StatusOr<SliceFinderResult> RunSliceFinder(const data::IntMatrix& x0,
                                           const std::vector<double>& errors,
                                           const SliceFinderConfig& config) {
  const int64_t n = x0.rows();
  const int m = static_cast<int>(x0.cols());
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != n) {
    return Status::InvalidArgument("error vector size mismatch");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  Stopwatch watch;

  core::SliceLineConfig sigma_config;
  sigma_config.min_support = config.min_support;
  const int64_t sigma = core::ResolveMinSupport(sigma_config, n);
  const int max_level =
      config.max_level > 0 ? std::min(config.max_level, m) : m;

  // Global error moments; complement moments are derived incrementally from
  // totals to avoid a second scan per slice.
  double total_sum = 0.0;
  double total_sq = 0.0;
  for (double e : errors) {
    total_sum += e;
    total_sq += e * e;
  }

  SliceFinderResult result;

  // Level-1 frontier: every (feature, code) with its row list.
  std::vector<Node> frontier;
  {
    const std::vector<int32_t> domains = x0.ColMaxs();
    for (int f = 0; f < m; ++f) {
      std::vector<std::vector<int32_t>> buckets(
          static_cast<size_t>(domains[f]));
      for (int64_t i = 0; i < n; ++i) {
        buckets[x0.At(i, f) - 1].push_back(static_cast<int32_t>(i));
      }
      for (int32_t code = 1; code <= domains[f]; ++code) {
        if (static_cast<int64_t>(buckets[code - 1].size()) < sigma) continue;
        Node node;
        node.predicates = {{f, code}};
        node.rows = std::move(buckets[code - 1]);
        frontier.push_back(std::move(node));
      }
    }
  }

  for (int level = 1; level <= max_level && !frontier.empty(); ++level) {
    ++result.levels_expanded;
    // "decreasing slice size" ordering within the level.
    std::stable_sort(frontier.begin(), frontier.end(),
                     [](const Node& a, const Node& b) {
                       return a.rows.size() > b.rows.size();
                     });
    std::vector<Node> expandable;
    for (Node& node : frontier) {
      ++result.evaluated;
      const ErrorMoments s = MomentsOf(errors, node.rows);
      ErrorMoments rest;
      rest.count = n - s.count;
      if (rest.count > 0) {
        const double rest_sum =
            total_sum - s.mean * static_cast<double>(s.count);
        rest.mean = rest_sum / static_cast<double>(rest.count);
        double s_sq = 0.0;
        for (int32_t r : node.rows) s_sq += errors[r] * errors[r];
        const double rest_sq = total_sq - s_sq;
        const double rest_var =
            rest.count > 1
                ? (rest_sq - rest.mean * rest_sum) /
                      static_cast<double>(rest.count - 1)
                : 0.0;
        rest.variance = std::max(rest_var, 0.0);
      }
      const double effect = EffectSize(s, rest);
      const double t = WelchT(s, rest);
      const bool problematic =
          effect >= config.effect_size_min && t >= config.t_critical;
      if (problematic) {
        // Dominance: skip if a reported coarser slice covers this one.
        bool dominated = false;
        for (const core::Slice& reported : result.slices) {
          if (Dominates(reported.predicates, node.predicates)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          core::Slice slice;
          slice.predicates = node.predicates;
          std::sort(slice.predicates.begin(), slice.predicates.end());
          double err_sum = 0.0;
          double err_max = 0.0;
          for (int32_t r : node.rows) {
            err_sum += errors[r];
            err_max = std::max(err_max, errors[r]);
          }
          slice.stats = {effect, err_sum, err_max,
                         static_cast<int64_t>(node.rows.size())};
          result.slices.push_back(std::move(slice));
        }
      } else {
        expandable.push_back(std::move(node));
      }
    }
    // Heuristic level-wise termination (the paper's critique: this can stop
    // before the globally worst slices are found).
    if (static_cast<int>(result.slices.size()) >= config.k) break;
    if (level == max_level) break;

    // Expand the non-problematic frontier by one predicate on a feature
    // strictly after the node's last bound feature (each slice generated
    // exactly once).
    std::vector<Node> next;
    for (const Node& node : expandable) {
      const int last_feature = node.predicates.back().first;
      for (int f = last_feature + 1; f < m; ++f) {
        int32_t dom = 0;
        for (int32_t r : node.rows) dom = std::max(dom, x0.At(r, f));
        std::vector<std::vector<int32_t>> buckets(static_cast<size_t>(dom));
        for (int32_t r : node.rows) buckets[x0.At(r, f) - 1].push_back(r);
        for (int32_t code = 1; code <= dom; ++code) {
          if (static_cast<int64_t>(buckets[code - 1].size()) < sigma) continue;
          Node child;
          child.predicates = node.predicates;
          child.predicates.emplace_back(f, code);
          child.rows = std::move(buckets[code - 1]);
          next.push_back(std::move(child));
        }
      }
    }
    frontier = std::move(next);
  }

  result.total_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sliceline::baseline
