
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/sliceline_core.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/sliceline_core.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/sliceline_core.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "src/CMakeFiles/sliceline_core.dir/core/exhaustive.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/exhaustive.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/sliceline_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/scoring.cc" "src/CMakeFiles/sliceline_core.dir/core/scoring.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/scoring.cc.o.d"
  "/root/repo/src/core/slice.cc" "src/CMakeFiles/sliceline_core.dir/core/slice.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/slice.cc.o.d"
  "/root/repo/src/core/slice_analysis.cc" "src/CMakeFiles/sliceline_core.dir/core/slice_analysis.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/slice_analysis.cc.o.d"
  "/root/repo/src/core/sliceline.cc" "src/CMakeFiles/sliceline_core.dir/core/sliceline.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/sliceline.cc.o.d"
  "/root/repo/src/core/sliceline_bestfirst.cc" "src/CMakeFiles/sliceline_core.dir/core/sliceline_bestfirst.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/sliceline_bestfirst.cc.o.d"
  "/root/repo/src/core/sliceline_la.cc" "src/CMakeFiles/sliceline_core.dir/core/sliceline_la.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/sliceline_la.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/CMakeFiles/sliceline_core.dir/core/topk.cc.o" "gcc" "src/CMakeFiles/sliceline_core.dir/core/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
