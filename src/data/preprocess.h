#ifndef SLICELINE_DATA_PREPROCESS_H_
#define SLICELINE_DATA_PREPROCESS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/binning.h"
#include "data/encoded_dataset.h"
#include "data/frame.h"
#include "data/recode.h"

namespace sliceline::data {

/// Configuration for turning a raw Frame into a slice-finding input,
/// mirroring the paper's preprocessing: recode categorical features, bin
/// continuous features (except labels) into equi-width bins, drop ID columns.
struct PreprocessOptions {
  std::string label_column;                 ///< required
  Task task = Task::kRegression;            ///< label interpretation
  int num_bins = 10;                        ///< equi-width bins (paper: 10)
  std::vector<std::string> drop_columns;    ///< e.g. ID columns
};

/// Encodes `frame` into an EncodedDataset. For classification the label
/// column is recoded to 0-based class ids; for regression it is used as-is.
/// The returned dataset has no error vector yet (train a model via ml/ or
/// use a generator's simulated errors).
StatusOr<EncodedDataset> Preprocess(const Frame& frame,
                                    const PreprocessOptions& options);

/// The frozen encoder of one feature, retained from preprocessing so that
/// rows arriving later (streaming appends) are recoded against the same
/// dictionary / bin edges as the base dataset. Exactly one of `binner`
/// (numeric features) and `recode` (categorical features) is engaged.
struct FeatureEncoder {
  std::string name;
  bool numeric = false;
  std::optional<EquiWidthBinner> binner;
  std::optional<RecodeMap> recode;

  int32_t domain() const { return numeric ? binner->domain() : recode->domain(); }
};

/// Per-feature frozen encoders, in `EncodedDataset::feature_names` order.
struct DatasetEncoders {
  std::vector<FeatureEncoder> features;

  std::vector<int32_t> Domains() const;
};

/// As Preprocess, but additionally fills `encoders` with the fitted
/// per-feature encoders (the frozen dictionary for later appends).
StatusOr<EncodedDataset> PreprocessWithEncoders(const Frame& frame,
                                                const PreprocessOptions& options,
                                                DatasetEncoders* encoders);

/// Recodes raw rows against frozen encoders. Each row carries one string
/// cell per feature, in encoder order. Numeric cells must parse as doubles
/// ("" and "nan" map to the missing-value bin); categorical cells must be
/// categories the dictionary has already seen — an unseen category is an
/// error, never a new code, so appended rows stay comparable to the base.
StatusOr<IntMatrix> EncodeRawRows(
    const DatasetEncoders& encoders,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_PREPROCESS_H_
