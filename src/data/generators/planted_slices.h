#ifndef SLICELINE_DATA_GENERATORS_PLANTED_SLICES_H_
#define SLICELINE_DATA_GENERATORS_PLANTED_SLICES_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/encoded_dataset.h"

namespace sliceline::data {

/// True if row `row` of x0 satisfies every predicate of `slice`.
bool RowMatchesPlanted(const IntMatrix& x0, int64_t row,
                       const PlantedSlice& slice);

/// Controls the simulated model-error vector of synthetic datasets. The
/// paper materializes error vectors (squared loss / inaccuracy) before slice
/// finding; generators use this simulation so the benchmark harness does not
/// depend on training time, while examples train real models via ml/.
struct ErrorSimOptions {
  /// Classification: base misclassification probability.
  /// Regression: standard deviation of the base residual.
  double base_rate = 0.10;
  /// Classification: misclassification probability inside a planted slice
  /// with severity 1.0 (scaled by the slice's severity, capped at 0.95).
  /// Regression: residual std-dev multiplier inside a planted slice.
  double planted_rate = 0.55;
};

/// Draws a per-row error vector: inaccuracy in {0,1} for classification,
/// squared residuals for regression. Rows matching planted slices receive
/// elevated error according to the slice severity.
std::vector<double> SimulateModelErrors(const EncodedDataset& dataset,
                                        const ErrorSimOptions& options,
                                        Rng& rng);

/// Fills column `col` of x0 with iid categorical codes 1..domain. With
/// zipf_exponent > 0 frequencies are heavy-tailed (rank r gets weight
/// ~ 1/(r+1)^zipf_exponent); with 0 the distribution is uniform.
void FillCategorical(IntMatrix& x0, int col, int32_t domain,
                     double zipf_exponent, Rng& rng);

/// Fills a group of columns that share a latent code, flipping each entry to
/// an independent random code with probability `noise`. Low noise produces
/// the strongly correlated column groups the paper observes in Covtype /
/// USCensus / Criteo. `domains[i]` is the domain of `cols[i]`; the latent
/// code is drawn on the smallest domain and mapped proportionally.
void FillCorrelatedGroup(IntMatrix& x0, const std::vector<int>& cols,
                         const std::vector<int32_t>& domains, double noise,
                         Rng& rng);

/// Maximum severity over all planted slices matching `row` (0 if none).
double RowSeverity(const IntMatrix& x0, int64_t row,
                   const std::vector<PlantedSlice>& planted);

/// Bakes the planted difficulty into the LABELS so that any model trained
/// on the dataset genuinely struggles on the planted slices (not only the
/// simulated error vectors): regression targets get extra Gaussian noise of
/// sd = regression_noise_scale * severity; classification labels are
/// flipped to a random other class with probability
/// min(0.45, classification_flip_rate * severity).
void InjectPlantedDifficulty(EncodedDataset* dataset,
                             double regression_noise_scale,
                             double classification_flip_rate, Rng& rng);

/// Replicates a dataset `row_factor` times row-wise and `col_factor` times
/// column-wise (duplicated features, creating perfect correlation). Used by
/// the Figure 3 "Salaries 2x2" ablation and the Figure 7(a) row-scaling
/// experiment. Errors, labels, and planted slices are replicated/remapped
/// accordingly.
EncodedDataset Replicate(const EncodedDataset& dataset, int row_factor,
                         int col_factor);

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_GENERATORS_PLANTED_SLICES_H_
