
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/binning.cc" "src/CMakeFiles/sliceline_data.dir/data/binning.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/binning.cc.o.d"
  "/root/repo/src/data/column.cc" "src/CMakeFiles/sliceline_data.dir/data/column.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/column.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/sliceline_data.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/csv.cc.o.d"
  "/root/repo/src/data/frame.cc" "src/CMakeFiles/sliceline_data.dir/data/frame.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/frame.cc.o.d"
  "/root/repo/src/data/generators/adult.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/adult.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/adult.cc.o.d"
  "/root/repo/src/data/generators/covtype.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/covtype.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/covtype.cc.o.d"
  "/root/repo/src/data/generators/criteo.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/criteo.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/criteo.cc.o.d"
  "/root/repo/src/data/generators/kdd98.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/kdd98.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/kdd98.cc.o.d"
  "/root/repo/src/data/generators/planted_slices.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/planted_slices.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/planted_slices.cc.o.d"
  "/root/repo/src/data/generators/registry.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/registry.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/registry.cc.o.d"
  "/root/repo/src/data/generators/salaries.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/salaries.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/salaries.cc.o.d"
  "/root/repo/src/data/generators/uscensus.cc" "src/CMakeFiles/sliceline_data.dir/data/generators/uscensus.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/generators/uscensus.cc.o.d"
  "/root/repo/src/data/onehot.cc" "src/CMakeFiles/sliceline_data.dir/data/onehot.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/onehot.cc.o.d"
  "/root/repo/src/data/preprocess.cc" "src/CMakeFiles/sliceline_data.dir/data/preprocess.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/preprocess.cc.o.d"
  "/root/repo/src/data/recode.cc" "src/CMakeFiles/sliceline_data.dir/data/recode.cc.o" "gcc" "src/CMakeFiles/sliceline_data.dir/data/recode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
