#ifndef SLICELINE_BENCH_BENCH_UTIL_H_
#define SLICELINE_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "core/slice.h"
#include "data/generators/generators.h"
#include "linalg/kernels_simd.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace sliceline::bench {

/// Global row-count multiplier for the whole harness, set via the
/// SLICELINE_BENCH_SCALE environment variable (default 1.0). Benchmarks
/// print the effective dataset sizes so results are self-describing.
inline double Scale() {
  if (const char* env = std::getenv("SLICELINE_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// Loads a generator dataset with the harness scale applied.
inline data::EncodedDataset Load(const std::string& name,
                                 int64_t base_rows = 0) {
  data::DatasetOptions options;
  if (base_rows > 0) {
    options.rows = static_cast<int64_t>(base_rows * Scale());
    if (options.rows < 256) options.rows = 256;
  } else if (Scale() != 1.0) {
    // Apply the scale to the generator default.
    for (const data::DatasetInfo& info : data::ListDatasets()) {
      if (info.name == name) {
        options.rows =
            static_cast<int64_t>(info.default_rows * Scale());
        if (options.rows < 256) options.rows = 256;
      }
    }
  }
  auto ds = data::MakeDatasetByName(name, options);
  if (!ds.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(ds).value();
}

/// The git revision benchmark JSON is attributed to: the SLICELINE_GIT_SHA
/// environment variable when set (CI exports the exact commit under test),
/// else the revision captured at configure time, else "unknown" (source
/// tarball builds). Perf numbers without a revision are unattributable, so
/// every Reporter stamps this into its annotations.
inline std::string GitSha() {
  if (const char* env = std::getenv("SLICELINE_GIT_SHA")) return env;
#ifdef SLICELINE_GIT_SHA_CONFIGURE
  return SLICELINE_GIT_SHA_CONFIGURE;
#else
  return "unknown";
#endif
}

/// The machine benchmark JSON is attributed to (perf numbers from different
/// hosts must never be compared silently).
inline std::string Hostname() {
  char name[256] = {};
  if (::gethostname(name, sizeof(name) - 1) != 0) return "unknown";
  return name[0] != '\0' ? name : "unknown";
}

/// Measurement timestamp: SLICELINE_BENCH_TIMESTAMP when set (CI injects a
/// fixed value so report diffs stay deterministic), else the wall clock in
/// UTC ISO-8601.
inline std::string BenchTimestamp() {
  if (const char* env = std::getenv("SLICELINE_BENCH_TIMESTAMP")) return env;
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

/// Prints a benchmark banner with the paper reference.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale=%.3g (set SLICELINE_BENCH_SCALE to change)\n", Scale());
  std::printf("=====================================================\n");
}

/// Checked unwrap for benchmark runs: on failure prints "<label> failed:
/// <status>" and exits 1, so benches don't repeat the ok()-check
/// boilerplate at every call site.
inline core::SliceLineResult Unwrap(StatusOr<core::SliceLineResult> result,
                                    const std::string& label) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Times one measurement on the same steady clock the obs layer uses.
template <typename Fn>
inline double Timed(Fn&& fn) {
  Stopwatch watch;
  fn();
  return watch.ElapsedSeconds();
}

/// Shared machine-readable output for the benchmark harness: every bench_*
/// binary records its measurement rows here, and when SLICELINE_BENCH_JSON
/// names a path the whole run is written through obs::RunReport — the same
/// schema_version-1 JSON the CLI's --metrics-json emits, with one numeric
/// section per measurement group and the metrics-registry snapshot
/// (per-level counters, kernel op counts) embedded. Construction enables
/// the metrics registry when JSON output is requested so those counters
/// are populated; without SLICELINE_BENCH_JSON everything stays disabled
/// and AddRow is a cheap vector append.
///
/// Use "-" to write the JSON to stdout after the human-readable tables; use
/// a file path when stdout must stay a clean table.
class Reporter {
 public:
  Reporter(std::string tool, std::string paper_ref) {
    if (const char* env = std::getenv("SLICELINE_BENCH_JSON")) {
      json_path_ = env;
    }
    if (!json_path_.empty()) obs::SetMetricsEnabled(true);
    report_.set_tool(std::move(tool));
    report_.AddAnnotation("reproduces", paper_ref);
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%.3g", Scale());
    report_.AddAnnotation("scale", scale);
    // Attribution: the ISA the packed kernels dispatch at and the revision
    // under test, so BENCH_*.json files are comparable across machines and
    // commits. (WriteJson also emits a top-level "simd_isa", but that one is
    // sampled at write time; this one is the dispatch in effect when the
    // reporter — and thus the measurement run — started.)
    report_.AddAnnotation("simd_isa", linalg::SelectedIsaName());
    report_.AddAnnotation("git_sha", GitSha());
    report_.AddAnnotation("hostname", Hostname());
    report_.AddAnnotation("timestamp", BenchTimestamp());
  }

  /// Records one measurement row under `section` (e.g. the dataset name);
  /// rows for the same section merge into one flat numeric object.
  void AddRow(const std::string& section,
              std::vector<std::pair<std::string, double>> key_values) {
    if (json_path_.empty()) return;
    report_.AddNumericSection(section, std::move(key_values));
  }

  void Annotate(const std::string& key, const std::string& value) {
    report_.AddAnnotation(key, value);
  }

  /// Writes the report when SLICELINE_BENCH_JSON is set. Returns main()'s
  /// exit code: 0 on success or no JSON requested, 1 on a write failure.
  int Finish() {
    if (json_path_.empty()) return 0;
    auto status = obs::WriteRunReportJson(report_, json_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "writing SLICELINE_BENCH_JSON failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    return 0;
  }

 private:
  obs::RunReport report_;
  std::string json_path_;
};

}  // namespace sliceline::bench

#endif  // SLICELINE_BENCH_BENCH_UTIL_H_
