file(REMOVE_RECURSE
  "CMakeFiles/sliceline_ml.dir/ml/error_functions.cc.o"
  "CMakeFiles/sliceline_ml.dir/ml/error_functions.cc.o.d"
  "CMakeFiles/sliceline_ml.dir/ml/kmeans.cc.o"
  "CMakeFiles/sliceline_ml.dir/ml/kmeans.cc.o.d"
  "CMakeFiles/sliceline_ml.dir/ml/linear_regression.cc.o"
  "CMakeFiles/sliceline_ml.dir/ml/linear_regression.cc.o.d"
  "CMakeFiles/sliceline_ml.dir/ml/logistic_regression.cc.o"
  "CMakeFiles/sliceline_ml.dir/ml/logistic_regression.cc.o.d"
  "CMakeFiles/sliceline_ml.dir/ml/pipeline.cc.o"
  "CMakeFiles/sliceline_ml.dir/ml/pipeline.cc.o.d"
  "CMakeFiles/sliceline_ml.dir/ml/split.cc.o"
  "CMakeFiles/sliceline_ml.dir/ml/split.cc.o.d"
  "libsliceline_ml.a"
  "libsliceline_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
