#include "data/frame.h"

namespace sliceline::data {

Status Frame::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, frame has " +
        std::to_string(num_rows()));
  }
  for (const Column& c : columns_) {
    if (c.name() == column.name()) {
      return Status::InvalidArgument("duplicate column name '" +
                                     column.name() + "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

StatusOr<int64_t> Frame::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int64_t>(i);
  }
  return Status::NotFound("no column named '" + name + "'");
}

StatusOr<Frame> Frame::DropColumn(const std::string& name) const {
  SLICELINE_ASSIGN_OR_RETURN(int64_t idx, ColumnIndex(name));
  Frame out;
  for (int64_t i = 0; i < num_columns(); ++i) {
    if (i == idx) continue;
    Status st = out.AddColumn(columns_[i]);
    if (!st.ok()) return st;
  }
  return out;
}

}  // namespace sliceline::data
