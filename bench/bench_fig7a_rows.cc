// Reproduces Figure 7(a) (Scalability with # Rows): USCensus-like data
// replicated row-wise 1x..10x with a constant block size; the relative
// min-support sigma = n/100 preserves the enumeration characteristics, so
// runtime should track the "ideal scaling" line (1x runtime times the
// replication factor) with moderate deterioration from larger intermediates.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "data/generators/planted_slices.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 7(a): Scalability with # Rows",
                "SliceLine Figure 7(a)");
  bench::Reporter reporter("bench_fig7a_rows", "SliceLine Figure 7(a)");
  // Keep the base modest so 10x stays laptop-friendly.
  data::EncodedDataset base = bench::Load("uscensus", 6000);
  std::printf("base: %s n=%s (replicated row-wise)\n\n", base.name.c_str(),
              FormatWithCommas(base.n()).c_str());
  std::printf("%-6s %12s %12s %12s %12s\n", "factor", "rows", "time[s]",
              "ideal[s]", "evaluated");
  double base_time = 0.0;
  for (int factor : {1, 2, 4, 6, 8, 10}) {
    data::EncodedDataset ds =
        factor == 1 ? base : data::Replicate(base, factor, 1);
    core::SliceLineConfig config;
    config.alpha = 0.95;
    config.k = 4;
    config.max_level = 3;
    // The paper runs b=4 data-parallel matrix ops on 112 vcores; a
    // single core cannot afford one X scan per 4 slices at this candidate
    // count, so the harness uses the scan-shared evaluator with a larger
    // block (same linear-in-rows scaling behaviour).
    config.eval_strategy = core::SliceLineConfig::EvalStrategy::kScanBlock;
    config.eval_block_size = 256;
    core::SliceLineResult result = bench::Unwrap(
        core::RunSliceLine(ds, config), "factor " + std::to_string(factor));
    if (factor == 1) base_time = result.total_seconds;
    std::printf("%-6d %12s %12s %12s %12s\n", factor,
                FormatWithCommas(ds.n()).c_str(),
                FormatDouble(result.total_seconds, 3).c_str(),
                FormatDouble(base_time * factor, 3).c_str(),
                FormatWithCommas(result.total_evaluated).c_str());
    reporter.AddRow(
        "factor_" + std::to_string(factor),
        {{"rows", static_cast<double>(ds.n())},
         {"seconds", result.total_seconds},
         {"ideal_seconds", base_time * factor},
         {"evaluated", static_cast<double>(result.total_evaluated)}});
  }
  std::printf(
      "\nExpected shape (paper): near-linear scaling with rows (relative\n"
      "sigma keeps enumeration constant), with moderate deterioration from\n"
      "memory pressure at large factors.\n");
  return reporter.Finish();
}
