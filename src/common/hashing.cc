#include "common/hashing.h"

namespace sliceline {

void Fnv1a::AddBytes(const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 1099511628211ULL;
  }
}

uint64_t HashString(const std::string& s) {
  Fnv1a h;
  h.AddString(s);
  return h.hash();
}

}  // namespace sliceline
