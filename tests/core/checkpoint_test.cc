// Checkpoint format round-trips, corruption rejection, and the end-to-end
// guarantee: a run interrupted mid-enumeration and resumed from its
// checkpoint produces the bit-identical final top-K of an uninterrupted run.
#include "core/checkpoint.h"

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"

namespace sliceline::core {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ckpt_" + tag + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

struct Input {
  data::IntMatrix x0;
  std::vector<double> errors;
};

Input MakeInput(uint64_t seed, int64_t n = 500, int m = 6, int max_dom = 3) {
  Rng rng(seed);
  Input input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) {
    e = rng.NextBool(0.4) ? rng.NextDouble() : 0.0;
  }
  return input;
}

CheckpointState MakeState() {
  CheckpointState state;
  state.engine = "native";
  state.config_hash = 0x1234abcdULL;
  state.data_hash = 0xdeadbeef12345678ULL;
  state.aux_hash = 7;
  state.level = 3;
  state.effective_sigma = 64;
  state.degradation_steps = 2;
  state.candidates_capped = 120;
  state.total_evaluated = 4242;
  LevelStats l1;
  l1.level = 1;
  l1.candidates = 20;
  l1.valid = 11;
  l1.pruned = 9;
  l1.seconds = 0.125;
  state.levels = {l1};
  Slice slice;
  slice.predicates = {{0, 2}, {3, 1}};
  slice.stats = {0.7071067811865476, 12.5, 0.99, 40};
  state.topk = {slice};
  state.frontier_ss = {40.0, 33.0};
  state.frontier_se = {12.5, 0.1 + 0.2};  // deliberately non-representable
  state.frontier_sm = {0.99, 1e-17};
  state.frontier = linalg::CsrMatrix(2, 5, {0, 2, 4}, {0, 3, 1, 4},
                                     {1.0, 1.0, 1.0, 1.0});
  return state;
}

TEST(CheckpointTest, SaveLoadRoundTripIsBitIdentical) {
  const std::string dir = MakeTempDir("roundtrip");
  const CheckpointState state = MakeState();
  ASSERT_TRUE(SaveCheckpoint(dir, state).ok());
  ASSERT_TRUE(CheckpointFileExists(dir));

  StatusOr<CheckpointState> loaded = LoadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->engine, state.engine);
  EXPECT_EQ(loaded->config_hash, state.config_hash);
  EXPECT_EQ(loaded->data_hash, state.data_hash);
  EXPECT_EQ(loaded->aux_hash, state.aux_hash);
  EXPECT_EQ(loaded->level, state.level);
  EXPECT_EQ(loaded->effective_sigma, state.effective_sigma);
  EXPECT_EQ(loaded->degradation_steps, state.degradation_steps);
  EXPECT_EQ(loaded->candidates_capped, state.candidates_capped);
  EXPECT_EQ(loaded->total_evaluated, state.total_evaluated);
  ASSERT_EQ(loaded->levels.size(), state.levels.size());
  EXPECT_EQ(loaded->levels[0].candidates, state.levels[0].candidates);
  EXPECT_EQ(loaded->levels[0].seconds, state.levels[0].seconds);
  ASSERT_EQ(loaded->topk.size(), state.topk.size());
  EXPECT_EQ(loaded->topk[0].predicates, state.topk[0].predicates);
  // Doubles must survive exactly (%.17g), including non-representable sums.
  EXPECT_EQ(loaded->topk[0].stats.score, state.topk[0].stats.score);
  EXPECT_EQ(loaded->frontier_ss, state.frontier_ss);
  EXPECT_EQ(loaded->frontier_se, state.frontier_se);
  EXPECT_EQ(loaded->frontier_sm, state.frontier_sm);
  EXPECT_EQ(loaded->frontier.rows(), state.frontier.rows());
  EXPECT_EQ(loaded->frontier.cols(), state.frontier.cols());
  EXPECT_EQ(loaded->frontier.row_ptr(), state.frontier.row_ptr());
  EXPECT_EQ(loaded->frontier.col_idx(), state.frontier.col_idx());
}

TEST(CheckpointTest, CorruptedFileIsRejected) {
  const std::string dir = MakeTempDir("corrupt");
  ASSERT_TRUE(SaveCheckpoint(dir, MakeState()).ok());
  const std::string path = CheckpointFilePath(dir);
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  ASSERT_GT(content.size(), 60u);
  // Flip one payload byte; the trailing checksum must catch it.
  content[content.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  EXPECT_FALSE(LoadCheckpoint(dir).ok());
}

TEST(CheckpointTest, MissingFileIsAnError) {
  const std::string dir = MakeTempDir("missing");
  EXPECT_FALSE(CheckpointFileExists(dir));
  EXPECT_FALSE(LoadCheckpoint(dir).ok());
}

TEST(CheckpointTest, SliceSetCsrConversionRoundTrips) {
  SliceSet set;
  set.Add({0, 4, 7});
  set.Add({2});
  set.Add({1, 3});
  const linalg::CsrMatrix csr = SliceSetToCsr(set, 8);
  EXPECT_EQ(csr.rows(), 3);
  EXPECT_EQ(csr.cols(), 8);
  const SliceSet back = CsrToSliceSet(csr);
  ASSERT_EQ(back.size(), set.size());
  for (int64_t i = 0; i < set.size(); ++i) {
    ASSERT_EQ(back.Length(i), set.Length(i)) << "slice " << i;
    for (int64_t k = 0; k < set.Length(i); ++k) {
      EXPECT_EQ(back.Columns(i)[k], set.Columns(i)[k]);
    }
  }
}

/// Interrupt a governed run with a simulated-time deadline, then resume it
/// without limits: the final top-K must be bit-identical to a run that was
/// never interrupted.
void RunInterruptAndResume(
    const char* tag,
    StatusOr<SliceLineResult> (*engine)(const data::IntMatrix&,
                                        const std::vector<double>&,
                                        const SliceLineConfig&)) {
  const Input input = MakeInput(21);
  SliceLineConfig config;
  config.k = 4;
  config.min_support = 2;

  auto baseline = engine(input.x0, input.errors, config);
  ASSERT_TRUE(baseline.ok()) << tag;
  ASSERT_FALSE(baseline->outcome.partial) << tag;
  ASSERT_GE(baseline->levels.size(), 3u)
      << tag << ": dataset too small to interrupt meaningfully";

  const std::string dir = MakeTempDir(std::string("resume_") + tag);
  SimulatedClock clock(0.0, 1.0);
  RunContext ctx;
  ctx.set_clock(&clock);
  ctx.set_deadline_seconds(6.0);
  config.run_context = &ctx;
  config.checkpoint_dir = dir;
  auto interrupted = engine(input.x0, input.errors, config);
  ASSERT_TRUE(interrupted.ok()) << tag;
  ASSERT_TRUE(interrupted->outcome.partial) << tag;
  ASSERT_TRUE(CheckpointFileExists(dir)) << tag;

  config.run_context = nullptr;
  config.resume = true;
  auto resumed = engine(input.x0, input.errors, config);
  ASSERT_TRUE(resumed.ok()) << tag;
  EXPECT_TRUE(resumed->outcome.resumed_from_checkpoint) << tag;
  EXPECT_FALSE(resumed->outcome.partial) << tag;

  ASSERT_EQ(resumed->top_k.size(), baseline->top_k.size()) << tag;
  for (size_t i = 0; i < baseline->top_k.size(); ++i) {
    EXPECT_EQ(resumed->top_k[i].stats.score, baseline->top_k[i].stats.score)
        << tag << " rank " << i;
    EXPECT_EQ(resumed->top_k[i].stats.size, baseline->top_k[i].stats.size)
        << tag << " rank " << i;
    EXPECT_EQ(resumed->top_k[i].predicates, baseline->top_k[i].predicates)
        << tag << " rank " << i;
  }
  EXPECT_EQ(resumed->total_evaluated, baseline->total_evaluated) << tag;
}

TEST(CheckpointTest, NativeResumeAfterInterruptIsBitIdentical) {
  RunInterruptAndResume("native", RunSliceLine);
}

TEST(CheckpointTest, LaResumeAfterInterruptIsBitIdentical) {
  RunInterruptAndResume("la", RunSliceLineLA);
}

TEST(CheckpointTest, MismatchedCheckpointFallsBackToFreshRun) {
  const Input input = MakeInput(22);
  SliceLineConfig config;
  config.k = 4;
  config.min_support = 2;
  const std::string dir = MakeTempDir("mismatch");

  // Produce a checkpoint under one config...
  config.checkpoint_dir = dir;
  auto first = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(CheckpointFileExists(dir));

  // ...then resume under a different k: the config hash differs, so the
  // run must silently start fresh and still be complete and correct.
  config.k = 2;
  config.resume = true;
  auto mismatched = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(mismatched->outcome.resumed_from_checkpoint);
  EXPECT_FALSE(mismatched->outcome.partial);

  config.checkpoint_dir.clear();
  config.resume = false;
  auto reference = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(mismatched->top_k.size(), reference->top_k.size());
  for (size_t i = 0; i < reference->top_k.size(); ++i) {
    EXPECT_EQ(mismatched->top_k[i].stats.score,
              reference->top_k[i].stats.score);
  }
}

TEST(CheckpointTest, ResumeWithoutCheckpointStartsFresh) {
  const Input input = MakeInput(23);
  SliceLineConfig config;
  config.k = 3;
  config.min_support = 4;
  config.checkpoint_dir = MakeTempDir("fresh");
  config.resume = true;  // nothing to resume from
  auto result = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->outcome.resumed_from_checkpoint);
  EXPECT_FALSE(result->outcome.partial);
}

}  // namespace
}  // namespace sliceline::core
