#include "linalg/kernels_simd.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define SLICELINE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SLICELINE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sliceline::linalg {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels: portable, always compiled, and the ground truth
// the differential rig holds every vector path to.
// ---------------------------------------------------------------------------

void AndInPlaceScalar(uint64_t* dst, const uint64_t* src, int64_t words) {
  for (int64_t w = 0; w < words; ++w) dst[w] &= src[w];
}

int64_t PopcountScalar(const uint64_t* a, int64_t words) {
  int64_t total = 0;
  for (int64_t w = 0; w < words; ++w) total += std::popcount(a[w]);
  return total;
}

int64_t AndPopcountScalar(const uint64_t* a, const uint64_t* b,
                          int64_t words) {
  int64_t total = 0;
  for (int64_t w = 0; w < words; ++w) total += std::popcount(a[w] & b[w]);
  return total;
}

int64_t IntersectColumnsScalar(const uint64_t* const* cols, int32_t len,
                               uint64_t* dst, int64_t words) {
  SLICELINE_DCHECK(len >= 1);
  std::memcpy(dst, cols[0], static_cast<size_t>(words) * sizeof(uint64_t));
  for (int32_t k = 1; k < len; ++k) AndInPlaceScalar(dst, cols[k], words);
  return PopcountScalar(dst, words);
}

/// Walks the set bits of one word in ascending order, accumulating the
/// masked error statistics. Shared verbatim by every ISA level: the vector
/// units only accelerate finding the non-zero words, so the float
/// accumulation order is identical everywhere.
inline void AccumulateWord(uint64_t bits, int64_t base_row,
                           const double* errors, MaskedStats* acc) {
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    bits &= bits - 1;
    const double e = errors[base_row + bit];
    ++acc->count;
    acc->sum += e;
    if (e > acc->max) acc->max = e;
  }
}

void MaskedStatsScalar(const uint64_t* mask, int64_t words,
                       const double* errors, MaskedStats* acc) {
  for (int64_t w = 0; w < words; ++w) {
    AccumulateWord(mask[w], w * 64, errors, acc);
  }
}

constexpr SimdKernels kScalarKernels = {
    SimdIsa::kScalar,        AndInPlaceScalar,      PopcountScalar,
    AndPopcountScalar,       IntersectColumnsScalar, MaskedStatsScalar,
};

// ---------------------------------------------------------------------------
// AVX2 kernels (256-bit). Popcount is the Mula nibble-LUT pshufb algorithm
// with _mm256_sad_epu8 horizontal accumulation into 64-bit lanes.
// ---------------------------------------------------------------------------

#if defined(SLICELINE_SIMD_X86)

__attribute__((target("avx2"))) inline __m256i PopcountBytesAvx2(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low_mask));
  const __m256i hi = _mm256_shuffle_epi8(
      lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask));
  return _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline int64_t HorizontalSum64Avx2(__m256i v) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) void AndInPlaceAvx2(uint64_t* dst,
                                                    const uint64_t* src,
                                                    int64_t words) {
  int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(a, b));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

__attribute__((target("avx2"))) int64_t PopcountAvx2(const uint64_t* a,
                                                     int64_t words) {
  __m256i acc = _mm256_setzero_si256();
  int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    acc = _mm256_add_epi64(acc, PopcountBytesAvx2(v));
  }
  int64_t total = HorizontalSum64Avx2(acc);
  for (; w < words; ++w) total += std::popcount(a[w]);
  return total;
}

__attribute__((target("avx2"))) int64_t AndPopcountAvx2(const uint64_t* a,
                                                        const uint64_t* b,
                                                        int64_t words) {
  __m256i acc = _mm256_setzero_si256();
  int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, PopcountBytesAvx2(v));
  }
  int64_t total = HorizontalSum64Avx2(acc);
  for (; w < words; ++w) total += std::popcount(a[w] & b[w]);
  return total;
}

__attribute__((target("avx2"))) int64_t IntersectColumnsAvx2(
    const uint64_t* const* cols, int32_t len, uint64_t* dst, int64_t words) {
  SLICELINE_DCHECK(len >= 1);
  __m256i acc = _mm256_setzero_si256();
  int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[0] + w));
    for (int32_t k = 1; k < len; ++k) {
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[k] + w)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), v);
    acc = _mm256_add_epi64(acc, PopcountBytesAvx2(v));
  }
  int64_t total = HorizontalSum64Avx2(acc);
  for (; w < words; ++w) {
    uint64_t v = cols[0][w];
    for (int32_t k = 1; k < len; ++k) v &= cols[k][w];
    dst[w] = v;
    total += std::popcount(v);
  }
  return total;
}

__attribute__((target("avx2"))) void MaskedStatsAvx2(const uint64_t* mask,
                                                     int64_t words,
                                                     const double* errors,
                                                     MaskedStats* acc) {
  int64_t w = 0;
  // Vector fast path: skip 4 all-zero words per vptest. Sparse masks (the
  // common case deep in the lattice) reduce to a handful of bit walks.
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w));
    if (_mm256_testz_si256(v, v)) continue;
    for (int64_t i = w; i < w + 4; ++i) {
      AccumulateWord(mask[i], i * 64, errors, acc);
    }
  }
  for (; w < words; ++w) AccumulateWord(mask[w], w * 64, errors, acc);
}

constexpr SimdKernels kAvx2Kernels = {
    SimdIsa::kAvx2,    AndInPlaceAvx2,       PopcountAvx2,
    AndPopcountAvx2,   IntersectColumnsAvx2, MaskedStatsAvx2,
};

// ---------------------------------------------------------------------------
// AVX-512 kernels (512-bit, F+BW): same nibble-LUT popcount on full-width
// vectors. VPOPCNTDQ is deliberately not required — the LUT form runs on
// every avx512f+bw part and benchmarks within noise of it on these widths.
// ---------------------------------------------------------------------------

// GCC's avx512 headers build _mm512_broadcast_i32x4 on an undefined-value
// intrinsic, which -Wall misreads as a real uninitialized use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx512bw"))) inline __m512i PopcountBytesAvx512(
    __m512i v) {
  const __m512i lut = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_shuffle_epi8(lut, _mm512_and_si512(v, low_mask));
  const __m512i hi = _mm512_shuffle_epi8(
      lut, _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask));
  return _mm512_sad_epu8(_mm512_add_epi8(lo, hi), _mm512_setzero_si512());
}

__attribute__((target("avx512f,avx512bw"))) void AndInPlaceAvx512(
    uint64_t* dst, const uint64_t* src, int64_t words) {
  int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i a = _mm512_loadu_si512(dst + w);
    const __m512i b = _mm512_loadu_si512(src + w);
    _mm512_storeu_si512(dst + w, _mm512_and_si512(a, b));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

__attribute__((target("avx512f,avx512bw"))) int64_t PopcountAvx512(
    const uint64_t* a, int64_t words) {
  __m512i acc = _mm512_setzero_si512();
  int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc, PopcountBytesAvx512(_mm512_loadu_si512(a + w)));
  }
  int64_t total = _mm512_reduce_add_epi64(acc);
  for (; w < words; ++w) total += std::popcount(a[w]);
  return total;
}

__attribute__((target("avx512f,avx512bw"))) int64_t AndPopcountAvx512(
    const uint64_t* a, const uint64_t* b, int64_t words) {
  __m512i acc = _mm512_setzero_si512();
  int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + w),
                                       _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, PopcountBytesAvx512(v));
  }
  int64_t total = _mm512_reduce_add_epi64(acc);
  for (; w < words; ++w) total += std::popcount(a[w] & b[w]);
  return total;
}

__attribute__((target("avx512f,avx512bw"))) int64_t IntersectColumnsAvx512(
    const uint64_t* const* cols, int32_t len, uint64_t* dst, int64_t words) {
  SLICELINE_DCHECK(len >= 1);
  __m512i acc = _mm512_setzero_si512();
  int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    __m512i v = _mm512_loadu_si512(cols[0] + w);
    for (int32_t k = 1; k < len; ++k) {
      v = _mm512_and_si512(v, _mm512_loadu_si512(cols[k] + w));
    }
    _mm512_storeu_si512(dst + w, v);
    acc = _mm512_add_epi64(acc, PopcountBytesAvx512(v));
  }
  int64_t total = _mm512_reduce_add_epi64(acc);
  for (; w < words; ++w) {
    uint64_t v = cols[0][w];
    for (int32_t k = 1; k < len; ++k) v &= cols[k][w];
    dst[w] = v;
    total += std::popcount(v);
  }
  return total;
}

__attribute__((target("avx512f,avx512bw"))) void MaskedStatsAvx512(
    const uint64_t* mask, int64_t words, const double* errors,
    MaskedStats* acc) {
  int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i v = _mm512_loadu_si512(mask + w);
    if (_mm512_test_epi64_mask(v, v) == 0) continue;
    for (int64_t i = w; i < w + 8; ++i) {
      AccumulateWord(mask[i], i * 64, errors, acc);
    }
  }
  for (; w < words; ++w) AccumulateWord(mask[w], w * 64, errors, acc);
}

constexpr SimdKernels kAvx512Kernels = {
    SimdIsa::kAvx512,    AndInPlaceAvx512,       PopcountAvx512,
    AndPopcountAvx512,   IntersectColumnsAvx512, MaskedStatsAvx512,
};

#pragma GCC diagnostic pop

#endif  // SLICELINE_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels (aarch64; NEON is architecturally guaranteed there, so no
// cpuid probing — it is simply the best non-scalar level on arm builds).
// ---------------------------------------------------------------------------

#if defined(SLICELINE_SIMD_NEON)

void AndInPlaceNeon(uint64_t* dst, const uint64_t* src, int64_t words) {
  int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    vst1q_u64(dst + w, vandq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

int64_t PopcountNeon(const uint64_t* a, int64_t words) {
  int64_t total = 0;
  int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint8x16_t cnt =
        vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(a + w)));
    total += vaddvq_u8(cnt);
  }
  for (; w < words; ++w) total += std::popcount(a[w]);
  return total;
}

int64_t AndPopcountNeon(const uint64_t* a, const uint64_t* b, int64_t words) {
  int64_t total = 0;
  int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w));
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
  }
  for (; w < words; ++w) total += std::popcount(a[w] & b[w]);
  return total;
}

int64_t IntersectColumnsNeon(const uint64_t* const* cols, int32_t len,
                             uint64_t* dst, int64_t words) {
  SLICELINE_DCHECK(len >= 1);
  int64_t total = 0;
  int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    uint64x2_t v = vld1q_u64(cols[0] + w);
    for (int32_t k = 1; k < len; ++k) v = vandq_u64(v, vld1q_u64(cols[k] + w));
    vst1q_u64(dst + w, v);
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
  }
  for (; w < words; ++w) {
    uint64_t v = cols[0][w];
    for (int32_t k = 1; k < len; ++k) v &= cols[k][w];
    dst[w] = v;
    total += std::popcount(v);
  }
  return total;
}

void MaskedStatsNeon(const uint64_t* mask, int64_t words,
                     const double* errors, MaskedStats* acc) {
  int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint64x2_t v = vld1q_u64(mask + w);
    if (vmaxvq_u32(vreinterpretq_u32_u64(v)) == 0) continue;
    AccumulateWord(mask[w], w * 64, errors, acc);
    AccumulateWord(mask[w + 1], (w + 1) * 64, errors, acc);
  }
  for (; w < words; ++w) AccumulateWord(mask[w], w * 64, errors, acc);
}

constexpr SimdKernels kNeonKernels = {
    SimdIsa::kNeon,    AndInPlaceNeon,       PopcountNeon,
    AndPopcountNeon,   IntersectColumnsNeon, MaskedStatsNeon,
};

#endif  // SLICELINE_SIMD_NEON

// ---------------------------------------------------------------------------
// Detection and dispatch.
// ---------------------------------------------------------------------------

std::vector<SimdIsa> DetectAvailableIsas() {
  std::vector<SimdIsa> isas = {SimdIsa::kScalar};
#if defined(SLICELINE_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) isas.push_back(SimdIsa::kAvx2);
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    isas.push_back(SimdIsa::kAvx512);
  }
#elif defined(SLICELINE_SIMD_NEON)
  isas.push_back(SimdIsa::kNeon);
#endif
  return isas;
}

bool IsaAvailable(SimdIsa isa) {
  const std::vector<SimdIsa>& isas = AvailableIsas();
  return std::find(isas.begin(), isas.end(), isa) != isas.end();
}

/// Environment/auto selection, resolved once. SLICELINE_FORCE_ISA names a
/// level the whole process should dispatch at (the CI matrix runs the full
/// suite under scalar and avx2); an unknown or unsupported name logs a
/// warning and falls back to the detected best.
SimdIsa ResolveDefaultIsa() {
  const std::vector<SimdIsa>& isas = AvailableIsas();
  const SimdIsa best = isas.back();
  if (const char* env = std::getenv("SLICELINE_FORCE_ISA")) {
    SimdIsa forced;
    if (!ParseIsaName(env, &forced)) {
      LOG_WARNING << "SLICELINE_FORCE_ISA=" << env
                  << " is not a known ISA (scalar|neon|avx2|avx512); using "
                  << IsaName(best);
      return best;
    }
    if (!IsaAvailable(forced)) {
      LOG_WARNING << "SLICELINE_FORCE_ISA=" << env
                  << " is not supported on this host; using "
                  << IsaName(best);
      return best;
    }
    return forced;
  }
  return best;
}

/// Test/bench override; kScalar values are meaningful, so use a flag.
/// Atomic because the TSan suites flip the forced ISA between runs while
/// pool threads from the previous run may still be parked in ActiveKernels
/// call sites.
std::atomic<bool> g_isa_forced{false};
std::atomic<SimdIsa> g_forced_isa{SimdIsa::kScalar};

}  // namespace

const char* IsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kNeon: return "neon";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kAvx512: return "avx512";
  }
  return "unknown";
}

bool ParseIsaName(const std::string& name, SimdIsa* out) {
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kNeon, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    if (name == IsaName(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

const std::vector<SimdIsa>& AvailableIsas() {
  static const std::vector<SimdIsa> isas = DetectAvailableIsas();
  return isas;
}

SimdIsa SelectedIsa() {
  if (g_isa_forced.load(std::memory_order_acquire)) {
    return g_forced_isa.load(std::memory_order_acquire);
  }
  static const SimdIsa resolved = ResolveDefaultIsa();
  return resolved;
}

const char* SelectedIsaName() { return IsaName(SelectedIsa()); }

void ForceIsa(SimdIsa isa) {
  g_forced_isa.store(IsaAvailable(isa) ? isa : SimdIsa::kScalar,
                     std::memory_order_release);
  g_isa_forced.store(true, std::memory_order_release);
}

void ClearForcedIsa() { g_isa_forced.store(false, std::memory_order_release); }

const SimdKernels& KernelsFor(SimdIsa isa) {
  switch (isa) {
#if defined(SLICELINE_SIMD_X86)
    case SimdIsa::kAvx2:
      if (IsaAvailable(SimdIsa::kAvx2)) return kAvx2Kernels;
      break;
    case SimdIsa::kAvx512:
      if (IsaAvailable(SimdIsa::kAvx512)) return kAvx512Kernels;
      break;
#elif defined(SLICELINE_SIMD_NEON)
    case SimdIsa::kNeon:
      return kNeonKernels;
#endif
    default:
      break;
  }
  return kScalarKernels;
}

const SimdKernels& ActiveKernels() { return KernelsFor(SelectedIsa()); }

void EvaluateCandidatesBlocked(const SimdKernels& kernels,
                               const CandidateColumns* candidates,
                               int64_t count, int64_t words,
                               const double* errors, double* sizes,
                               double* error_sums, double* max_errors) {
  // Tile shape: 2048 words (16 KiB per bitmap slice) keeps a candidate
  // tile's distinct column slices plus the intersection scratch inside L2;
  // sibling candidates share parent columns, so slices are reused across
  // the inner candidate loop instead of re-streamed from memory.
  constexpr int64_t kWordTile = 2048;
  constexpr int64_t kCandidateTile = 64;

  int32_t max_len = 1;
  for (int64_t c = 0; c < count; ++c) {
    max_len = std::max(max_len, candidates[c].len);
  }
  std::vector<uint64_t> scratch(
      static_cast<size_t>(std::min(words, kWordTile)));
  std::vector<const uint64_t*> shifted(static_cast<size_t>(max_len));
  // One running accumulator per candidate of the current tile, carried
  // across word tiles: each candidate sees ONE continuous ascending-row add
  // sequence, bit-identical to an unblocked scan. (Summing per-tile partial
  // sums instead would round differently once the row space spans tiles.)
  std::vector<MaskedStats> acc(static_cast<size_t>(
      std::min(count, kCandidateTile)));

  for (int64_t c0 = 0; c0 < count; c0 += kCandidateTile) {
    const int64_t c1 = std::min(count, c0 + kCandidateTile);
    std::fill(acc.begin(), acc.end(), MaskedStats{});
    for (int64_t w0 = 0; w0 < words; w0 += kWordTile) {
      const int64_t tile_words = std::min(words - w0, kWordTile);
      const double* tile_errors = errors + w0 * 64;
      for (int64_t c = c0; c < c1; ++c) {
        const CandidateColumns& cand = candidates[c];
        SLICELINE_DCHECK(cand.len >= 1);
        const uint64_t* mask;
        if (cand.len == 1) {
          mask = cand.cols[0] + w0;
        } else {
          for (int32_t k = 0; k < cand.len; ++k) {
            shifted[k] = cand.cols[k] + w0;
          }
          if (kernels.intersect_columns(shifted.data(), cand.len,
                                        scratch.data(), tile_words) == 0) {
            continue;
          }
          mask = scratch.data();
        }
        kernels.masked_stats(mask, tile_words, tile_errors,
                             &acc[static_cast<size_t>(c - c0)]);
      }
    }
    for (int64_t c = c0; c < c1; ++c) {
      const MaskedStats& stats = acc[static_cast<size_t>(c - c0)];
      sizes[c] += static_cast<double>(stats.count);
      error_sums[c] += stats.sum;
      if (stats.max > max_errors[c]) max_errors[c] = stats.max;
    }
  }
}

}  // namespace sliceline::linalg
