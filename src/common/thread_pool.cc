#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/logging.h"
#include "common/run_context.h"

namespace sliceline {

ThreadPool::ThreadPool(size_t num_threads, bool inline_when_single) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  if (num_threads <= 1 && inline_when_single) return;  // inline mode
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Run(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  Submit(std::move(task));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  ParallelForRange(count, [&body](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

bool ThreadPool::ParallelForRange(
    size_t count, const RunContext* ctx,
    const std::function<void(size_t, size_t)>& body) {
  if (ctx == nullptr) {
    ParallelForRange(count, body);
    return true;
  }
  std::atomic<bool> skipped{false};
  ParallelForRange(count, [&](size_t begin, size_t end) {
    if (ctx->ShouldStop()) {
      skipped.store(true, std::memory_order_relaxed);
      return;
    }
    body(begin, end);
  });
  return !skipped.load(std::memory_order_relaxed);
}

void ThreadPool::ParallelForRange(
    size_t count, const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  const size_t workers = num_threads();
  if (workers <= 1 || count == 1) {
    body(0, count);
    return;
  }
  const size_t num_chunks = std::min(count, workers * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::atomic<size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  // A throwing chunk must not escape WorkerLoop (that would terminate the
  // process); the first exception is captured here and rethrown on the
  // calling thread once every chunk has drained.
  std::exception_ptr first_error;
  std::atomic<bool> has_error{false};
  size_t launched = 0;
  for (size_t begin = 0; begin < count; begin += chunk) {
    ++launched;
  }
  remaining.store(launched, std::memory_order_relaxed);
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(begin + chunk, count);
    Submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        if (!has_error.exchange(true, std::memory_order_acq_rel)) {
          first_error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock,
                 [&] { return remaining.load(std::memory_order_acquire) == 0; });
  }
  if (has_error.load(std::memory_order_acquire)) {
    std::rethrow_exception(first_error);
  }
}

namespace {

size_t DefaultPoolThreads() {
  size_t n = 0;
  if (const char* env = std::getenv("SLICELINE_NUM_THREADS")) {
    n = static_cast<size_t>(std::atoll(env));
  }
  return n;
}

/// Slot holding the process-wide pool; indirection (rather than a static
/// ThreadPool value) lets ResizeGlobalThreadPoolForTesting swap it.
ThreadPool*& GlobalPoolSlot() {
  static ThreadPool* pool = new ThreadPool(DefaultPoolThreads());
  return pool;
}

}  // namespace

ThreadPool& GlobalThreadPool() { return *GlobalPoolSlot(); }

void ResizeGlobalThreadPoolForTesting(size_t num_threads) {
  ThreadPool*& slot = GlobalPoolSlot();
  const size_t target = num_threads == 0 ? DefaultPoolThreads() : num_threads;
  // ThreadPool(0) resolves to hardware concurrency inside the constructor,
  // so compare against the slot's resolved size only when an explicit size
  // was requested.
  if (num_threads != 0 && slot->num_threads() == target) return;
  ThreadPool* replacement = new ThreadPool(target);
  delete slot;
  slot = replacement;
}

}  // namespace sliceline
