// Tests of the differential-testing harness itself: the generator's case
// shapes, replay round-tripping, shrinker convergence, and — the harness's
// own acceptance test — that a deliberately injected engine bug is caught
// and shrunk within a bounded number of cases.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/checks.h"
#include "testing/fuzz_harness.h"
#include "testing/random_dataset.h"
#include "testing/replay.h"
#include "testing/shrink.h"

namespace sliceline::testing {
namespace {

TEST(RandomDatasetGeneratorTest, CasesAreWellFormedAcrossProfiles) {
  RandomDatasetGenerator generator(5);
  for (int profile = 0; profile < RandomDatasetGenerator::num_profiles();
       ++profile) {
    FuzzCase c = generator.NextWithProfile(profile);
    EXPECT_GT(c.x0.rows(), 0) << c.profile;
    EXPECT_GT(c.x0.cols(), 0) << c.profile;
    EXPECT_EQ(static_cast<int64_t>(c.errors.size()), c.x0.rows())
        << c.profile;
    EXPECT_GE(c.config.k, 1) << c.profile;
    EXPECT_GT(c.config.alpha, 0.0) << c.profile;
    EXPECT_LE(c.config.alpha, 1.0) << c.profile;
    for (int64_t i = 0; i < c.x0.rows(); ++i) {
      EXPECT_GE(c.errors[i], 0.0) << c.profile;
      for (int64_t j = 0; j < c.x0.cols(); ++j) {
        EXPECT_GE(c.x0.At(i, j), 1) << c.profile;
      }
    }
  }
}

TEST(RandomDatasetGeneratorTest, SeedReproducesCase) {
  RandomDatasetGenerator a(77);
  FuzzCase c1 = a.NextWithProfile(0);
  FuzzCase c2 = RegenerateCase(c1.seed, 0, RandomDatasetOptions{});
  ASSERT_EQ(c1.x0.rows(), c2.x0.rows());
  ASSERT_EQ(c1.x0.cols(), c2.x0.cols());
  EXPECT_EQ(c1.errors, c2.errors);
  for (int64_t i = 0; i < c1.x0.rows(); ++i) {
    for (int64_t j = 0; j < c1.x0.cols(); ++j) {
      EXPECT_EQ(c1.x0.At(i, j), c2.x0.At(i, j));
    }
  }
}

TEST(ReplayTest, JsonRoundTripIsBitExact) {
  RandomDatasetGenerator generator(9);
  ReplayRecord record;
  record.check = "oracle";
  record.failure = "scores diverge \"quoted\"\nline2";
  record.case_index = 42;
  record.fuzz_case = generator.Next();
  // Make the doubles awkward on purpose.
  record.fuzz_case.errors[0] = 0.1 + 0.2;
  record.fuzz_case.config.alpha = 1.0 / 3.0;

  auto parsed = ReplayFromJson(ReplayToJson(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->check, record.check);
  EXPECT_EQ(parsed->failure, record.failure);
  EXPECT_EQ(parsed->case_index, record.case_index);
  EXPECT_EQ(parsed->fuzz_case.seed, record.fuzz_case.seed);
  EXPECT_EQ(parsed->fuzz_case.profile, record.fuzz_case.profile);
  EXPECT_EQ(parsed->fuzz_case.errors, record.fuzz_case.errors);
  EXPECT_EQ(parsed->fuzz_case.config.alpha, record.fuzz_case.config.alpha);
  EXPECT_EQ(parsed->fuzz_case.config.k, record.fuzz_case.config.k);
  ASSERT_EQ(parsed->fuzz_case.x0.rows(), record.fuzz_case.x0.rows());
  ASSERT_EQ(parsed->fuzz_case.x0.cols(), record.fuzz_case.x0.cols());
  for (int64_t i = 0; i < record.fuzz_case.x0.rows(); ++i) {
    for (int64_t j = 0; j < record.fuzz_case.x0.cols(); ++j) {
      EXPECT_EQ(parsed->fuzz_case.x0.At(i, j), record.fuzz_case.x0.At(i, j));
    }
  }
}

TEST(ReplayTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ReplayFromJson("").ok());
  EXPECT_FALSE(ReplayFromJson("{").ok());
  EXPECT_FALSE(ReplayFromJson("{\"bogus_key\": 1}").ok());
  // Inconsistent shape: x0 length must be rows * cols.
  RandomDatasetGenerator generator(3);
  ReplayRecord record;
  record.check = "oracle";
  record.fuzz_case = generator.Next();
  std::string json = ReplayToJson(record);
  const auto pos = json.find("\"rows\":");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 8, "\"rows\": 9");
  EXPECT_FALSE(ReplayFromJson(json).ok());
}

TEST(ReplayTest, FileRoundTrip) {
  RandomDatasetGenerator generator(21);
  ReplayRecord record;
  record.check = "metamorphic";
  record.fuzz_case = generator.Next();
  const std::string path = ::testing::TempDir() + "/replay_roundtrip.json";
  ASSERT_TRUE(WriteReplayFile(path, record).ok());
  auto read = ReadReplayFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->check, "metamorphic");
  EXPECT_EQ(read->fuzz_case.errors, record.fuzz_case.errors);
  EXPECT_FALSE(ReadReplayFile(::testing::TempDir() + "/missing.json").ok());
}

TEST(ShrinkTest, ConvergesToMinimalRows) {
  // Synthetic defect: any dataset containing a row whose first feature is
  // the marker code 3 "fails". The shrinker should strip everything else.
  RandomDatasetGenerator generator(31);
  FuzzCase c = generator.Next();
  c.x0 = data::IntMatrix(64, 2, 1);
  c.errors.assign(64, 0.5);
  c.x0.At(17, 0) = 3;
  auto check = [](const FuzzCase& candidate) -> std::string {
    for (int64_t i = 0; i < candidate.x0.rows(); ++i) {
      if (candidate.x0.cols() >= 1 && candidate.x0.At(i, 0) == 3) {
        return "marker row present";
      }
    }
    return "";
  };
  ASSERT_NE(check(c), "");
  ShrinkResult shrunk = Shrink(c, "marker row present", check);
  EXPECT_NE(shrunk.failure, "");
  EXPECT_GT(shrunk.steps, 0);
  EXPECT_LE(shrunk.fuzz_case.x0.rows(), 2);
  EXPECT_NE(check(shrunk.fuzz_case), "");
}

TEST(ShrinkTest, PassingCheckMeansNoReduction) {
  RandomDatasetGenerator generator(33);
  FuzzCase c = generator.Next();
  ShrinkResult shrunk =
      Shrink(c, "stale failure", [](const FuzzCase&) { return std::string(); });
  // Nothing reproduces, so the original case is returned untouched.
  EXPECT_EQ(shrunk.steps, 0);
  EXPECT_EQ(shrunk.fuzz_case.x0.rows(), c.x0.rows());
}

TEST(FuzzHarnessTest, SmallBatchOfEveryCheckIsGreen) {
  for (const char* check : kCheckNames) {
    FuzzOptions options;
    options.seed = 101;
    options.cases = check == std::string("determinism") ? 4 : 12;
    options.checks = {check};
    options.replay_dir = "";  // no artifacts from a passing run
    options.kernel_rounds = 1;
    options.determinism_stride = 2;
    FuzzReport report = RunFuzz(options);
    EXPECT_TRUE(report.ok()) << check << ": "
                             << (report.failures.empty()
                                     ? ""
                                     : report.failures[0].failure);
    EXPECT_GT(report.checks_run, 0) << check;
  }
}

TEST(FuzzHarnessTest, InjectedScoringBugIsCaughtAndShrunk) {
  FuzzOptions options;
  options.seed = 7;
  options.cases = 200;
  options.checks = {"oracle"};
  options.inject = InjectedBug::kScoring;
  options.replay_dir = ::testing::TempDir();
  FuzzReport report = RunFuzz(options);
  ASSERT_FALSE(report.ok()) << "injected scoring bug escaped 200 cases";
  const FuzzFailure& failure = report.failures[0];
  EXPECT_LT(failure.case_index, 200u);
  EXPECT_NE(failure.failure, "");
  // The shrunk reproduction is no larger than the generator's output and a
  // replay file exists that still reproduces under the same injection.
  ASSERT_FALSE(failure.replay_path.empty());
  auto record = ReadReplayFile(failure.replay_path);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_NE(RunReplay(*record, InjectedBug::kScoring), "");
  // Without the injection the very same case passes: the harness flagged
  // the bug, not a broken case.
  EXPECT_EQ(RunReplay(*record, InjectedBug::kNone), "");
}

TEST(FuzzHarnessTest, InjectedKernelBugIsCaught) {
  FuzzOptions options;
  options.seed = 7;
  options.cases = 50;
  options.checks = {"kernel"};
  options.inject = InjectedBug::kKernel;
  options.replay_dir = "";
  options.kernel_rounds = 1;
  FuzzReport report = RunFuzz(options);
  ASSERT_FALSE(report.ok()) << "injected kernel bug escaped 50 cases";
  EXPECT_NE(report.failures[0].failure.find("ColSums"), std::string::npos)
      << report.failures[0].failure;
}

TEST(FuzzHarnessTest, CleanRunIsGreenAcrossSeeds) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    FuzzOptions options;
    options.seed = seed;
    options.cases = 16;
    options.replay_dir = "";
    options.kernel_rounds = 1;
    FuzzReport report = RunFuzz(options);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": "
        << (report.failures.empty() ? "" : report.failures[0].failure);
    EXPECT_EQ(report.cases_run, 16);
  }
}

}  // namespace
}  // namespace sliceline::testing
