#include "linalg/matrix_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::linalg {
namespace {

CsrMatrix RandomSparse(Rng& rng, int64_t rows, int64_t cols, double density) {
  CooBuilder builder(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (rng.NextBool(density)) builder.Add(i, j, rng.NextInt(-5, 5));
    }
  }
  return builder.Build();
}

TEST(MatrixIoTest, StringRoundTrip) {
  Rng rng(3);
  CsrMatrix m = RandomSparse(rng, 12, 9, 0.3);
  auto back = ParseMatrixMarket(ToMatrixMarketString(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(m.Equals(*back));
}

TEST(MatrixIoTest, FileRoundTrip) {
  Rng rng(5);
  CsrMatrix m = RandomSparse(rng, 7, 15, 0.4);
  const std::string path = ::testing::TempDir() + "/m.mtx";
  ASSERT_TRUE(WriteMatrixMarket(m, path).ok());
  auto back = ReadMatrixMarket(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(m.Equals(*back));
  std::remove(path.c_str());
}

TEST(MatrixIoTest, EmptyMatrixRoundTrip) {
  CsrMatrix m = CsrMatrix::Zero(3, 4);
  auto back = ParseMatrixMarket(ToMatrixMarketString(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(m.Equals(*back));
}

TEST(MatrixIoTest, ParsesSymmetric) {
  const std::string mm =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n";
  auto m = ParseMatrixMarket(mm);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m->At(0, 1), 5.0);  // mirrored
  EXPECT_DOUBLE_EQ(m->At(2, 2), 7.0);  // diagonal not duplicated
  EXPECT_EQ(m->nnz(), 3);
}

TEST(MatrixIoTest, ParsesIntegerFieldAndComments) {
  const std::string mm =
      "%%MatrixMarket matrix coordinate integer general\n"
      "% comment line\n"
      "2 2 1\n"
      "% another comment\n"
      "1 2 3\n";
  auto m = ParseMatrixMarket(mm);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(0, 1), 3.0);
}

TEST(MatrixIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseMatrixMarket("").ok());
  EXPECT_FALSE(ParseMatrixMarket("not a banner\n1 1 0\n").ok());
  EXPECT_FALSE(
      ParseMatrixMarket("%%MatrixMarket matrix array real general\n").ok());
  EXPECT_FALSE(ParseMatrixMarket(
                   "%%MatrixMarket matrix coordinate complex general\n"
                   "1 1 1\n1 1 1 0\n")
                   .ok());
  // Out-of-bounds coordinate.
  EXPECT_FALSE(ParseMatrixMarket(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 1\n3 1 1.0\n")
                   .ok());
  // Entry count mismatch.
  EXPECT_FALSE(ParseMatrixMarket(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 2\n1 1 1.0\n")
                   .ok());
}

TEST(MatrixIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadMatrixMarket("/no/such/file.mtx").ok());
}

}  // namespace
}  // namespace sliceline::linalg
