#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace sliceline::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<int> g_next_shard{0};
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

int ThreadShardId() {
  thread_local const int id =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return id;
}

uint64_t Gauge::Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Histogram::Histogram(const HistogramOptions& options) {
  SLICELINE_CHECK_GT(options.base, 0.0);
  SLICELINE_CHECK_GT(options.growth, 1.0);
  SLICELINE_CHECK(options.num_buckets >= 1 && options.num_buckets <= 64)
      << "histograms support 1..64 finite buckets";
  bounds_.reserve(static_cast<size_t>(options.num_buckets));
  double bound = options.base;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  stride_ = bounds_.size() + 1;  // + overflow bucket
  cells_ = std::vector<internal::ShardCell>(stride_ * kMetricShards);
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  size_t bucket = bounds_.size();  // overflow unless a bound catches it
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  const int shard = ThreadShardId();
  cells_[static_cast<size_t>(shard) * stride_ + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  const int64_t nanos = static_cast<int64_t>(std::llround(value * 1e9));
  sum_nano_[shard].value.fetch_add(nanos, std::memory_order_relaxed);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  int64_t nanos = 0;
  for (const auto& shard : sum_nano_) {
    nanos += shard.value.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) * 1e-9;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(stride_, 0);
  for (int shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b < stride_; ++b) {
      counts[b] += cells_[static_cast<size_t>(shard) * stride_ + b].value.load(
          std::memory_order_relaxed);
    }
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  for (auto& shard : sum_nano_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  }
  SLICELINE_CHECK(it->second.kind == MetricSample::Kind::kCounter)
      << "metric '" << name << "' already registered with another type";
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  SLICELINE_CHECK(it->second.kind == MetricSample::Kind::kGauge)
      << "metric '" << name << "' already registered with another type";
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>(options);
  }
  SLICELINE_CHECK(it->second.kind == MetricSample::Kind::kHistogram)
      << "metric '" << name << "' already registered with another type";
  return it->second.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.counter_value = entry.counter->Value();
        break;
      case MetricSample::Kind::kGauge:
        sample.gauge_value = entry.gauge->Value();
        break;
      case MetricSample::Kind::kHistogram:
        sample.histogram_count = entry.histogram->Count();
        sample.histogram_sum = entry.histogram->Sum();
        sample.histogram_bounds = entry.histogram->UpperBounds();
        sample.histogram_buckets = entry.histogram->BucketCounts();
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;  // std::map iteration is already name-sorted
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        entry.counter->Reset();
        break;
      case MetricSample::Kind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricSample::Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

std::string LevelMetricName(const char* engine, int level, const char* what) {
  std::string name(engine);
  name += "/level";
  name += std::to_string(level);
  name += '/';
  name += what;
  return name;
}

void RecordLevelMetrics(const char* engine, int level, int64_t candidates,
                        int64_t valid, int64_t pruned, double seconds) {
  if (!MetricsEnabled()) return;
  MetricsRegistry* registry = MetricsRegistry::Default();
  registry->GetCounter(LevelMetricName(engine, level, "candidates"))
      ->Add(candidates);
  registry->GetCounter(LevelMetricName(engine, level, "valid"))->Add(valid);
  registry->GetCounter(LevelMetricName(engine, level, "pruned"))->Add(pruned);
  std::string engine_prefix(engine);
  registry->GetHistogram(engine_prefix + "/level_seconds")->Observe(seconds);
  registry->GetCounter(engine_prefix + "/candidates_total")->Add(candidates);
  registry->GetCounter(engine_prefix + "/pruned_total")->Add(pruned);
  registry->GetCounter(engine_prefix + "/levels_completed")->Increment();
}

}  // namespace sliceline::obs
