#include "core/sliceline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "data/generators/generators.h"

namespace sliceline::core {
namespace {

struct RandomInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

RandomInput MakeRandom(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  RandomInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) =
          static_cast<int32_t>(rng.NextUint64(1 + rng.NextUint64(max_dom))) +
          1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) {
    e = rng.NextBool(0.35) ? rng.NextDouble() : 0.0;
  }
  return input;
}

void ExpectSameTopK(const SliceLineResult& a, const SliceLineResult& b,
                    const char* label) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size()) << label;
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_NEAR(a.top_k[i].stats.score, b.top_k[i].stats.score, 1e-9)
        << label << " rank " << i;
    EXPECT_EQ(a.top_k[i].stats.size, b.top_k[i].stats.size)
        << label << " rank " << i;
  }
}

/// The paper's central exactness claim: SliceLine's top-K equals the
/// brute-force enumeration's top-K (by score) on every input.
class ExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactnessTest, MatchesExhaustiveOracle) {
  RandomInput input = MakeRandom(GetParam(), 300, 6, 4);
  SliceLineConfig config;
  config.k = 6;
  config.alpha = 0.9;
  config.min_support = 12;
  auto fast = RunSliceLine(input.x0, input.errors, config);
  auto oracle = RunExhaustive(input.x0, input.errors, config);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  ExpectSameTopK(*fast, *oracle, "vs-oracle");
}

TEST_P(ExactnessTest, MatchesOracleAcrossAlpha) {
  RandomInput input = MakeRandom(GetParam() + 1000, 250, 5, 3);
  for (double alpha : {0.3, 0.5, 0.95, 1.0}) {
    SliceLineConfig config;
    config.k = 4;
    config.alpha = alpha;
    config.min_support = 8;
    auto fast = RunSliceLine(input.x0, input.errors, config);
    auto oracle = RunExhaustive(input.x0, input.errors, config);
    ASSERT_TRUE(fast.ok() && oracle.ok());
    ExpectSameTopK(*fast, *oracle, "alpha-sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactnessTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(SliceLineTest, FindsPlantedSliceOnSalaries) {
  data::DatasetOptions opts;
  opts.rows = 800;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  auto result = RunSliceLine(ds, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top_k.empty());
  // The top slice must involve one of the planted subgroups' features.
  bool found = false;
  for (const Slice& slice : result->top_k) {
    for (const auto& [feature, code] : slice.predicates) {
      for (const data::PlantedSlice& planted : ds.planted) {
        for (const auto& p : planted.predicates) {
          found |= p.first == feature && p.second == code;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(SliceLineTest, MaxLevelCapsEnumeration) {
  RandomInput input = MakeRandom(77, 400, 6, 3);
  SliceLineConfig config;
  config.k = 5;
  config.min_support = 8;
  config.max_level = 2;
  auto result = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->levels.size(), 2u);
  for (const Slice& slice : result->top_k) {
    EXPECT_LE(slice.level(), 2);
  }
}

TEST(SliceLineTest, TopKSatisfiesConstraints) {
  RandomInput input = MakeRandom(78, 500, 5, 4);
  SliceLineConfig config;
  config.k = 10;
  config.min_support = 20;
  auto result = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  double prev = 1e300;
  for (const Slice& slice : result->top_k) {
    EXPECT_GT(slice.stats.score, 0.0);
    EXPECT_GE(slice.stats.size, 20);
    EXPECT_LE(slice.stats.score, prev);  // descending order
    prev = slice.stats.score;
    // At most one predicate per feature.
    for (size_t i = 1; i < slice.predicates.size(); ++i) {
      EXPECT_LT(slice.predicates[i - 1].first, slice.predicates[i].first);
    }
  }
}

TEST(SliceLineTest, ReportedStatsAreAccurate) {
  RandomInput input = MakeRandom(79, 300, 4, 3);
  SliceLineConfig config;
  config.k = 5;
  config.min_support = 10;
  auto result = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  for (const Slice& slice : result->top_k) {
    int64_t size = 0;
    double err = 0.0;
    double mx = 0.0;
    for (int64_t i = 0; i < input.x0.rows(); ++i) {
      if (slice.Matches(input.x0, i)) {
        ++size;
        err += input.errors[i];
        mx = std::max(mx, input.errors[i]);
      }
    }
    EXPECT_EQ(slice.stats.size, size);
    EXPECT_NEAR(slice.stats.error_sum, err, 1e-9);
    EXPECT_DOUBLE_EQ(slice.stats.max_error, mx);
  }
}

TEST(SliceLineTest, PerfectModelReturnsNothing) {
  RandomInput input = MakeRandom(80, 200, 3, 3);
  std::fill(input.errors.begin(), input.errors.end(), 0.0);
  auto result = RunSliceLine(input.x0, input.errors, SliceLineConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->top_k.empty());
}

TEST(SliceLineTest, UniformErrorsScoreNothing) {
  // Every slice has exactly the average error; no slice can satisfy
  // sc > 0 because both terms are <= 0.
  RandomInput input = MakeRandom(81, 300, 4, 3);
  std::fill(input.errors.begin(), input.errors.end(), 0.5);
  SliceLineConfig config;
  config.min_support = 5;
  auto result = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->top_k.empty());
}

TEST(SliceLineTest, ValidatesInputs) {
  RandomInput input = MakeRandom(82, 100, 3, 3);
  SliceLineConfig config;
  config.alpha = 0.0;
  EXPECT_FALSE(RunSliceLine(input.x0, input.errors, config).ok());
  config.alpha = 1.5;
  EXPECT_FALSE(RunSliceLine(input.x0, input.errors, config).ok());
  config = SliceLineConfig();
  config.k = 0;
  EXPECT_FALSE(RunSliceLine(input.x0, input.errors, config).ok());
  config = SliceLineConfig();
  std::vector<double> short_errors(50, 0.1);
  EXPECT_FALSE(RunSliceLine(input.x0, short_errors, config).ok());
  std::vector<double> negative(100, -1.0);
  EXPECT_FALSE(RunSliceLine(input.x0, negative, config).ok());
  EXPECT_FALSE(
      RunSliceLine(data::IntMatrix(), std::vector<double>{}, config).ok());
}

TEST(SliceLineTest, DatasetOverloadRequiresErrors) {
  data::EncodedDataset ds;
  ds.x0 = data::IntMatrix(10, 2, 1);
  EXPECT_FALSE(RunSliceLine(ds, SliceLineConfig()).ok());
}

TEST(SliceLineTest, LevelStatsAreConsistent) {
  RandomInput input = MakeRandom(83, 400, 5, 4);
  SliceLineConfig config;
  config.min_support = 10;
  auto result = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->levels.empty());
  EXPECT_EQ(result->levels[0].level, 1);
  int64_t total = 0;
  for (const LevelStats& level : result->levels) {
    EXPECT_GE(level.candidates, level.valid);
    EXPECT_GE(level.valid, 0);
    total += level.candidates;
  }
  EXPECT_EQ(total, result->total_evaluated);
}

TEST(SliceLineTest, DefaultSigmaApplied) {
  RandomInput input = MakeRandom(84, 5000, 4, 3);
  auto result = RunSliceLine(input.x0, input.errors, SliceLineConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_support, 50);  // max(32, ceil(5000/100))
}

TEST(SliceLineTest, KOneReturnsSingleBest) {
  RandomInput input = MakeRandom(85, 300, 5, 4);
  SliceLineConfig config;
  config.k = 1;
  config.min_support = 10;
  auto one = RunSliceLine(input.x0, input.errors, config);
  config.k = 8;
  auto many = RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(one.ok() && many.ok());
  if (!many->top_k.empty()) {
    ASSERT_EQ(one->top_k.size(), 1u);
    EXPECT_NEAR(one->top_k[0].stats.score, many->top_k[0].stats.score, 1e-12);
  }
}

}  // namespace
}  // namespace sliceline::core
