#ifndef SLICELINE_OBS_TRACE_H_
#define SLICELINE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sliceline::obs {

/// One trace event in the Chrome/Perfetto trace-event model. `name` and
/// `category` are required to be string literals (or otherwise outlive the
/// recorder) so the hot path never copies or allocates.
struct TraceEvent {
  const char* name = "";
  const char* category = "sliceline";
  char phase = 'X';       ///< 'X' complete span, 'i' instant event
  int64_t ts_us = 0;      ///< steady-clock timestamp, microseconds
  int64_t dur_us = 0;     ///< span duration ('X' only)
  uint32_t tid = 0;       ///< recording thread
  bool has_arg = false;   ///< emit `args:{"v":arg}`?
  int64_t arg = 0;        ///< span argument (e.g. lattice level)
};

/// Process-wide trace-span recorder. Spans append to per-thread buffers
/// (one short uncontended lock per event); Export serializes everything to
/// the Chrome tracing / Perfetto JSON format (chrome://tracing loads it
/// directly). Disabled (the default) it costs one relaxed load per span.
class TraceRecorder {
 public:
  static TraceRecorder* Default();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a finished event (called by ScopedSpan / TraceInstant).
  void Record(const TraceEvent& event);

  /// Steady-clock now in microseconds (epoch arbitrary but consistent).
  static int64_t NowMicros();

  /// Small dense id of the calling thread (Chrome traces want integers).
  static uint32_t ThreadId();

  /// Drops all recorded events.
  void Clear();

  /// Number of buffered events (diagnostics/tests).
  size_t EventCount() const;

  /// Writes the full buffered trace as strict Chrome-tracing JSON:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void ExportChromeTrace(std::ostream& os) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex buffers_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records a complete ('X') event covering its lifetime. The
/// enabled check happens once, at construction; a span that starts enabled
/// records even if tracing is flipped off before it ends.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : ScopedSpan(name, /*has_arg=*/false, 0) {}
  ScopedSpan(const char* name, int64_t arg)
      : ScopedSpan(name, /*has_arg=*/true, arg) {}
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ScopedSpan(const char* name, bool has_arg, int64_t arg);

  const char* name_;
  int64_t start_us_ = 0;
  bool active_;
  bool has_arg_;
  int64_t arg_;
};

/// Records an instant event (a point-in-time marker, Perfetto 'i' phase),
/// and bumps the counter "events/<category>/<name>" in the default metrics
/// registry so structured events are countable as well as visible on the
/// timeline. Both `category` and `name` must be string literals.
void TraceInstant(const char* category, const char* name);

/// Instant event with a numeric argument (e.g. the level a degradation
/// step fired at).
void TraceInstant(const char* category, const char* name, int64_t arg);

}  // namespace sliceline::obs

// Span macros: `TRACE_SPAN("la/level", L)` places a scoped span. Compiling
// with -DSLICELINE_OBS_DISABLED removes the instrumentation entirely.
#ifdef SLICELINE_OBS_DISABLED
#define SLICELINE_TRACE_CONCAT2(a, b) a##b
#define SLICELINE_TRACE_CONCAT(a, b) SLICELINE_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(...) \
  do {                  \
  } while (false)
#else
#define SLICELINE_TRACE_CONCAT2(a, b) a##b
#define SLICELINE_TRACE_CONCAT(a, b) SLICELINE_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(...)                                          \
  ::sliceline::obs::ScopedSpan SLICELINE_TRACE_CONCAT(           \
      sliceline_trace_span_, __LINE__)(__VA_ARGS__)
#endif

#endif  // SLICELINE_OBS_TRACE_H_
