// Reproduces the Section 5.3 sigma experiment ("Varying the sigma
// Constraint"): top-K scores and runtime for sigma in [1e-4 n, 1e-1 n] with
// alpha = 0.95, K = 10, ceil(L) = 3. The paper observed that scores change
// little, but runtime grows by over an order of magnitude as sigma shrinks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"

int main() {
  using namespace sliceline;
  bench::Banner("Section 5.3: Varying the sigma Constraint",
                "SliceLine Section 5.3 (text experiment)");
  bench::Reporter reporter("bench_sigma_sweep",
                           "SliceLine Section 5.3 (text experiment)");
  const std::vector<double> fractions = {1e-4, 1e-3, 1e-2, 1e-1};
  const std::vector<const char*> names = {"adult", "uscensus"};

  for (const char* name : names) {
    data::EncodedDataset ds =
        bench::Load(name, std::string(name) == "uscensus" ? 8000 : 0);
    std::printf("%s (n=%s):\n", name, FormatWithCommas(ds.n()).c_str());
    std::printf("  %-12s %10s %12s %12s %12s\n", "sigma", "top1", "top10",
                "evaluated", "time[s]");
    for (double fraction : fractions) {
      int64_t sigma = static_cast<int64_t>(fraction * ds.n());
      if (sigma < 1) sigma = 1;
      core::SliceLineConfig config;
      config.alpha = 0.95;
      config.k = 10;
      config.max_level = 3;
      config.min_support = sigma;
      core::SliceLineResult result =
          bench::Unwrap(core::RunSliceLine(ds, config), name);
      const double top1 =
          result.top_k.empty() ? 0.0 : result.top_k[0].stats.score;
      const double topk =
          result.top_k.empty() ? 0.0 : result.top_k.back().stats.score;
      std::printf("  %-12s %10s %12s %12s %12s\n",
                  FormatWithCommas(sigma).c_str(),
                  FormatDouble(top1, 4).c_str(), FormatDouble(topk, 4).c_str(),
                  FormatWithCommas(result.total_evaluated).c_str(),
                  FormatDouble(result.total_seconds, 3).c_str());
      reporter.AddRow(
          std::string(name) + "/sigma_" + std::to_string(sigma),
          {{"top1_score", top1},
           {"topk_score", topk},
           {"evaluated", static_cast<double>(result.total_evaluated)},
           {"seconds", result.total_seconds}});
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): scores are insensitive to sigma (the size\n"
      "term already counteracts tiny slices), while runtime and enumerated\n"
      "slices grow sharply as sigma decreases.\n");
  return reporter.Finish();
}
