// Reproduces Figure 3 (Pruning Techniques on Salaries 2x2): the number of
// enumerated slices per lattice level and the end-to-end runtime for five
// configurations, from all pruning enabled down to no pruning and no
// deduplication. The paper observed that the unpruned configurations ran
// out of memory after level 4; we cap those at ceil(L) = 4 as well.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "data/generators/planted_slices.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 3: Pruning Techniques on Salaries 2x2",
                "SliceLine Figure 3(a) slices/level, 3(b) runtime");
  bench::Reporter reporter("bench_fig3_pruning",
                           "SliceLine Figure 3(a) slices/level, 3(b) runtime");

  data::EncodedDataset base = bench::Load("salaries", 397);
  data::EncodedDataset ds = data::Replicate(base, 2, 2);
  std::printf("dataset: %s n=%lld m=%lld (alpha=0.95, sigma=ceil(n/100))\n\n",
              ds.name.c_str(), static_cast<long long>(ds.n()),
              static_cast<long long>(ds.m()));

  struct Config {
    const char* label;
    core::SliceLineConfig config;
    int cap;  // level cap for the explosive configurations
  };
  core::SliceLineConfig all;
  all.alpha = 0.95;
  all.k = 4;
  core::SliceLineConfig no_parent = all;
  no_parent.prune_parents = false;
  core::SliceLineConfig no_score = no_parent;
  no_score.prune_score = false;
  core::SliceLineConfig no_size = no_score;
  no_size.prune_size = false;
  core::SliceLineConfig none = no_size;
  none.deduplicate = false;
  std::vector<Config> configs = {
      {"all-pruning", all, 0},
      {"no-parent", no_parent, 0},
      {"no-parent/score", no_score, 0},
      {"no-parent/score/size", no_size, 4},
      {"no-pruning/no-dedup", none, 4},
  };

  std::printf("Figure 3(a): enumerated slice candidates per level\n");
  std::printf("%-22s", "config \\ level");
  const int max_shown = 10;
  for (int level = 1; level <= max_shown; ++level) {
    std::printf("%10d", level);
  }
  std::printf("\n");

  std::vector<double> runtimes;
  for (Config& entry : configs) {
    entry.config.max_level = entry.cap;
    core::SliceLineResult result =
        bench::Unwrap(core::RunSliceLine(ds, entry.config), entry.label);
    std::printf("%-22s", entry.label);
    std::vector<std::pair<std::string, double>> row = {
        {"seconds", result.total_seconds}};
    for (int level = 1; level <= max_shown; ++level) {
      if (level <= static_cast<int>(result.levels.size())) {
        std::printf("%10s",
                    FormatWithCommas(result.levels[level - 1].candidates)
                        .c_str());
        row.emplace_back(
            "level" + std::to_string(level) + "_candidates",
            static_cast<double>(result.levels[level - 1].candidates));
      } else {
        std::printf("%10s", "-");
      }
    }
    if (entry.cap > 0) std::printf("   (capped at L=%d)", entry.cap);
    std::printf("\n");
    runtimes.push_back(result.total_seconds);
    reporter.AddRow(entry.label, std::move(row));
  }

  std::printf("\nFigure 3(b): end-to-end runtime [s]\n");
  for (size_t i = 0; i < configs.size(); ++i) {
    std::printf("%-22s %10s s\n", configs[i].label,
                FormatDouble(runtimes[i], 3).c_str());
  }
  std::printf(
      "\nExpected shape (paper): every pruning technique reduces the\n"
      "enumerated slices; configs without size pruning / deduplication\n"
      "explode combinatorially (the paper's runs OOMed after level 4).\n");
  return reporter.Finish();
}
