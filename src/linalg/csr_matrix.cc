#include "linalg/csr_matrix.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace sliceline::linalg {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
                     std::vector<int64_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  SLICELINE_CHECK_GE(rows_, 0);
  SLICELINE_CHECK_GE(cols_, 0);
  SLICELINE_CHECK_EQ(static_cast<int64_t>(row_ptr_.size()), rows_ + 1);
  SLICELINE_CHECK_EQ(row_ptr_.front(), 0);
  SLICELINE_CHECK_EQ(row_ptr_.back(), static_cast<int64_t>(col_idx_.size()));
  SLICELINE_CHECK_EQ(col_idx_.size(), values_.size());
#ifndef NDEBUG
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      SLICELINE_DCHECK(col_idx_[k] >= 0 && col_idx_[k] < cols_);
      if (k > row_ptr_[r]) SLICELINE_DCHECK(col_idx_[k - 1] < col_idx_[k]);
    }
  }
#endif
}

CsrMatrix CsrMatrix::Zero(int64_t rows, int64_t cols) {
  return CsrMatrix(rows, cols, std::vector<int64_t>(rows + 1, 0), {}, {});
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& dense) {
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(dense.rows() + 1);
  row_ptr.push_back(0);
  for (int64_t i = 0; i < dense.rows(); ++i) {
    for (int64_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.At(i, j);
      if (v != 0.0) {
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
    row_ptr.push_back(static_cast<int64_t>(col_idx.size()));
  }
  return CsrMatrix(dense.rows(), dense.cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

double CsrMatrix::At(int64_t r, int64_t c) const {
  SLICELINE_DCHECK(r >= 0 && r < rows_);
  SLICELINE_DCHECK(c >= 0 && c < cols_);
  const int64_t* begin = col_idx_.data() + row_ptr_[r];
  const int64_t* end = col_idx_.data() + row_ptr_[r + 1];
  const int64_t* it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) return values_[it - col_idx_.data()];
  return 0.0;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.At(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

bool CsrMatrix::Equals(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

std::string CsrMatrix::ToString(int max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " sparse, nnz=" << nnz() << "\n";
  const int64_t r = std::min<int64_t>(rows_, max_rows);
  for (int64_t i = 0; i < r; ++i) {
    os << "  row " << i << ":";
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      os << " (" << col_idx_[k] << "," << values_[k] << ")";
    }
    os << "\n";
  }
  if (r < rows_) os << "  ...\n";
  return os.str();
}

CooBuilder::CooBuilder(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  SLICELINE_CHECK_GE(rows, 0);
  SLICELINE_CHECK_GE(cols, 0);
}

void CooBuilder::Add(int64_t r, int64_t c, double v) {
  SLICELINE_CHECK(r >= 0 && r < rows_);
  SLICELINE_CHECK(c >= 0 && c < cols_);
  entries_.push_back({r, c, v});
}

CsrMatrix CooBuilder::Build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<int64_t> row_ptr(rows_ + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());
  size_t i = 0;
  for (int64_t r = 0; r < rows_; ++r) {
    while (i < entries_.size() && entries_[i].row == r) {
      const int64_t c = entries_[i].col;
      double v = 0.0;
      while (i < entries_.size() && entries_[i].row == r &&
             entries_[i].col == c) {
        v += entries_[i].value;
        ++i;
      }
      if (v != 0.0) {
        col_idx.push_back(c);
        values.push_back(v);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(col_idx.size());
  }
  entries_.clear();
  entries_.shrink_to_fit();
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace sliceline::linalg
