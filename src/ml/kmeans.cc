#include "ml/kmeans.h"

#include <cmath>
#include <limits>

namespace sliceline::ml {

namespace {

/// Squared euclidean distance between sparse row r of x and dense centroid c
/// with precomputed squared norm c_norm2.
double RowCentroidDist2(const linalg::CsrMatrix& x, int64_t r,
                        const double* centroid, double c_norm2) {
  const int64_t* cols = x.RowCols(r);
  const double* vals = x.RowVals(r);
  const int64_t nnz = x.RowNnz(r);
  double row_norm2 = 0.0;
  double dot = 0.0;
  for (int64_t t = 0; t < nnz; ++t) {
    row_norm2 += vals[t] * vals[t];
    dot += vals[t] * centroid[cols[t]];
  }
  return row_norm2 - 2.0 * dot + c_norm2;
}

}  // namespace

StatusOr<KMeans::Result> KMeans::Run(const linalg::CsrMatrix& x,
                                     const Options& options) {
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  const int k = options.k;
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (n < k) return Status::InvalidArgument("fewer rows than clusters");

  Rng rng(options.seed);
  linalg::DenseMatrix centroids(k, d);

  // k-means++ seeding.
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::infinity());
  int64_t first = static_cast<int64_t>(rng.NextUint64(n));
  for (int c = 0; c < k; ++c) {
    int64_t pick = first;
    if (c > 0) {
      double total = 0.0;
      for (double v : min_dist) total += v;
      if (total <= 0.0) {
        pick = static_cast<int64_t>(rng.NextUint64(n));
      } else {
        double u = rng.NextDouble() * total;
        pick = n - 1;
        for (int64_t i = 0; i < n; ++i) {
          u -= min_dist[i];
          if (u <= 0.0) {
            pick = i;
            break;
          }
        }
      }
    }
    double* cent = centroids.row(c);
    const int64_t* cols = x.RowCols(pick);
    const double* vals = x.RowVals(pick);
    for (int64_t t = 0; t < x.RowNnz(pick); ++t) cent[cols[t]] = vals[t];
    double c_norm2 = 0.0;
    for (int64_t j = 0; j < d; ++j) c_norm2 += cent[j] * cent[j];
    for (int64_t i = 0; i < n; ++i) {
      const double dist = RowCentroidDist2(x, i, cent, c_norm2);
      if (dist < min_dist[i]) min_dist[i] = dist;
    }
  }

  Result result;
  result.assignments.assign(static_cast<size_t>(n), 0.0);
  std::vector<double> norms(static_cast<size_t>(k), 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int c = 0; c < k; ++c) {
      const double* cent = centroids.row(c);
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j) acc += cent[j] * cent[j];
      norms[c] = acc;
    }
    bool changed = false;
    double inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double dist = RowCentroidDist2(x, i, centroids.row(c), norms[c]);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      inertia += std::max(best_dist, 0.0);
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Recompute centroids.
    centroids.Fill(0.0);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int c = static_cast<int>(result.assignments[i]);
      ++counts[c];
      double* cent = centroids.row(c);
      const int64_t* cols = x.RowCols(i);
      const double* vals = x.RowVals(i);
      for (int64_t t = 0; t < x.RowNnz(i); ++t) cent[cols[t]] += vals[t];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps zero centroid
      double* cent = centroids.row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (int64_t j = 0; j < d; ++j) cent[j] *= inv;
    }
    if (!changed && iter > 0) break;
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace sliceline::ml
