#ifndef SLICELINE_DATA_GENERATORS_GENERATORS_H_
#define SLICELINE_DATA_GENERATORS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoded_dataset.h"

namespace sliceline::data {

/// Options shared by every dataset generator.
struct DatasetOptions {
  /// Row count; 0 selects the generator's default. Defaults are the paper's
  /// row counts scaled down to laptop-scale (see DatasetInfo::paper_rows for
  /// the originals); the SLICELINE_DATA_SCALE environment variable further
  /// multiplies the default.
  int64_t rows = 0;
  uint64_t seed = 42;
};

/// Static description of a generator for the Table 1 reproduction.
struct DatasetInfo {
  std::string name;
  int64_t default_rows;  ///< scaled default used by the harness
  int64_t paper_rows;    ///< n in Table 1
  int64_t columns;       ///< m in Table 1
  int64_t paper_onehot;  ///< l in Table 1
  std::string task;      ///< "Reg." / "2-Class" / ...
};

/// Salaries [n=397, m=5, l=27], regression. The tiny ablation dataset of
/// Figure 3 (used there as a 2x2 row/column replication via Replicate()).
EncodedDataset MakeSalaries(const DatasetOptions& options = {});

/// Adult-like [paper n=32561, m=14, l=162], 2-class.
EncodedDataset MakeAdult(const DatasetOptions& options = {});

/// Covtype-like [paper n=581012, m=54, l=188], 7-class, strongly correlated
/// binary soil/wilderness groups.
EncodedDataset MakeCovtype(const DatasetOptions& options = {});

/// KDD98-like [paper n=95412, m=469, l=8378], regression, thousands of
/// qualifying basic slices.
EncodedDataset MakeKdd98(const DatasetOptions& options = {});

/// USCensus-like [paper n=2458285, m=68, l=378], 4-class labels derived from
/// latent clusters (the paper uses k-means), correlated column groups.
EncodedDataset MakeUsCensus(const DatasetOptions& options = {});

/// CriteoD21-like [paper n=192215183, m=39, l=75573541], 2-class,
/// ultra-sparse one-hot with heavy-tailed category frequencies.
EncodedDataset MakeCriteo(const DatasetOptions& options = {});

/// Lookup by name ("salaries", "adult", "covtype", "kdd98", "uscensus",
/// "criteo"); NotFound otherwise.
StatusOr<EncodedDataset> MakeDatasetByName(const std::string& name,
                                           const DatasetOptions& options = {});

/// All generators with paper-reported shapes (Table 1 reproduction).
std::vector<DatasetInfo> ListDatasets();

namespace internal {
/// Applies the default row count and SLICELINE_DATA_SCALE to `options`.
int64_t ResolveRows(const DatasetOptions& options, int64_t default_rows,
                    int64_t min_rows = 256);
}  // namespace internal

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_GENERATORS_GENERATORS_H_
