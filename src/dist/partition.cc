#include "dist/partition.h"

#include <algorithm>

#include "common/logging.h"

namespace sliceline::dist {

std::vector<RowRange> PartitionRows(int64_t n, int workers) {
  SLICELINE_CHECK_GE(workers, 1);
  SLICELINE_CHECK_GE(n, 0);
  const int w = static_cast<int>(
      std::min<int64_t>(workers, std::max<int64_t>(n, 1)));
  std::vector<RowRange> out;
  out.reserve(w);
  const int64_t base = n / w;
  const int64_t extra = n % w;
  int64_t begin = 0;
  for (int i = 0; i < w; ++i) {
    const int64_t size = base + (i < extra ? 1 : 0);
    out.push_back({begin, begin + size});
    begin += size;
  }
  return out;
}

Shard MakeShard(const data::IntMatrix& x0, const std::vector<double>& errors,
                RowRange range) {
  SLICELINE_CHECK(range.begin >= 0 && range.end <= x0.rows() &&
                  range.begin <= range.end);
  Shard shard;
  shard.range = range;
  shard.x0 = data::IntMatrix(range.size(), x0.cols());
  for (int64_t i = range.begin; i < range.end; ++i) {
    for (int64_t j = 0; j < x0.cols(); ++j) {
      shard.x0.At(i - range.begin, j) = x0.At(i, j);
    }
  }
  shard.errors.assign(errors.begin() + range.begin,
                      errors.begin() + range.end);
  return shard;
}

}  // namespace sliceline::dist
