#include "core/sliceline.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "core/candidates.h"
#include "core/evaluator.h"
#include "core/scoring.h"
#include "core/topk.h"

namespace sliceline::core {

namespace {

/// Decodes a slice's one-hot columns into (feature, code) predicates.
std::vector<std::pair<int, int32_t>> DecodeColumns(
    const data::FeatureOffsets& offsets, const int64_t* cols, int64_t len) {
  std::vector<std::pair<int, int32_t>> preds;
  preds.reserve(static_cast<size_t>(len));
  for (int64_t k = 0; k < len; ++k) {
    preds.emplace_back(offsets.FeatureOfColumn(cols[k]),
                       offsets.CodeOfColumn(cols[k]));
  }
  return preds;
}

Status ValidateInputs(const data::IntMatrix& x0,
                      const std::vector<double>& errors,
                      const SliceLineConfig& config) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument(
        "error vector size " + std::to_string(errors.size()) +
        " does not match " + std::to_string(x0.rows()) + " rows");
  }
  for (double e : errors) {
    if (!(e >= 0.0) || std::isnan(e)) {
      return Status::InvalidArgument("errors must be non-negative and finite");
    }
  }
  if (!(config.alpha > 0.0 && config.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (config.min_support < 0) {
    return Status::InvalidArgument("min_support must be >= 0");
  }
  return Status::OK();
}

}  // namespace

StatusOr<SliceLineResult> RunSliceLine(const data::IntMatrix& x0,
                                       const std::vector<double>& errors,
                                       const SliceLineConfig& config) {
  SLICELINE_RETURN_NOT_OK(ValidateInputs(x0, errors, config));
  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  const SliceEvaluator evaluator(x0, offsets, errors);
  return RunSliceLineWithBackend(evaluator, config);
}

StatusOr<SliceLineResult> RunSliceLineWithBackend(
    const EvaluatorBackend& evaluator, const SliceLineConfig& config) {
  if (!(config.alpha > 0.0 && config.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  Stopwatch total_watch;

  const data::FeatureOffsets& offsets = evaluator.offsets();
  const int64_t n = evaluator.n();
  const int64_t sigma = ResolveMinSupport(config, n);
  const ScoringContext context(n, evaluator.total_error(), config.alpha);

  SliceLineResult result;
  result.min_support = sigma;
  result.average_error = context.average_error();
  if (evaluator.total_error() <= 0.0) {
    // A perfect model has no problematic slices.
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  TopK topk(config.k, sigma);
  const int max_level =
      config.max_level > 0
          ? std::min<int>(config.max_level, offsets.num_features())
          : offsets.num_features();

  // -- Level 1: create and score basic slices (Section 4.2). --
  Stopwatch level_watch;
  SliceSet prev;
  EvalResult prev_stats;
  LevelStats level1;
  level1.level = 1;
  level1.candidates = offsets.total;  // all one-hot features are considered
  for (int64_t c = 0; c < offsets.total; ++c) {
    const int64_t ss = evaluator.basic_sizes()[c];
    const double se = evaluator.basic_error_sums()[c];
    const bool valid = ss >= sigma && se > 0.0;
    if (valid) ++level1.valid;
    const bool keep = (!config.prune_size || ss >= sigma) && se > 0.0;
    if (!keep) {
      ++level1.pruned;
      continue;
    }
    prev.Add(&c, &c + 1);
    prev_stats.sizes.push_back(static_cast<double>(ss));
    prev_stats.error_sums.push_back(se);
    prev_stats.max_errors.push_back(evaluator.basic_max_errors()[c]);
    const double score = context.Score(ss, se);
    if (score > 0.0 && ss >= sigma) {
      Slice slice;
      slice.predicates = DecodeColumns(offsets, &c, 1);
      slice.stats = {score, se, evaluator.basic_max_errors()[c], ss};
      topk.Offer(std::move(slice));
    }
  }
  level1.seconds = level_watch.ElapsedSeconds();
  result.levels.push_back(level1);
  result.total_evaluated += level1.candidates;

  // -- Levels 2..max: enumerate, evaluate, maintain top-K. --
  for (int level = 2; level <= max_level && prev.size() > 0; ++level) {
    level_watch.Reset();
    std::vector<ParentBounds> bounds;
    CandidateGenStats gen_stats;
    SliceSet cands = GeneratePairCandidates(
        prev, prev_stats, level, context, sigma, topk.Threshold(), config,
        offsets, &bounds, &gen_stats);
    if (cands.size() == 0) {
      LevelStats stats;
      stats.level = level;
      stats.pruned = gen_stats.pruned;
      stats.seconds = level_watch.ElapsedSeconds();
      result.levels.push_back(stats);
      break;
    }

    SLICELINE_ASSIGN_OR_RETURN(EvalResult eval,
                               evaluator.Evaluate(cands, config));

    LevelStats stats;
    stats.level = level;
    stats.candidates = cands.size();
    stats.pruned = gen_stats.pruned;
    for (int64_t i = 0; i < cands.size(); ++i) {
      const int64_t ss = static_cast<int64_t>(eval.sizes[i]);
      const double se = eval.error_sums[i];
      if (ss >= sigma && se > 0.0) ++stats.valid;
      const double score = context.Score(ss, se);
      if (score > 0.0 && ss >= sigma) {
        Slice slice;
        slice.predicates = DecodeColumns(offsets, cands.Columns(i),
                                         cands.Length(i));
        slice.stats = {score, se, eval.max_errors[i], ss};
        topk.Offer(std::move(slice));
      }
    }
    stats.seconds = level_watch.ElapsedSeconds();
    result.levels.push_back(stats);
    result.total_evaluated += stats.candidates;

    prev = std::move(cands);
    prev_stats = std::move(eval);
  }

  result.top_k = topk.Slices();
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

StatusOr<SliceLineResult> RunSliceLine(const data::EncodedDataset& dataset,
                                       const SliceLineConfig& config) {
  if (dataset.errors.empty()) {
    return Status::InvalidArgument(
        "dataset has no materialized error vector; train a model via "
        "ml::TrainAndMaterializeErrors or use a generator");
  }
  return RunSliceLine(dataset.x0, dataset.errors, config);
}

}  // namespace sliceline::core
