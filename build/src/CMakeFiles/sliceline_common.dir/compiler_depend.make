# Empty compiler generated dependencies file for sliceline_common.
# This may be replaced when dependencies are built.
