file(REMOVE_RECURSE
  "libsliceline_linalg.a"
)
