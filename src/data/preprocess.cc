#include "data/preprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "data/binning.h"
#include "data/recode.h"

namespace sliceline::data {

std::vector<int32_t> DatasetEncoders::Domains() const {
  std::vector<int32_t> out;
  out.reserve(features.size());
  for (const FeatureEncoder& f : features) out.push_back(f.domain());
  return out;
}

StatusOr<EncodedDataset> Preprocess(const Frame& frame,
                                    const PreprocessOptions& options) {
  return PreprocessWithEncoders(frame, options, nullptr);
}

StatusOr<EncodedDataset> PreprocessWithEncoders(
    const Frame& frame, const PreprocessOptions& options,
    DatasetEncoders* encoders) {
  if (options.label_column.empty()) {
    return Status::InvalidArgument("label_column must be set");
  }
  SLICELINE_ASSIGN_OR_RETURN(int64_t label_idx,
                             frame.ColumnIndex(options.label_column));

  std::vector<int64_t> feature_cols;
  for (int64_t j = 0; j < frame.num_columns(); ++j) {
    if (j == label_idx) continue;
    const std::string& name = frame.column(j).name();
    if (std::find(options.drop_columns.begin(), options.drop_columns.end(),
                  name) != options.drop_columns.end()) {
      continue;
    }
    feature_cols.push_back(j);
  }
  if (feature_cols.empty()) {
    return Status::InvalidArgument("no feature columns left after drops");
  }

  const int64_t n = frame.num_rows();
  EncodedDataset ds;
  ds.task = options.task;
  ds.x0 = IntMatrix(n, static_cast<int64_t>(feature_cols.size()));
  if (encoders != nullptr) encoders->features.clear();

  for (size_t fj = 0; fj < feature_cols.size(); ++fj) {
    const Column& col = frame.column(feature_cols[fj]);
    ds.feature_names.push_back(col.name());
    if (col.is_numeric()) {
      SLICELINE_ASSIGN_OR_RETURN(
          EquiWidthBinner binner,
          EquiWidthBinner::Fit(col.numeric(), options.num_bins));
      const std::vector<int32_t> codes = binner.EncodeAll(col.numeric());
      for (int64_t i = 0; i < n; ++i) ds.x0.At(i, fj) = codes[i];
      if (encoders != nullptr) {
        FeatureEncoder enc;
        enc.name = col.name();
        enc.numeric = true;
        enc.binner = binner;
        encoders->features.push_back(std::move(enc));
      }
    } else {
      const RecodeMap map = RecodeMap::Fit(col.categorical());
      SLICELINE_ASSIGN_OR_RETURN(std::vector<int32_t> codes,
                                 map.EncodeAll(col.categorical()));
      for (int64_t i = 0; i < n; ++i) ds.x0.At(i, fj) = codes[i];
      if (encoders != nullptr) {
        FeatureEncoder enc;
        enc.name = col.name();
        enc.numeric = false;
        enc.recode = map;
        encoders->features.push_back(std::move(enc));
      }
    }
  }

  const Column& label = frame.column(label_idx);
  ds.y.resize(n);
  if (options.task == Task::kRegression) {
    if (!label.is_numeric()) {
      return Status::InvalidArgument("regression label must be numeric");
    }
    for (int64_t i = 0; i < n; ++i) {
      const double v = label.numeric()[i];
      if (std::isnan(v)) {
        return Status::InvalidArgument("regression label has missing values");
      }
      ds.y[i] = v;
    }
  } else {
    // Classification: recode (string) or round (numeric) to 0-based classes.
    if (label.is_numeric()) {
      double max_class = 0;
      for (int64_t i = 0; i < n; ++i) {
        ds.y[i] = label.numeric()[i];
        max_class = std::max(max_class, ds.y[i]);
      }
      ds.num_classes = static_cast<int>(max_class) + 1;
    } else {
      const RecodeMap map = RecodeMap::Fit(label.categorical());
      SLICELINE_ASSIGN_OR_RETURN(std::vector<int32_t> codes,
                                 map.EncodeAll(label.categorical()));
      for (int64_t i = 0; i < n; ++i) ds.y[i] = codes[i] - 1;
      ds.num_classes = map.domain();
    }
  }
  return ds;
}

StatusOr<IntMatrix> EncodeRawRows(
    const DatasetEncoders& encoders,
    const std::vector<std::vector<std::string>>& rows) {
  const size_t m = encoders.features.size();
  if (m == 0) return Status::InvalidArgument("no encoders fitted");
  IntMatrix out(static_cast<int64_t>(rows.size()), static_cast<int64_t>(m));
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::vector<std::string>& row = rows[i];
    if (row.size() != m) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " has " + std::to_string(row.size()) +
          " cells, expected " + std::to_string(m));
    }
    for (size_t j = 0; j < m; ++j) {
      const FeatureEncoder& enc = encoders.features[j];
      if (enc.numeric) {
        double v = std::numeric_limits<double>::quiet_NaN();
        if (!Trim(row[j]).empty()) {
          auto parsed = ParseDouble(row[j]);
          if (!parsed.ok()) {
            return Status::InvalidArgument(
                "row " + std::to_string(i) + ", feature '" + enc.name +
                "': " + parsed.status().message());
          }
          v = parsed.value();
        }
        out.At(static_cast<int64_t>(i), static_cast<int64_t>(j)) =
            enc.binner->Encode(v);
      } else {
        auto code = enc.recode->Encode(row[j]);
        if (!code.ok()) {
          // Unseen categories are rejected rather than assigned new codes:
          // the dictionary is frozen once the base dataset is registered.
          return Status::InvalidArgument(
              "row " + std::to_string(i) + ", feature '" + enc.name +
              "': category '" + row[j] + "' not in frozen dictionary");
        }
        out.At(static_cast<int64_t>(i), static_cast<int64_t>(j)) =
            code.value();
      }
    }
  }
  return out;
}

}  // namespace sliceline::data
