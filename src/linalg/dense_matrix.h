#ifndef SLICELINE_LINALG_DENSE_MATRIX_H_
#define SLICELINE_LINALG_DENSE_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"

namespace sliceline::linalg {

/// Row-major dense double matrix. Used by the ML substrate (model
/// coefficients, centroids, normal-equation solves) and as the reference
/// representation in tests for the sparse kernels.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  /// Aborts when the shape is negative or rows * cols overflows; use
  /// Create() for untrusted shapes.
  DenseMatrix(int64_t rows, int64_t cols, double fill = 0.0);
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> data);

  /// Overflow-checked factory for shapes originating from untrusted input
  /// (file parsers, checkpoints): rejects negative dimensions and products
  /// that overflow int64_t/SIZE_MAX instead of aborting.
  static StatusOr<DenseMatrix> Create(int64_t rows, int64_t cols,
                                      double fill = 0.0);

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double& At(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  double At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }
  double& operator()(int64_t r, int64_t c) { return At(r, c); }
  double operator()(int64_t r, int64_t c) const { return At(r, c); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }
  const double* row(int64_t r) const { return data_.data() + r * cols_; }
  double* row(int64_t r) { return data_.data() + r * cols_; }

  /// Sets every entry to `v`.
  void Fill(double v);

  /// C = this * other; requires cols() == other.rows().
  DenseMatrix MatMul(const DenseMatrix& other) const;

  /// y = this * x; requires cols() == x.size().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = this^T * x; requires rows() == x.size().
  std::vector<double> TransposeMatVec(const std::vector<double>& x) const;

  DenseMatrix Transpose() const;

  /// Max |a-b| over entries; matrices must be the same shape.
  double MaxAbsDiff(const DenseMatrix& other) const;

  bool SameShape(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ToString(int max_rows = 10, int max_cols = 12) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
  // Live-byte accounting against the ambient MemoryBudget (no-op when none
  // is installed). Copies re-charge, moves transfer -- the defaulted special
  // members above stay correct.
  MemoryCharge charge_;
};

/// In-place Cholesky solve of the SPD system A x = b (A is n x n). Adds
/// `ridge` to the diagonal before factorization. Fails with Internal if A is
/// not positive definite after regularization. Intended for small systems
/// (linear-regression normal equations on narrow data); large/sparse systems
/// use the matrix-free conjugate-gradient path in ml/.
StatusOr<std::vector<double>> CholeskySolve(const DenseMatrix& a,
                                            const std::vector<double>& b,
                                            double ridge = 0.0);

}  // namespace sliceline::linalg

#endif  // SLICELINE_LINALG_DENSE_MATRIX_H_
