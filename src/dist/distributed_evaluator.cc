#include "dist/distributed_evaluator.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace sliceline::dist {

DistributedSliceEvaluator::DistributedSliceEvaluator(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const DistOptions& options)
    : offsets_(data::ComputeOffsets(x0)), options_(options), n_(x0.rows()) {
  SLICELINE_CHECK_EQ(static_cast<int64_t>(errors.size()), x0.rows());
  const std::vector<RowRange> ranges = PartitionRows(n_, options.workers);
  shards_.reserve(ranges.size());
  for (const RowRange& range : ranges) {
    WorkerState state;
    state.shard = MakeShard(x0, errors, range);
    shards_.push_back(std::move(state));
  }
  // The evaluator holds pointers into its shard, so it is built only after
  // the shard has reached its final address. Workers share the driver's
  // global feature offsets so one-hot column ids align across shards (a
  // shard may not observe every code).
  for (WorkerState& state : shards_) {
    state.evaluator = std::make_unique<core::SliceEvaluator>(
        state.shard.x0, offsets_, state.shard.errors);
  }

  // Aggregate the level-1 statistics: counts and error sums add, maxima max.
  const int64_t l = offsets_.total;
  basic_sizes_.assign(static_cast<size_t>(l), 0);
  basic_error_sums_.assign(static_cast<size_t>(l), 0.0);
  basic_max_errors_.assign(static_cast<size_t>(l), 0.0);
  for (const WorkerState& state : shards_) {
    total_error_ += state.evaluator->total_error();
    for (int64_t c = 0; c < l; ++c) {
      basic_sizes_[c] += state.evaluator->basic_sizes()[c];
      basic_error_sums_[c] += state.evaluator->basic_error_sums()[c];
      basic_max_errors_[c] = std::max(basic_max_errors_[c],
                                      state.evaluator->basic_max_errors()[c]);
    }
  }
}

core::EvalResult DistributedSliceEvaluator::Evaluate(
    const core::SliceSet& set, const core::SliceLineConfig& config) const {
  const size_t count = static_cast<size_t>(set.size());
  core::EvalResult out;
  out.sizes.assign(count, 0.0);
  out.error_sums.assign(count, 0.0);
  out.max_errors.assign(count, 0.0);
  if (count == 0) return out;

  // Broadcast cost: the slice set is shipped to every worker (column ids +
  // row offsets); gather cost: 3 doubles per slice per worker.
  int64_t slice_bytes = 0;
  for (int64_t i = 0; i < set.size(); ++i) {
    slice_bytes += 8 * (set.Length(i) + 1);
  }
  cost_.rounds += 1;
  cost_.broadcast_bytes += slice_bytes * workers();
  cost_.gather_bytes += static_cast<int64_t>(3 * 8 * count) * workers();

  // Per-worker evaluation on its shard; each worker uses a serial local
  // evaluator (the cluster's intra-node parallelism is modeled by the
  // per-worker busy time, not nested threading).
  core::SliceLineConfig worker_config = config;
  worker_config.parallel = false;
  std::vector<core::EvalResult> partials(shards_.size());
  std::vector<double> worker_seconds(shards_.size(), 0.0);
  auto run_worker = [&](size_t w) {
    Stopwatch watch;
    partials[w] = shards_[w].evaluator->Evaluate(set, worker_config);
    worker_seconds[w] = watch.ElapsedSeconds();
  };
  if (options_.use_threads && GlobalThreadPool().num_threads() > 1) {
    GlobalThreadPool().ParallelFor(shards_.size(), run_worker);
  } else {
    for (size_t w = 0; w < shards_.size(); ++w) run_worker(w);
  }

  double slowest = 0.0;
  for (size_t w = 0; w < shards_.size(); ++w) {
    slowest = std::max(slowest, worker_seconds[w]);
    cost_.worker_busy_seconds += worker_seconds[w];
    for (size_t i = 0; i < count; ++i) {
      out.sizes[i] += partials[w].sizes[i];
      out.error_sums[i] += partials[w].error_sums[i];
      out.max_errors[i] = std::max(out.max_errors[i],
                                   partials[w].max_errors[i]);
    }
  }
  cost_.critical_path_seconds += slowest;
  return out;
}

StatusOr<core::SliceLineResult> RunSliceLineDistributed(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const core::SliceLineConfig& config, const DistOptions& options,
    DistCostStats* cost_out) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument("error vector size mismatch");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("need at least one worker");
  }
  DistributedSliceEvaluator evaluator(x0, errors, options);
  SLICELINE_ASSIGN_OR_RETURN(core::SliceLineResult result,
                             core::RunSliceLineWithBackend(evaluator, config));
  if (cost_out != nullptr) *cost_out = evaluator.cost();
  return result;
}

}  // namespace sliceline::dist
