// Wire-protocol edge cases for the newline-delimited strict-JSON protocol:
// abrupt peer disconnects mid-request, oversized-line rejection, fragmented
// frame reads, malformed-but-length-valid JSON, and the client's bounded
// retry behavior against a flaky peer. These drive the server over raw
// sockets (no Client) wherever the client would hide the framing.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "common/socket.h"
#include "obs/json_parse.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace sliceline::serve {
namespace {

ServerOptions UnixOptions(const std::string& socket_name) {
  ServerOptions options;
  options.unix_socket = ::testing::TempDir() + "/" +
                        std::to_string(::getpid()) + "_" + socket_name;
  return options;
}

/// Starts a server on a fresh Unix socket; shuts it down when destroyed.
struct ServerGuard {
  explicit ServerGuard(ServerOptions options) : server(options) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~ServerGuard() {
    server.RequestShutdown();
    EXPECT_EQ(server.Wait(), 0);
  }
  Server server;
};

StatusOr<SocketConnection> RawConnect(const ServerOptions& options) {
  return ConnectUnix(options.unix_socket, /*timeout_ms=*/2000);
}

TEST(WireEdgeTest, AbruptDisconnectMidRequestLeavesServerServing) {
  ServerOptions options = UnixOptions("wire_abrupt.sock");
  ServerGuard guard(options);

  // Half a request, no newline, then hang up.
  {
    auto conn = RawConnect(options);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    ASSERT_TRUE(conn->WriteAll(R"({"id":"x","type":"serv)").ok());
  }  // destructor closes mid-frame

  // The server must shrug that off and keep serving new connections.
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
}

TEST(WireEdgeTest, OversizedLineGetsStructuredErrorAndDrop) {
  ServerOptions options = UnixOptions("wire_oversized.sock");
  ServerGuard guard(options);

  auto conn = RawConnect(options);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  // One byte past the guard. The payload never parses, so junk is fine.
  std::string line(kMaxLineBytes + 1, 'a');
  line.push_back('\n');
  ASSERT_TRUE(conn->WriteAll(line).ok());

  auto response = conn->ReadLine(kMaxLineBytes, /*timeout_ms=*/5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto parsed = obs::ParseJson(response.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->GetBoolOr("ok", true));
  const obs::JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetStringOr("code", ""), "resource_exhausted");

  // The stream is desynchronized: the server drops the connection.
  auto next = conn->ReadLine(kMaxLineBytes, /*timeout_ms=*/5000);
  EXPECT_FALSE(next.ok());
}

TEST(WireEdgeTest, FragmentedFramesReassembleIntoOneRequest) {
  ServerOptions options = UnixOptions("wire_fragmented.sock");
  ServerGuard guard(options);

  auto conn = RawConnect(options);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const std::string request = R"({"id":"f1","type":"server_stats"})"
                              "\n";
  // Dribble the request one byte at a time with real pauses: the server's
  // ReadLine must buffer partial frames across reads.
  for (char ch : request) {
    ASSERT_TRUE(conn->WriteAll(std::string(1, ch)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto response = conn->ReadLine(kMaxLineBytes, /*timeout_ms=*/5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto parsed = obs::ParseJson(response.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetStringOr("id", ""), "f1");
  EXPECT_TRUE(parsed->GetBoolOr("ok", false));
}

TEST(WireEdgeTest, MalformedJsonGetsStructuredErrorNotDisconnect) {
  ServerOptions options = UnixOptions("wire_malformed.sock");
  ServerGuard guard(options);

  auto conn = RawConnect(options);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  // Length-valid but not strict JSON: trailing comma plus a lone brace.
  ASSERT_TRUE(conn->WriteAll("{\"id\":\"m1\",}\n").ok());
  auto response = conn->ReadLine(kMaxLineBytes, /*timeout_ms=*/5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto parsed = obs::ParseJson(response.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->GetBoolOr("ok", true));
  const obs::JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetStringOr("code", ""), "invalid_argument");

  // The frame boundary survived, so the connection is still usable.
  ASSERT_TRUE(
      conn->WriteAll("{\"id\":\"m2\",\"type\":\"server_stats\"}\n").ok());
  auto next = conn->ReadLine(kMaxLineBytes, /*timeout_ms=*/5000);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  auto next_parsed = obs::ParseJson(next.value());
  ASSERT_TRUE(next_parsed.ok());
  EXPECT_TRUE(next_parsed->GetBoolOr("ok", false));
}

TEST(WireEdgeTest, ClientRetriesIdempotentRequestAfterPeerHangup) {
  // A hand-rolled flaky peer: hangs up on the first connection before
  // answering, serves the second one normally.
  auto listener = ListenSocket::ListenTcp(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const int port = listener->bound_port();
  std::thread peer([&listener] {
    {
      auto first = listener->Accept(5000);
      ASSERT_TRUE(first.ok());
      auto line = first->ReadLine(kMaxLineBytes, 5000);
      ASSERT_TRUE(line.ok());
      first->Close();  // hangup after the request hit the wire
    }
    auto second = listener->Accept(5000);
    ASSERT_TRUE(second.ok());
    auto line = second->ReadLine(kMaxLineBytes, 5000);
    ASSERT_TRUE(line.ok());
    ASSERT_TRUE(
        second->WriteLine("{\"id\":\"c1\",\"ok\":true}\n", kMaxLineBytes)
            .ok());
  });

  ClientOptions client_options;
  client_options.max_retries = 2;
  client_options.backoff_base_seconds = 0.01;
  auto client = Client::Connect(Endpoint::Tcp(port), client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stats = client->ServerStats();  // idempotent: retried after hangup
  peer.join();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(client->retries(), 1);
}

TEST(WireEdgeTest, ClientDoesNotRetryFindSlicesAfterWrite) {
  // The peer hangs up after reading the find_slices request; the client
  // must surface the failure instead of resending a non-idempotent job.
  auto listener = ListenSocket::ListenTcp(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const int port = listener->bound_port();
  std::thread peer([&listener] {
    auto first = listener->Accept(5000);
    ASSERT_TRUE(first.ok());
    auto line = first->ReadLine(kMaxLineBytes, 5000);
    ASSERT_TRUE(line.ok());
    first->Close();
    // A retry would show up as a second connection; fail the test if so.
    auto second = listener->Accept(500);
    EXPECT_FALSE(second.ok()) << "non-idempotent request was resent";
  });

  ClientOptions client_options;
  client_options.max_retries = 3;
  client_options.backoff_base_seconds = 0.01;
  auto client = Client::Connect(Endpoint::Tcp(port), client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  FindSlicesRequest find;
  find.dataset = "whatever";
  auto reply = client->FindSlices(find);
  peer.join();
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(client->retries(), 0);
}

}  // namespace
}  // namespace sliceline::serve
