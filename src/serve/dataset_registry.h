#ifndef SLICELINE_SERVE_DATASET_REGISTRY_H_
#define SLICELINE_SERVE_DATASET_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoded_dataset.h"
#include "data/preprocess.h"
#include "serve/protocol.h"

namespace sliceline::serve {

/// One dataset loaded, preprocessed, and error-materialized exactly once,
/// then shared immutably across every request that names it. The data hash
/// fingerprints the encoded feature matrix plus the materialized error
/// vector (shared FNV-1a from common/hashing.h), and is one half of the
/// result-cache key.
struct RegisteredDataset {
  std::string name;
  std::string csv_path;
  data::EncodedDataset dataset;  ///< errors materialized; never mutated
  uint64_t data_hash = 0;
  double mean_error = 0.0;  ///< training-error mean from the ml pipeline
  double load_seconds = 0.0;
  /// Frozen per-feature encoders fitted at registration; appended rows are
  /// recoded against this dictionary (unseen categories are errors, never
  /// new codes). Shared across every snapshot of the dataset.
  std::shared_ptr<const data::DatasetEncoders> encoders;
  /// data_hash at registration: head of the append fingerprint chain.
  uint64_t base_hash = 0;
  /// Appends applied since registration (snapshots are immutable; each
  /// append publishes a new snapshot with version + 1).
  int64_t version = 0;
};

/// Fingerprint of an encoded dataset's slice-finding-relevant content:
/// dimensions, per-column domains, every feature code, and every
/// materialized error. Two registrations with equal hashes produce
/// identical find_slices results for any config.
uint64_t HashEncodedDataset(const data::EncodedDataset& dataset);

/// Thread-safe name -> RegisteredDataset map. Loading happens outside the
/// registry lock (CSV parse + model training dominate); concurrent
/// registrations of the same name race benignly -- the first insert wins and
/// the loser is accepted iff its content hash matches (idempotent retry) and
/// rejected otherwise.
class DatasetRegistry {
 public:
  struct RegisterOutcome {
    std::shared_ptr<const RegisteredDataset> dataset;
    bool already_registered = false;  ///< idempotent re-registration
  };

  /// One applied append: the new immutable snapshot, the hash it replaced
  /// (cache-invalidation key), and the encoded delta so callers (the watch
  /// manager) can feed the same rows into incremental consumers.
  struct AppendOutcome {
    std::shared_ptr<const RegisteredDataset> dataset;
    uint64_t previous_hash = 0;
    data::IntMatrix delta_x0;
    std::vector<double> delta_errors;
  };

  /// Loads `request.csv_path`, preprocesses (recode/bin/drop), trains the
  /// task's model to materialize errors, and publishes the result.
  StatusOr<RegisterOutcome> Register(const RegisterDatasetRequest& request);

  /// Recodes `rows` (raw string cells, encoder order) against the frozen
  /// dictionary, appends them with their caller-provided model errors, and
  /// publishes a new snapshot whose data_hash is chained FNV-style onto the
  /// previous hash. Appends serialize on a dedicated mutex; readers keep
  /// whatever snapshot they already hold. Errors come from the caller
  /// because the server never retrains -- re-materializing errors here would
  /// rewrite history and break incremental re-evaluation.
  StatusOr<AppendOutcome> AppendRows(
      const std::string& name,
      const std::vector<std::vector<std::string>>& rows,
      const std::vector<double>& errors);

  /// Drops the dataset. Snapshots held by in-flight jobs stay alive until
  /// released; the caller (the server) refuses while jobs or watches
  /// reference the name. NotFound for unknown names.
  Status Unregister(const std::string& name);

  /// nullptr when unknown.
  std::shared_ptr<const RegisteredDataset> Find(const std::string& name) const;

  /// Registration-name-sorted snapshot.
  std::vector<std::shared_ptr<const RegisteredDataset>> List() const;

  int64_t size() const;

 private:
  mutable std::mutex mutex_;
  /// Serializes AppendRows end to end (encode + copy + publish) so two
  /// appends cannot both build on the same parent snapshot. Ordered before
  /// mutex_ -- AppendRows takes append_mutex_ first, then mutex_ briefly.
  std::mutex append_mutex_;
  std::map<std::string, std::shared_ptr<const RegisteredDataset>> datasets_;
};

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_DATASET_REGISTRY_H_
