# Empty dependencies file for sliceline_data.
# This may be replaced when dependencies are built.
