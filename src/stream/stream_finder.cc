#include "stream/stream_finder.h"

#include <utility>

#include "core/sliceline.h"
#include "linalg/kernels_simd.h"
#include "obs/metrics.h"

namespace sliceline::stream {

StatusOr<std::unique_ptr<StreamingSliceFinder>> StreamingSliceFinder::Create(
    const data::IntMatrix& base_x0, const std::vector<double>& base_errors,
    StreamOptions options) {
  SLICELINE_ASSIGN_OR_RETURN(
      SegmentStore store,
      SegmentStore::Create(base_x0, base_errors, options.domains));
  std::unique_ptr<StreamingSliceFinder> finder(
      new StreamingSliceFinder(std::move(options)));
  finder->store_ = std::make_unique<SegmentStore>(std::move(store));
  return finder;
}

Status StreamingSliceFinder::Append(const data::IntMatrix& delta_x0,
                                    const std::vector<double>& delta_errors,
                                    double ingest_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  SLICELINE_RETURN_NOT_OK(
      store_->Append(delta_x0, delta_errors, ingest_seconds));
  store_->MaybeCompact(options_.compact_ratio);
  return Status::OK();
}

StatusOr<core::SliceLineResult> StreamingSliceFinder::Find(
    const core::SliceLineConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t n = store_->n();
  const int64_t delta_rows = n - rows_at_last_find_;
  const bool fallback =
      options_.full_rerun_fraction > 0.0 && rows_at_last_find_ > 0 &&
      static_cast<double>(delta_rows) >
          options_.full_rerun_fraction * static_cast<double>(n);
  StatusOr<core::SliceLineResult> result = Status::OK();
  if (fallback) {
    // Too much new data for incremental re-scoring to pay off: run the
    // plain evaluator over the concatenated dataset (with the frozen
    // offsets, so results stay comparable across the fallback).
    const core::SliceEvaluator evaluator(store_->x0(), store_->offsets(),
                                         store_->errors());
    result = core::RunSliceLineWithBackend(evaluator, config);
    if (result.ok()) result.value().outcome.stream_full_fallback = true;
    last_find_stats_ = StreamFindStats{};
    last_find_stats_.full_fallback = true;
  } else {
    find_stats_ = StreamFindStats{};
    result = core::RunSliceLineWithBackend(evaluator_, config);
    if (result.ok()) {
      result.value().outcome.stream_candidates_cached =
          find_stats_.candidates_cached;
      result.value().outcome.stream_candidates_delta =
          find_stats_.candidates_delta;
      result.value().outcome.stream_candidates_full =
          find_stats_.candidates_full;
    }
    last_find_stats_ = find_stats_;
  }
  if (result.ok()) rows_at_last_find_ = n;
  return result;
}

int64_t StreamingSliceFinder::n() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_->n();
}

uint64_t StreamingSliceFinder::fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_->fingerprint();
}

int64_t StreamingSliceFinder::compactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_->compactions();
}

StreamFindStats StreamingSliceFinder::last_find_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_find_stats_;
}

StatusOr<core::EvalResult> StreamingSliceFinder::StreamEvaluator::Evaluate(
    const core::SliceSet& set, const core::SliceLineConfig& config) const {
  // Runs inside Find(), which holds owner_->mutex_: the cache and scratch
  // buffers are safe to mutate without further locking.
  const RunContext* ctx = config.run_context;
  StreamingSliceFinder* owner = owner_;
  const SegmentStore& store = *owner->store_;
  core::EvalResult out;
  const size_t count = static_cast<size_t>(set.size());
  out.sizes.assign(count, 0.0);
  out.error_sums.assign(count, 0.0);
  out.max_errors.assign(count, 0.0);
  if (count == 0) return out;

  const linalg::SimdKernels& kernels = linalg::ActiveKernels();
  const int64_t n = store.n();
  const int64_t total_words = store.words();
  owner->scratch_.resize(static_cast<size_t>(total_words));
  StreamFindStats& stats = owner->find_stats_;

  for (int64_t i = 0; i < set.size(); ++i) {
    if ((i & 63) == 0 && ctx != nullptr && ctx->ShouldStop()) break;
    const int64_t len = set.Length(i);
    const int64_t* cols = set.Columns(i);
    std::vector<int64_t> key(cols, cols + len);

    auto it = owner->stats_cache_.find(key);
    CachedStats cached;
    bool have_entry = it != owner->stats_cache_.end();
    if (have_entry) cached = it->second;

    if (have_entry && cached.prefix == n) {
      ++stats.candidates_cached;
    } else {
      int64_t start = have_entry ? cached.prefix : 0;
      bool untouched = false;
      if (start > 0) {
        // Fast path: when the cached prefix sits on a live segment
        // boundary and no appended row carries any predicate column, the
        // statistic cannot have changed.
        const std::vector<int64_t>* at = store.BoundaryCounts(start);
        if (at != nullptr) {
          for (int64_t c = 0; c < len; ++c) {
            const size_t col = static_cast<size_t>(cols[c]);
            if (store.basic_sizes()[col] - (*at)[col] == 0) {
              untouched = true;
              break;
            }
          }
        }
      }
      if (untouched) {
        ++stats.candidates_cached;
      } else {
        // Continue the cached float chain over rows [start, n) — or run it
        // from row 0 on a miss. Both use the same ascending-row kernels as
        // the plain evaluator, so the chain is bit-identical to a
        // from-scratch evaluation over the concatenated data.
        linalg::MaskedStats acc;
        if (have_entry) {
          acc.count = cached.count;
          acc.sum = cached.sum;
          acc.max = cached.max;
          ++stats.candidates_delta;
        } else {
          start = 0;
          ++stats.candidates_full;
        }
        const int64_t w0 = start >> 6;
        const int64_t span = total_words - w0;
        owner->column_arena_.resize(static_cast<size_t>(len));
        for (int64_t c = 0; c < len; ++c) {
          owner->column_arena_[static_cast<size_t>(c)] =
              store.column_words(cols[c]) + w0;
        }
        uint64_t* dst = owner->scratch_.data();
        kernels.intersect_columns(owner->column_arena_.data(),
                                  static_cast<int32_t>(len), dst, span);
        if ((start & 63) != 0) {
          // Rows [w0*64, start) are already folded into the cached chain;
          // mask them out of the shared boundary word.
          dst[0] &= ~0ULL << (start & 63);
        }
        kernels.masked_stats(dst, span, store.errors().data() + (w0 << 6),
                             &acc);
        cached.count = acc.count;
        cached.sum = acc.sum;
        cached.max = acc.max;
      }
      cached.prefix = n;
      if (have_entry) {
        it->second = cached;
      } else if (owner->stats_cache_.size() <
                 owner->options_.max_cached_slices) {
        owner->stats_cache_.emplace(std::move(key), cached);
      }
    }
    out.sizes[static_cast<size_t>(i)] = static_cast<double>(cached.count);
    out.error_sums[static_cast<size_t>(i)] = cached.sum;
    out.max_errors[static_cast<size_t>(i)] = cached.max;
  }

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    registry->GetCounter("stream/candidates_cached")
        ->Add(stats.candidates_cached);
    registry->GetCounter("stream/candidates_delta")
        ->Add(stats.candidates_delta);
    registry->GetCounter("stream/candidates_full")
        ->Add(stats.candidates_full);
  }
  if (ctx != nullptr && ctx->ShouldStop()) {
    return StopReasonToStatus(ctx->CheckStop());
  }
  return out;
}

}  // namespace sliceline::stream
