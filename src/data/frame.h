#ifndef SLICELINE_DATA_FRAME_H_
#define SLICELINE_DATA_FRAME_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"

namespace sliceline::data {

/// A small columnar table: the raw-data representation before recoding /
/// binning / one-hot encoding. Mirrors the role of a SystemDS frame.
class Frame {
 public:
  Frame() = default;

  /// Appends a column; all columns must have equal length.
  Status AddColumn(Column column);

  int64_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }

  const Column& column(int64_t i) const { return columns_[i]; }

  /// Finds a column by name.
  StatusOr<int64_t> ColumnIndex(const std::string& name) const;

  const std::vector<Column>& columns() const { return columns_; }

  /// Returns a copy without the named column (used to drop label/ID columns
  /// before encoding).
  StatusOr<Frame> DropColumn(const std::string& name) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_FRAME_H_
