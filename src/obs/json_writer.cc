#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace sliceline::obs {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; the comma was emitted before the key
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) os_ << ',';
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  os_ << '{';
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  has_value_.pop_back();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  os_ << '[';
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  has_value_.pop_back();
  os_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  if (!has_value_.empty()) {
    if (has_value_.back()) os_ << ',';
    has_value_.back() = true;
  }
  WriteEscaped(key);
  os_ << ':';
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  WriteEscaped(value);
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  os_ << value;
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  os_ << value;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    os_ << "null";  // strict JSON has no NaN/Infinity
    return;
  }
  // %.17g round-trips every double; integral values print without exponent
  // noise ("3" not "3.0000000000000000e+00").
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os_ << buffer;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  os_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  MaybeComma();
  os_ << "null";
}

void JsonWriter::WriteEscaped(std::string_view s) {
  os_ << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\b':
        os_ << "\\b";
        break;
      case '\f':
        os_ << "\\f";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\r':
        os_ << "\\r";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          os_ << buffer;
        } else {
          os_ << static_cast<char>(c);
        }
    }
  }
  os_ << '"';
}

std::string JsonQuote(std::string_view s) {
  std::ostringstream os;
  JsonWriter writer(os);
  writer.String(s);
  return os.str();
}

}  // namespace sliceline::obs
