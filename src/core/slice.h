#ifndef SLICELINE_CORE_SLICE_H_
#define SLICELINE_CORE_SLICE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "data/encoded_dataset.h"
#include "data/onehot.h"

namespace sliceline::core {

/// Statistics of an evaluated slice (the columns of the paper's R matrix:
/// score, total error, maximum tuple error, size).
struct SliceStats {
  double score = 0.0;
  double error_sum = 0.0;  ///< se: sum of tuple errors in the slice
  double max_error = 0.0;  ///< sm: maximum tuple error in the slice
  int64_t size = 0;        ///< |S|: number of matching rows
};

/// A decoded slice: conjunction of (feature index, 1-based code) predicates,
/// sorted by feature index, plus its statistics. This mirrors one row of the
/// paper's TS (integer-encoded, zeros = free features) and TR outputs.
struct Slice {
  std::vector<std::pair<int, int32_t>> predicates;
  SliceStats stats;

  int level() const { return static_cast<int>(predicates.size()); }

  /// Renders e.g. "sex=2 ∧ degree=16 [score=0.35 size=120 err=57.0]";
  /// feature names are optional.
  std::string ToString(const std::vector<std::string>& feature_names = {}) const;

  /// True if `row` of x0 satisfies all predicates.
  bool Matches(const data::IntMatrix& x0, int64_t row) const;
};

/// Parameters of the slice-finding problem and of the enumeration engine.
struct SliceLineConfig {
  // -- problem parameters (Definition 2) --
  int k = 4;               ///< top-K slices to return
  double alpha = 0.95;     ///< error/size weight in (0, 1]; paper's default
  int64_t min_support = 0; ///< sigma; 0 = max(32, ceil(n/100))
  int max_level = 0;       ///< ceil(L); 0 = unbounded (i.e. m)

  // -- pruning toggles (Section 3.2; the Figure 3 ablation switches these) --
  bool prune_size = true;     ///< upper-bound size pruning (|S|_ub >= sigma)
  bool prune_score = true;    ///< upper-bound score pruning (vs 0 and sc_k)
  bool prune_parents = true;  ///< missing-parent handling (np == L)
  bool deduplicate = true;    ///< merge duplicate pair-generated candidates

  // -- execution (Section 4.4) --
  /// Block size b of the hybrid scan-shared evaluation; only used by the
  /// kScanBlock strategy. b=1 degenerates to task-parallel per-slice scans,
  /// huge b to one data-parallel scan.
  int eval_block_size = 16;
  enum class EvalStrategy {
    kIndex,      ///< per-slice sorted inverted-list intersection
    kScanBlock,  ///< scan-shared row sweep over blocks of b slices
    kBitset,     ///< bit-packed column bitmaps evaluated by the
                 ///< runtime-dispatched SIMD kernels (default)
  };
  /// kBitset is the default hot path: all three strategies return
  /// bit-identical results (ascending-row error accumulation everywhere),
  /// and the packed kernels dominate on every measured workload — see
  /// BENCH_kernels.json and DESIGN.md "Vectorized kernels".
  EvalStrategy eval_strategy = EvalStrategy::kBitset;
  bool parallel = true;  ///< use the global thread pool for evaluation

  // -- governance (borrowed; must outlive the run) --
  /// Deadline / cancellation / memory-budget handle polled at level,
  /// candidate-batch, and strided kernel-loop boundaries. nullptr imposes
  /// nothing. On pressure the engine degrades (raises effective sigma, caps
  /// candidates, caps levels) and, if that is not enough, returns the
  /// best-so-far top-K with outcome.partial = true instead of an error.
  RunContext* run_context = nullptr;

  // -- checkpointing (level-wise engines: native, LA, distributed) --
  /// When non-empty, the enumeration frontier is checkpointed to
  /// `<checkpoint_dir>/sliceline.ckpt` after every completed level.
  std::string checkpoint_dir;
  /// Resume from the checkpoint in checkpoint_dir when one exists and its
  /// config/data hashes match; a fresh run is started otherwise.
  bool resume = false;
};

/// Per-level enumeration statistics (Figures 3/4 and Table 2 report these).
struct LevelStats {
  int level = 0;
  int64_t candidates = 0;  ///< slices evaluated at this level
  int64_t valid = 0;       ///< evaluated slices with ss >= sigma && se > 0
  int64_t pruned = 0;      ///< generated candidates removed before evaluation
  double seconds = 0.0;    ///< elapsed wall-clock for the level
};

/// Full output of a SliceLine run.
struct SliceLineResult {
  std::vector<Slice> top_k;  ///< sorted by descending score
  std::vector<LevelStats> levels;
  double total_seconds = 0.0;
  double average_error = 0.0;  ///< e-bar over the full dataset
  int64_t min_support = 0;     ///< resolved sigma
  int64_t total_evaluated = 0; ///< sum of per-level candidates
  /// How the run ended (completed / degraded / stopped early) plus the
  /// degradation and checkpoint bookkeeping; see RunOutcome.
  RunOutcome outcome;
};

/// Resolves the effective minimum support: config value, or the paper's
/// default max(32, ceil(n/100)) when unset.
int64_t ResolveMinSupport(const SliceLineConfig& config, int64_t n);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_SLICE_H_
