#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace sliceline {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextUint64InBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, ZipfIsHeavyTailed) {
  Rng rng(17);
  const size_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(n, 1.1)];
  // Rank 0 should dominate the tail ranks.
  int tail = std::accumulate(counts.begin() + 500, counts.end(), 0);
  EXPECT_GT(counts[0], tail / 10);
  EXPECT_GT(counts[0], counts[100]);
}

TEST(RngTest, ZipfInBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextZipf(7, 1.0), 7u);
    EXPECT_LT(rng.NextZipf(1, 0.5), 1u);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(29);
  int t = 0;
  for (int i = 0; i < 10000; ++i) t += rng.NextBool(0.2);
  EXPECT_NEAR(t / 10000.0, 0.2, 0.02);
}

}  // namespace
}  // namespace sliceline
