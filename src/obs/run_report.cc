#include "obs/run_report.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>

#include "linalg/kernels_simd.h"
#include "obs/json_writer.h"

namespace sliceline::obs {

namespace {

const char* EvalStrategyName(core::SliceLineConfig::EvalStrategy strategy) {
  switch (strategy) {
    case core::SliceLineConfig::EvalStrategy::kIndex:
      return "index";
    case core::SliceLineConfig::EvalStrategy::kScanBlock:
      return "scan_block";
    case core::SliceLineConfig::EvalStrategy::kBitset:
      return "bitset";
  }
  return "unknown";
}

void WriteMetricSample(JsonWriter& json, const MetricSample& sample) {
  json.BeginObject();
  json.Key("name");
  json.String(sample.name);
  switch (sample.kind) {
    case MetricSample::Kind::kCounter:
      json.Key("type");
      json.String("counter");
      json.Key("value");
      json.Int(sample.counter_value);
      break;
    case MetricSample::Kind::kGauge:
      json.Key("type");
      json.String("gauge");
      json.Key("value");
      json.Double(sample.gauge_value);
      break;
    case MetricSample::Kind::kHistogram:
      json.Key("type");
      json.String("histogram");
      json.Key("count");
      json.Int(sample.histogram_count);
      json.Key("sum");
      json.Double(sample.histogram_sum);
      json.Key("bounds");
      json.BeginArray();
      for (double bound : sample.histogram_bounds) json.Double(bound);
      json.EndArray();
      json.Key("buckets");
      json.BeginArray();
      for (int64_t count : sample.histogram_buckets) json.Int(count);
      json.EndArray();
      break;
  }
  json.EndObject();
}

void WriteOutcome(JsonWriter& json, const RunOutcome& outcome) {
  json.BeginObject();
  json.Key("termination");
  json.String(RunOutcome::TerminationName(outcome.termination));
  json.Key("partial");
  json.Bool(outcome.partial);
  json.Key("degradation_steps");
  json.Int(outcome.degradation_steps);
  json.Key("sigma_raised_to");
  json.Int(outcome.sigma_raised_to);
  json.Key("candidates_capped");
  json.Int(outcome.candidates_capped);
  json.Key("stopped_at_level");
  json.Int(outcome.stopped_at_level);
  json.Key("resumed_from_checkpoint");
  json.Bool(outcome.resumed_from_checkpoint);
  json.Key("peak_memory_bytes");
  json.Int(outcome.peak_memory_bytes);
  json.Key("dist_fallback_local");
  json.Bool(outcome.dist_fallback_local);
  // Stream fields only when an incremental run set them: one-shot reports
  // (the golden CLI baseline) keep their exact historical shape.
  if (outcome.stream_candidates_cached > 0 ||
      outcome.stream_candidates_delta > 0 ||
      outcome.stream_candidates_full > 0 || outcome.stream_full_fallback) {
    json.Key("stream_candidates_cached");
    json.Int(outcome.stream_candidates_cached);
    json.Key("stream_candidates_delta");
    json.Int(outcome.stream_candidates_delta);
    json.Key("stream_candidates_full");
    json.Int(outcome.stream_candidates_full);
    json.Key("stream_full_fallback");
    json.Bool(outcome.stream_full_fallback);
  }
  json.Key("summary");
  json.String(outcome.Summary());
  json.EndObject();
}

}  // namespace

void RunReport::SetConfig(const core::SliceLineConfig& config) {
  has_config_ = true;
  config_ = config;
}

void RunReport::SetResult(const core::SliceLineResult& result,
                          const std::vector<std::string>& feature_names) {
  has_result_ = true;
  result_ = result;
  feature_names_ = feature_names;
}

void RunReport::AddNumericSection(
    const std::string& name,
    std::vector<std::pair<std::string, double>> key_values) {
  for (auto& section : sections_) {
    if (section.first == name) {
      for (auto& kv : key_values) section.second.push_back(std::move(kv));
      return;
    }
  }
  sections_.emplace_back(name, std::move(key_values));
}

void RunReport::AddAnnotation(const std::string& key,
                              const std::string& value) {
  annotations_.emplace_back(key, value);
}

void RunReport::WriteJson(std::ostream& os,
                          const MetricsRegistry* registry) const {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("schema_version");
  json.Int(1);
  json.Key("tool");
  json.String(tool_);
  json.Key("engine");
  json.String(engine_);
  // The ISA level the bit-packed evaluation kernels dispatched at (scalar /
  // neon / avx2 / avx512), so perf numbers in BENCH_*.json and --metrics-json
  // reports are attributable to the vector path that produced them.
  json.Key("simd_isa");
  json.String(linalg::SelectedIsaName());
  if (!dataset_.empty()) {
    json.Key("dataset");
    json.String(dataset_);
  }

  if (has_config_) {
    json.Key("config");
    json.BeginObject();
    json.Key("k");
    json.Int(config_.k);
    json.Key("alpha");
    json.Double(config_.alpha);
    json.Key("min_support");
    json.Int(config_.min_support);
    json.Key("max_level");
    json.Int(config_.max_level);
    json.Key("prune_size");
    json.Bool(config_.prune_size);
    json.Key("prune_score");
    json.Bool(config_.prune_score);
    json.Key("prune_parents");
    json.Bool(config_.prune_parents);
    json.Key("deduplicate");
    json.Bool(config_.deduplicate);
    json.Key("eval_strategy");
    json.String(EvalStrategyName(config_.eval_strategy));
    json.Key("eval_block_size");
    json.Int(config_.eval_block_size);
    json.Key("parallel");
    json.Bool(config_.parallel);
    json.EndObject();
  }

  if (has_result_) {
    json.Key("totals");
    json.BeginObject();
    json.Key("total_seconds");
    json.Double(result_.total_seconds);
    json.Key("total_evaluated");
    json.Int(result_.total_evaluated);
    json.Key("average_error");
    json.Double(result_.average_error);
    json.Key("resolved_min_support");
    json.Int(result_.min_support);
    json.Key("levels");
    json.Int(static_cast<int64_t>(result_.levels.size()));
    json.EndObject();

    json.Key("levels");
    json.BeginArray();
    for (const core::LevelStats& level : result_.levels) {
      json.BeginObject();
      json.Key("level");
      json.Int(level.level);
      json.Key("candidates");
      json.Int(level.candidates);
      json.Key("valid");
      json.Int(level.valid);
      json.Key("pruned");
      json.Int(level.pruned);
      json.Key("seconds");
      json.Double(level.seconds);
      json.EndObject();
    }
    json.EndArray();

    json.Key("top_k");
    json.BeginArray();
    for (const core::Slice& slice : result_.top_k) {
      json.BeginObject();
      json.Key("predicates");
      json.BeginArray();
      for (const auto& [feature, code] : slice.predicates) {
        json.BeginObject();
        json.Key("feature");
        json.Int(feature);
        if (feature >= 0 &&
            static_cast<size_t>(feature) < feature_names_.size()) {
          json.Key("feature_name");
          json.String(feature_names_[feature]);
        }
        json.Key("code");
        json.Int(code);
        json.EndObject();
      }
      json.EndArray();
      json.Key("display");
      json.String(slice.ToString(feature_names_));
      json.Key("score");
      json.Double(slice.stats.score);
      json.Key("size");
      json.Int(slice.stats.size);
      json.Key("error_sum");
      json.Double(slice.stats.error_sum);
      json.Key("max_error");
      json.Double(slice.stats.max_error);
      json.EndObject();
    }
    json.EndArray();

    json.Key("outcome");
    WriteOutcome(json, result_.outcome);
  }

  if (!sections_.empty()) {
    json.Key("sections");
    json.BeginObject();
    for (const auto& [name, key_values] : sections_) {
      json.Key(name);
      json.BeginObject();
      for (const auto& [key, value] : key_values) {
        json.Key(key);
        json.Double(value);
      }
      json.EndObject();
    }
    json.EndObject();
  }

  if (!annotations_.empty()) {
    json.Key("annotations");
    json.BeginObject();
    for (const auto& [key, value] : annotations_) {
      json.Key(key);
      json.String(value);
    }
    json.EndObject();
  }

  if (registry != nullptr) {
    json.Key("metrics");
    json.BeginArray();
    for (const MetricSample& sample : registry->Snapshot()) {
      WriteMetricSample(json, sample);
    }
    json.EndArray();
  }

  json.EndObject();
  os << '\n';
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "sliceline_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void RunReport::WritePrometheus(std::ostream& os,
                                const MetricsRegistry* registry) {
  if (registry == nullptr) return;
  char buffer[64];
  const auto format_double = [&buffer](double v) -> const char* {
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return buffer;
  };
  // Distinct registry names can sanitize to the same exposition name
  // ("eval time" and "eval.time" both become sliceline_eval_time); a second
  // # TYPE line for an already-introduced family is invalid exposition, so
  // collisions get a numeric suffix. Snapshot() is sorted by registry name,
  // which makes the suffix assignment deterministic.
  std::set<std::string> emitted;
  for (const MetricSample& sample : registry->Snapshot()) {
    std::string name = PrometheusMetricName(sample.name);
    const std::string base = name;
    for (int k = 2; !emitted.insert(name).second; ++k) {
      name = base + "_" + std::to_string(k);
    }
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << sample.counter_value << '\n';
        break;
      case MetricSample::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << format_double(sample.gauge_value) << '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        int64_t cumulative = 0;
        for (size_t i = 0; i < sample.histogram_bounds.size(); ++i) {
          cumulative += sample.histogram_buckets[i];
          os << name << "_bucket{le=\""
             << format_double(sample.histogram_bounds[i]) << "\"} "
             << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << sample.histogram_count
           << '\n';
        os << name << "_sum " << format_double(sample.histogram_sum) << '\n';
        os << name << "_count " << sample.histogram_count << '\n';
        break;
      }
    }
  }
}

namespace {

Status WithOutputStream(const std::string& path,
                        const std::function<void(std::ostream&)>& write) {
  if (path == "-") {
    write(std::cout);
    std::cout.flush();
    return Status::OK();
  }
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  write(file);
  file.flush();
  if (!file.good()) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteRunReportJson(const RunReport& report, const std::string& path,
                          const MetricsRegistry* registry) {
  return WithOutputStream(path, [&](std::ostream& os) {
    report.WriteJson(os, registry);
  });
}

Status WritePrometheusFile(const std::string& path,
                           const MetricsRegistry* registry) {
  return WithOutputStream(path, [&](std::ostream& os) {
    RunReport::WritePrometheus(os, registry);
  });
}

}  // namespace sliceline::obs
