#include "core/governance.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::core {

GovernanceController::GovernanceController(const SliceLineConfig& config,
                                           int64_t base_sigma,
                                           int base_max_level)
    : ctx_(config.run_context),
      k_(config.k),
      base_sigma_(base_sigma),
      effective_sigma_(base_sigma),
      base_max_level_(base_max_level),
      effective_max_level_(base_max_level) {}

StopReason GovernanceController::CheckBoundary() const {
  return ctx_ == nullptr ? StopReason::kNone : ctx_->CheckStop();
}

bool GovernanceController::MaybeDegrade(int current_level) {
  if (ctx_ == nullptr) return false;
  const MemoryBudget* budget = ctx_->memory_budget();
  if (budget == nullptr || !budget->OverSoftLimit()) return false;
  // One step per boundary; sustained pressure climbs further next level.
  switch (degradation_steps_) {
    case 0:
      effective_sigma_ *= 2;
      obs::TraceInstant("governance", "degrade_raise_sigma", current_level);
      break;
    case 1:
      candidate_cap_ = std::max<int64_t>(64, 8 * k_);
      obs::TraceInstant("governance", "degrade_cap_candidates",
                        current_level);
      break;
    case 2:
      effective_max_level_ =
          std::min(effective_max_level_, current_level + 1);
      obs::TraceInstant("governance", "degrade_cap_levels", current_level);
      break;
    default:
      effective_sigma_ *= 2;
      obs::TraceInstant("governance", "degrade_raise_sigma", current_level);
      break;
  }
  ++degradation_steps_;
  return true;
}

void GovernanceController::RestoreDegradation(int steps,
                                              int64_t effective_sigma,
                                              int64_t candidates_capped) {
  degradation_steps_ = steps;
  effective_sigma_ = std::max(base_sigma_, effective_sigma);
  candidates_capped_ = candidates_capped;
  if (steps >= 2) candidate_cap_ = std::max<int64_t>(64, 8 * k_);
}

RunOutcome GovernanceController::Finish(StopReason reason,
                                        int stopped_at_level,
                                        bool resumed_from_checkpoint) const {
  RunOutcome outcome;
  switch (reason) {
    case StopReason::kNone:
      outcome.termination = degradation_steps_ > 0
                                ? RunOutcome::Termination::kDegraded
                                : RunOutcome::Termination::kCompleted;
      break;
    case StopReason::kCancelled:
      outcome.termination = RunOutcome::Termination::kCancelled;
      break;
    case StopReason::kDeadlineExceeded:
      outcome.termination = RunOutcome::Termination::kDeadlineExceeded;
      break;
    case StopReason::kBudgetExhausted:
      outcome.termination = RunOutcome::Termination::kBudgetExhausted;
      break;
  }
  outcome.partial =
      outcome.termination != RunOutcome::Termination::kCompleted;
  outcome.degradation_steps = degradation_steps_;
  outcome.sigma_raised_to =
      effective_sigma_ > base_sigma_ ? effective_sigma_ : 0;
  outcome.candidates_capped = candidates_capped_;
  outcome.stopped_at_level =
      reason != StopReason::kNone ? std::max(0, stopped_at_level) : 0;
  outcome.resumed_from_checkpoint = resumed_from_checkpoint;
  if (ctx_ != nullptr && ctx_->memory_budget() != nullptr) {
    outcome.peak_memory_bytes = ctx_->memory_budget()->peak_bytes();
  }
  switch (reason) {
    case StopReason::kNone:
      break;
    case StopReason::kCancelled:
      obs::TraceInstant("governance", "stop_cancelled", stopped_at_level);
      break;
    case StopReason::kDeadlineExceeded:
      obs::TraceInstant("governance", "stop_deadline", stopped_at_level);
      break;
    case StopReason::kBudgetExhausted:
      obs::TraceInstant("governance", "stop_budget", stopped_at_level);
      break;
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    registry->GetGauge("governance/degradation_steps")
        ->Set(static_cast<double>(degradation_steps_));
    registry->GetGauge("governance/candidates_capped")
        ->Set(static_cast<double>(candidates_capped_));
    registry->GetGauge("governance/peak_memory_bytes")
        ->Set(static_cast<double>(outcome.peak_memory_bytes));
  }
  return outcome;
}

}  // namespace sliceline::core
