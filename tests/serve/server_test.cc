// In-process daemon integration tests: protocol round trips over Unix and
// TCP sockets, result fidelity against direct single-threaded engine runs,
// caching, structured admission rejections under load, concurrent mixed
// register/find/cancel traffic (a TSan target), the /metrics endpoint, and
// graceful drain.
#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sliceline.h"
#include "obs/json_parse.h"
#include "obs/json_validate.h"
#include "obs/metrics.h"
#include "obs/prometheus_validate.h"
#include "serve/client.h"
#include "serve_test_util.h"

namespace sliceline::serve {
namespace {

struct TestCsv {
  std::string name;
  std::string path;
  std::string text;
};

/// Writes (once) and describes the CSV fixtures shared by every test in
/// this file. Rebuilding the text is deterministic, so all tests agree on
/// content hashes. Paths carry the pid: ctest runs each case as its own
/// process, and parallel processes truncating/rewriting one shared file
/// let a concurrent reader see it half-written.
const TestCsv& CsvA() {
  static const TestCsv* csv = [] {
    auto* c = new TestCsv;
    c->name = "alpha";
    c->path = ::testing::TempDir() + "/serve_server_alpha_" +
              std::to_string(::getpid()) + ".csv";
    c->text = MakeCsvText(800, 4, 3, 21);
    WriteFileOrDie(c->path, c->text);
    return c;
  }();
  return *csv;
}

const TestCsv& CsvB() {
  static const TestCsv* csv = [] {
    auto* c = new TestCsv;
    c->name = "beta";
    c->path = ::testing::TempDir() + "/serve_server_beta_" +
              std::to_string(::getpid()) + ".csv";
    c->text = MakeCsvText(700, 4, 3, 22);
    WriteFileOrDie(c->path, c->text);
    return c;
  }();
  return *csv;
}

core::SliceLineConfig ConfigVariant(int variant) {
  core::SliceLineConfig config;
  if (variant % 2 == 0) {
    config.k = 4;
    config.alpha = 0.95;
  } else {
    config.k = 3;
    config.alpha = 0.9;
    config.min_support = 40;
  }
  return config;
}

FindSlicesRequest FindVariant(const std::string& dataset, int variant) {
  FindSlicesRequest find;
  find.dataset = dataset;
  find.k = ConfigVariant(variant).k;
  find.alpha = ConfigVariant(variant).alpha;
  find.sigma = ConfigVariant(variant).min_support;
  return find;
}

/// The single-threaded reference: same pipeline the registry runs, same
/// engine call the scheduler makes, no server in between.
core::SliceLineResult DirectResult(const TestCsv& csv, int variant,
                                   std::vector<std::string>* names) {
  auto dataset = BuildRegisteredDataset(csv.name, csv.text);
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  auto result =
      core::RunSliceLine(dataset.value()->dataset, ConfigVariant(variant));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (names != nullptr) *names = dataset.value()->dataset.feature_names;
  return result.value();
}

RegisterDatasetRequest RegisterRequestFor(const TestCsv& csv) {
  RegisterDatasetRequest request;
  request.name = csv.name;
  request.csv_path = csv.path;
  request.label = "target";
  return request;
}

/// Starts a server on a fresh Unix socket; shuts it down (and checks the
/// drain exits cleanly) when destroyed.
struct ServerGuard {
  explicit ServerGuard(ServerOptions options) : server(options) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~ServerGuard() {
    server.RequestShutdown();
    EXPECT_EQ(server.Wait(), 0);
  }
  Server server;
};

ServerOptions UnixOptions(const std::string& socket_name) {
  ServerOptions options;
  options.unix_socket = ::testing::TempDir() + "/" +
                        std::to_string(::getpid()) + "_" + socket_name;
  return options;
}

TEST(ServeServerTest, RoundTripOverUnixSocketMatchesDirectRunAndCaches) {
  ServerOptions options = UnixOptions("serve_roundtrip.sock");
  options.workers = 2;
  ServerGuard guard(options);

  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto registered = client->RegisterDataset(RegisterRequestFor(CsvA()));
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_EQ(registered->GetIntOr("n", 0), 800);
  EXPECT_FALSE(registered->GetBoolOr("already_registered", true));

  auto first = client->FindSlices(FindVariant(CsvA().name, 0));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GE(first->job_id, 1);

  std::vector<std::string> names;
  const core::SliceLineResult expected = DirectResult(CsvA(), 0, &names);
  EXPECT_EQ(first->feature_names, names);
  ExpectSameResult(first->result, expected, names);

  // Identical parameters -> served from the result cache, bit-identical.
  auto second = client->FindSlices(FindVariant(CsvA().name, 0));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->cache_hit);
  ExpectSameResult(second->result, expected, names);
  EXPECT_EQ(guard.server.cache().hits(), 1);

  // Different parameters miss the cache and still match the reference.
  auto third = client->FindSlices(FindVariant(CsvA().name, 1));
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
  ExpectSameResult(third->result, DirectResult(CsvA(), 1, nullptr), names);
}

TEST(ServeServerTest, TcpListenerServesTheSameProtocol) {
  ServerOptions options;
  options.tcp_port = 0;  // kernel-assigned
  ServerGuard guard(options);
  ASSERT_GT(guard.server.tcp_port(), 0);

  auto client = Client::Connect(Endpoint::Tcp(guard.server.tcp_port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->RegisterDataset(RegisterRequestFor(CsvB())).ok());
  auto reply = client->FindSlices(FindVariant(CsvB().name, 0));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  std::vector<std::string> names;
  ExpectSameResult(reply->result, DirectResult(CsvB(), 0, &names), names);

  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->GetIntOr("protocol_version", 0), kProtocolVersion);
  EXPECT_EQ(stats->Find("jobs")->GetIntOr("completed", -1), 1);
}

TEST(ServeServerTest, StructuredErrorsForBadRequests) {
  ServerOptions options = UnixOptions("serve_errors.sock");
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());

  auto unknown = client->FindSlices(FindVariant("no_such_dataset", 0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  FindSlicesRequest bad_engine = FindVariant("x", 0);
  bad_engine.engine = "gpu";
  auto engine_error = client->FindSlices(bad_engine);
  ASSERT_FALSE(engine_error.ok());
  EXPECT_EQ(engine_error.status().code(), StatusCode::kInvalidArgument);

  auto bad_status = client->GetStatus(424242);
  ASSERT_FALSE(bad_status.ok());
  EXPECT_EQ(bad_status.status().code(), StatusCode::kNotFound);

  // The connection survives structured errors: a good request still works.
  ASSERT_TRUE(client->ServerStats().ok());

  // A raw malformed line gets invalid_argument, not a dropped connection.
  auto raw = ConnectUnix(options.unix_socket);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->WriteAll("this is not json\n").ok());
  auto line = raw->ReadLine(kMaxLineBytes);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  auto parsed = obs::ParseJson(line.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBoolOr("ok", true));
  EXPECT_EQ(parsed->Find("error")->GetStringOr("code", ""),
            "invalid_argument");
}

TEST(ServeServerTest, OverlongLineGetsErrorThenDisconnect) {
  ServerOptions options = UnixOptions("serve_overlong.sock");
  ServerGuard guard(options);
  auto raw = ConnectUnix(options.unix_socket);
  ASSERT_TRUE(raw.ok());
  const std::string huge(kMaxLineBytes + 16, 'a');
  ASSERT_TRUE(raw->WriteAll(huge + "\n").ok());
  auto line = raw->ReadLine(kMaxLineBytes);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  auto parsed = obs::ParseJson(line.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("error")->GetStringOr("code", ""),
            "resource_exhausted");
}

TEST(ServeServerTest, AsyncSubmissionStatusPollingAndCancel) {
  ServerOptions options = UnixOptions("serve_async.sock");
  options.workers = 1;
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->RegisterDataset(RegisterRequestFor(CsvA())).ok());

  FindSlicesRequest find = FindVariant(CsvA().name, 0);
  find.wait = false;
  auto submitted = client->FindSlices(find);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const int64_t job_id = submitted->job_id;
  ASSERT_GE(job_id, 1);

  // Poll get_status until terminal, then check the carried result.
  obs::JsonValue status;
  for (;;) {
    auto response = client->GetStatus(job_id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    status = std::move(response).value();
    const std::string state = status.GetStringOr("state", "");
    if (state == "done" || state == "failed" || state == "cancelled") {
      ASSERT_EQ(state, "done");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const obs::JsonValue* result = status.Find("result");
  ASSERT_NE(result, nullptr);
  std::vector<std::string> names;
  auto parsed = ParseResultJson(*result, &names);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameResult(parsed.value(), DirectResult(CsvA(), 0, &names), names);

  // Cancelling a finished job reports its terminal state.
  auto cancel = client->Cancel(job_id);
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->GetStringOr("state", ""), "done");
}

// Acceptance-criteria test: >= 8 simultaneous clients driving mixed
// register / find (sync and async) / cancel traffic. Every find_slices
// response must equal the single-threaded reference result; admission or
// validation problems must surface as structured errors, never dropped
// connections.
TEST(ServeServerTest, EightConcurrentClientsMixedTraffic) {
  ServerOptions options = UnixOptions("serve_mixed.sock");
  options.workers = 4;
  options.max_queue = 64;
  ServerGuard guard(options);

  // Reference results computed once, single-threaded, before any traffic.
  std::vector<std::string> names_a, names_b;
  const core::SliceLineResult expected_a0 = DirectResult(CsvA(), 0, &names_a);
  const core::SliceLineResult expected_a1 = DirectResult(CsvA(), 1, nullptr);
  const core::SliceLineResult expected_b0 = DirectResult(CsvB(), 0, &names_b);
  const core::SliceLineResult expected_b1 = DirectResult(CsvB(), 1, nullptr);

  constexpr int kClients = 10;
  std::atomic<bool> go{false};
  std::atomic<int> find_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

      const TestCsv& csv = t % 2 == 0 ? CsvA() : CsvB();
      const int variant = (t / 2) % 2;
      const core::SliceLineResult& expected =
          t % 2 == 0 ? (variant == 0 ? expected_a0 : expected_a1)
                     : (variant == 0 ? expected_b0 : expected_b1);
      const std::vector<std::string>& names =
          t % 2 == 0 ? names_a : names_b;

      // Concurrent registration of the same name is idempotent: everyone
      // gets an ok with the same content hash.
      auto registered = client->RegisterDataset(RegisterRequestFor(csv));
      ASSERT_TRUE(registered.ok()) << registered.status().ToString();

      // Synchronous find: the response must equal the reference bit for
      // bit, whether it was computed, raced, or cache-served.
      auto reply = client->FindSlices(FindVariant(csv.name, variant));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ExpectSameResult(reply->result, expected, names);
      find_responses.fetch_add(1, std::memory_order_relaxed);

      if (t % 3 == 0) {
        // Async submission + cancel: any structured answer is fine (the
        // job may be queued, running, done, or cancelled by now), but the
        // protocol must answer, and status must stay queryable.
        FindSlicesRequest async_find = FindVariant(csv.name, variant);
        async_find.wait = false;
        auto submitted = client->FindSlices(async_find);
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        auto cancel = client->Cancel(submitted->job_id);
        ASSERT_TRUE(cancel.ok()) << cancel.status().ToString();
        auto status = client->GetStatus(submitted->job_id);
        ASSERT_TRUE(status.ok()) << status.status().ToString();
      } else {
        // Cancel of a bogus job: structured not_found, connection intact.
        auto cancel = client->Cancel(777000 + t);
        ASSERT_FALSE(cancel.ok());
        EXPECT_EQ(cancel.status().code(), StatusCode::kNotFound);
      }
      ASSERT_TRUE(client->ServerStats().ok());
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(find_responses.load(), kClients);

  // Drain any cancelled-async leftovers, then check the books.
  guard.server.scheduler().DrainAndStop();
  EXPECT_EQ(guard.server.registry().size(), 2);
  EXPECT_EQ(guard.server.scheduler().jobs_failed(), 0);
  EXPECT_GE(guard.server.scheduler().jobs_admitted(), 1);
}

// Admission control under a thundering herd: workers=1, max_queue=1, no
// cache. Every client either gets a correct result or a structured
// resource_exhausted rejection -- never a dropped connection.
TEST(ServeServerTest, AdmissionRejectionsAreStructuredErrors) {
  ServerOptions options = UnixOptions("serve_admission.sock");
  options.workers = 1;
  options.max_queue = 1;
  options.cache_capacity = 0;  // every find must go through admission
  ServerGuard guard(options);

  {
    auto setup = Client::Connect(Endpoint::Unix(options.unix_socket));
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(setup->RegisterDataset(RegisterRequestFor(CsvA())).ok());
  }

  std::vector<std::string> names;
  const core::SliceLineResult expected = DirectResult(CsvA(), 0, &names);

  constexpr int kClients = 8;
  std::atomic<bool> go{false};
  std::atomic<int> successes{0};
  std::atomic<int> rejections{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto reply = client->FindSlices(FindVariant(CsvA().name, 0));
      if (reply.ok()) {
        ExpectSameResult(reply->result, expected, names);
        successes.fetch_add(1, std::memory_order_relaxed);
      } else {
        // The one acceptable failure is the structured admission error.
        EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted)
            << reply.status().ToString();
        rejections.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(successes.load() + rejections.load(), kClients);
  EXPECT_GE(successes.load(), 1);
  EXPECT_GE(rejections.load(), 1);
  EXPECT_EQ(guard.server.scheduler().jobs_rejected(), rejections.load());
}

TEST(ServeServerTest, MetricsEndpointServesValidPrometheusText) {
  ServerOptions options = UnixOptions("serve_metrics.sock");
  ServerGuard guard(options);
  {
    auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->RegisterDataset(RegisterRequestFor(CsvB())).ok());
    ASSERT_TRUE(client->FindSlices(FindVariant(CsvB().name, 0)).ok());
    ASSERT_TRUE(client->FindSlices(FindVariant(CsvB().name, 0)).ok());
  }
  auto metrics = FetchMetrics(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.value();
  EXPECT_TRUE(obs::ValidatePrometheusText(text).empty())
      << obs::ValidatePrometheusText(text);
  // The acceptance-criteria series: scheduler queue depth, cache hit/miss,
  // and the per-request latency histogram.
  for (const char* series :
       {"sliceline_serve_queue_depth", "sliceline_serve_cache_hits",
        "sliceline_serve_cache_misses", "sliceline_serve_request_seconds",
        "sliceline_serve_jobs_admitted"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

/// Raw HTTP/1.0 GET over the server's Unix listener; returns the full
/// response (status line + headers + body).
std::string HttpGet(const std::string& socket_path, const std::string& path) {
  auto connection = ConnectUnix(socket_path, /*timeout_ms=*/5000);
  EXPECT_TRUE(connection.ok()) << connection.status().ToString();
  if (!connection.ok()) return "";
  EXPECT_TRUE(
      connection->WriteAll("GET " + path + " HTTP/1.0\r\n\r\n").ok());
  auto response = connection->ReadAll(1 << 20);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? response.value() : "";
}

TEST(ServeServerTest, HealthAndReadinessEndpoints) {
  ServerOptions options = UnixOptions("serve_health.sock");
  ServerGuard guard(options);

  const std::string healthz = HttpGet(options.unix_socket, "/healthz");
  EXPECT_EQ(healthz.rfind("HTTP/1.0 200", 0), 0u) << healthz;
  EXPECT_NE(healthz.find("ok"), std::string::npos) << healthz;

  const std::string readyz = HttpGet(options.unix_socket, "/readyz");
  EXPECT_EQ(readyz.rfind("HTTP/1.0 200", 0), 0u) << readyz;
  EXPECT_NE(readyz.find("ready"), std::string::npos) << readyz;

  const std::string other = HttpGet(options.unix_socket, "/nonsense");
  EXPECT_EQ(other.rfind("HTTP/1.0 404", 0), 0u) << other;
}

TEST(ServeServerTest, ReportAndTraceServeFinishedJobs) {
  ServerOptions options = UnixOptions("serve_report.sock");
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->RegisterDataset(RegisterRequestFor(CsvB())).ok());
  auto reply = client->FindSlices(FindVariant(CsvB().name, 1));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const int64_t job_id = reply->job_id;

  auto report = client->GetReport(job_id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(obs::ValidateStrictJson(report.value()).empty())
      << obs::ValidateStrictJson(report.value());
  // The persisted RunReport carries the job identity, the serve_job timing
  // section, and the distributed-trace summary section.
  EXPECT_NE(report->find("\"serve_job\""), std::string::npos);
  EXPECT_NE(report->find("\"dist_trace\""), std::string::npos);
  EXPECT_NE(report->find("\"trace_id\""), std::string::npos);

  auto trace = client->GetTrace(job_id);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(obs::ValidateStrictJson(trace.value()).empty())
      << obs::ValidateStrictJson(trace.value());
  // Chrome/Perfetto shape with the job's root span on the server track.
  EXPECT_NE(trace->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->find("serve/job"), std::string::npos);

  // Unknown jobs are NotFound, matching get_status semantics.
  EXPECT_FALSE(client->GetReport(job_id + 999).ok());
  EXPECT_FALSE(client->GetTrace(job_id + 999).ok());
}

TEST(ServeServerTest, MetricsTextSurvivesAdversarialMetricNames) {
  // Anything in the process-wide registry ends up on /metrics; names are
  // not restricted at registration time, so exposition validity must hold
  // for hostile ones. The entries stay registered for the rest of the
  // binary (the registry never unregisters), which also proves later
  // /metrics fetches stay valid with them present.
  auto* registry = obs::MetricsRegistry::Default();
  registry->GetCounter("serve test: spaces & sym\"bols")->Add(1);
  registry->GetCounter("serve_test/9/starts{le=\"0\"}")->Add(2);
  registry->GetCounter("serve test: spaces & sym'bols")->Add(3);
  registry->GetHistogram("serve test histo\ngram")->Observe(0.25);

  const std::string text = Server::MetricsText();
  EXPECT_TRUE(obs::ValidatePrometheusText(text).empty())
      << obs::ValidatePrometheusText(text) << "\n"
      << text;
  // ':' is a legal exposition name char, so it survives sanitization.
  EXPECT_NE(text.find("sliceline_serve_test:_spaces___sym_bols"),
            std::string::npos);
}

TEST(ServeServerTest, ShutdownDrainsInFlightJobsAndExitsCleanly) {
  ServerOptions options = UnixOptions("serve_drain.sock");
  options.workers = 1;
  auto server = std::make_unique<Server>(options);
  ASSERT_TRUE(server->Start().ok());

  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->RegisterDataset(RegisterRequestFor(CsvA())).ok());
  FindSlicesRequest find = FindVariant(CsvA().name, 0);
  find.wait = false;
  auto submitted = client->FindSlices(find);
  ASSERT_TRUE(submitted.ok());
  const int64_t job_id = submitted->job_id;

  // The drain promise: shutdown finishes the admitted job, then exits 0.
  server->RequestShutdown();
  EXPECT_EQ(server->Wait(), 0);
  std::shared_ptr<Job> job = server->scheduler().Find(job_id);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->CurrentState(), JobState::kDone);
}

}  // namespace
}  // namespace sliceline::serve
