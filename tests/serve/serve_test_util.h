#ifndef SLICELINE_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define SLICELINE_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/report.h"
#include "core/slice.h"
#include "core/sliceline.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "ml/pipeline.h"
#include "serve/dataset_registry.h"

namespace sliceline::serve {

/// Deterministic CSV: `features` categorical columns (domain values
/// "v0".."v<domain-1>") plus a numeric "target"; rows in the c0=v1 & c1=v1
/// subgroup carry much larger residual noise, so slice finding has a planted
/// signal. Same (rows, features, domain, seed) -> byte-identical text.
inline std::string MakeCsvText(int rows, int features, int domain,
                               uint64_t seed) {
  Rng rng(seed);
  std::string csv;
  for (int j = 0; j < features; ++j) {
    csv += 'c';
    csv += std::to_string(j);
    csv += ',';
  }
  csv += "target\n";
  for (int i = 0; i < rows; ++i) {
    std::vector<int> codes(features);
    for (int j = 0; j < features; ++j) {
      codes[j] = static_cast<int>(rng.NextUint64(domain));
      csv += 'v';
      csv += std::to_string(codes[j]);
      csv += ',';
    }
    double target = static_cast<double>(codes[0]) +
                    0.1 * static_cast<double>(codes[features - 1]);
    if (codes[0] == 1 && codes[1] == 1) {
      target += rng.NextGaussian() * 6.0;
    } else {
      target += rng.NextGaussian() * 0.3;
    }
    csv += std::to_string(target) + "\n";
  }
  return csv;
}

inline void WriteFileOrDie(const std::string& path,
                           const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// Builds a RegisteredDataset straight from CSV text -- the same pipeline
/// DatasetRegistry::Register runs on a file (parse, preprocess, train,
/// hash), minus the file. Lets scheduler tests share immutable datasets
/// without touching disk.
inline StatusOr<std::shared_ptr<const RegisteredDataset>>
BuildRegisteredDataset(const std::string& name, const std::string& csv_text) {
  SLICELINE_ASSIGN_OR_RETURN(data::Frame frame, data::ParseCsv(csv_text));
  data::PreprocessOptions options;
  options.label_column = "target";
  options.task = data::Task::kRegression;
  SLICELINE_ASSIGN_OR_RETURN(data::EncodedDataset encoded,
                             data::Preprocess(frame, options));
  encoded.name = name;
  SLICELINE_ASSIGN_OR_RETURN(const double mean_error,
                             ml::TrainAndMaterializeErrors(&encoded));
  auto registered = std::make_shared<RegisteredDataset>();
  registered->name = name;
  registered->csv_path = "<memory>";
  registered->dataset = std::move(encoded);
  registered->data_hash = HashEncodedDataset(registered->dataset);
  registered->mean_error = mean_error;
  return std::shared_ptr<const RegisteredDataset>(std::move(registered));
}

/// Copy with the wall-clock fields zeroed; everything else in a
/// SliceLineResult is deterministic for a given dataset + config.
inline core::SliceLineResult StripTimings(core::SliceLineResult result) {
  result.total_seconds = 0.0;
  for (core::LevelStats& level : result.levels) level.seconds = 0.0;
  return result;
}

/// Asserts two results are identical up to timings: the CLI report renders
/// byte-for-byte equal, and the top-K statistics match bit-exactly (the
/// engines are deterministic and the wire round-trips doubles exactly).
inline void ExpectSameResult(const core::SliceLineResult& actual,
                             const core::SliceLineResult& expected,
                             const std::vector<std::string>& feature_names) {
  EXPECT_EQ(core::FormatResult(StripTimings(actual), feature_names),
            core::FormatResult(StripTimings(expected), feature_names));
  ASSERT_EQ(actual.top_k.size(), expected.top_k.size());
  for (size_t i = 0; i < actual.top_k.size(); ++i) {
    EXPECT_EQ(actual.top_k[i].predicates, expected.top_k[i].predicates) << i;
    EXPECT_EQ(actual.top_k[i].stats.score, expected.top_k[i].stats.score) << i;
    EXPECT_EQ(actual.top_k[i].stats.error_sum,
              expected.top_k[i].stats.error_sum)
        << i;
    EXPECT_EQ(actual.top_k[i].stats.max_error,
              expected.top_k[i].stats.max_error)
        << i;
    EXPECT_EQ(actual.top_k[i].stats.size, expected.top_k[i].stats.size) << i;
  }
  EXPECT_EQ(actual.min_support, expected.min_support);
  EXPECT_EQ(actual.average_error, expected.average_error);
  EXPECT_EQ(actual.total_evaluated, expected.total_evaluated);
}

}  // namespace sliceline::serve

#endif  // SLICELINE_TESTS_SERVE_SERVE_TEST_UTIL_H_
