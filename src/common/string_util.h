#ifndef SLICELINE_COMMON_STRING_UTIL_H_
#define SLICELINE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sliceline {

/// Splits `s` on `delim`, keeping empty fields (CSV semantics).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins the elements with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; rejects trailing garbage.
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a 64-bit integer; rejects trailing garbage.
StatusOr<int64_t> ParseInt64(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with a fixed number of decimals (benchmark tables).
std::string FormatDouble(double v, int decimals);

/// Formats an integer with thousands separators ("1,234,567").
std::string FormatWithCommas(int64_t v);

}  // namespace sliceline

#endif  // SLICELINE_COMMON_STRING_UTIL_H_
