// Fairness-flavored audit (the paper's "future work" direction, built on
// the same machinery): search for problematic slices, then report which of
// them involve protected attributes, and sweep alpha to show the
// error-vs-coverage trade-off an auditor would explore.
#include <cstdio>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"
#include "ml/pipeline.h"

int main() {
  using namespace sliceline;

  data::DatasetOptions options;
  options.rows = 20000;
  data::EncodedDataset ds = data::MakeAdult(options);
  auto mean_error = ml::TrainAndMaterializeErrors(&ds);
  if (!mean_error.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 mean_error.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %s, training inaccuracy %.4f\n\n", ds.name.c_str(),
              *mean_error);

  // Protected attributes in the Adult-like schema.
  const std::vector<int> protected_features = {8 /*race*/, 9 /*sex*/};

  for (double alpha : {0.85, 0.95, 0.99}) {
    core::SliceLineConfig config;
    config.k = 8;
    config.alpha = alpha;
    config.max_level = 3;
    auto result = core::RunSliceLine(ds, config);
    if (!result.ok()) {
      std::fprintf(stderr, "SliceLine failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    int flagged = 0;
    std::printf("alpha = %.2f -- top-%zu problematic slices:\n", alpha,
                result->top_k.size());
    for (const core::Slice& slice : result->top_k) {
      bool involves_protected = false;
      for (const auto& [feature, code] : slice.predicates) {
        for (int p : protected_features) involves_protected |= feature == p;
      }
      flagged += involves_protected;
      std::printf("  %s %s\n", involves_protected ? "[PROTECTED]" : "           ",
                  slice.ToString(ds.feature_names).c_str());
    }
    std::printf("  -> %d of %zu slices involve protected attributes\n\n",
                flagged, result->top_k.size());
  }
  std::printf(
      "Interpretation: slices flagged [PROTECTED] describe subgroups over\n"
      "race/sex where the model errs disproportionately; increasing alpha\n"
      "surfaces smaller, higher-error subgroups.\n");
  return 0;
}
