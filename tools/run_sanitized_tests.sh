#!/usr/bin/env bash
# Builds the asan preset (-fsanitize=address,undefined) and runs the tier-1
# ctest suite under it, so the concurrency paths (thread pool, distributed
# fault recovery) are exercised with sanitizers on every change. Then runs
# the fixed-seed fuzz smoke batches (label "fuzz") under the same build —
# including the dedicated governance batch, which drives all four engines
# through cancellation, simulated deadlines, and randomized memory budgets.
# The fuzzer's randomized datasets and config combinations reach kernel and
# enumeration paths the unit suites hold constant. Skip them with
# SLICELINE_SKIP_FUZZ_SMOKE=1 when iterating on an unrelated failure.
#
# Finally builds the tsan preset (-fsanitize=thread) and runs the
# concurrency-sensitive suites under it (governance/checkpoint, determinism,
# thread pool, the observability registry/trace suites, the serving
# subsystem's scheduler/cache/server suites, and the remote-distribution
# coordinator/worker suites plus the wire-protocol edge cases): cross-thread
# cancellation, the ambient memory-budget accounting, the sharded metric
# counters, the scheduler's state/counter handoff, and the worker serving
# thread's shutdown handshake are exactly the code where a missed
# acquire/release shows up as a data race rather than a wrong answer. Skip
# with SLICELINE_SKIP_TSAN=1.
#
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --preset asan "$@"
if [[ "${SLICELINE_SKIP_FUZZ_SMOKE:-0}" != "1" ]]; then
  ctest --preset asan-fuzz-smoke "$@"
fi

if [[ "${SLICELINE_SKIP_TSAN:-0}" != "1" ]]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  ctest --preset tsan "$@"
fi
