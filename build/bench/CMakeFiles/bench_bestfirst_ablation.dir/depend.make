# Empty dependencies file for bench_bestfirst_ablation.
# This may be replaced when dependencies are built.
