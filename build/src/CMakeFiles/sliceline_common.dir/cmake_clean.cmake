file(REMOVE_RECURSE
  "CMakeFiles/sliceline_common.dir/common/logging.cc.o"
  "CMakeFiles/sliceline_common.dir/common/logging.cc.o.d"
  "CMakeFiles/sliceline_common.dir/common/rng.cc.o"
  "CMakeFiles/sliceline_common.dir/common/rng.cc.o.d"
  "CMakeFiles/sliceline_common.dir/common/status.cc.o"
  "CMakeFiles/sliceline_common.dir/common/status.cc.o.d"
  "CMakeFiles/sliceline_common.dir/common/string_util.cc.o"
  "CMakeFiles/sliceline_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/sliceline_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/sliceline_common.dir/common/thread_pool.cc.o.d"
  "libsliceline_common.a"
  "libsliceline_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
