#include "serve/dataset_registry.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/hashing.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "ml/pipeline.h"
#include "obs/trace.h"
#include "stream/segment.h"

namespace sliceline::serve {

uint64_t HashEncodedDataset(const data::EncodedDataset& dataset) {
  Fnv1a hasher;
  hasher.Add64(static_cast<uint64_t>(dataset.n()));
  hasher.Add64(static_cast<uint64_t>(dataset.m()));
  hasher.AddString(dataset.task == data::Task::kRegression ? "reg" : "class");
  const std::vector<int32_t>& codes = dataset.x0.data();
  hasher.AddBytes(codes.data(), codes.size() * sizeof(int32_t));
  for (double error : dataset.errors) hasher.AddDouble(error);
  return hasher.hash();
}

StatusOr<DatasetRegistry::RegisterOutcome> DatasetRegistry::Register(
    const RegisterDatasetRequest& request) {
  TRACE_SPAN("serve/register_dataset");
  if (request.name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  data::Task task;
  if (request.task == "reg") {
    task = data::Task::kRegression;
  } else if (request.task == "class") {
    task = data::Task::kClassification;
  } else {
    return Status::InvalidArgument("task must be 'reg' or 'class', got '" +
                                   request.task + "'");
  }
  if (request.bins < 2) {
    return Status::InvalidArgument("bins must be >= 2");
  }

  // Load/train outside the lock: this is the expensive part, and the map
  // only needs protecting around the final publish.
  const auto start = std::chrono::steady_clock::now();
  SLICELINE_ASSIGN_OR_RETURN(data::Frame frame,
                             data::ReadCsv(request.csv_path));
  data::PreprocessOptions options;
  options.label_column = request.label;
  options.task = task;
  options.num_bins = static_cast<int>(request.bins);
  options.drop_columns = request.drop;
  auto encoders = std::make_shared<data::DatasetEncoders>();
  SLICELINE_ASSIGN_OR_RETURN(
      data::EncodedDataset encoded,
      data::PreprocessWithEncoders(frame, options, encoders.get()));
  encoded.name = request.name;
  SLICELINE_ASSIGN_OR_RETURN(const double mean_error,
                             ml::TrainAndMaterializeErrors(&encoded));

  auto registered = std::make_shared<RegisteredDataset>();
  registered->name = request.name;
  registered->csv_path = request.csv_path;
  registered->dataset = std::move(encoded);
  registered->data_hash = HashEncodedDataset(registered->dataset);
  registered->encoders = std::move(encoders);
  registered->base_hash = registered->data_hash;
  registered->mean_error = mean_error;
  registered->load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = datasets_.emplace(request.name, registered);
  if (inserted) return RegisterOutcome{std::move(registered), false};
  if (it->second->data_hash == registered->data_hash) {
    // Idempotent re-registration: same name, same content. Keep the
    // original so concurrent find_slices requests see one instance.
    return RegisterOutcome{it->second, true};
  }
  return Status::InvalidArgument(
      "dataset '" + request.name +
      "' is already registered with different content");
}

StatusOr<DatasetRegistry::AppendOutcome> DatasetRegistry::AppendRows(
    const std::string& name, const std::vector<std::vector<std::string>>& rows,
    const std::vector<double>& errors) {
  TRACE_SPAN("serve/append_rows");
  if (rows.empty()) {
    return Status::InvalidArgument("append carries no rows");
  }
  if (errors.size() != rows.size()) {
    return Status::InvalidArgument(
        "append needs one error per row (" + std::to_string(rows.size()) +
        " rows, " + std::to_string(errors.size()) + " errors)");
  }
  for (double error : errors) {
    if (!(error >= 0.0) || !std::isfinite(error)) {
      return Status::InvalidArgument("errors must be finite and >= 0");
    }
  }

  // Serialized end to end: two concurrent appends must chain, not race for
  // the same parent snapshot.
  std::lock_guard<std::mutex> append_lock(append_mutex_);
  std::shared_ptr<const RegisteredDataset> parent = Find(name);
  if (parent == nullptr) {
    return Status::NotFound("unknown dataset '" + name + "'");
  }
  if (parent->encoders == nullptr) {
    return Status::InvalidArgument(
        "dataset '" + name + "' was registered without frozen encoders");
  }
  SLICELINE_ASSIGN_OR_RETURN(data::IntMatrix delta,
                             data::EncodeRawRows(*parent->encoders, rows));

  // Copy-on-append: the parent snapshot stays immutable for the readers
  // holding it; the new snapshot extends codes/errors and chains the hash.
  auto next = std::make_shared<RegisteredDataset>(*parent);
  next->dataset.x0.AppendRows(delta);
  next->dataset.errors.insert(next->dataset.errors.end(), errors.begin(),
                              errors.end());
  // Labels are not carried on the append path (the caller's model already
  // scored the rows); pad y so row-aligned vectors stay row-aligned.
  next->dataset.y.resize(static_cast<size_t>(next->dataset.n()), 0.0);
  next->data_hash = stream::ChainFingerprint(parent->data_hash, delta, errors);
  next->version = parent->version + 1;

  AppendOutcome outcome;
  outcome.previous_hash = parent->data_hash;
  outcome.delta_x0 = std::move(delta);
  outcome.delta_errors = errors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    datasets_[name] = next;
  }
  outcome.dataset = std::move(next);
  return outcome;
}

Status DatasetRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("unknown dataset '" + name + "'");
  }
  return Status::OK();
}

std::shared_ptr<const RegisteredDataset> DatasetRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const RegisteredDataset>> DatasetRegistry::List()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const RegisteredDataset>> out;
  out.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) out.push_back(dataset);
  return out;
}

int64_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(datasets_.size());
}

}  // namespace sliceline::serve
