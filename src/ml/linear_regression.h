#ifndef SLICELINE_ML_LINEAR_REGRESSION_H_
#define SLICELINE_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "linalg/csr_matrix.h"

namespace sliceline::ml {

/// Ridge linear regression on a sparse (typically one-hot) feature matrix,
/// the "lm" of the paper's regression experiments. Solves
/// (X^T X + lambda I) w = X^T y with a matrix-free conjugate-gradient so the
/// normal-equation matrix is never materialized (KDD98 has l = 8378 one-hot
/// columns).
class LinearRegression {
 public:
  struct Options {
    double lambda = 1e-3;     ///< ridge regularization strength
    int max_iterations = 200; ///< CG iteration cap
    double tolerance = 1e-8;  ///< relative residual stopping criterion
    bool intercept = true;    ///< fit an intercept term
  };

  /// Fits the model; fails if shapes mismatch.
  static StatusOr<LinearRegression> Fit(const linalg::CsrMatrix& x,
                                        const std::vector<double>& y,
                                        const Options& options);
  static StatusOr<LinearRegression> Fit(const linalg::CsrMatrix& x,
                                        const std::vector<double>& y) {
    return Fit(x, y, Options());
  }

  /// Predicted targets, one per row of x.
  std::vector<double> Predict(const linalg::CsrMatrix& x) const;

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  LinearRegression(std::vector<double> weights, double intercept)
      : weights_(std::move(weights)), intercept_(intercept) {}

  std::vector<double> weights_;
  double intercept_;
};

}  // namespace sliceline::ml

#endif  // SLICELINE_ML_LINEAR_REGRESSION_H_
