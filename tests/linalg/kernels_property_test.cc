// Randomized algebraic-identity property tests over the sparse kernels:
// each identity must hold exactly (all values are small integers, so
// floating-point arithmetic is exact) across random shapes and densities.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/kernels.h"

namespace sliceline::linalg {
namespace {

CsrMatrix RandomSparse(Rng& rng, int64_t rows, int64_t cols, double density) {
  CooBuilder builder(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (rng.NextBool(density)) builder.Add(i, j, rng.NextInt(-4, 4));
    }
  }
  return builder.Build();
}

class KernelIdentityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam() * 7919 + 13};
};

TEST_P(KernelIdentityTest, TransposeIsInvolution) {
  CsrMatrix a = RandomSparse(rng_, 9, 14, 0.3);
  EXPECT_TRUE(Transpose(Transpose(a)).Equals(a));
}

TEST_P(KernelIdentityTest, TransposeDistributesOverAdd) {
  CsrMatrix a = RandomSparse(rng_, 8, 11, 0.3);
  CsrMatrix b = RandomSparse(rng_, 8, 11, 0.3);
  EXPECT_TRUE(Transpose(Add(a, b)).Equals(Add(Transpose(a), Transpose(b))));
}

TEST_P(KernelIdentityTest, AddIsCommutative) {
  CsrMatrix a = RandomSparse(rng_, 10, 7, 0.4);
  CsrMatrix b = RandomSparse(rng_, 10, 7, 0.4);
  EXPECT_TRUE(Add(a, b).Equals(Add(b, a)));
}

TEST_P(KernelIdentityTest, MatVecAgreesWithMultiply) {
  // (A * B) x == A * (B x) for a random vector x.
  CsrMatrix a = RandomSparse(rng_, 6, 9, 0.35);
  CsrMatrix b = RandomSparse(rng_, 9, 5, 0.35);
  std::vector<double> x(5);
  for (auto& v : x) v = rng_.NextInt(-3, 3);
  std::vector<double> lhs = MatVec(Multiply(a, b), x);
  std::vector<double> rhs = MatVec(a, MatVec(b, x));
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_DOUBLE_EQ(lhs[i], rhs[i]);
}

TEST_P(KernelIdentityTest, TransposeMatVecIsMatVecOfTranspose) {
  CsrMatrix a = RandomSparse(rng_, 12, 6, 0.3);
  std::vector<double> x(12);
  for (auto& v : x) v = rng_.NextInt(-3, 3);
  std::vector<double> lhs = TransposeMatVec(a, x);
  std::vector<double> rhs = MatVec(Transpose(a), x);
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_DOUBLE_EQ(lhs[i], rhs[i]);
}

TEST_P(KernelIdentityTest, ColSumsOfRbindAdds) {
  CsrMatrix a = RandomSparse(rng_, 5, 8, 0.4);
  CsrMatrix b = RandomSparse(rng_, 7, 8, 0.4);
  std::vector<double> stacked = ColSums(Rbind(a, b));
  std::vector<double> sa = ColSums(a);
  std::vector<double> sb = ColSums(b);
  for (size_t j = 0; j < stacked.size(); ++j) {
    EXPECT_DOUBLE_EQ(stacked[j], sa[j] + sb[j]);
  }
}

TEST_P(KernelIdentityTest, RowSumsEqualColSumsOfTranspose) {
  CsrMatrix a = RandomSparse(rng_, 10, 10, 0.25);
  EXPECT_EQ(RowSums(a), ColSums(Transpose(a)));
}

TEST_P(KernelIdentityTest, BinarizeIsIdempotent) {
  CsrMatrix a = RandomSparse(rng_, 9, 9, 0.3);
  CsrMatrix once = Binarize(a);
  EXPECT_TRUE(Binarize(once).Equals(once));
}

TEST_P(KernelIdentityTest, ScaleRowsByOnesIsIdentity) {
  CsrMatrix a = RandomSparse(rng_, 8, 6, 0.4);
  std::vector<double> ones(8, 1.0);
  EXPECT_TRUE(ScaleRows(a, ones).Equals(a));
}

TEST_P(KernelIdentityTest, SelectAllColumnsIsIdentity) {
  CsrMatrix a = RandomSparse(rng_, 7, 9, 0.4);
  std::vector<int64_t> all(9);
  for (int64_t j = 0; j < 9; ++j) all[j] = j;
  EXPECT_TRUE(SelectColumns(a, all).Equals(a));
}

TEST_P(KernelIdentityTest, GatherAllRowsIsIdentity) {
  CsrMatrix a = RandomSparse(rng_, 11, 4, 0.4);
  std::vector<int64_t> all(11);
  for (int64_t i = 0; i < 11; ++i) all[i] = i;
  EXPECT_TRUE(GatherRows(a, all).Equals(a));
}

TEST_P(KernelIdentityTest, RemoveEmptyThenGatherRestores) {
  CsrMatrix a = RandomSparse(rng_, 12, 5, 0.15);
  auto [compact, kept] = RemoveEmptyRows(a);
  // Scatter the compact rows back: every kept row matches the original.
  for (size_t i = 0; i < kept.size(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(compact.At(static_cast<int64_t>(i), j),
                       a.At(kept[i], j));
    }
  }
  // Rows not kept are empty.
  size_t cursor = 0;
  for (int64_t r = 0; r < a.rows(); ++r) {
    if (cursor < kept.size() && kept[cursor] == r) {
      ++cursor;
      continue;
    }
    EXPECT_EQ(a.RowNnz(r), 0);
  }
}

TEST_P(KernelIdentityTest, TableMatchesCooBuilder) {
  const int64_t n = 20;
  std::vector<int64_t> rix;
  std::vector<int64_t> cix;
  std::vector<double> w;
  CooBuilder builder(n, n);
  for (int k = 0; k < 60; ++k) {
    const int64_t r = rng_.NextInt(0, n - 1);
    const int64_t c = rng_.NextInt(0, n - 1);
    const double v = rng_.NextInt(1, 3);
    rix.push_back(r);
    cix.push_back(c);
    w.push_back(v);
    builder.Add(r, c, v);
  }
  EXPECT_TRUE(Table(rix, cix, w, n, n).Equals(builder.Build()));
}

TEST_P(KernelIdentityTest, UpperTriEqualsMatchesBruteForce) {
  CsrMatrix a = RandomSparse(rng_, 10, 10, 0.3);
  auto entries = UpperTriEquals(a, 2.0);
  size_t idx = 0;
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = r + 1; c < 10; ++c) {
      if (a.At(r, c) == 2.0) {
        ASSERT_LT(idx, entries.size());
        EXPECT_EQ(entries[idx].first, r);
        EXPECT_EQ(entries[idx].second, c);
        ++idx;
      }
    }
  }
  EXPECT_EQ(idx, entries.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelIdentityTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace sliceline::linalg
