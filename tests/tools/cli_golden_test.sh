#!/usr/bin/env bash
# Golden-file regression test for sliceline_cli.
#
# Runs the CLI on the checked-in golden_input.csv (a 120-row regression
# dataset with a planted f1=a AND f2=x problem conjunction a linear model
# cannot express) under a fixed configuration, once per engine, and diffs
# the output against golden_expected.txt. Timings and the input path are
# run-dependent and get normalized; everything else — row counts, trained
# mean error, every reported slice with its score/size/error stats, the
# per-level enumeration counters, the distributed cost/fault summary — must
# match byte for byte.
#
# Usage: cli_golden_test.sh CLI_BINARY INPUT_CSV EXPECTED_FILE
set -euo pipefail

cli="$1"
input="$2"
expected="$3"

normalize() {
  sed -E \
    -e 's/time=[0-9]+\.[0-9]+s/time=X.XXXs/g' \
    -e 's/in [0-9]+\.[0-9]+s/in X.XXXs/g' \
    -e 's/wall-clock [0-9]+\.[0-9]+s/wall-clock X.XXXs/' \
    -e 's/compute [0-9]+\.[0-9]+s/compute X.XXXs/' \
    -e 's/comm [0-9]+\.[0-9]+s/comm X.XXXs/' \
    -e 's| from .*| from INPUT|'
}

actual="$(
  for engine in native la dist; do
    echo "=== engine: $engine ==="
    "$cli" --csv "$input" --label target --task reg \
           --k 4 --alpha 0.95 --sigma 10 --bins 5 --engine "$engine" \
           --workers 3 --fault-seed 7 --fault-transient 0.2 \
           --fault-straggler 0.2
  done | normalize
)"

if ! diff -u "$expected" <(printf '%s\n' "$actual"); then
  echo "FAIL: sliceline_cli output diverged from $expected" >&2
  echo "(if the change is intentional, regenerate the golden file by" >&2
  echo " piping the normalized output above into it)" >&2
  exit 1
fi
echo "OK: CLI output matches golden transcript"
