#ifndef SLICELINE_DIST_DISTRIBUTED_EVALUATOR_H_
#define SLICELINE_DIST_DISTRIBUTED_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/sliceline.h"
#include "dist/fault_injection.h"
#include "dist/partition.h"

namespace sliceline::dist {

/// Configuration of the simulated cluster.
struct DistOptions {
  int workers = 4;
  /// Run shard evaluations concurrently on the thread pool (true) or
  /// serially (false). Either way the per-worker busy time is measured so
  /// the simulated parallel wall-clock can be derived on any host.
  bool use_threads = false;
  /// Simulated interconnect for the communication-cost estimate.
  double network_bytes_per_second = 1.25e9;  ///< ~10 GbE
  double latency_per_round_seconds = 0.005;  ///< broadcast + barrier latency

  // --- Fault tolerance ---------------------------------------------------
  /// Random fault schedule; all-zero rates (the default) disable injection.
  /// Exact per-round faults can additionally be scripted on the evaluator's
  /// injector() (tests).
  FaultPlan fault;
  /// Per-round retry budget for transiently failed or corrupted shards.
  int max_retries = 3;
  /// Exponential backoff before retry wave k (1-based):
  /// backoff_base_seconds * backoff_multiplier^(k-1), accounted into the
  /// simulated critical path, not slept.
  double backoff_base_seconds = 0.01;
  double backoff_multiplier = 2.0;
  /// Launch a simulated backup copy of a straggling worker's round on an
  /// idle survivor: masks the injected delay, pays the duplicated compute,
  /// and cross-checks the two payload checksums.
  bool speculative_execution = true;
  /// If more than this fraction of workers is permanently lost (or any
  /// round exhausts its retry budget), the evaluator degrades to a local
  /// single-node SliceEvaluator over the full matrix.
  double max_lost_fraction = 0.5;
};

/// Accumulated communication/work accounting across evaluation rounds. The
/// Figure 7(b) benchmark reports the derived simulated wall-clock
/// (critical path + communication) per parallelization strategy.
struct DistCostStats {
  int64_t rounds = 0;             ///< broadcast waves (retries re-broadcast)
  int64_t broadcast_bytes = 0;    ///< slice matrix shipped to every worker
  int64_t gather_bytes = 0;       ///< per-slice partial stats shipped back
  double worker_busy_seconds = 0; ///< total compute across workers
  double critical_path_seconds = 0;  ///< sum over waves of slowest worker
  double EstimatedCommSeconds(const DistOptions& options) const {
    return static_cast<double>(broadcast_bytes + gather_bytes) /
               options.network_bytes_per_second +
           static_cast<double>(rounds) * options.latency_per_round_seconds;
  }
};

/// Recovery actions taken across the run. Deterministic for a fixed
/// FaultPlan seed: every counter is driven by hash-based fault draws, never
/// by measured wall-clock.
struct DistFaultStats {
  int64_t transient_failures = 0;  ///< injected fail-stop rounds survived
  int64_t retries = 0;             ///< shard re-evaluations after a failure
  int64_t backoff_events = 0;      ///< retry waves that waited
  double backoff_seconds = 0.0;    ///< simulated wait added to critical path
  int64_t stragglers = 0;          ///< injected slow worker rounds
  int64_t speculative_reexecutions = 0;  ///< backup copies launched
  int64_t corrupted_partials = 0;  ///< checksum/invariant rejections
  int64_t workers_lost = 0;        ///< permanent losses
  int64_t reshards = 0;            ///< shards adopted by survivors
  bool fallback_local = false;     ///< degraded to single-node execution

  bool operator==(const DistFaultStats&) const = default;

  /// One-line human-readable summary for the CLI and benchmarks.
  std::string Summary() const;
};

/// Mirrors the cumulative cost/fault structs into registry gauges
/// ("dist/rounds", "dist/retries", ...). The structs stay the canonical
/// source of truth (published wholesale, never incremented twice), so the
/// registry view cannot drift from the struct view. Shared by the simulated
/// evaluator and the real socket coordinator; no-op when metrics are off.
void PublishDistStats(const DistCostStats& cost, const DistFaultStats& faults);

/// Driver-side sanity checks on a gathered partial: correct shape, sizes
/// integral and within [0, shard rows], statistics finite. A corrupted
/// payload that somehow survives the checksum is still rejected here.
/// Shared by the simulated evaluator and the socket coordinator.
bool PartialInvariantsOk(const core::EvalResult& partial, int64_t shard_rows,
                         size_t count);

/// Simulated distributed slice evaluation (Section 4.4's data-parallel
/// formulation): X is row-partitioned into worker shards once, every
/// Evaluate() broadcasts the slice set to all workers, each worker evaluates
/// on its shard with the local SliceEvaluator, and the partial (ss, se, sm)
/// vectors are aggregated by (+, +, max) -- the same structure as SystemDS'
/// broadcast-based distributed matrix multiplications over a Spark cluster.
///
/// Worker rounds can fail (see FaultInjector); the evaluator recovers via
/// bounded retry with exponential backoff, speculative re-execution of
/// stragglers, re-assignment of a lost worker's shards to survivors, and
/// checksum/invariant validation of every gathered partial. Shards are
/// immutable units that move between workers wholesale, so the aggregation
/// order -- and therefore every floating-point sum -- is bit-identical to a
/// fault-free run under any fault schedule short of local fallback.
class DistributedSliceEvaluator : public core::EvaluatorBackend {
 public:
  /// Validates inputs (non-empty matrix, matching error vector, >= 1
  /// worker) and builds the sharded evaluator. Never aborts on user input.
  static StatusOr<std::unique_ptr<DistributedSliceEvaluator>> Create(
      const data::IntMatrix& x0, const std::vector<double>& errors,
      const DistOptions& options);

  StatusOr<core::EvalResult> Evaluate(
      const core::SliceSet& set,
      const core::SliceLineConfig& config) const override;

  const std::vector<int64_t>& basic_sizes() const override {
    return basic_sizes_;
  }
  const std::vector<double>& basic_error_sums() const override {
    return basic_error_sums_;
  }
  const std::vector<double>& basic_max_errors() const override {
    return basic_max_errors_;
  }
  int64_t n() const override { return n_; }
  double total_error() const override { return total_error_; }
  const data::FeatureOffsets& offsets() const override { return offsets_; }

  /// Initial cluster size (= number of shards).
  int workers() const { return static_cast<int>(shards_.size()); }
  /// Workers still alive after injected permanent losses.
  int alive_workers() const { return alive_count_; }
  const DistCostStats& cost() const { return cost_; }
  const DistFaultStats& faults() const { return faults_; }
  /// Mutable access for scripting exact faults before a run (tests).
  FaultInjector& injector() { return injector_; }

 private:
  struct ShardUnit {
    Shard shard;
    std::unique_ptr<core::SliceEvaluator> evaluator;
  };

  DistributedSliceEvaluator(const data::IntMatrix& x0,
                            const std::vector<double>& errors,
                            const DistOptions& options);

  /// Switches to (or continues on) the degraded single-node path.
  StatusOr<core::EvalResult> EvaluateDegraded(
      const core::SliceSet& set, const core::SliceLineConfig& config) const;

  /// Re-assigns every shard owned by a dead worker to a survivor.
  void ReshardLostWorkers() const;

  data::FeatureOffsets offsets_;
  DistOptions options_;
  std::vector<ShardUnit> shards_;
  int64_t n_ = 0;
  double total_error_ = 0.0;
  std::vector<int64_t> basic_sizes_;
  std::vector<double> basic_error_sums_;
  std::vector<double> basic_max_errors_;

  FaultInjector injector_;
  /// Full input copy backing the graceful-degradation path.
  data::IntMatrix full_x0_;
  std::vector<double> full_errors_;

  mutable std::vector<int> shard_owner_;   ///< worker currently owning shard
  mutable std::vector<char> worker_alive_;
  mutable int alive_count_ = 0;
  mutable std::unique_ptr<core::SliceEvaluator> fallback_;
  mutable int64_t next_round_ = 0;
  mutable DistCostStats cost_;
  mutable DistFaultStats faults_;
};

/// Runs the full SliceLine enumeration with distributed (sharded) slice
/// evaluation; writes the accumulated cost statistics to `cost_out` and the
/// recovery statistics to `faults_out` if non-null.
StatusOr<core::SliceLineResult> RunSliceLineDistributed(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const core::SliceLineConfig& config, const DistOptions& options,
    DistCostStats* cost_out = nullptr, DistFaultStats* faults_out = nullptr);

}  // namespace sliceline::dist

#endif  // SLICELINE_DIST_DISTRIBUTED_EVALUATOR_H_
