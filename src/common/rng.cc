#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace sliceline {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  SLICELINE_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SLICELINE_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return next_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  next_gaussian_ = r * std::sin(theta);
  have_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  SLICELINE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SLICELINE_DCHECK(w >= 0.0);
    total += w;
  }
  SLICELINE_CHECK_GT(total, 0.0);
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double exponent) {
  SLICELINE_CHECK_GT(n, 0u);
  // Inverse-CDF on the normalized harmonic weights would be O(n) per draw;
  // instead use rejection-free bucketed approximation: draw u and invert the
  // continuous zipf CDF, clamping to [0, n).
  const double u = NextDouble();
  if (exponent == 1.0) {
    const double h = std::log(static_cast<double>(n) + 1.0);
    const double x = std::exp(u * h) - 1.0;
    size_t r = static_cast<size_t>(x);
    return r < n ? r : n - 1;
  }
  const double one_minus = 1.0 - exponent;
  const double h = (std::pow(static_cast<double>(n) + 1.0, one_minus) - 1.0) /
                   one_minus;
  const double x = std::pow(u * h * one_minus + 1.0, 1.0 / one_minus) - 1.0;
  size_t r = static_cast<size_t>(x);
  return r < n ? r : n - 1;
}

}  // namespace sliceline
