#ifndef SLICELINE_TESTING_REFERENCE_KERNELS_H_
#define SLICELINE_TESTING_REFERENCE_KERNELS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace sliceline::testing {

/// Slow, obviously-correct dense counterparts of every sparse kernel in
/// linalg/kernels.h. Each one converts its CSR input to dense and computes
/// the result with straight loops; the kernel fuzzer asserts the optimized
/// sparse implementations agree on randomized matrices. These are oracles,
/// not production code: O(rows * cols) everywhere, no sparsity exploited.
namespace ref {

std::vector<double> ColSums(const linalg::CsrMatrix& m);
std::vector<double> ColMaxs(const linalg::CsrMatrix& m);
std::vector<double> RowSums(const linalg::CsrMatrix& m);
std::vector<double> RowMaxs(const linalg::CsrMatrix& m);
std::vector<int64_t> RowNnzCounts(const linalg::CsrMatrix& m);
std::vector<int64_t> RowIndexMax(const linalg::CsrMatrix& m);
std::vector<double> MatVec(const linalg::CsrMatrix& m,
                           const std::vector<double>& x);
std::vector<double> TransposeMatVec(const linalg::CsrMatrix& m,
                                    const std::vector<double>& x);
linalg::DenseMatrix Transpose(const linalg::CsrMatrix& m);
linalg::DenseMatrix Multiply(const linalg::CsrMatrix& a,
                             const linalg::CsrMatrix& b);
linalg::DenseMatrix MultiplyABt(const linalg::CsrMatrix& a,
                                const linalg::CsrMatrix& b);
linalg::DenseMatrix FilterEquals(const linalg::CsrMatrix& m, double target);
linalg::DenseMatrix ScaleRows(const linalg::CsrMatrix& m,
                              const std::vector<double>& scale);
linalg::DenseMatrix Add(const linalg::CsrMatrix& a, const linalg::CsrMatrix& b);
linalg::DenseMatrix Binarize(const linalg::CsrMatrix& m);
std::vector<std::pair<int64_t, int64_t>> UpperTriEquals(
    const linalg::CsrMatrix& m, double target);
std::pair<linalg::DenseMatrix, std::vector<int64_t>> RemoveEmptyRows(
    const linalg::CsrMatrix& m);
linalg::DenseMatrix SelectRows(const linalg::CsrMatrix& m,
                               const std::vector<uint8_t>& keep);
linalg::DenseMatrix GatherRows(const linalg::CsrMatrix& m,
                               const std::vector<int64_t>& rows);
linalg::DenseMatrix SelectColumns(const linalg::CsrMatrix& m,
                                  const std::vector<int64_t>& cols);
linalg::DenseMatrix Rbind(const linalg::CsrMatrix& top,
                          const linalg::CsrMatrix& bottom);
linalg::DenseMatrix SliceRowRange(const linalg::CsrMatrix& m, int64_t begin,
                                  int64_t end);
linalg::DenseMatrix Table(const std::vector<int64_t>& rix,
                          const std::vector<int64_t>& cix, int64_t rows,
                          int64_t cols);
std::vector<double> CumSum(const std::vector<double>& v);
std::vector<double> CumProd(const std::vector<double>& v);
std::vector<int64_t> OrderDesc(const std::vector<double>& v);

}  // namespace ref

/// Structural-invariant validation of a CsrMatrix produced by a kernel:
/// monotone row_ptr covering nnz, per-row sorted and in-range distinct
/// column indices, no stored exact zeros. Returns "" when valid, else a
/// description of the first violation.
std::string CheckCsrInvariants(const linalg::CsrMatrix& m);

/// Max |a - b| comparison of a sparse kernel output against a dense
/// reference; also runs CheckCsrInvariants on the sparse side. Returns ""
/// on agreement (<= tolerance), else a mismatch description including the
/// first differing coordinate.
std::string CompareToDense(const linalg::CsrMatrix& actual,
                           const linalg::DenseMatrix& expected,
                           double tolerance, const std::string& label);

/// Element-wise vector comparison; "" on agreement.
std::string CompareVectors(const std::vector<double>& actual,
                           const std::vector<double>& expected,
                           double tolerance, const std::string& label);
std::string CompareIntVectors(const std::vector<int64_t>& actual,
                              const std::vector<int64_t>& expected,
                              const std::string& label);

/// Draws a random CSR matrix: random shape within [1, max_rows] x
/// [1, max_cols], random density, and values biased toward small integers
/// (including negatives) so equality-based kernels (FilterEquals,
/// UpperTriEquals) and cancellation in Add are exercised.
linalg::CsrMatrix RandomCsr(Rng& rng, int64_t max_rows, int64_t max_cols);

/// Same value distribution with an exact shape (for kernels with shape
/// constraints: Multiply, MultiplyABt, Add, Rbind).
linalg::CsrMatrix RandomCsrShaped(Rng& rng, int64_t rows, int64_t cols);

}  // namespace sliceline::testing

#endif  // SLICELINE_TESTING_REFERENCE_KERNELS_H_
