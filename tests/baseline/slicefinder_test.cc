#include "baseline/slicefinder.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"

namespace sliceline::baseline {
namespace {

TEST(SliceFinderTest, FindsPlantedProblematicSlice) {
  data::DatasetOptions opts;
  opts.rows = 2000;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig config;
  config.k = 4;
  config.effect_size_min = 0.2;
  auto result = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->slices.empty());
  EXPECT_GT(result->evaluated, 0);
  // Reported slices satisfy the support constraint.
  for (const core::Slice& slice : result->slices) {
    EXPECT_GE(slice.stats.size, 32);
    EXPECT_GT(slice.stats.score, 0.0);  // effect size
  }
}

TEST(SliceFinderTest, DominanceSuppressesRefinements) {
  data::DatasetOptions opts;
  opts.rows = 2000;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig config;
  config.k = 50;  // don't terminate early
  config.effect_size_min = 0.15;
  config.max_level = 3;
  auto result = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(result.ok());
  // No reported slice is a refinement of an earlier reported slice.
  for (size_t i = 0; i < result->slices.size(); ++i) {
    for (size_t j = i + 1; j < result->slices.size(); ++j) {
      const auto& coarse = result->slices[i].predicates;
      const auto& fine = result->slices[j].predicates;
      if (coarse.size() >= fine.size()) continue;
      bool contains_all = true;
      for (const auto& p : coarse) {
        contains_all &=
            std::find(fine.begin(), fine.end(), p) != fine.end();
      }
      EXPECT_FALSE(contains_all)
          << "slice " << j << " dominated by slice " << i;
    }
  }
}

TEST(SliceFinderTest, HeuristicCanMissBestSlice) {
  // Construct data where a level-2 conjunction is catastrophic but each of
  // its level-1 projections is mildly bad: SliceFinder's level-wise
  // termination reports K weaker level-1 slices and never reaches the true
  // worst slice, while SliceLine finds it. (This is the paper's motivating
  // exactness gap; if the heuristic happens to find it on other data the
  // test below would need different data, so we build it adversarially.)
  Rng rng(7);
  const int64_t n = 4000;
  data::IntMatrix x0(n, 6);
  std::vector<double> errors(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < 6; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(4)) + 1;
    }
    // Mild noise everywhere.
    errors[i] = rng.NextBool(0.08) ? 1.0 : 0.0;
    // A few mildly-bad level-1 groups that pass the effect-size test.
    if (x0.At(i, 4) == 1 && rng.NextBool(0.15)) errors[i] = 1.0;
    if (x0.At(i, 5) == 2 && rng.NextBool(0.15)) errors[i] = 1.0;
    // Catastrophic hidden conjunction.
    if (x0.At(i, 0) == 1 && x0.At(i, 1) == 1) errors[i] = 1.0;
  }

  SliceFinderConfig heuristic;
  heuristic.k = 2;
  heuristic.effect_size_min = 0.25;
  auto baseline = RunSliceFinder(x0, errors, heuristic);
  ASSERT_TRUE(baseline.ok());

  core::SliceLineConfig exact;
  exact.k = 1;
  exact.alpha = 0.95;
  auto sliceline = core::RunSliceLine(x0, errors, exact);
  ASSERT_TRUE(sliceline.ok());
  ASSERT_FALSE(sliceline->top_k.empty());
  // SliceLine's top slice is the planted conjunction.
  const auto& top = sliceline->top_k[0].predicates;
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (std::pair<int, int32_t>{0, 1}));
  EXPECT_EQ(top[1], (std::pair<int, int32_t>{1, 1}));
  // The heuristic terminated at level 1 with other slices.
  ASSERT_GE(baseline->slices.size(), 1u);
  for (const core::Slice& slice : baseline->slices) {
    EXPECT_NE(slice.predicates, top);
  }
}

TEST(SliceFinderTest, DeterministicAcrossRuns) {
  data::DatasetOptions opts;
  opts.rows = 1500;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig config;
  config.k = 6;
  config.effect_size_min = 0.15;
  auto first = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(first.ok());
  auto second = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->slices.size(), second->slices.size());
  EXPECT_EQ(first->evaluated, second->evaluated);
  for (size_t i = 0; i < first->slices.size(); ++i) {
    EXPECT_EQ(first->slices[i].predicates, second->slices[i].predicates);
    EXPECT_EQ(first->slices[i].stats.score, second->slices[i].stats.score);
    EXPECT_EQ(first->slices[i].stats.size, second->slices[i].stats.size);
  }
}

TEST(SliceFinderTest, ReportedStatsMatchRowScan) {
  // Differential check of the reported per-slice statistics against a
  // brute-force scan: the lattice search maintains row sets incrementally,
  // so drift here would mean a bookkeeping bug, not a ranking choice.
  data::DatasetOptions opts;
  opts.rows = 1500;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig config;
  config.k = 6;
  config.effect_size_min = 0.15;
  config.max_level = 2;
  auto result = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->slices.empty());
  for (const core::Slice& slice : result->slices) {
    int64_t size = 0;
    double err_sum = 0.0;
    double err_max = 0.0;
    for (int64_t i = 0; i < ds.x0.rows(); ++i) {
      if (!slice.Matches(ds.x0, i)) continue;
      ++size;
      err_sum += ds.errors[static_cast<size_t>(i)];
      err_max = std::max(err_max, ds.errors[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(slice.stats.size, size) << slice.ToString();
    EXPECT_NEAR(slice.stats.error_sum, err_sum, 1e-9) << slice.ToString();
    EXPECT_DOUBLE_EQ(slice.stats.max_error, err_max) << slice.ToString();
  }
}

TEST(SliceFinderTest, KTerminatesLevelwiseAndIsMonotone) {
  // config.k is a level-granularity stopping threshold ("stop once >= K
  // problematic slices are found"), not a cap: the level that crosses the
  // threshold is still finished. A larger K therefore explores at least as
  // many levels and reports a superset of the slices.
  data::DatasetOptions opts;
  opts.rows = 1500;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig small;
  small.k = 1;
  small.effect_size_min = 0.1;
  auto early = RunSliceFinder(ds.x0, ds.errors, small);
  ASSERT_TRUE(early.ok());
  ASSERT_FALSE(early->slices.empty());
  SliceFinderConfig large = small;
  large.k = 50;
  auto full = RunSliceFinder(ds.x0, ds.errors, large);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(early->levels_expanded, full->levels_expanded);
  EXPECT_LE(early->slices.size(), full->slices.size());
  for (const core::Slice& slice : early->slices) {
    bool found = false;
    for (const core::Slice& other : full->slices) {
      found |= other.predicates == slice.predicates;
    }
    EXPECT_TRUE(found) << slice.ToString() << " missing from larger-K run";
  }
}

TEST(SliceFinderTest, ValidatesInputs) {
  data::IntMatrix x0(10, 2, 1);
  std::vector<double> errors(5, 0.1);
  EXPECT_FALSE(RunSliceFinder(x0, errors, SliceFinderConfig()).ok());
  EXPECT_FALSE(
      RunSliceFinder(data::IntMatrix(), {}, SliceFinderConfig()).ok());
  SliceFinderConfig bad;
  bad.k = 0;
  std::vector<double> ok_errors(10, 0.1);
  EXPECT_FALSE(RunSliceFinder(x0, ok_errors, bad).ok());
}

TEST(SliceFinderTest, NoSignalsMeansNoSlices) {
  data::IntMatrix x0(500, 3);
  Rng rng(3);
  for (int64_t i = 0; i < 500; ++i) {
    for (int j = 0; j < 3; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
  }
  std::vector<double> errors(500, 0.25);  // perfectly uniform errors
  SliceFinderConfig config;
  config.max_level = 2;
  auto result = RunSliceFinder(x0, errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->slices.empty());
}

}  // namespace
}  // namespace sliceline::baseline
