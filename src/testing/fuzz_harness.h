#ifndef SLICELINE_TESTING_FUZZ_HARNESS_H_
#define SLICELINE_TESTING_FUZZ_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/checks.h"
#include "testing/random_dataset.h"
#include "testing/replay.h"

namespace sliceline::testing {

/// Names of the seven checks, in execution order.
inline constexpr const char* kCheckNames[] = {
    "oracle",     "kernel",       "metamorphic",       "determinism",
    "governance", "kernels-simd", "stream-equivalence"};

struct FuzzOptions {
  uint64_t seed = 1;
  int cases = 100;
  /// Subset of kCheckNames to run; empty = all six.
  std::vector<std::string> checks;
  InjectedBug inject = InjectedBug::kNone;
  /// Directory replay files are written to; empty disables replay output.
  std::string replay_dir = ".";
  bool shrink = true;
  /// Stop after this many failures (the shrinker dominates failure cost).
  int max_failures = 1;
  /// Independent matrix draws per kernel-check case.
  int kernel_rounds = 2;
  /// Run the (expensive, thread-pool-swapping) determinism check on every
  /// determinism_stride-th case only.
  int determinism_stride = 8;
  RandomDatasetOptions dataset;
  bool verbose = false;
};

struct FuzzFailure {
  std::string check;
  uint64_t case_index = 0;
  std::string failure;       ///< diagnostic of the (shrunk) case
  std::string replay_path;   ///< "" if replay writing was disabled or failed
  int shrink_steps = 0;
  FuzzCase fuzz_case;        ///< the shrunk reproduction
};

struct FuzzReport {
  int cases_run = 0;
  int64_t checks_run = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Runs `cases` generated cases through the selected checks. Profiles cycle
/// deterministically so every pathological generator shape is exercised even
/// in small batches. On a failure the case is shrunk (dataset checks) and a
/// replay file is written to `replay_dir`.
FuzzReport RunFuzz(const FuzzOptions& options);

/// Re-executes the check recorded in a replay file on its stored dataset.
/// Returns "" if the case now passes, else the current failure diagnostic.
std::string RunReplay(const ReplayRecord& record,
                      InjectedBug inject = InjectedBug::kNone);

}  // namespace sliceline::testing

#endif  // SLICELINE_TESTING_FUZZ_HARNESS_H_
