#include "serve/client.h"

#include <utility>

namespace sliceline::serve {

namespace {

StatusOr<SocketConnection> ConnectEndpoint(const Endpoint& endpoint) {
  if (!endpoint.unix_socket.empty()) {
    return ConnectUnix(endpoint.unix_socket);
  }
  if (endpoint.tcp_port >= 0) return ConnectTcp(endpoint.tcp_port);
  return Status::InvalidArgument("endpoint has neither socket path nor port");
}

}  // namespace

StatusOr<Client> Client::Connect(const Endpoint& endpoint) {
  SLICELINE_ASSIGN_OR_RETURN(SocketConnection connection,
                             ConnectEndpoint(endpoint));
  return Client(std::move(connection));
}

StatusOr<obs::JsonValue> Client::Call(Request request) {
  if (request.id.empty()) {
    request.id = "c" + std::to_string(next_id_++);
  }
  SLICELINE_RETURN_NOT_OK(connection_.WriteAll(SerializeRequest(request)));
  SLICELINE_ASSIGN_OR_RETURN(const std::string line,
                             connection_.ReadLine(kMaxLineBytes));
  last_response_line_ = line;
  SLICELINE_ASSIGN_OR_RETURN(obs::JsonValue response, obs::ParseJson(line));
  if (!response.is_object()) {
    return Status::Internal("response is not a JSON object");
  }
  const obs::JsonValue* ok = response.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("response missing boolean 'ok'");
  }
  if (!ok->bool_value()) {
    const obs::JsonValue* error = response.Find("error");
    if (error == nullptr || !error->is_object()) {
      return Status::Internal("error response missing 'error' object");
    }
    return StatusFromError(error->GetStringOr("code", "internal"),
                           error->GetStringOr("message", ""));
  }
  return response;
}

StatusOr<obs::JsonValue> Client::RegisterDataset(
    const RegisterDatasetRequest& r) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.register_dataset = r;
  return Call(std::move(request));
}

StatusOr<FindSlicesReply> Client::FindSlices(const FindSlicesRequest& r) {
  Request request;
  request.type = RequestType::kFindSlices;
  request.find_slices = r;
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue response,
                             Call(std::move(request)));
  if (!r.wait) {
    // Async submission: no result yet; surface the job id via the reply.
    FindSlicesReply reply;
    SLICELINE_ASSIGN_OR_RETURN(reply.job_id, response.RequireInt("job"));
    return reply;
  }
  return UnpackFindSlicesReply(response);
}

StatusOr<obs::JsonValue> Client::GetStatus(int64_t job_id) {
  Request request;
  request.type = RequestType::kGetStatus;
  request.job_id = job_id;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::Cancel(int64_t job_id) {
  Request request;
  request.type = RequestType::kCancel;
  request.job_id = job_id;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::ListDatasets() {
  Request request;
  request.type = RequestType::kListDatasets;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::ServerStats() {
  Request request;
  request.type = RequestType::kServerStats;
  return Call(std::move(request));
}

StatusOr<FindSlicesReply> UnpackFindSlicesReply(
    const obs::JsonValue& response) {
  const obs::JsonValue* result = response.Find("result");
  if (result == nullptr) {
    return Status::Internal("response missing 'result' object");
  }
  FindSlicesReply reply;
  reply.job_id = response.GetIntOr("job", -1);
  reply.cache_hit = response.GetBoolOr("cache_hit", false);
  SLICELINE_ASSIGN_OR_RETURN(reply.result,
                             ParseResultJson(*result, &reply.feature_names));
  return reply;
}

StatusOr<std::string> FetchMetrics(const Endpoint& endpoint) {
  SLICELINE_ASSIGN_OR_RETURN(SocketConnection connection,
                             ConnectEndpoint(endpoint));
  SLICELINE_RETURN_NOT_OK(
      connection.WriteAll("GET /metrics HTTP/1.0\r\n\r\n"));
  SLICELINE_ASSIGN_OR_RETURN(const std::string response,
                             connection.ReadAll(8 * kMaxLineBytes));
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    return Status::Internal("malformed HTTP response");
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0) {
    const size_t eol = response.find("\r\n");
    return Status::Internal("metrics fetch failed: " +
                            response.substr(0, eol));
  }
  return response.substr(body_start + 4);
}

}  // namespace sliceline::serve
