// Differential fuzzing of every sparse CSR kernel in linalg/kernels.h
// against the slow dense references in testing/reference_kernels.h.
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "linalg/kernels.h"
#include "testing/checks.h"
#include "testing/reference_kernels.h"

namespace sliceline::testing {
namespace {

using linalg::CsrMatrix;
using linalg::DenseMatrix;

constexpr double kKernelTolerance = 1e-9;

/// The injected kernel defect: ColSums that drops the first stored entry of
/// every non-empty row.
std::vector<double> BuggyColSums(const CsrMatrix& m) {
  std::vector<double> out(static_cast<size_t>(m.cols()), 0.0);
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& values = m.values();
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t k = row_ptr[r] + 1; k < row_ptr[r + 1]; ++k) {
      out[col_idx[k]] += values[k];
    }
  }
  return out;
}

std::vector<double> RandomVector(Rng& rng, int64_t size) {
  std::vector<double> v(static_cast<size_t>(size));
  for (double& x : v) {
    x = rng.NextBool(0.2) ? 0.0
                          : static_cast<double>(rng.NextInt(-3, 3)) +
                                (rng.NextBool(0.3) ? rng.NextDouble() : 0.0);
  }
  return v;
}

/// One independent round: a fresh matrix draw through every kernel.
std::string RunRound(Rng& rng, InjectedBug inject) {
  const CsrMatrix a = RandomCsr(rng, 24, 16);

  // --- Reductions ---------------------------------------------------------
  {
    const std::vector<double> got = inject == InjectedBug::kKernel
                                        ? BuggyColSums(a)
                                        : linalg::ColSums(a);
    std::string diff =
        CompareVectors(got, ref::ColSums(a), kKernelTolerance, "ColSums");
    if (!diff.empty()) return diff;
  }
  if (std::string diff = CompareVectors(linalg::ColMaxs(a), ref::ColMaxs(a),
                                        kKernelTolerance, "ColMaxs");
      !diff.empty()) {
    return diff;
  }
  if (std::string diff = CompareVectors(linalg::RowSums(a), ref::RowSums(a),
                                        kKernelTolerance, "RowSums");
      !diff.empty()) {
    return diff;
  }
  if (std::string diff = CompareVectors(linalg::RowMaxs(a), ref::RowMaxs(a),
                                        kKernelTolerance, "RowMaxs");
      !diff.empty()) {
    return diff;
  }
  if (std::string diff = CompareIntVectors(
          linalg::RowNnzCounts(a), ref::RowNnzCounts(a), "RowNnzCounts");
      !diff.empty()) {
    return diff;
  }
  if (std::string diff = CompareIntVectors(linalg::RowIndexMax(a),
                                           ref::RowIndexMax(a), "RowIndexMax");
      !diff.empty()) {
    return diff;
  }
  {
    const std::vector<double> v = RandomVector(rng, a.rows());
    const double expected = std::accumulate(v.begin(), v.end(), 0.0);
    if (std::abs(linalg::Sum(v) - expected) > kKernelTolerance) {
      return "Sum: mismatch against sequential accumulation";
    }
  }

  // --- Matrix-vector products --------------------------------------------
  {
    const std::vector<double> x = RandomVector(rng, a.cols());
    std::string diff = CompareVectors(linalg::MatVec(a, x), ref::MatVec(a, x),
                                      kKernelTolerance, "MatVec");
    if (!diff.empty()) return diff;
  }
  {
    const std::vector<double> x = RandomVector(rng, a.rows());
    std::string diff =
        CompareVectors(linalg::TransposeMatVec(a, x), ref::TransposeMatVec(a, x),
                       kKernelTolerance, "TransposeMatVec");
    if (!diff.empty()) return diff;
  }

  // --- Matrix-matrix products --------------------------------------------
  if (std::string diff = CompareToDense(linalg::Transpose(a), ref::Transpose(a),
                                        kKernelTolerance, "Transpose");
      !diff.empty()) {
    return diff;
  }
  {
    const CsrMatrix b = RandomCsrShaped(rng, a.cols(), rng.NextInt(1, 12));
    std::string diff = CompareToDense(linalg::Multiply(a, b),
                                      ref::Multiply(a, b), kKernelTolerance,
                                      "Multiply");
    if (!diff.empty()) return diff;
  }
  {
    const CsrMatrix b = RandomCsrShaped(rng, rng.NextInt(1, 12), a.cols());
    std::string diff = CompareToDense(linalg::MultiplyABt(a, b),
                                      ref::MultiplyABt(a, b), kKernelTolerance,
                                      "MultiplyABt");
    if (!diff.empty()) return diff;
  }

  // --- Element-wise / structural -----------------------------------------
  {
    // Non-zero targets only (the kernel rejects 0: implicit zeros would
    // match). Small integers dominate the value distribution, so hits occur.
    static constexpr double kTargets[] = {1.0, -1.0, 2.0, -3.0};
    const double target = kTargets[rng.NextUint64(4)];
    std::string diff =
        CompareToDense(linalg::FilterEquals(a, target),
                       ref::FilterEquals(a, target), kKernelTolerance,
                       "FilterEquals");
    if (!diff.empty()) return diff;

    const auto got = linalg::UpperTriEquals(a, target);
    const auto want = ref::UpperTriEquals(a, target);
    if (got != want) {
      std::ostringstream os;
      os << "UpperTriEquals: " << got.size() << " hits vs " << want.size()
         << " in the reference (target " << target << ")";
      return os.str();
    }
  }
  {
    // Zero scales exercise the entry-dropping path.
    const std::vector<double> scale = RandomVector(rng, a.rows());
    std::string diff = CompareToDense(linalg::ScaleRows(a, scale),
                                      ref::ScaleRows(a, scale),
                                      kKernelTolerance, "ScaleRows");
    if (!diff.empty()) return diff;
  }
  {
    const CsrMatrix b = RandomCsrShaped(rng, a.rows(), a.cols());
    std::string diff = CompareToDense(linalg::Add(a, b), ref::Add(a, b),
                                      kKernelTolerance, "Add");
    if (!diff.empty()) return diff;
    diff = CompareToDense(linalg::Rbind(a, b), ref::Rbind(a, b),
                          kKernelTolerance, "Rbind");
    if (!diff.empty()) return diff;
  }
  if (std::string diff = CompareToDense(linalg::Binarize(a), ref::Binarize(a),
                                        kKernelTolerance, "Binarize");
      !diff.empty()) {
    return diff;
  }

  // --- Selection / reshaping ---------------------------------------------
  {
    const auto [got, got_rows] = linalg::RemoveEmptyRows(a);
    const auto [want, want_rows] = ref::RemoveEmptyRows(a);
    std::string diff =
        CompareIntVectors(got_rows, want_rows, "RemoveEmptyRows indices");
    if (!diff.empty()) return diff;
    diff = CompareToDense(got, want, kKernelTolerance, "RemoveEmptyRows");
    if (!diff.empty()) return diff;
  }
  {
    std::vector<uint8_t> keep(static_cast<size_t>(a.rows()));
    for (auto& k : keep) k = rng.NextBool(0.6) ? 1 : 0;
    std::string diff = CompareToDense(linalg::SelectRows(a, keep),
                                      ref::SelectRows(a, keep),
                                      kKernelTolerance, "SelectRows");
    if (!diff.empty()) return diff;
  }
  {
    const int64_t count = rng.NextInt(0, 2 * a.rows());
    std::vector<int64_t> rows(static_cast<size_t>(count));
    for (auto& r : rows) r = rng.NextInt(0, a.rows() - 1);  // duplicates OK
    std::string diff = CompareToDense(linalg::GatherRows(a, rows),
                                      ref::GatherRows(a, rows),
                                      kKernelTolerance, "GatherRows");
    if (!diff.empty()) return diff;
  }
  {
    std::vector<int64_t> cols;
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (rng.NextBool(0.5)) cols.push_back(c);
    }
    std::string diff = CompareToDense(linalg::SelectColumns(a, cols),
                                      ref::SelectColumns(a, cols),
                                      kKernelTolerance, "SelectColumns");
    if (!diff.empty()) return diff;
  }
  {
    const int64_t begin = rng.NextInt(0, a.rows());
    const int64_t end = rng.NextInt(begin, a.rows());
    std::string diff = CompareToDense(linalg::SliceRowRange(a, begin, end),
                                      ref::SliceRowRange(a, begin, end),
                                      kKernelTolerance, "SliceRowRange");
    if (!diff.empty()) return diff;
  }

  // --- Construction and ordering -----------------------------------------
  {
    const int64_t rows = rng.NextInt(1, 10);
    const int64_t cols = rng.NextInt(1, 10);
    const int64_t entries = rng.NextInt(0, 30);
    std::vector<int64_t> rix(static_cast<size_t>(entries));
    std::vector<int64_t> cix(static_cast<size_t>(entries));
    std::vector<double> weights(static_cast<size_t>(entries));
    for (int64_t i = 0; i < entries; ++i) {
      rix[i] = rng.NextInt(0, rows - 1);  // duplicates sum
      cix[i] = rng.NextInt(0, cols - 1);
      weights[i] = static_cast<double>(rng.NextInt(-2, 3));
    }
    std::string diff = CompareToDense(linalg::Table(rix, cix, rows, cols),
                                      ref::Table(rix, cix, rows, cols),
                                      kKernelTolerance, "Table");
    if (!diff.empty()) return diff;
    // Weighted overload: the expected table is accumulated inline (weights
    // at duplicate cells sum and can cancel to an implicit zero).
    DenseMatrix expected(rows, cols, 0.0);
    for (int64_t i = 0; i < entries; ++i) {
      expected.At(rix[i], cix[i]) += weights[i];
    }
    diff = CompareToDense(linalg::Table(rix, cix, weights, rows, cols),
                          expected, kKernelTolerance, "Table(weighted)");
    if (!diff.empty()) return diff;
  }
  {
    const std::vector<double> v = RandomVector(rng, rng.NextInt(0, 20));
    std::string diff = CompareVectors(linalg::CumSum(v), ref::CumSum(v),
                                      kKernelTolerance, "CumSum");
    if (!diff.empty()) return diff;
    diff = CompareVectors(linalg::CumProd(v), ref::CumProd(v),
                          kKernelTolerance, "CumProd");
    if (!diff.empty()) return diff;
    diff = CompareIntVectors(linalg::OrderDesc(v), ref::OrderDesc(v),
                             "OrderDesc");
    if (!diff.empty()) return diff;
  }
  return "";
}

}  // namespace

std::string CheckKernelDifferential(uint64_t seed, int rounds,
                                    InjectedBug inject) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::string diff = RunRound(rng, inject);
    if (!diff.empty()) {
      std::ostringstream os;
      os << "[kernel seed=" << seed << " round=" << round << "] " << diff;
      return os.str();
    }
  }
  return "";
}

}  // namespace sliceline::testing
