#ifndef SLICELINE_DATA_BINNING_H_
#define SLICELINE_DATA_BINNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sliceline::data {

/// Equi-width binner for continuous features (Section 5.1 preprocesses
/// continuous features into 10 equi-width bins). Maps doubles to 1-based bin
/// codes; NaN (missing) maps to a dedicated extra bin.
class EquiWidthBinner {
 public:
  /// Fits bin edges from the finite values of `values`. `num_bins` >= 1.
  static StatusOr<EquiWidthBinner> Fit(const std::vector<double>& values,
                                       int num_bins);

  /// Total domain including the missing bin if one was needed.
  int32_t domain() const {
    return static_cast<int32_t>(num_bins_ + (has_missing_bin_ ? 1 : 0));
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_bins() const { return num_bins_; }

  /// Bin code of a value, in [1, domain()]. Out-of-range values clamp to the
  /// first/last bin; NaN maps to the missing bin (or bin 1 if none).
  int32_t Encode(double v) const;

  /// Encodes a full column.
  std::vector<int32_t> EncodeAll(const std::vector<double>& values) const;

  /// Human-readable label of a bin code, e.g. "[3.5, 4.2)".
  std::string BinLabel(int32_t code) const;

 private:
  EquiWidthBinner(double lo, double hi, int num_bins, bool has_missing_bin)
      : lo_(lo), hi_(hi), num_bins_(num_bins),
        has_missing_bin_(has_missing_bin) {}

  double lo_;
  double hi_;
  int num_bins_;
  bool has_missing_bin_;
};

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_BINNING_H_
