#include "core/candidates.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace sliceline::core {

namespace {

/// FNV-1a over the column ids; used as the dedup slice identity. This plays
/// the role of the paper's ND-array-index slice IDs plus frame recoding
/// (Section 4.3): the map compares full column vectors, so hash collisions
/// cannot merge distinct slices.
struct ColumnsVecHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (int64_t c : key) {
      h ^= static_cast<uint64_t>(c);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// A candidate being accumulated across generating parent pairs.
struct Candidate {
  ParentBounds bounds;
  /// Distinct parent slice row ids seen so far (np of Equation 8 counts
  /// distinct parents, while each pair contributes two).
  std::vector<int32_t> parent_ids;
};

}  // namespace

SliceSet GeneratePairCandidates(const SliceSet& prev,
                                const EvalResult& prev_stats, int level,
                                const ScoringContext& context, int64_t sigma,
                                double score_threshold,
                                const SliceLineConfig& config,
                                const data::FeatureOffsets& offsets,
                                std::vector<ParentBounds>* bounds_out,
                                CandidateGenStats* gen_stats) {
  SLICELINE_CHECK_GE(level, 2);
  const int64_t parent_len = level - 1;
  CandidateGenStats stats;

  // Step 1: keep only valid parents (minimum support unless size pruning is
  // ablated away, and non-zero error -- a zero-error parent cannot produce a
  // positive-scoring child but the se > 0 filter is part of the problem
  // definition and stays on in every ablation configuration).
  std::vector<int32_t> valid;
  for (int64_t i = 0; i < prev.size(); ++i) {
    if (prev.Length(i) != parent_len) continue;
    const bool size_ok =
        !config.prune_size || prev_stats.sizes[i] >= static_cast<double>(sigma);
    if (size_ok && prev_stats.error_sums[i] > 0.0) {
      valid.push_back(static_cast<int32_t>(i));
    }
  }
  const int64_t p = static_cast<int64_t>(valid.size());

  // Accumulation state. Pairs are *streamed* (never materialized): each
  // compatible pair is merged, validity-checked, and folded into its
  // candidate immediately, so memory scales with surviving candidates, not
  // with the O(p^2) pair count.
  std::unordered_map<std::vector<int64_t>, Candidate, ColumnsVecHash> dedup;
  std::vector<std::pair<std::vector<int64_t>, Candidate>> nodedup;
  // np (Equation 8) counts the distinct parents of a *slice*, not of one
  // generating pair, so with deduplication ablated away the duplicate
  // entries must still share one parent-count group — otherwise every
  // level >= 3 candidate (level parents, pairs contribute two each) would
  // fail the np == L check and the no-dedup configuration would lose
  // exactness.
  std::unordered_map<std::vector<int64_t>, Candidate, ColumnsVecHash>
      parent_groups;
  std::vector<int64_t> merged(static_cast<size_t>(level));

  auto pair_bounds = [&](int32_t s1, int32_t s2) {
    ParentBounds bounds;
    bounds.AddParent(static_cast<int64_t>(prev_stats.sizes[s1]),
                     prev_stats.error_sums[s1], prev_stats.max_errors[s1]);
    bounds.AddParent(static_cast<int64_t>(prev_stats.sizes[s2]),
                     prev_stats.error_sums[s2], prev_stats.max_errors[s2]);
    return bounds;
  };

  // Early pruning at candidate creation: the Equation 3 bound is a minimum
  // over parents, so it only tightens as more parents are folded in -- a
  // candidate whose *pair* bound already fails the size or score test fails
  // the final test as well and can be dropped without creating an entry.
  auto pair_fails_forever = [&](const ParentBounds& bounds) {
    if (config.prune_size && bounds.size_ub < sigma) return true;
    if (config.prune_score) {
      const double ub = UpperBoundScore(context, sigma, bounds);
      if (!(ub > score_threshold && ub >= 0.0)) return true;
    }
    return false;
  };

  auto add_parent_once = [&](Candidate* cand, int32_t parent) {
    if (std::find(cand->parent_ids.begin(), cand->parent_ids.end(), parent) !=
        cand->parent_ids.end()) {
      return;
    }
    cand->parent_ids.push_back(parent);
    cand->bounds.AddParent(static_cast<int64_t>(prev_stats.sizes[parent]),
                           prev_stats.error_sums[parent],
                           prev_stats.max_errors[parent]);
  };

  // Parent-group variant: with deduplication off, the previous level holds
  // duplicate copies of one logical slice under different row ids, so np
  // must deduplicate by the parent's column vector, not its row id.
  auto add_group_parent = [&](Candidate* cand, int32_t parent) {
    for (int32_t existing : cand->parent_ids) {
      if (prev.Length(existing) == prev.Length(parent) &&
          std::equal(prev.Columns(existing),
                     prev.Columns(existing) + prev.Length(existing),
                     prev.Columns(parent))) {
        return;
      }
    }
    cand->parent_ids.push_back(parent);
    cand->bounds.AddParent(static_cast<int64_t>(prev_stats.sizes[parent]),
                           prev_stats.error_sums[parent],
                           prev_stats.max_errors[parent]);
  };

  // Processes one compatible parent pair (s1 < s2 as prev-row indices).
  auto process_pair = [&](int32_t s1, int32_t s2) {
    ++stats.pairs;
    // Cheap pre-check before the merge: a pair whose own bound already
    // fails can at most add parent information to an existing candidate,
    // and that candidate's full-parent bound fails through this pair's
    // minima as well, so the final filter removes it regardless.
    if (pair_fails_forever(pair_bounds(s1, s2))) {
      ++stats.pruned;
      return;
    }
    // Sorted union of the two parents.
    const int64_t* c1 = prev.Columns(s1);
    const int64_t* c2 = prev.Columns(s2);
    int64_t i1 = 0;
    int64_t i2 = 0;
    int64_t out = 0;
    while (i1 < parent_len && i2 < parent_len && out < level) {
      if (c1[i1] == c2[i2]) {
        merged[out++] = c1[i1];
        ++i1;
        ++i2;
      } else if (c1[i1] < c2[i2]) {
        merged[out++] = c1[i1++];
      } else {
        merged[out++] = c2[i2++];
      }
    }
    while (i1 < parent_len && out < level) merged[out++] = c1[i1++];
    while (i2 < parent_len && out < level) merged[out++] = c2[i2++];
    if (out != level || i1 != parent_len || i2 != parent_len) return;

    // One predicate per feature: parents agree on the shared columns, so
    // only the two differing columns can collide on a feature.
    for (int64_t k = 1; k < level; ++k) {
      if (offsets.FeatureOfColumn(merged[k - 1]) ==
          offsets.FeatureOfColumn(merged[k])) {
        return;
      }
    }

    if (config.deduplicate) {
      auto [it, inserted] = dedup.try_emplace(merged);
      if (!inserted) ++stats.duplicates;
      add_parent_once(&it->second, s1);
      add_parent_once(&it->second, s2);
    } else {
      Candidate cand;
      add_parent_once(&cand, s1);
      add_parent_once(&cand, s2);
      if (config.prune_parents) {
        auto [it, inserted] = parent_groups.try_emplace(merged);
        add_group_parent(&it->second, s1);
        add_group_parent(&it->second, s2);
      }
      nodedup.emplace_back(merged, std::move(cand));
    }
  };

  // Step 2+3: enumerate compatible pairs (|intersection| == L-2) and fold
  // them in. For L == 2 every cross-feature pair of basic slices is
  // compatible; for deeper levels column co-occurrences are counted through
  // an inverted index, which touches exactly the non-zero entries of the
  // S*S^T self-join product (Equation 6).
  if (level == 2) {
    for (int64_t a = 0; a < p; ++a) {
      for (int64_t b = a + 1; b < p; ++b) {
        process_pair(valid[a], valid[b]);
      }
    }
  } else {
    // Flat per-column inverted index over the one-hot column space (the
    // non-zero structure of S^T); entries are ascending by construction.
    std::vector<std::vector<int32_t>> column_index(
        static_cast<size_t>(offsets.total));
    for (int64_t a = 0; a < p; ++a) {
      const int32_t s = valid[a];
      for (int64_t k = 0; k < prev.Length(s); ++k) {
        column_index[prev.Columns(s)[k]].push_back(static_cast<int32_t>(a));
      }
    }
    std::vector<int32_t> overlap(static_cast<size_t>(p), 0);
    std::vector<int32_t> touched;
    for (int64_t a = 0; a < p; ++a) {
      touched.clear();
      const int32_t s = valid[a];
      for (int64_t k = 0; k < prev.Length(s); ++k) {
        const auto& list = column_index[prev.Columns(s)[k]];
        // Only count positions after a (upper triangle of S S^T).
        auto it = std::upper_bound(list.begin(), list.end(),
                                   static_cast<int32_t>(a));
        for (; it != list.end(); ++it) {
          if (overlap[*it]++ == 0) touched.push_back(*it);
        }
      }
      for (int32_t b : touched) {
        if (overlap[b] == level - 2) process_pair(s, valid[b]);
        overlap[b] = 0;
      }
    }
  }

  // Step 4: final Equation 9 pruning over the accumulated candidates.
  SliceSet out;
  bounds_out->clear();
  auto finalize = [&](const std::vector<int64_t>& columns,
                      const Candidate& cand, int distinct_parents) {
    bool keep = true;
    if (config.prune_size && cand.bounds.size_ub < sigma) keep = false;
    if (keep && config.prune_parents && distinct_parents != level) {
      keep = false;
    }
    if (keep && config.prune_score) {
      const double ub = UpperBoundScore(context, sigma, cand.bounds);
      if (!(ub > score_threshold && ub >= 0.0)) keep = false;
    }
    if (!keep) {
      ++stats.pruned;
      return;
    }
    out.Add(columns);
    bounds_out->push_back(cand.bounds);
  };
  if (config.deduplicate) {
    // Hash-map iteration order is not deterministic across platforms; emit
    // candidates in lexicographic column order so runs (and the two
    // engines) agree on candidate order and top-K tie-breaking.
    std::vector<const std::pair<const std::vector<int64_t>, Candidate>*>
        ordered;
    ordered.reserve(dedup.size());
    for (const auto& entry : dedup) ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* entry : ordered) {
      finalize(entry->first, entry->second, entry->second.bounds.parents);
    }
  } else {
    for (const auto& [columns, cand] : nodedup) {
      // Each duplicate entry keeps its own (pair-derived) bounds — that is
      // the dedup ablation — but the parent count comes from the shared
      // group, where all generating pairs have been folded in.
      const int distinct_parents =
          config.prune_parents ? parent_groups.find(columns)->second.bounds.parents
                               : cand.bounds.parents;
      finalize(columns, cand, distinct_parents);
    }
  }
  if (gen_stats != nullptr) *gen_stats = stats;
  return out;
}

}  // namespace sliceline::core
