// Stream-equivalence metamorphic check: splitting a dataset into a base
// plus appends and running the incremental StreamingSliceFinder
// (append* -> find, with finds interleaved to prime and continue the
// per-candidate statistic chains) must be BIT-identical to a one-shot run
// on the concatenated data — at every prefix, at every available ISA, with
// and without segment compaction, and through the full-rerun fallback.
#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sliceline.h"
#include "linalg/kernels_simd.h"
#include "stream/stream_finder.h"
#include "testing/checks.h"

namespace sliceline::testing {
namespace {

using linalg::SimdIsa;

std::string DescribeCase(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  os << "[profile=" << fuzz_case.profile << " seed=" << fuzz_case.seed
     << " n=" << fuzz_case.x0.rows() << " m=" << fuzz_case.x0.cols() << "]";
  return os.str();
}

bool BitEqual(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

std::string CompareBitIdentical(const core::SliceLineResult& want,
                                const core::SliceLineResult& got,
                                const std::string& label) {
  std::ostringstream os;
  if (want.top_k.size() != got.top_k.size()) {
    os << label << ": top-K size " << got.top_k.size() << " vs "
       << want.top_k.size();
    return os.str();
  }
  for (size_t i = 0; i < want.top_k.size(); ++i) {
    const core::Slice& a = want.top_k[i];
    const core::Slice& b = got.top_k[i];
    if (a.predicates != b.predicates) {
      os << label << ": rank " << i << " predicates differ";
      return os.str();
    }
    if (a.stats.size != b.stats.size ||
        !BitEqual(a.stats.score, b.stats.score) ||
        !BitEqual(a.stats.error_sum, b.stats.error_sum) ||
        !BitEqual(a.stats.max_error, b.stats.max_error)) {
      os << label << ": rank " << i << " stats not bit-identical (score "
         << a.stats.score << " vs " << b.stats.score << ", error_sum "
         << a.stats.error_sum << " vs " << b.stats.error_sum << ")";
      return os.str();
    }
  }
  if (want.total_evaluated != got.total_evaluated ||
      want.levels.size() != got.levels.size()) {
    os << label << ": level accounting differs (evaluated "
       << got.total_evaluated << " vs " << want.total_evaluated << ")";
    return os.str();
  }
  return "";
}

data::IntMatrix RowSlice(const data::IntMatrix& x0, int64_t begin,
                         int64_t end) {
  data::IntMatrix out(end - begin, x0.cols());
  for (int64_t r = begin; r < end; ++r) {
    const int32_t* src = x0.row(r);
    std::copy(src, src + x0.cols(), out.row(r - begin));
  }
  return out;
}

struct ScopedIsaReset {
  ~ScopedIsaReset() { linalg::ClearForcedIsa(); }
};

/// From-scratch reference at a row prefix, with the same frozen offsets the
/// streaming finder uses (so the comparison covers level accounting too).
StatusOr<core::SliceLineResult> ReferenceRun(
    const FuzzCase& fuzz_case, const data::FeatureOffsets& offsets,
    int64_t prefix, const core::SliceLineConfig& config) {
  const data::IntMatrix x0 = RowSlice(fuzz_case.x0, 0, prefix);
  const std::vector<double> errors(
      fuzz_case.errors.begin(),
      fuzz_case.errors.begin() + static_cast<size_t>(prefix));
  const core::SliceEvaluator evaluator(x0, offsets, errors);
  return core::RunSliceLineWithBackend(evaluator, config);
}

std::string RunEquivalenceRound(const FuzzCase& fuzz_case,
                                const core::SliceLineConfig& config,
                                Rng& rng, double compact_ratio) {
  const int64_t n = fuzz_case.x0.rows();
  // Base takes 40-80% of the rows; the rest arrives as 1-4 appends.
  const int64_t base_rows = std::max<int64_t>(
      1, (n * (40 + static_cast<int64_t>(rng.NextUint64(41)))) / 100);
  std::vector<int64_t> cuts{base_rows};
  const int num_appends = 1 + static_cast<int>(rng.NextUint64(4));
  for (int a = 0; a < num_appends; ++a) {
    cuts.push_back(base_rows +
                   static_cast<int64_t>(rng.NextUint64(
                       static_cast<uint64_t>(n - base_rows + 1))));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.push_back(n);

  stream::StreamOptions options;
  options.domains = fuzz_case.x0.ColMaxs();
  options.compact_ratio = compact_ratio;
  options.full_rerun_fraction = 0.0;  // force the incremental path
  const data::FeatureOffsets offsets =
      stream::OffsetsFromDomains(options.domains);

  auto finder_or = stream::StreamingSliceFinder::Create(
      RowSlice(fuzz_case.x0, 0, cuts[0]),
      std::vector<double>(
          fuzz_case.errors.begin(),
          fuzz_case.errors.begin() + static_cast<size_t>(cuts[0])),
      options);
  if (!finder_or.ok()) {
    return "streaming create failed: " + finder_or.status().ToString();
  }
  std::unique_ptr<stream::StreamingSliceFinder> finder =
      std::move(finder_or.value());

  int64_t prefix = cuts[0];
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    // Find at this prefix (primes / continues the statistic cache), then
    // append the next chunk.
    auto got = finder->Find(config);
    if (!got.ok()) return "streaming find failed: " + got.status().ToString();
    auto want = ReferenceRun(fuzz_case, offsets, prefix, config);
    if (!want.ok()) return "reference run failed: " + want.status().ToString();
    std::ostringstream label;
    label << "prefix=" << prefix << " compact_ratio=" << compact_ratio;
    std::string diff = CompareBitIdentical(*want, *got, label.str());
    if (!diff.empty()) return diff;

    const int64_t next = cuts[c + 1];
    if (next > prefix) {
      Status appended = finder->Append(
          RowSlice(fuzz_case.x0, prefix, next),
          std::vector<double>(
              fuzz_case.errors.begin() + static_cast<size_t>(prefix),
              fuzz_case.errors.begin() + static_cast<size_t>(next)));
      if (!appended.ok()) {
        return "streaming append failed: " + appended.ToString();
      }
      prefix = next;
    }
  }

  // Final prefix covers the whole dataset.
  auto got = finder->Find(config);
  if (!got.ok()) return "streaming find failed: " + got.status().ToString();
  auto want = ReferenceRun(fuzz_case, offsets, n, config);
  if (!want.ok()) return "reference run failed: " + want.status().ToString();
  std::string diff = CompareBitIdentical(*want, *got, "final");
  if (!diff.empty()) return diff;

  // A repeat find with no intervening append must answer entirely from the
  // cache: no delta continuations, no from-scratch evaluations.
  auto again = finder->Find(config);
  if (!again.ok()) {
    return "repeat find failed: " + again.status().ToString();
  }
  if (again.value().outcome.stream_candidates_delta != 0 ||
      again.value().outcome.stream_candidates_full != 0) {
    std::ostringstream os;
    os << "repeat find re-evaluated candidates (delta="
       << again.value().outcome.stream_candidates_delta
       << " full=" << again.value().outcome.stream_candidates_full << ")";
    return os.str();
  }
  diff = CompareBitIdentical(*want, *again, "repeat");
  if (!diff.empty()) return diff;
  return "";
}

}  // namespace

std::string CheckStreamEquivalence(const FuzzCase& fuzz_case) {
  if (fuzz_case.x0.rows() < 4) return "";
  // Bound enumeration the same way the SIMD differential does: the subject
  // here is incremental re-evaluation, not the pruning ablation.
  core::SliceLineConfig config = fuzz_case.config;
  config.eval_strategy = core::SliceLineConfig::EvalStrategy::kBitset;
  config.prune_size = true;
  config.prune_score = true;
  config.prune_parents = true;
  config.deduplicate = true;
  config.max_level = config.max_level == 0 ? 3 : std::min(config.max_level, 3);

  // Invalid inputs (non-finite or negative errors) are the oracle check's
  // domain; mirror its bail-out.
  {
    auto probe = core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, config);
    if (!probe.ok()) return "";
  }

  Rng rng(fuzz_case.seed * 0x9e3779b97f4a7c15ULL + 2);
  ScopedIsaReset reset;
  for (SimdIsa isa : linalg::AvailableIsas()) {
    linalg::ForceIsa(isa);
    // One round without compaction, one that compacts aggressively: both
    // must be bit-identical to the one-shot run.
    for (double compact_ratio : {0.0, 0.1}) {
      std::string failure =
          RunEquivalenceRound(fuzz_case, config, rng, compact_ratio);
      if (!failure.empty()) {
        return DescribeCase(fuzz_case) + " isa=" + linalg::IsaName(isa) +
               " " + failure;
      }
    }
  }
  linalg::ClearForcedIsa();

  // Fallback path: a finder whose threshold always trips must agree with
  // the one-shot run and record the fallback in the outcome.
  stream::StreamOptions fallback_options;
  fallback_options.domains = fuzz_case.x0.ColMaxs();
  fallback_options.full_rerun_fraction = 1e-9;
  const int64_t half = std::max<int64_t>(1, fuzz_case.x0.rows() / 2);
  auto finder_or = stream::StreamingSliceFinder::Create(
      RowSlice(fuzz_case.x0, 0, half),
      std::vector<double>(
          fuzz_case.errors.begin(),
          fuzz_case.errors.begin() + static_cast<size_t>(half)),
      fallback_options);
  if (!finder_or.ok()) {
    return DescribeCase(fuzz_case) +
           " fallback create failed: " + finder_or.status().ToString();
  }
  auto& finder = *finder_or.value();
  auto primed = finder.Find(config);
  if (!primed.ok()) {
    return DescribeCase(fuzz_case) +
           " fallback prime failed: " + primed.status().ToString();
  }
  Status appended = finder.Append(
      RowSlice(fuzz_case.x0, half, fuzz_case.x0.rows()),
      std::vector<double>(
          fuzz_case.errors.begin() + static_cast<size_t>(half),
          fuzz_case.errors.end()));
  if (!appended.ok()) {
    return DescribeCase(fuzz_case) +
           " fallback append failed: " + appended.ToString();
  }
  auto got = finder.Find(config);
  if (!got.ok()) {
    return DescribeCase(fuzz_case) +
           " fallback find failed: " + got.status().ToString();
  }
  if (!got.value().outcome.stream_full_fallback) {
    return DescribeCase(fuzz_case) + " fallback was not taken";
  }
  const data::FeatureOffsets offsets =
      stream::OffsetsFromDomains(fallback_options.domains);
  auto want = ReferenceRun(fuzz_case, offsets, fuzz_case.x0.rows(), config);
  if (!want.ok()) {
    return DescribeCase(fuzz_case) +
           " fallback reference failed: " + want.status().ToString();
  }
  std::string diff = CompareBitIdentical(*want, *got, "fallback");
  if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  return "";
}

}  // namespace sliceline::testing
