// Reproduces Figure 7(b) (Scalability with Parallelism): the three
// parallelization strategies the paper compares on its Spark cluster,
// mapped onto this repo's executors:
//   MT-Ops    -> data-parallel scan-shared kernels (barrier per operation),
//   MT-PFor   -> task-parallel per-slice evaluation (parfor, no barriers),
//   Dist-PFor -> the simulated distributed executor (row-sharded X,
//                broadcast S, aggregate partial statistics).
// On a single-core host the distributed rows report the simulated cluster
// wall-clock: critical path (slowest worker per round) plus the modeled
// communication cost, which is how the shape of the paper's 2x (MT-PFor)
// and further 1.9x (Dist-PFor) improvements is reproduced.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "dist/distributed_evaluator.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 7(b): Parallelization Strategies",
                "SliceLine Figure 7(b)");
  data::EncodedDataset ds = bench::Load("uscensus", 24000);
  std::printf("dataset: %s n=%s\n\n", ds.name.c_str(),
              FormatWithCommas(ds.n()).c_str());

  core::SliceLineConfig base;
  base.alpha = 0.95;
  base.k = 4;
  base.max_level = 3;

  // MT-Ops: data-parallel operations with one barrier per op (one huge
  // block -> every level is a single scan-shared operation).
  core::SliceLineConfig mt_ops = base;
  mt_ops.eval_strategy = core::SliceLineConfig::EvalStrategy::kScanBlock;
  mt_ops.eval_block_size = 1 << 20;
  auto ops_result = core::RunSliceLine(ds, mt_ops);

  // MT-PFor: task-parallel per-slice evaluation without per-op barriers.
  core::SliceLineConfig mt_pfor = base;
  mt_pfor.eval_strategy = core::SliceLineConfig::EvalStrategy::kIndex;
  auto pfor_result = core::RunSliceLine(ds, mt_pfor);

  if (!ops_result.ok() || !pfor_result.ok()) {
    std::fprintf(stderr, "local runs failed\n");
    return 1;
  }
  std::printf("%-22s %14s %14s\n", "strategy", "measured[s]",
              "simulated[s]");
  std::printf("%-22s %14s %14s\n", "MT-Ops (data-par)",
              FormatDouble(ops_result->total_seconds, 3).c_str(), "-");
  std::printf("%-22s %14s %14s\n", "MT-PFor (task-par)",
              FormatDouble(pfor_result->total_seconds, 3).c_str(), "-");

  for (int workers : {2, 4, 8, 12}) {
    dist::DistOptions options;
    options.workers = workers;
    dist::DistCostStats cost;
    auto result = dist::RunSliceLineDistributed(ds.x0, ds.errors, base,
                                                options, &cost);
    if (!result.ok()) {
      std::fprintf(stderr, "dist run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const double simulated =
        cost.critical_path_seconds + cost.EstimatedCommSeconds(options);
    char label[64];
    std::snprintf(label, sizeof(label), "Dist-PFor (%d workers)", workers);
    std::printf("%-22s %14s %14s   [compute=%.3fs comm=%.3fs rounds=%lld "
                "bcast=%sB]\n",
                label, FormatDouble(result->total_seconds, 3).c_str(),
                FormatDouble(simulated, 3).c_str(),
                cost.critical_path_seconds,
                cost.EstimatedCommSeconds(options),
                static_cast<long long>(cost.rounds),
                FormatWithCommas(cost.broadcast_bytes).c_str());
  }
  // Fault-tolerance rider: the same distributed run under an injected fault
  // schedule (transient failures, stragglers, corrupted partials, permanent
  // losses). The top-K must match the fault-free run; the recovery cost
  // shows up as extra rounds, backoff, and duplicated compute.
  std::printf("\nFault-tolerant Dist-PFor (8 workers, seeded faults):\n");
  dist::DistOptions clean_opts;
  clean_opts.workers = 8;
  auto clean = dist::RunSliceLineDistributed(ds.x0, ds.errors, base,
                                             clean_opts, nullptr);
  dist::DistOptions faulty_opts = clean_opts;
  faulty_opts.fault.seed = 42;
  faulty_opts.fault.transient_rate = 0.25;
  faulty_opts.fault.straggler_rate = 0.2;
  faulty_opts.fault.corruption_rate = 0.1;
  faulty_opts.fault.loss_rate = 0.05;
  dist::DistCostStats faulty_cost;
  dist::DistFaultStats faults;
  auto faulty = dist::RunSliceLineDistributed(ds.x0, ds.errors, base,
                                              faulty_opts, &faulty_cost,
                                              &faults);
  if (!clean.ok() || !faulty.ok()) {
    std::fprintf(stderr, "fault-tolerance runs failed\n");
    return 1;
  }
  bool identical = clean->top_k.size() == faulty->top_k.size();
  for (size_t i = 0; identical && i < clean->top_k.size(); ++i) {
    identical = clean->top_k[i].predicates == faulty->top_k[i].predicates &&
                clean->top_k[i].stats.score == faulty->top_k[i].stats.score;
  }
  std::printf("  recovery: %s\n", faults.Summary().c_str());
  std::printf("  rounds=%lld simulated=%ss top-K identical to fault-free: "
              "%s\n",
              static_cast<long long>(faulty_cost.rounds),
              FormatDouble(faulty_cost.critical_path_seconds +
                               faulty_cost.EstimatedCommSeconds(faulty_opts),
                           3)
                  .c_str(),
              identical ? "yes" : "NO (bug)");

  std::printf(
      "\nExpected shape (paper): MT-PFor beats MT-Ops (~2x, no per-op\n"
      "barriers); Dist-PFor's simulated wall-clock improves further with\n"
      "workers but pays broadcast/aggregation overhead per round.\n");
  return 0;
}
