#ifndef SLICELINE_CORE_CANDIDATES_H_
#define SLICELINE_CORE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/scoring.h"
#include "core/slice.h"
#include "data/onehot.h"

namespace sliceline::core {

/// Counters describing one level's candidate generation.
struct CandidateGenStats {
  int64_t pairs = 0;        ///< compatible parent pairs joined
  int64_t duplicates = 0;   ///< pair-products merged by deduplication
  int64_t pruned = 0;       ///< candidates removed by Equation 9 pruning
};

/// Generates the level-L slice candidates from the evaluated level-(L-1)
/// slices (Section 4.3): filters valid parents (ss >= sigma, se > 0), joins
/// compatible pairs (overlap L-2, the S*S^T == L-2 self-join), discards
/// slices with two predicates on one feature, deduplicates via slice
/// identity, aggregates parent bounds as minima over all enumerated parents,
/// and applies the Equation 9 pruning filter
///   ss_ub >= sigma  &&  sc_ub > sc_k  &&  sc_ub >= 0  &&  np == L,
/// with each conjunct controlled by the corresponding SliceLineConfig toggle
/// (the Figure 3 ablation).
///
/// `prev` / `prev_stats` hold the evaluated slices of level L-1 (for L == 2,
/// the valid basic slices). Returns the surviving candidates; their parent
/// bounds are written to `bounds_out` (aligned), generation counters to
/// `gen_stats` if non-null.
SliceSet GeneratePairCandidates(const SliceSet& prev,
                                const EvalResult& prev_stats, int level,
                                const ScoringContext& context, int64_t sigma,
                                double score_threshold,
                                const SliceLineConfig& config,
                                const data::FeatureOffsets& offsets,
                                std::vector<ParentBounds>* bounds_out,
                                CandidateGenStats* gen_stats);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_CANDIDATES_H_
