#include "serve/protocol.h"

#include <sstream>

#include "obs/json_validate.h"

namespace sliceline::serve {

namespace {

struct CodeName {
  StatusCode code;
  const char* name;
};

constexpr CodeName kCodeNames[] = {
    {StatusCode::kInvalidArgument, "invalid_argument"},
    {StatusCode::kOutOfRange, "out_of_range"},
    {StatusCode::kNotFound, "not_found"},
    {StatusCode::kIoError, "io_error"},
    {StatusCode::kNotImplemented, "not_implemented"},
    {StatusCode::kInternal, "internal"},
    {StatusCode::kCancelled, "cancelled"},
    {StatusCode::kDeadlineExceeded, "deadline_exceeded"},
    {StatusCode::kResourceExhausted, "resource_exhausted"},
};

const char* TerminationNameOf(RunOutcome::Termination t) {
  return RunOutcome::TerminationName(t);
}

StatusOr<RunOutcome::Termination> TerminationFromName(
    const std::string& name) {
  using T = RunOutcome::Termination;
  for (T t : {T::kCompleted, T::kDegraded, T::kDeadlineExceeded, T::kCancelled,
              T::kBudgetExhausted}) {
    if (name == TerminationNameOf(t)) return t;
  }
  return Status::InvalidArgument("unknown termination '" + name + "'");
}

/// Integer-typed object member: accepts any JSON number (the parser stores
/// numbers as doubles; protocol integers stay well under 2^53).
StatusOr<int64_t> OptionalInt(const obs::JsonValue& object,
                              const std::string& key, int64_t fallback) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr) return fallback;
  if (!member->is_number()) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return static_cast<int64_t>(member->number_value());
}

StatusOr<double> OptionalDouble(const obs::JsonValue& object,
                                const std::string& key, double fallback) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr) return fallback;
  if (!member->is_number()) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return member->number_value();
}

StatusOr<std::string> OptionalString(const obs::JsonValue& object,
                                     const std::string& key,
                                     const std::string& fallback) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr) return fallback;
  if (!member->is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return member->string_value();
}

StatusOr<bool> OptionalBool(const obs::JsonValue& object,
                            const std::string& key, bool fallback) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr) return fallback;
  if (!member->is_bool()) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return member->bool_value();
}

}  // namespace

std::string ErrorCodeForStatus(const Status& status) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == status.code()) return entry.name;
  }
  return "internal";
}

Status StatusFromError(const std::string& code, const std::string& message) {
  for (const CodeName& entry : kCodeNames) {
    if (code == entry.name) return Status(entry.code, message);
  }
  return Status::Internal("(" + code + ") " + message);
}

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kRegisterDataset: return "register_dataset";
    case RequestType::kFindSlices: return "find_slices";
    case RequestType::kGetStatus: return "get_status";
    case RequestType::kCancel: return "cancel";
    case RequestType::kListDatasets: return "list_datasets";
    case RequestType::kServerStats: return "server_stats";
    case RequestType::kGetReport: return "get_report";
    case RequestType::kGetTrace: return "get_trace";
    case RequestType::kAppendRows: return "append_rows";
    case RequestType::kWatchDataset: return "watch";
    case RequestType::kUnwatchDataset: return "unwatch";
    case RequestType::kUnregisterDataset: return "unregister_dataset";
  }
  return "unknown";
}

StatusOr<RequestType> RequestTypeFromName(const std::string& name) {
  for (RequestType t :
       {RequestType::kRegisterDataset, RequestType::kFindSlices,
        RequestType::kGetStatus, RequestType::kCancel,
        RequestType::kListDatasets, RequestType::kServerStats,
        RequestType::kGetReport, RequestType::kGetTrace,
        RequestType::kAppendRows, RequestType::kWatchDataset,
        RequestType::kUnwatchDataset, RequestType::kUnregisterDataset}) {
    if (name == RequestTypeName(t)) return t;
  }
  return Status::InvalidArgument("unknown request type '" + name + "'");
}

StatusOr<Request> ParseRequest(const std::string& line) {
  // Validate first so malformed requests get the validator's precise
  // message; ParseJson accepts exactly the same grammar.
  const std::string error = obs::ValidateStrictJson(line);
  if (!error.empty()) {
    return Status::InvalidArgument("malformed request: " + error);
  }
  SLICELINE_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ParseJson(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request request;
  SLICELINE_ASSIGN_OR_RETURN(const std::string type_name,
                             root.RequireString("type"));
  SLICELINE_ASSIGN_OR_RETURN(request.type, RequestTypeFromName(type_name));
  SLICELINE_ASSIGN_OR_RETURN(request.id, OptionalString(root, "id", ""));

  switch (request.type) {
    case RequestType::kRegisterDataset: {
      RegisterDatasetRequest& r = request.register_dataset;
      SLICELINE_ASSIGN_OR_RETURN(r.name, root.RequireString("name"));
      SLICELINE_ASSIGN_OR_RETURN(r.csv_path, root.RequireString("csv"));
      SLICELINE_ASSIGN_OR_RETURN(r.label, root.RequireString("label"));
      SLICELINE_ASSIGN_OR_RETURN(r.task, OptionalString(root, "task", "reg"));
      SLICELINE_ASSIGN_OR_RETURN(r.bins, OptionalInt(root, "bins", 10));
      if (const obs::JsonValue* drop = root.Find("drop")) {
        if (!drop->is_array()) {
          return Status::InvalidArgument("field 'drop' must be an array");
        }
        for (const obs::JsonValue& item : drop->array_items()) {
          if (!item.is_string()) {
            return Status::InvalidArgument(
                "field 'drop' must contain only strings");
          }
          r.drop.push_back(item.string_value());
        }
      }
      break;
    }
    case RequestType::kFindSlices: {
      FindSlicesRequest& f = request.find_slices;
      SLICELINE_ASSIGN_OR_RETURN(f.dataset, root.RequireString("dataset"));
      SLICELINE_ASSIGN_OR_RETURN(f.engine,
                                 OptionalString(root, "engine", "native"));
      SLICELINE_ASSIGN_OR_RETURN(f.k, OptionalInt(root, "k", 4));
      SLICELINE_ASSIGN_OR_RETURN(f.alpha, OptionalDouble(root, "alpha", 0.95));
      SLICELINE_ASSIGN_OR_RETURN(f.sigma, OptionalInt(root, "sigma", 0));
      SLICELINE_ASSIGN_OR_RETURN(f.max_level,
                                 OptionalInt(root, "max_level", 0));
      SLICELINE_ASSIGN_OR_RETURN(f.deadline_ms,
                                 OptionalInt(root, "deadline_ms", 0));
      SLICELINE_ASSIGN_OR_RETURN(f.memory_budget_mb,
                                 OptionalInt(root, "memory_budget_mb", 0));
      SLICELINE_ASSIGN_OR_RETURN(f.wait, OptionalBool(root, "wait", true));
      break;
    }
    case RequestType::kAppendRows: {
      AppendRowsRequest& a = request.append_rows;
      SLICELINE_ASSIGN_OR_RETURN(a.dataset, root.RequireString("dataset"));
      SLICELINE_ASSIGN_OR_RETURN(a.xfer, OptionalString(root, "xfer", ""));
      SLICELINE_ASSIGN_OR_RETURN(a.chunk, OptionalInt(root, "chunk", 0));
      SLICELINE_ASSIGN_OR_RETURN(a.chunks, OptionalInt(root, "chunks", 1));
      const obs::JsonValue* rows = root.Find("rows");
      if (rows == nullptr || !rows->is_array()) {
        return Status::InvalidArgument("append_rows needs a 'rows' array");
      }
      for (const obs::JsonValue& row : rows->array_items()) {
        if (!row.is_array()) {
          return Status::InvalidArgument("'rows' entries must be arrays");
        }
        std::vector<std::string> cells;
        cells.reserve(row.array_items().size());
        for (const obs::JsonValue& cell : row.array_items()) {
          if (!cell.is_string()) {
            return Status::InvalidArgument("row cells must be strings");
          }
          cells.push_back(cell.string_value());
        }
        a.rows.push_back(std::move(cells));
      }
      const obs::JsonValue* errors = root.Find("errors");
      if (errors == nullptr || !errors->is_array()) {
        return Status::InvalidArgument("append_rows needs an 'errors' array");
      }
      for (const obs::JsonValue& error : errors->array_items()) {
        if (!error.is_number()) {
          return Status::InvalidArgument("'errors' entries must be numbers");
        }
        a.errors.push_back(error.number_value());
      }
      break;
    }
    case RequestType::kWatchDataset: {
      WatchRequest& w = request.watch;
      SLICELINE_ASSIGN_OR_RETURN(w.dataset, root.RequireString("dataset"));
      SLICELINE_ASSIGN_OR_RETURN(w.tau, OptionalDouble(root, "tau", 1.0));
      SLICELINE_ASSIGN_OR_RETURN(w.hysteresis,
                                 OptionalDouble(root, "hysteresis", 0.0));
      SLICELINE_ASSIGN_OR_RETURN(w.window_rows,
                                 OptionalInt(root, "window_rows", 0));
      SLICELINE_ASSIGN_OR_RETURN(w.window_seconds,
                                 OptionalDouble(root, "window_seconds", 0.0));
      SLICELINE_ASSIGN_OR_RETURN(w.k, OptionalInt(root, "k", 4));
      SLICELINE_ASSIGN_OR_RETURN(w.alpha, OptionalDouble(root, "alpha", 0.95));
      SLICELINE_ASSIGN_OR_RETURN(w.sigma, OptionalInt(root, "sigma", 0));
      SLICELINE_ASSIGN_OR_RETURN(w.max_level,
                                 OptionalInt(root, "max_level", 0));
      break;
    }
    case RequestType::kUnwatchDataset:
    case RequestType::kUnregisterDataset: {
      SLICELINE_ASSIGN_OR_RETURN(request.dataset,
                                 root.RequireString("dataset"));
      break;
    }
    case RequestType::kGetStatus: {
      // Two forms: job status ("job") and watch status ("dataset").
      if (root.Find("dataset") != nullptr) {
        SLICELINE_ASSIGN_OR_RETURN(request.dataset,
                                   root.RequireString("dataset"));
      } else {
        SLICELINE_ASSIGN_OR_RETURN(request.job_id, root.RequireInt("job"));
      }
      break;
    }
    case RequestType::kCancel:
    case RequestType::kGetReport:
    case RequestType::kGetTrace: {
      SLICELINE_ASSIGN_OR_RETURN(request.job_id, root.RequireInt("job"));
      break;
    }
    case RequestType::kListDatasets:
    case RequestType::kServerStats:
      break;
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::ostringstream os;
  obs::JsonWriter writer(os);
  writer.BeginObject();
  writer.Key("type");
  writer.String(RequestTypeName(request.type));
  if (!request.id.empty()) {
    writer.Key("id");
    writer.String(request.id);
  }
  switch (request.type) {
    case RequestType::kRegisterDataset: {
      const RegisterDatasetRequest& r = request.register_dataset;
      writer.Key("name");
      writer.String(r.name);
      writer.Key("csv");
      writer.String(r.csv_path);
      writer.Key("label");
      writer.String(r.label);
      writer.Key("task");
      writer.String(r.task);
      writer.Key("bins");
      writer.Int(r.bins);
      if (!r.drop.empty()) {
        writer.Key("drop");
        writer.BeginArray();
        for (const std::string& column : r.drop) writer.String(column);
        writer.EndArray();
      }
      break;
    }
    case RequestType::kFindSlices: {
      const FindSlicesRequest& f = request.find_slices;
      writer.Key("dataset");
      writer.String(f.dataset);
      writer.Key("engine");
      writer.String(f.engine);
      writer.Key("k");
      writer.Int(f.k);
      writer.Key("alpha");
      writer.Double(f.alpha);
      writer.Key("sigma");
      writer.Int(f.sigma);
      writer.Key("max_level");
      writer.Int(f.max_level);
      writer.Key("deadline_ms");
      writer.Int(f.deadline_ms);
      writer.Key("memory_budget_mb");
      writer.Int(f.memory_budget_mb);
      writer.Key("wait");
      writer.Bool(f.wait);
      break;
    }
    case RequestType::kAppendRows: {
      const AppendRowsRequest& a = request.append_rows;
      writer.Key("dataset");
      writer.String(a.dataset);
      if (!a.xfer.empty()) {
        writer.Key("xfer");
        writer.String(a.xfer);
      }
      writer.Key("chunk");
      writer.Int(a.chunk);
      writer.Key("chunks");
      writer.Int(a.chunks);
      writer.Key("rows");
      writer.BeginArray();
      for (const std::vector<std::string>& row : a.rows) {
        writer.BeginArray();
        for (const std::string& cell : row) writer.String(cell);
        writer.EndArray();
      }
      writer.EndArray();
      writer.Key("errors");
      writer.BeginArray();
      for (double error : a.errors) writer.Double(error);
      writer.EndArray();
      break;
    }
    case RequestType::kWatchDataset: {
      const WatchRequest& w = request.watch;
      writer.Key("dataset");
      writer.String(w.dataset);
      writer.Key("tau");
      writer.Double(w.tau);
      writer.Key("hysteresis");
      writer.Double(w.hysteresis);
      writer.Key("window_rows");
      writer.Int(w.window_rows);
      writer.Key("window_seconds");
      writer.Double(w.window_seconds);
      writer.Key("k");
      writer.Int(w.k);
      writer.Key("alpha");
      writer.Double(w.alpha);
      writer.Key("sigma");
      writer.Int(w.sigma);
      writer.Key("max_level");
      writer.Int(w.max_level);
      break;
    }
    case RequestType::kUnwatchDataset:
    case RequestType::kUnregisterDataset:
      writer.Key("dataset");
      writer.String(request.dataset);
      break;
    case RequestType::kGetStatus:
      if (!request.dataset.empty()) {
        writer.Key("dataset");
        writer.String(request.dataset);
        break;
      }
      writer.Key("job");
      writer.Int(request.job_id);
      break;
    case RequestType::kCancel:
    case RequestType::kGetReport:
    case RequestType::kGetTrace:
      writer.Key("job");
      writer.Int(request.job_id);
      break;
    case RequestType::kListDatasets:
    case RequestType::kServerStats:
      break;
  }
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string MakeErrorLine(const std::string& id, const Status& status) {
  std::ostringstream os;
  obs::JsonWriter writer(os);
  writer.BeginObject();
  writer.Key("id");
  writer.String(id);
  writer.Key("ok");
  writer.Bool(false);
  writer.Key("error");
  writer.BeginObject();
  writer.Key("code");
  writer.String(ErrorCodeForStatus(status));
  writer.Key("message");
  writer.String(status.message());
  writer.EndObject();
  writer.EndObject();
  os << '\n';
  return os.str();
}

void BeginOkResponse(obs::JsonWriter* writer, const std::string& id) {
  writer->BeginObject();
  writer->Key("id");
  writer->String(id);
  writer->Key("ok");
  writer->Bool(true);
}

void WriteResultJson(obs::JsonWriter* writer,
                     const core::SliceLineResult& result,
                     const std::vector<std::string>& feature_names) {
  writer->BeginObject();
  writer->Key("min_support");
  writer->Int(result.min_support);
  writer->Key("average_error");
  writer->Double(result.average_error);
  writer->Key("total_seconds");
  writer->Double(result.total_seconds);
  writer->Key("total_evaluated");
  writer->Int(result.total_evaluated);

  writer->Key("feature_names");
  writer->BeginArray();
  for (const std::string& name : feature_names) writer->String(name);
  writer->EndArray();

  writer->Key("top_k");
  writer->BeginArray();
  for (const core::Slice& slice : result.top_k) {
    writer->BeginObject();
    writer->Key("score");
    writer->Double(slice.stats.score);
    writer->Key("error_sum");
    writer->Double(slice.stats.error_sum);
    writer->Key("max_error");
    writer->Double(slice.stats.max_error);
    writer->Key("size");
    writer->Int(slice.stats.size);
    writer->Key("predicates");
    writer->BeginArray();
    for (const auto& [feature, code] : slice.predicates) {
      writer->BeginObject();
      writer->Key("feature");
      writer->Int(feature);
      writer->Key("code");
      writer->Int(code);
      writer->EndObject();
    }
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndArray();

  writer->Key("levels");
  writer->BeginArray();
  for (const core::LevelStats& level : result.levels) {
    writer->BeginObject();
    writer->Key("level");
    writer->Int(level.level);
    writer->Key("candidates");
    writer->Int(level.candidates);
    writer->Key("valid");
    writer->Int(level.valid);
    writer->Key("pruned");
    writer->Int(level.pruned);
    writer->Key("seconds");
    writer->Double(level.seconds);
    writer->EndObject();
  }
  writer->EndArray();

  const RunOutcome& outcome = result.outcome;
  writer->Key("outcome");
  writer->BeginObject();
  writer->Key("termination");
  writer->String(TerminationNameOf(outcome.termination));
  writer->Key("partial");
  writer->Bool(outcome.partial);
  writer->Key("degradation_steps");
  writer->Int(outcome.degradation_steps);
  writer->Key("sigma_raised_to");
  writer->Int(outcome.sigma_raised_to);
  writer->Key("candidates_capped");
  writer->Int(outcome.candidates_capped);
  writer->Key("stopped_at_level");
  writer->Int(outcome.stopped_at_level);
  writer->Key("resumed_from_checkpoint");
  writer->Bool(outcome.resumed_from_checkpoint);
  writer->Key("peak_memory_bytes");
  writer->Int(outcome.peak_memory_bytes);
  writer->Key("dist_fallback_local");
  writer->Bool(outcome.dist_fallback_local);
  writer->Key("stream_candidates_cached");
  writer->Int(outcome.stream_candidates_cached);
  writer->Key("stream_candidates_delta");
  writer->Int(outcome.stream_candidates_delta);
  writer->Key("stream_candidates_full");
  writer->Int(outcome.stream_candidates_full);
  writer->Key("stream_full_fallback");
  writer->Bool(outcome.stream_full_fallback);
  writer->EndObject();

  writer->EndObject();
}

StatusOr<core::SliceLineResult> ParseResultJson(
    const obs::JsonValue& value, std::vector<std::string>* feature_names) {
  if (!value.is_object()) {
    return Status::InvalidArgument("result must be a JSON object");
  }
  core::SliceLineResult result;
  SLICELINE_ASSIGN_OR_RETURN(result.min_support,
                             value.RequireInt("min_support"));
  SLICELINE_ASSIGN_OR_RETURN(result.average_error,
                             value.RequireNumber("average_error"));
  SLICELINE_ASSIGN_OR_RETURN(result.total_seconds,
                             value.RequireNumber("total_seconds"));
  SLICELINE_ASSIGN_OR_RETURN(result.total_evaluated,
                             value.RequireInt("total_evaluated"));

  if (feature_names != nullptr) {
    feature_names->clear();
    if (const obs::JsonValue* names = value.Find("feature_names")) {
      if (!names->is_array()) {
        return Status::InvalidArgument("'feature_names' must be an array");
      }
      for (const obs::JsonValue& name : names->array_items()) {
        if (!name.is_string()) {
          return Status::InvalidArgument("feature names must be strings");
        }
        feature_names->push_back(name.string_value());
      }
    }
  }

  const obs::JsonValue* top_k = value.Find("top_k");
  if (top_k == nullptr || !top_k->is_array()) {
    return Status::InvalidArgument("missing 'top_k' array");
  }
  for (const obs::JsonValue& item : top_k->array_items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("top_k entries must be objects");
    }
    core::Slice slice;
    SLICELINE_ASSIGN_OR_RETURN(slice.stats.score, item.RequireNumber("score"));
    SLICELINE_ASSIGN_OR_RETURN(slice.stats.error_sum,
                               item.RequireNumber("error_sum"));
    SLICELINE_ASSIGN_OR_RETURN(slice.stats.max_error,
                               item.RequireNumber("max_error"));
    SLICELINE_ASSIGN_OR_RETURN(slice.stats.size, item.RequireInt("size"));
    const obs::JsonValue* predicates = item.Find("predicates");
    if (predicates == nullptr || !predicates->is_array()) {
      return Status::InvalidArgument("missing 'predicates' array");
    }
    for (const obs::JsonValue& predicate : predicates->array_items()) {
      if (!predicate.is_object()) {
        return Status::InvalidArgument("predicates must be objects");
      }
      SLICELINE_ASSIGN_OR_RETURN(const int64_t feature,
                                 predicate.RequireInt("feature"));
      SLICELINE_ASSIGN_OR_RETURN(const int64_t code,
                                 predicate.RequireInt("code"));
      slice.predicates.emplace_back(static_cast<int>(feature),
                                    static_cast<int32_t>(code));
    }
    result.top_k.push_back(std::move(slice));
  }

  const obs::JsonValue* levels = value.Find("levels");
  if (levels == nullptr || !levels->is_array()) {
    return Status::InvalidArgument("missing 'levels' array");
  }
  for (const obs::JsonValue& item : levels->array_items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("levels entries must be objects");
    }
    core::LevelStats level;
    SLICELINE_ASSIGN_OR_RETURN(const int64_t level_index,
                               item.RequireInt("level"));
    level.level = static_cast<int>(level_index);
    SLICELINE_ASSIGN_OR_RETURN(level.candidates,
                               item.RequireInt("candidates"));
    SLICELINE_ASSIGN_OR_RETURN(level.valid, item.RequireInt("valid"));
    SLICELINE_ASSIGN_OR_RETURN(level.pruned, item.RequireInt("pruned"));
    SLICELINE_ASSIGN_OR_RETURN(level.seconds, item.RequireNumber("seconds"));
    result.levels.push_back(level);
  }

  const obs::JsonValue* outcome = value.Find("outcome");
  if (outcome == nullptr || !outcome->is_object()) {
    return Status::InvalidArgument("missing 'outcome' object");
  }
  RunOutcome& out = result.outcome;
  SLICELINE_ASSIGN_OR_RETURN(const std::string termination,
                             outcome->RequireString("termination"));
  SLICELINE_ASSIGN_OR_RETURN(out.termination,
                             TerminationFromName(termination));
  out.partial = outcome->GetBoolOr("partial", false);
  out.degradation_steps =
      static_cast<int>(outcome->GetIntOr("degradation_steps", 0));
  out.sigma_raised_to = outcome->GetIntOr("sigma_raised_to", 0);
  out.candidates_capped = outcome->GetIntOr("candidates_capped", 0);
  out.stopped_at_level =
      static_cast<int>(outcome->GetIntOr("stopped_at_level", 0));
  out.resumed_from_checkpoint =
      outcome->GetBoolOr("resumed_from_checkpoint", false);
  out.peak_memory_bytes = outcome->GetIntOr("peak_memory_bytes", 0);
  out.dist_fallback_local = outcome->GetBoolOr("dist_fallback_local", false);
  out.stream_candidates_cached =
      outcome->GetIntOr("stream_candidates_cached", 0);
  out.stream_candidates_delta =
      outcome->GetIntOr("stream_candidates_delta", 0);
  out.stream_candidates_full = outcome->GetIntOr("stream_candidates_full", 0);
  out.stream_full_fallback = outcome->GetBoolOr("stream_full_fallback", false);

  return result;
}

}  // namespace sliceline::serve
