#include "core/sliceline_la.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/bounds.h"
#include "core/checkpoint.h"
#include "core/governance.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "data/onehot.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::core {

namespace {

using linalg::CsrMatrix;

struct VecHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (int64_t c : key) {
      h ^= static_cast<uint64_t>(c);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Per-level working state: the slice matrix S over the compacted column
/// space plus the aligned statistics (the paper's R).
struct LevelData {
  CsrMatrix s;
  std::vector<double> ss;
  std::vector<double> se;
  std::vector<double> sm;
};

/// Decodes row `r` of a compacted slice matrix into predicates.
std::vector<std::pair<int, int32_t>> DecodeRow(
    const CsrMatrix& s, int64_t r, const std::vector<int64_t>& kept_cols,
    const data::FeatureOffsets& offsets) {
  std::vector<std::pair<int, int32_t>> preds;
  for (int64_t k = 0; k < s.RowNnz(r); ++k) {
    const int64_t original = kept_cols[s.RowCols(r)[k]];
    preds.emplace_back(offsets.FeatureOfColumn(original),
                       offsets.CodeOfColumn(original));
  }
  std::sort(preds.begin(), preds.end());
  return preds;
}

}  // namespace

StatusOr<SliceLineResult> RunSliceLineLA(const data::IntMatrix& x0,
                                         const std::vector<double>& errors,
                                         const SliceLineConfig& config) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument("error vector size mismatch");
  }
  if (!(config.alpha > 0.0 && config.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  Stopwatch total_watch;
  TRACE_SPAN("la/run");

  // a) data preparation: offsets and one-hot encoding (lines 1-5).
  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  CsrMatrix x = data::OneHotEncode(x0, offsets);
  const int64_t n = x.rows();
  const int64_t sigma = ResolveMinSupport(config, n);

  // b) initialization: statistics and basic slices (lines 6-9).
  double total_error = 0.0;
  for (double e : errors) {
    if (!(e >= 0.0) || std::isnan(e)) {
      return Status::InvalidArgument("errors must be non-negative and finite");
    }
    total_error += e;
  }
  SliceLineResult result;
  result.min_support = sigma;
  result.average_error = total_error / static_cast<double>(n);
  if (total_error <= 0.0) {
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }
  const ScoringContext context(n, total_error, config.alpha);
  TopK topk(config.k, sigma);

  Stopwatch level_watch;
  const std::vector<double> ss0 = linalg::ColSums(x);
  const std::vector<double> se0 = linalg::TransposeMatVec(x, errors);
  const std::vector<double> sm0 =
      linalg::ColMaxs(linalg::ScaleRows(x, errors));

  // cI: basic slices to keep (line 12's X <- X[, cI] column compaction).
  std::vector<int64_t> kept_cols;
  for (int64_t c = 0; c < offsets.total; ++c) {
    const bool keep =
        (!config.prune_size || ss0[c] >= static_cast<double>(sigma)) &&
        se0[c] > 0.0;
    if (keep) kept_cols.push_back(c);
  }

  LevelStats level1;
  level1.level = 1;
  level1.candidates = offsets.total;
  for (int64_t c = 0; c < offsets.total; ++c) {
    if (ss0[c] >= static_cast<double>(sigma) && se0[c] > 0.0) ++level1.valid;
  }
  level1.pruned = offsets.total - static_cast<int64_t>(kept_cols.size());

  // Offer qualifying basic slices to the top-K.
  for (int64_t c = 0; c < offsets.total; ++c) {
    const int64_t size = static_cast<int64_t>(ss0[c]);
    if (size < sigma || se0[c] <= 0.0) continue;
    const double score = context.Score(size, se0[c]);
    if (score > 0.0) {
      Slice slice;
      slice.predicates = {{offsets.FeatureOfColumn(c),
                           offsets.CodeOfColumn(c)}};
      slice.stats = {score, se0[c], sm0[c], size};
      topk.Offer(std::move(slice));
    }
  }
  level1.seconds = level_watch.ElapsedSeconds();
  obs::RecordLevelMetrics("la", 1, level1.candidates, level1.valid,
                          level1.pruned, level1.seconds);
  result.levels.push_back(level1);
  result.total_evaluated += level1.candidates;

  const int64_t p = static_cast<int64_t>(kept_cols.size());
  if (p == 0) {
    result.top_k = topk.Slices();
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }
  x = linalg::SelectColumns(x, kept_cols);

  // Feature/code lookup per compacted column.
  std::vector<int> feat_of(static_cast<size_t>(p));
  for (int64_t j = 0; j < p; ++j) {
    feat_of[j] = offsets.FeatureOfColumn(kept_cols[j]);
  }

  // Basic-slice matrix S = I_p (one predicate per row) plus statistics.
  LevelData level;
  {
    std::vector<int64_t> row_ptr(p + 1);
    std::vector<int64_t> cols(static_cast<size_t>(p));
    for (int64_t i = 0; i <= p; ++i) row_ptr[i] = i;
    for (int64_t i = 0; i < p; ++i) cols[i] = i;
    level.s = CsrMatrix(p, p, std::move(row_ptr), std::move(cols),
                        std::vector<double>(static_cast<size_t>(p), 1.0));
    level.ss.reserve(p);
    for (int64_t j = 0; j < p; ++j) {
      level.ss.push_back(ss0[kept_cols[j]]);
      level.se.push_back(se0[kept_cols[j]]);
      level.sm.push_back(sm0[kept_cols[j]]);
    }
  }

  const int max_level =
      config.max_level > 0
          ? std::min<int>(config.max_level, static_cast<int>(x0.cols()))
          : static_cast<int>(x0.cols());
  GovernanceController gov(config, sigma, max_level);

  // Install the run's memory budget so every CSR intermediate of the
  // level-wise kernels (joins, selection tables, blocked products) charges
  // it.
  std::optional<ScopedMemoryBudget> scoped_budget;
  if (config.run_context != nullptr &&
      config.run_context->memory_budget() != nullptr) {
    scoped_budget.emplace(config.run_context->memory_budget());
  }

  const bool checkpointing = !config.checkpoint_dir.empty();
  uint64_t config_hash = 0;
  uint64_t data_hash = 0;
  uint64_t aux_hash = 0;
  if (checkpointing) {
    config_hash = HashConfigForCheckpoint(config, sigma, "la");
    Fnv1a dh;
    dh.Add64(static_cast<uint64_t>(n));
    dh.Add64(static_cast<uint64_t>(offsets.total));
    dh.AddDouble(total_error);
    for (double v : ss0) dh.AddDouble(v);
    for (double v : se0) dh.AddDouble(v);
    data_hash = dh.hash();
    // kept_cols defines the compacted column space the frontier matrix is
    // expressed in; a checkpoint is only resumable when it matches exactly.
    Fnv1a ah;
    for (int64_t c : kept_cols) ah.Add64(static_cast<uint64_t>(c));
    aux_hash = ah.hash();
  }
  const auto save_checkpoint = [&](int completed_level) {
    CheckpointState state;
    state.engine = "la";
    state.config_hash = config_hash;
    state.data_hash = data_hash;
    state.aux_hash = aux_hash;
    state.level = completed_level;
    state.effective_sigma = gov.effective_sigma();
    state.degradation_steps = gov.degradation_steps();
    state.candidates_capped = gov.candidates_capped();
    state.total_evaluated = result.total_evaluated;
    state.levels = result.levels;
    state.topk = topk.Slices();
    state.frontier_ss = level.ss;
    state.frontier_se = level.se;
    state.frontier_sm = level.sm;
    state.frontier = level.s;
    const Status saved = SaveCheckpoint(config.checkpoint_dir, state);
    if (!saved.ok()) {
      LOG_WARNING << "checkpoint save failed: " << saved.ToString();
    }
  };

  bool resumed = false;
  int start_level = 2;
  if (checkpointing && config.resume &&
      CheckpointFileExists(config.checkpoint_dir)) {
    StatusOr<CheckpointState> loaded = LoadCheckpoint(config.checkpoint_dir);
    if (loaded.ok() && loaded->engine == "la" &&
        loaded->config_hash == config_hash && loaded->data_hash == data_hash &&
        loaded->aux_hash == aux_hash && loaded->frontier.cols() == p) {
      level.s = std::move(loaded->frontier);
      level.ss = std::move(loaded->frontier_ss);
      level.se = std::move(loaded->frontier_se);
      level.sm = std::move(loaded->frontier_sm);
      topk.Restore(std::move(loaded->topk));
      result.levels = std::move(loaded->levels);
      result.total_evaluated = loaded->total_evaluated;
      gov.RestoreDegradation(loaded->degradation_steps,
                             loaded->effective_sigma,
                             loaded->candidates_capped);
      start_level = loaded->level + 1;
      resumed = true;
    } else if (!loaded.ok()) {
      LOG_WARNING << "ignoring unusable checkpoint: "
                  << loaded.status().ToString();
    } else {
      LOG_WARNING << "ignoring checkpoint for a different run "
                     "(engine/config/data hash mismatch)";
    }
  }
  if (checkpointing && !resumed) save_checkpoint(1);

  // c) level-wise lattice enumeration (lines 13-19).
  StopReason stop = StopReason::kNone;
  int stopped_level = 0;
  for (int L = start_level;
       L <= gov.effective_max_level() && level.s.rows() > 0; ++L) {
    stop = gov.CheckBoundary();
    if (stop != StopReason::kNone) {
      stopped_level = L;
      break;
    }
    gov.MaybeDegrade(L);
    if (L > gov.effective_max_level()) break;
    const int64_t sigma_eff = gov.effective_sigma();

    TRACE_SPAN("la/level", L);
    level_watch.Reset();
    LevelStats stats;
    stats.level = L;

    // --- getPairCandidates: filter valid parents. ---
    std::vector<uint8_t> keep(static_cast<size_t>(level.s.rows()), 0);
    std::vector<int64_t> keep_rows;
    for (int64_t i = 0; i < level.s.rows(); ++i) {
      const bool size_ok = !config.prune_size ||
                           level.ss[i] >= static_cast<double>(sigma_eff);
      if (size_ok && level.se[i] > 0.0) {
        keep[i] = 1;
        keep_rows.push_back(i);
      }
    }
    CsrMatrix s = linalg::SelectRows(level.s, keep);
    std::vector<double> pss;
    std::vector<double> pse;
    std::vector<double> psm;
    for (int64_t i : keep_rows) {
      pss.push_back(level.ss[i]);
      pse.push_back(level.se[i]);
      psm.push_back(level.sm[i]);
    }
    const int64_t np_rows = s.rows();

    // --- join compatible pairs: upper.tri((S S^T) == L-2). ---
    std::vector<std::pair<int64_t, int64_t>> pairs;
    {
      TRACE_SPAN("la/candidate_gen", L);
      if (L == 2) {
        // Documented deviation: overlap target 0 is an implicit zero in the
        // sparse product; enumerate feature-compatible pairs directly.
        for (int64_t a = 0; a < np_rows; ++a) {
          const int fa = feat_of[s.RowCols(a)[0]];
          for (int64_t b = a + 1; b < np_rows; ++b) {
            if (feat_of[s.RowCols(b)[0]] != fa) pairs.emplace_back(a, b);
          }
        }
      } else {
        const CsrMatrix sst = linalg::MultiplyABt(s, s);
        pairs = linalg::UpperTriEquals(sst, static_cast<double>(L - 2));
      }
    }
    if (pairs.empty()) {
      stats.seconds = level_watch.ElapsedSeconds();
      obs::RecordLevelMetrics("la", stats.level, stats.candidates, stats.valid,
                              stats.pruned, stats.seconds);
      result.levels.push_back(stats);
      break;
    }

    // --- merge pairs: P = ((P1 S) + (P2 S)) != 0 via selection tables. ---
    const int64_t num_pairs = static_cast<int64_t>(pairs.size());
    std::vector<int64_t> seq(static_cast<size_t>(num_pairs));
    std::vector<int64_t> firsts(static_cast<size_t>(num_pairs));
    std::vector<int64_t> seconds(static_cast<size_t>(num_pairs));
    for (int64_t k = 0; k < num_pairs; ++k) {
      seq[k] = k;
      firsts[k] = pairs[k].first;
      seconds[k] = pairs[k].second;
    }
    const CsrMatrix p1 = linalg::Table(seq, firsts, num_pairs, np_rows);
    const CsrMatrix p2 = linalg::Table(seq, seconds, num_pairs, np_rows);
    CsrMatrix merged = linalg::Binarize(
        linalg::Add(linalg::Multiply(p1, s), linalg::Multiply(p2, s)));

    // Parent-inherited bounds per pair row (Equation 7).
    // --- validity: exactly L predicates, at most one per feature. ---
    std::vector<uint8_t> pair_valid(static_cast<size_t>(num_pairs), 1);
    for (int64_t k = 0; k < num_pairs; ++k) {
      if (merged.RowNnz(k) != L) {
        pair_valid[k] = 0;
        continue;
      }
      const int64_t* cols = merged.RowCols(k);
      for (int64_t t = 1; t < L; ++t) {
        if (feat_of[cols[t - 1]] == feat_of[cols[t]]) {
          pair_valid[k] = 0;
          break;
        }
      }
    }

    // --- deduplicate by slice identity; accumulate bounds over all
    //     distinct enumerated parents (Equation 8). ---
    struct Group {
      int64_t representative;  // pair row whose merged columns define S
      ParentBounds bounds;
      std::vector<int64_t> parents;
    };
    std::vector<Group> groups;
    std::unordered_map<std::vector<int64_t>, int64_t, VecHash> dedup;
    // np (Equation 8) is a property of the slice, not of one generating
    // pair: with deduplication ablated away, duplicate groups still share
    // one parent count, or every level >= 3 candidate would fail np == L.
    std::unordered_map<std::vector<int64_t>, Group, VecHash> parent_groups;
    int64_t duplicates = 0;
    auto add_parent = [&](Group* group, int64_t parent) {
      if (std::find(group->parents.begin(), group->parents.end(), parent) !=
          group->parents.end()) {
        return;
      }
      group->parents.push_back(parent);
      group->bounds.AddParent(static_cast<int64_t>(pss[parent]), pse[parent],
                              psm[parent]);
    };
    // Parent-group variant: with deduplication off, `s` holds duplicate
    // copies of one logical slice under different row ids, so np must
    // deduplicate by the parent's column vector, not its row id.
    auto add_group_parent = [&](Group* group, int64_t parent) {
      for (int64_t existing : group->parents) {
        if (s.RowNnz(existing) == s.RowNnz(parent) &&
            std::equal(s.RowCols(existing),
                       s.RowCols(existing) + s.RowNnz(existing),
                       s.RowCols(parent))) {
          return;
        }
      }
      group->parents.push_back(parent);
      group->bounds.AddParent(static_cast<int64_t>(pss[parent]), pse[parent],
                              psm[parent]);
    };
    for (int64_t k = 0; k < num_pairs; ++k) {
      if (!pair_valid[k]) continue;
      std::vector<int64_t> key(merged.RowCols(k),
                               merged.RowCols(k) + merged.RowNnz(k));
      int64_t group_idx;
      if (config.deduplicate) {
        auto [it, inserted] =
            dedup.try_emplace(std::move(key),
                              static_cast<int64_t>(groups.size()));
        if (inserted) {
          groups.push_back(Group{k, {}, {}});
        } else {
          ++duplicates;
        }
        group_idx = it->second;
      } else {
        group_idx = static_cast<int64_t>(groups.size());
        groups.push_back(Group{k, {}, {}});
        if (config.prune_parents) {
          auto [it, inserted] = parent_groups.try_emplace(std::move(key));
          add_group_parent(&it->second, firsts[k]);
          add_group_parent(&it->second, seconds[k]);
        }
      }
      add_parent(&groups[group_idx], firsts[k]);
      add_parent(&groups[group_idx], seconds[k]);
    }
    (void)duplicates;

    // --- Equation 9 pruning. ---
    std::vector<int64_t> survivors;
    std::vector<ParentBounds> survivor_bounds;
    for (const Group& group : groups) {
      bool keep_group = true;
      if (config.prune_size && group.bounds.size_ub < sigma_eff) {
        keep_group = false;
      }
      if (keep_group && config.prune_parents) {
        int np = group.bounds.parents;
        if (!config.deduplicate) {
          // Duplicate groups carry only their own pair's two parents; the
          // shared parent-count group has them all.
          const std::vector<int64_t> key(
              merged.RowCols(group.representative),
              merged.RowCols(group.representative) +
                  merged.RowNnz(group.representative));
          np = parent_groups.find(key)->second.bounds.parents;
        }
        if (np != L) keep_group = false;
      }
      if (keep_group && config.prune_score) {
        const double ub = UpperBoundScore(context, sigma_eff, group.bounds);
        if (!(ub > topk.Threshold() && ub >= 0.0)) keep_group = false;
      }
      if (!keep_group) {
        ++stats.pruned;
        continue;
      }
      survivors.push_back(group.representative);
      survivor_bounds.push_back(group.bounds);
    }
    if (survivors.empty()) {
      stats.seconds = level_watch.ElapsedSeconds();
      obs::RecordLevelMetrics("la", stats.level, stats.candidates, stats.valid,
                              stats.pruned, stats.seconds);
      result.levels.push_back(stats);
      break;
    }

    // Degraded runs keep only the most promising candidates, ranked by
    // their Equation 7 upper bound (ties broken by enumeration order so
    // the cap stays deterministic).
    if (gov.candidate_cap() > 0 &&
        static_cast<int64_t>(survivors.size()) > gov.candidate_cap()) {
      const int64_t cap = gov.candidate_cap();
      std::vector<int64_t> order(survivors.size());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int64_t>(i);
      }
      std::vector<double> ubs(survivors.size());
      for (size_t i = 0; i < survivors.size(); ++i) {
        ubs[i] = UpperBoundScore(context, sigma_eff, survivor_bounds[i]);
      }
      std::nth_element(order.begin(), order.begin() + cap, order.end(),
                       [&](int64_t a, int64_t b) {
                         if (ubs[a] != ubs[b]) return ubs[a] > ubs[b];
                         return a < b;
                       });
      order.resize(static_cast<size_t>(cap));
      std::sort(order.begin(), order.end());
      std::vector<int64_t> capped;
      std::vector<ParentBounds> capped_bounds;
      capped.reserve(order.size());
      capped_bounds.reserve(order.size());
      for (int64_t i : order) {
        capped.push_back(survivors[i]);
        capped_bounds.push_back(survivor_bounds[i]);
      }
      gov.RecordCapped(static_cast<int64_t>(survivors.size()) - cap);
      survivors = std::move(capped);
      survivor_bounds = std::move(capped_bounds);
    }
    CsrMatrix s_new = linalg::GatherRows(merged, survivors);
    stats.candidates = s_new.rows();

    // --- blocked slice evaluation: I = ((X S_b^T) == L) (Equation 10). ---
    const int64_t block = std::max(1, config.eval_block_size);
    LevelData next;
    next.s = s_new;
    next.ss.assign(static_cast<size_t>(s_new.rows()), 0.0);
    next.se.assign(static_cast<size_t>(s_new.rows()), 0.0);
    next.sm.assign(static_cast<size_t>(s_new.rows()), 0.0);
    bool stopped_mid_level = false;
    {
      TRACE_SPAN("la/evaluate", L);
      for (int64_t b0 = 0; b0 < s_new.rows(); b0 += block) {
        stop = gov.CheckBoundary();
        if (stop != StopReason::kNone) {
          stopped_mid_level = true;
          stopped_level = L;
          break;
        }
        const int64_t b1 = std::min<int64_t>(b0 + block, s_new.rows());
        const CsrMatrix sb = linalg::SliceRowRange(s_new, b0, b1);
        const CsrMatrix inter = linalg::FilterEquals(
            linalg::MultiplyABt(x, sb), static_cast<double>(L));
        const std::vector<double> bss = linalg::ColSums(inter);
        const std::vector<double> bse = linalg::TransposeMatVec(inter, errors);
        const std::vector<double> bsm =
            linalg::ColMaxs(linalg::ScaleRows(inter, errors));
        for (int64_t j = 0; j < b1 - b0; ++j) {
          next.ss[b0 + j] = bss[j];
          next.se[b0 + j] = bse[j];
          next.sm[b0 + j] = bsm[j];
        }
      }
    }
    // A level interrupted mid-evaluation is discarded wholesale: the
    // frontier stays at the last completed level, so a checkpointed resume
    // re-evaluates the whole level instead of trusting partial statistics.
    if (stopped_mid_level) break;

    // --- top-K maintenance. ---
    for (int64_t i = 0; i < s_new.rows(); ++i) {
      const int64_t size = static_cast<int64_t>(next.ss[i]);
      if (size >= sigma && next.se[i] > 0.0) ++stats.valid;
      const double score = context.Score(size, next.se[i]);
      if (score > 0.0 && size >= sigma) {
        Slice slice;
        slice.predicates = DecodeRow(s_new, i, kept_cols, offsets);
        slice.stats = {score, next.se[i], next.sm[i], size};
        topk.Offer(std::move(slice));
      }
    }
    stats.seconds = level_watch.ElapsedSeconds();
    obs::RecordLevelMetrics("la", stats.level, stats.candidates, stats.valid,
                            stats.pruned, stats.seconds);
    result.levels.push_back(stats);
    result.total_evaluated += stats.candidates;
    level = std::move(next);
    if (checkpointing) save_checkpoint(L);
  }

  result.outcome = gov.Finish(stop, stopped_level, resumed);
  result.top_k = topk.Slices();
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

StatusOr<SliceLineResult> RunSliceLineLA(const data::EncodedDataset& dataset,
                                         const SliceLineConfig& config) {
  if (dataset.errors.empty()) {
    return Status::InvalidArgument(
        "dataset has no materialized error vector; train a model via "
        "ml::TrainAndMaterializeErrors or use a generator");
  }
  return RunSliceLineLA(dataset.x0, dataset.errors, config);
}

}  // namespace sliceline::core
