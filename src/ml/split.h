#ifndef SLICELINE_ML_SPLIT_H_
#define SLICELINE_ML_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/encoded_dataset.h"

namespace sliceline::ml {

/// A train/test partition of an encoded dataset. The paper notes the same
/// slice-finding definitions apply to train, validation, and test splits
/// (M always trained on the train split), so debugging held-out errors is a
/// first-class workflow.
struct TrainTestSplit {
  data::EncodedDataset train;
  data::EncodedDataset test;
  std::vector<int64_t> train_rows;  ///< original row indices
  std::vector<int64_t> test_rows;
};

/// Randomly partitions `dataset` with `test_fraction` of rows in the test
/// split (shuffled with the given seed; deterministic). Labels, simulated
/// errors, planted slices, and feature names are carried along.
StatusOr<TrainTestSplit> SplitTrainTest(const data::EncodedDataset& dataset,
                                        double test_fraction,
                                        uint64_t seed = 42);

/// Trains on the train split (lm / mlogit per task) and materializes the
/// model's errors on the TEST split into `split->test.errors` (the held-out
/// debugging mode); returns the test mean error.
StatusOr<double> TrainOnSplitAndScoreTest(TrainTestSplit* split);

}  // namespace sliceline::ml

#endif  // SLICELINE_ML_SPLIT_H_
