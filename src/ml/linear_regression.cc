#include "ml/linear_regression.h"

#include <cmath>

#include "linalg/kernels.h"
#include "ml/error_functions.h"

namespace sliceline::ml {

StatusOr<LinearRegression> LinearRegression::Fit(const linalg::CsrMatrix& x,
                                                 const std::vector<double>& y,
                                                 const Options& options) {
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  if (static_cast<int64_t>(y.size()) != n) {
    return Status::InvalidArgument("label vector size mismatch");
  }
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty training data");
  }

  // Matrix-free CG on the normal equations of the augmented design [X 1]:
  //   [X^T X + lambda I   X^T 1] [w]   [X^T y]
  //   [1^T X              n    ] [b] = [1^T y]
  // The intercept dimension is not regularized.
  const int64_t dim = d + (options.intercept ? 1 : 0);
  auto apply = [&](const std::vector<double>& v) {
    std::vector<double> w(v.begin(), v.begin() + d);
    std::vector<double> xv = linalg::MatVec(x, w);
    if (options.intercept) {
      const double b = v[d];
      for (double& val : xv) val += b;
    }
    std::vector<double> out = linalg::TransposeMatVec(x, xv);
    for (int64_t j = 0; j < d; ++j) out[j] += options.lambda * v[j];
    if (options.intercept) {
      double sum = 0.0;
      for (double val : xv) sum += val;
      out.push_back(sum);
    }
    return out;
  };

  std::vector<double> b = linalg::TransposeMatVec(x, y);
  if (options.intercept) {
    double sum = 0.0;
    for (double val : y) sum += val;
    b.push_back(sum);
  }

  std::vector<double> sol(static_cast<size_t>(dim), 0.0);
  std::vector<double> r = b;
  std::vector<double> p = r;
  double rs = 0.0;
  for (double v : r) rs += v * v;
  const double b_norm = std::sqrt(rs);
  if (b_norm > 0.0) {
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      if (std::sqrt(rs) <= options.tolerance * b_norm) break;
      std::vector<double> ap = apply(p);
      double p_ap = 0.0;
      for (int64_t j = 0; j < dim; ++j) p_ap += p[j] * ap[j];
      if (p_ap <= 0.0) break;  // numerical safeguard
      const double alpha = rs / p_ap;
      for (int64_t j = 0; j < dim; ++j) {
        sol[j] += alpha * p[j];
        r[j] -= alpha * ap[j];
      }
      double rs_new = 0.0;
      for (double v : r) rs_new += v * v;
      const double beta = rs_new / rs;
      for (int64_t j = 0; j < dim; ++j) p[j] = r[j] + beta * p[j];
      rs = rs_new;
    }
  }
  const double intercept = options.intercept ? sol[d] : 0.0;
  sol.resize(static_cast<size_t>(d));
  return LinearRegression(std::move(sol), intercept);
}

std::vector<double> LinearRegression::Predict(const linalg::CsrMatrix& x) const {
  std::vector<double> out = linalg::MatVec(x, weights_);
  for (double& v : out) v += intercept_;
  return out;
}

}  // namespace sliceline::ml
