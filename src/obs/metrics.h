#ifndef SLICELINE_OBS_METRICS_H_
#define SLICELINE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sliceline::obs {

// ---------------------------------------------------------------------------
// Global enable switch.
// ---------------------------------------------------------------------------
//
// Observability is off by default so the hot path pays one relaxed atomic
// load plus a predictable branch per instrumentation site. Binaries that
// export metrics (--metrics-json, benchmarks with SLICELINE_BENCH_JSON)
// flip the switch before running. Compiling with -DSLICELINE_OBS_DISABLED
// additionally collapses the span/kernel macros to nothing.

/// Enables or disables metric recording process-wide.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Number of per-thread shards a counter spreads its increments over.
inline constexpr int kMetricShards = 16;

/// Stable small shard id for the calling thread (round-robin assigned).
int ThreadShardId();

namespace internal {

/// Cache-line padded atomic cell; one per shard so concurrent increments
/// from different threads do not bounce a shared line.
struct alignas(64) ShardCell {
  std::atomic<int64_t> value{0};
};

}  // namespace internal

// ---------------------------------------------------------------------------
// Metric types.
// ---------------------------------------------------------------------------

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
/// calling thread's shard; Value() sums the shards. Totals are exact and
/// order-independent (integer addition commutes), so counter values are
/// deterministic whenever the instrumented quantities are.
class Counter {
 public:
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    shards_[ThreadShardId()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  internal::ShardCell shards_[kMetricShards];
};

/// Last-value gauge (doubles stored as bit patterns; Set/Value only).
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    bits_.store(Bits(value), std::memory_order_relaxed);
  }
  double Value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { bits_.store(Bits(0.0), std::memory_order_relaxed); }

 private:
  static uint64_t Bits(double v);
  static double FromBits(uint64_t bits);
  std::atomic<uint64_t> bits_{0x0ULL};
};

/// Fixed-bucket exponential histogram options: bucket i covers
/// (base * growth^(i-1), base * growth^i]; the first bucket covers
/// [0, base] and one overflow bucket catches everything above the last
/// bound. Bounds are precomputed at registration time; Observe() does a
/// branch-free-ish linear scan over <= 64 bounds and never allocates.
struct HistogramOptions {
  double base = 1e-6;    ///< upper bound of the first bucket
  double growth = 4.0;   ///< exponential growth factor between bounds
  int num_buckets = 16;  ///< finite buckets (excluding overflow)
};

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  /// Records one observation (sharded count per bucket + sharded sum).
  void Observe(double value);

  int64_t Count() const;
  /// Sum of observations. Accumulated in 1e-9 fixed point so the total is
  /// order-independent (and therefore deterministic) across threads;
  /// resolution is 1e-9 per observation, range +/- 9.2e9.
  double Sum() const;
  /// Per-bucket counts, length num_buckets + 1 (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  /// Inclusive upper bounds, length num_buckets (overflow is +inf).
  const std::vector<double>& UpperBounds() const { return bounds_; }

  void Reset();

 private:
  std::vector<double> bounds_;
  /// buckets_[shard * stride + bucket]; padded per shard, not per bucket.
  std::vector<internal::ShardCell> cells_;
  size_t stride_;
  internal::ShardCell sum_nano_[kMetricShards];  ///< sum in 1e-9 fixed point
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// One metric's exported state, produced by MetricsRegistry::Snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t counter_value = 0;
  double gauge_value = 0.0;
  int64_t histogram_count = 0;
  double histogram_sum = 0.0;
  std::vector<double> histogram_bounds;   ///< finite upper bounds
  std::vector<int64_t> histogram_buckets; ///< counts, last = overflow
};

/// Thread-safe name -> metric registry. Registration (Get*) takes a mutex
/// and may allocate; it happens at level/run granularity, never inside
/// kernel loops. Returned pointers are stable for the registry's lifetime,
/// so hot sites register once (e.g. via function-local statics) and then
/// update lock-free.
class MetricsRegistry {
 public:
  /// Process-wide default registry (never destroyed).
  static MetricsRegistry* Default();

  /// Returns the counter named `name`, creating it on first use. Requesting
  /// an existing name with a different metric type aborts (programming
  /// error).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});

  /// Consistent-enough snapshot of every metric, sorted by name. Relaxed
  /// loads: values recorded concurrently with the snapshot may or may not
  /// be included, which is fine for end-of-run export.
  std::vector<MetricSample> Snapshot() const;

  /// Zeroes every registered metric (between runs / tests). Pointers stay
  /// valid.
  void ResetValues();

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

/// Composes a per-level metric name: "<engine>/level<level>/<what>", e.g.
/// LevelMetricName("native", 3, "candidates") == "native/level3/candidates".
std::string LevelMetricName(const char* engine, int level, const char* what);

/// Records one enumeration level's statistics as per-level counters in the
/// default registry (no-op when metrics are disabled). Every engine calls
/// this with exactly the values it stores in its LevelStats row, so the
/// registry view and the struct view are the same numbers by construction.
void RecordLevelMetrics(const char* engine, int level, int64_t candidates,
                        int64_t valid, int64_t pruned, double seconds);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_METRICS_H_
