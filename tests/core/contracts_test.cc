// Failure-injection tests for the CHECK-guarded internal contracts: the
// library promises Status errors for user-facing misuse and hard aborts for
// programming errors. These death tests pin down the latter so contract
// regressions (silent acceptance of malformed state) are caught.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "linalg/csr_matrix.h"

namespace sliceline {
namespace {

using core::ScoringContext;
using core::SliceEvaluator;
using core::TopK;
using linalg::CooBuilder;
using linalg::CsrMatrix;

TEST(CsrContractsTest, RowPtrSizeMismatchAborts) {
  EXPECT_DEATH(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), "Check failed");
}

TEST(CsrContractsTest, RowPtrNotStartingAtZeroAborts) {
  EXPECT_DEATH(CsrMatrix(1, 2, {1, 1}, {}, {}), "Check failed");
}

TEST(CsrContractsTest, ValueColumnCountMismatchAborts) {
  EXPECT_DEATH(CsrMatrix(1, 2, {0, 1}, {0}, {1.0, 2.0}), "Check failed");
}

TEST(CooContractsTest, OutOfRangeAddAborts) {
  CooBuilder builder(2, 2);
  EXPECT_DEATH(builder.Add(2, 0, 1.0), "Check failed");
  EXPECT_DEATH(builder.Add(0, -1, 1.0), "Check failed");
}

TEST(ScoringContractsTest, InvalidAlphaAborts) {
  EXPECT_DEATH(ScoringContext(100, 10.0, 0.0), "alpha");
  EXPECT_DEATH(ScoringContext(100, 10.0, 1.5), "alpha");
}

TEST(ScoringContractsTest, NonPositiveRowsAborts) {
  EXPECT_DEATH(ScoringContext(0, 10.0, 0.5), "Check failed");
}

TEST(TopKContractsTest, InvalidParametersAbort) {
  EXPECT_DEATH(TopK(0, 10), "Check failed");
  EXPECT_DEATH(TopK(3, 0), "Check failed");
}

TEST(EvaluatorContractsTest, ErrorSizeMismatchAborts) {
  data::IntMatrix x0(4, 2, 1);
  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  std::vector<double> wrong(3, 0.1);
  EXPECT_DEATH(SliceEvaluator(x0, offsets, wrong), "Check failed");
}

TEST(EvaluatorContractsTest, NegativeErrorAborts) {
  data::IntMatrix x0(4, 2, 1);
  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  std::vector<double> negative(4, -1.0);
  EXPECT_DEATH(SliceEvaluator(x0, offsets, negative), "Check failed");
}

TEST(EvaluatorContractsTest, CodeOutsideDomainAborts) {
  data::IntMatrix x0(4, 2, 1);
  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  data::IntMatrix bad = x0;
  bad.At(0, 0) = 7;  // outside the offsets' domain of 1
  std::vector<double> errors(4, 0.1);
  EXPECT_DEATH(data::OneHotEncode(bad, offsets), "out of domain");
}

}  // namespace
}  // namespace sliceline
