#ifndef SLICELINE_SERVE_SCHEDULER_H_
#define SLICELINE_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/run_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/slice.h"
#include "obs/trace_merge.h"
#include "serve/dataset_registry.h"

namespace sliceline::serve {

/// The "remote" engine, injected from above: serve cannot depend on the
/// dist layer (dist links serve), so whoever assembles the process
/// (sliceline_server, the integration tests) wires the distributed runner
/// in through this hook. `trace_id` is the job's fleet-trace id (0 = fleet
/// tracing off) and `obs_out`, when non-null, receives the per-worker
/// spans / counter deltas / cost sections collected during the run.
using RemoteEngineFn = std::function<StatusOr<core::SliceLineResult>(
    const data::EncodedDataset& dataset, const core::SliceLineConfig& config,
    uint64_t trace_id, obs::DistObsBundle* obs_out)>;

/// What one find_slices job runs: the (immutable, shared) dataset, the
/// engine, the fully resolved config, and the per-job resource envelope.
struct JobSpec {
  std::shared_ptr<const RegisteredDataset> dataset;
  std::string engine = "native";  ///< "native" | "la" | "remote"
  core::SliceLineConfig config;
  double deadline_seconds = 0.0;     ///< 0 = none; from execution start
  int64_t memory_budget_bytes = 0;   ///< 0 = the scheduler's shared budget
};

enum class JobState {
  kQueued,
  kRunning,
  kDone,       ///< result available (possibly partial, see outcome)
  kFailed,     ///< error status available
  kCancelled,  ///< cancelled while still queued; never ran
};

const char* JobStateName(JobState state);

/// One submitted job. State transitions are guarded by `mutex` and
/// announced on `cv`; the result/error fields are written exactly once,
/// before the transition to a terminal state. A job cancelled mid-run still
/// ends kDone -- the engines honor cooperative cancellation by returning
/// best-so-far results with outcome.termination == kCancelled.
struct Job {
  int64_t id = 0;
  JobSpec spec;
  /// Fleet-trace id: nonzero when the scheduler runs with tracing enabled.
  /// Every span the job records (server side and, for the remote engine,
  /// worker side) carries it, and the merged timeline keys off it.
  /// Immutable after Submit.
  uint64_t trace_id = 0;
  RunContext run_context;  ///< cancellation + deadline + budget for the run
  /// Owned per-job budget when the spec overrides the shared one.
  std::unique_ptr<MemoryBudget> own_budget;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobState state = JobState::kQueued;
  Status error;  ///< kFailed only
  core::SliceLineResult result;  ///< kDone only
  double queued_seconds = 0.0;  ///< guarded by `mutex` (status polls read it)
  double run_seconds = 0.0;     ///< guarded by `mutex`
  /// Written once in FinishJob, before the terminal transition (both
  /// guarded by `mutex`): the job's obs::RunReport as strict JSON, and its
  /// merged Chrome/Perfetto timeline. Empty for jobs cancelled while
  /// queued (they never ran) and until the job is terminal.
  std::string report_json;
  std::string trace_json;

  JobState CurrentState() const;
  bool Terminal() const;

  /// Blocks until the job reaches a terminal state.
  void WaitDone() const;
};

/// Bounded-queue job scheduler over the shared ThreadPool. Admission
/// control is a hard bound on jobs admitted but not yet finished
/// (queued + running): past the bound Submit returns ResourceExhausted and
/// the server maps that to a structured protocol error instead of letting
/// latecomers starve everything. All jobs share one server-wide memory
/// budget (so concurrent heavy queries degrade cooperatively) unless their
/// spec carries its own.
class Scheduler {
 public:
  struct Options {
    int workers = 4;
    /// Maximum jobs admitted and not yet terminal (queued + running).
    int max_queue = 16;
    /// Server-wide memory budget; <= 0 = unlimited (accounting only).
    int64_t memory_budget_bytes = 0;
    double soft_fraction = 0.8;
    /// Assign every job a nonzero trace id and persist its merged timeline
    /// at finish. Costs nothing unless the TraceRecorder is enabled, except
    /// that remote-engine workers start recording when they see the id.
    bool fleet_tracing = true;
    /// Backs engine == "remote"; jobs naming it are rejected when unset.
    RemoteEngineFn remote_engine;
  };

  explicit Scheduler(const Options& options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits and dispatches a job, or rejects with ResourceExhausted (queue
  /// full) / Cancelled (scheduler draining).
  StatusOr<std::shared_ptr<Job>> Submit(JobSpec spec);

  /// nullptr when the id was never issued (or already forgotten).
  std::shared_ptr<Job> Find(int64_t id) const;

  /// Cancels a job: a queued job flips to kCancelled without running; a
  /// running job gets its cancellation token set and finishes with a
  /// partial result. Terminal jobs are left untouched (returns their
  /// state). NotFound for unknown ids.
  StatusOr<JobState> Cancel(int64_t id);

  /// Stops admitting and waits for every admitted job to reach a terminal
  /// state (the SIGTERM drain path). Idempotent.
  void DrainAndStop();

  /// True while any non-terminal job references the named dataset. Used to
  /// refuse unregister_dataset; a job submitted concurrently with the check
  /// is benign (it holds its own snapshot, which outlives the registry
  /// entry).
  bool HasActiveJobsForDataset(const std::string& name) const;

  int64_t queue_depth() const;  ///< admitted, not yet running
  int64_t running() const;
  int64_t jobs_admitted() const;
  int64_t jobs_rejected() const;
  int64_t jobs_completed() const;  ///< kDone
  int64_t jobs_failed() const;
  int64_t jobs_cancelled() const;  ///< cancelled while queued

  MemoryBudget* shared_budget() { return &shared_budget_; }

 private:
  void Execute(const std::shared_ptr<Job>& job);
  void FinishJob(const std::shared_ptr<Job>& job, JobState terminal,
                 Status error, core::SliceLineResult result,
                 std::string report_json, std::string trace_json);
  /// Renders the job's RunReport (result, dist sections, per-worker
  /// counter deltas) and its merged Chrome timeline (server track +
  /// worker tracks from `bundle`). Called outside both mutexes -- it
  /// snapshots the metrics registry and drains the trace recorder.
  void BuildJobArtifacts(const Job& job, JobState terminal,
                         const Status& error,
                         const core::SliceLineResult& result,
                         obs::DistObsBundle bundle, double run_seconds,
                         std::string* report_json,
                         std::string* trace_json) const;
  void UpdateQueueDepthGauge() const;

  const Options options_;
  MemoryBudget shared_budget_;

  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;
  bool draining_ = false;
  int64_t next_job_id_ = 1;
  int64_t queued_ = 0;
  int64_t running_ = 0;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  int64_t failed_ = 0;
  int64_t cancelled_ = 0;
  std::map<int64_t, std::shared_ptr<Job>> jobs_;

  // Last member on purpose: destroyed first, so ~ThreadPool joins the
  // workers -- waiting out any closure still inside FinishJob -- while the
  // mutex, condition variable, and counters above are all still alive.
  ThreadPool pool_;
};

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_SCHEDULER_H_
