// Randomized round-trip property: any frame of numeric and categorical
// columns survives WriteCsv -> ReadCsv with types and values intact
// (numeric values restricted to exactly representable decimals).
#include <cstdio>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"

namespace sliceline::data {
namespace {

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, WriteReadPreservesFrame) {
  Rng rng(GetParam() * 131 + 5);
  const int64_t rows = 5 + rng.NextInt(0, 40);
  const int cols = 1 + static_cast<int>(rng.NextUint64(5));
  Frame frame;
  for (int j = 0; j < cols; ++j) {
    const std::string name = "col" + std::to_string(j);
    if (rng.NextBool(0.5)) {
      std::vector<double> values;
      for (int64_t i = 0; i < rows; ++i) {
        values.push_back(static_cast<double>(rng.NextInt(-1000, 1000)) / 4.0);
      }
      ASSERT_TRUE(frame.AddColumn(Column(name, std::move(values))).ok());
    } else {
      // Categories that cannot be mistaken for numbers.
      const char* cats[] = {"alpha", "beta", "gamma", "delta"};
      std::vector<std::string> values;
      for (int64_t i = 0; i < rows; ++i) {
        values.push_back(cats[rng.NextUint64(4)]);
      }
      ASSERT_TRUE(frame.AddColumn(Column(name, std::move(values))).ok());
    }
  }

  const std::string path = ::testing::TempDir() + "/roundtrip_" +
                           std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(WriteCsv(frame, path).ok());
  auto back = ReadCsv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), frame.num_rows());
  ASSERT_EQ(back->num_columns(), frame.num_columns());
  for (int j = 0; j < cols; ++j) {
    const Column& orig = frame.column(j);
    const Column& read = back->column(j);
    EXPECT_EQ(orig.name(), read.name());
    ASSERT_EQ(orig.type(), read.type());
    for (int64_t i = 0; i < rows; ++i) {
      if (orig.is_numeric()) {
        EXPECT_DOUBLE_EQ(orig.numeric()[i], read.numeric()[i]);
      } else {
        EXPECT_EQ(orig.categorical()[i], read.categorical()[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace sliceline::data
