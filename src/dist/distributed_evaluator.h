#ifndef SLICELINE_DIST_DISTRIBUTED_EVALUATOR_H_
#define SLICELINE_DIST_DISTRIBUTED_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/sliceline.h"
#include "dist/partition.h"

namespace sliceline::dist {

/// Configuration of the simulated cluster.
struct DistOptions {
  int workers = 4;
  /// Run shard evaluations concurrently on the thread pool (true) or
  /// serially (false). Either way the per-worker busy time is measured so
  /// the simulated parallel wall-clock can be derived on any host.
  bool use_threads = false;
  /// Simulated interconnect for the communication-cost estimate.
  double network_bytes_per_second = 1.25e9;  ///< ~10 GbE
  double latency_per_round_seconds = 0.005;  ///< broadcast + barrier latency
};

/// Accumulated communication/work accounting across evaluation rounds. The
/// Figure 7(b) benchmark reports the derived simulated wall-clock
/// (critical path + communication) per parallelization strategy.
struct DistCostStats {
  int64_t rounds = 0;             ///< Evaluate() calls (one broadcast each)
  int64_t broadcast_bytes = 0;    ///< slice matrix shipped to every worker
  int64_t gather_bytes = 0;       ///< per-slice partial stats shipped back
  double worker_busy_seconds = 0; ///< total compute across workers
  double critical_path_seconds = 0;  ///< sum over rounds of slowest worker
  double EstimatedCommSeconds(const DistOptions& options) const {
    return static_cast<double>(broadcast_bytes + gather_bytes) /
               options.network_bytes_per_second +
           static_cast<double>(rounds) * options.latency_per_round_seconds;
  }
};

/// Simulated distributed slice evaluation (Section 4.4's data-parallel
/// formulation): X is row-partitioned into worker shards once, every
/// Evaluate() broadcasts the slice set to all workers, each worker evaluates
/// on its shard with the local SliceEvaluator, and the partial (ss, se, sm)
/// vectors are aggregated by (+, +, max) -- the same structure as SystemDS'
/// broadcast-based distributed matrix multiplications over a Spark cluster.
class DistributedSliceEvaluator : public core::EvaluatorBackend {
 public:
  DistributedSliceEvaluator(const data::IntMatrix& x0,
                            const std::vector<double>& errors,
                            const DistOptions& options);

  core::EvalResult Evaluate(const core::SliceSet& set,
                            const core::SliceLineConfig& config) const override;

  const std::vector<int64_t>& basic_sizes() const override {
    return basic_sizes_;
  }
  const std::vector<double>& basic_error_sums() const override {
    return basic_error_sums_;
  }
  const std::vector<double>& basic_max_errors() const override {
    return basic_max_errors_;
  }
  int64_t n() const override { return n_; }
  double total_error() const override { return total_error_; }
  const data::FeatureOffsets& offsets() const override { return offsets_; }

  int workers() const { return static_cast<int>(shards_.size()); }
  const DistCostStats& cost() const { return cost_; }

 private:
  struct WorkerState {
    Shard shard;
    std::unique_ptr<core::SliceEvaluator> evaluator;
  };

  data::FeatureOffsets offsets_;
  DistOptions options_;
  std::vector<WorkerState> shards_;
  int64_t n_ = 0;
  double total_error_ = 0.0;
  std::vector<int64_t> basic_sizes_;
  std::vector<double> basic_error_sums_;
  std::vector<double> basic_max_errors_;
  mutable DistCostStats cost_;
};

/// Runs the full SliceLine enumeration with distributed (sharded) slice
/// evaluation; writes the accumulated cost statistics to `cost_out` if
/// non-null.
StatusOr<core::SliceLineResult> RunSliceLineDistributed(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const core::SliceLineConfig& config, const DistOptions& options,
    DistCostStats* cost_out = nullptr);

}  // namespace sliceline::dist

#endif  // SLICELINE_DIST_DISTRIBUTED_EVALUATOR_H_
