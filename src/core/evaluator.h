#ifndef SLICELINE_CORE_EVALUATOR_H_
#define SLICELINE_CORE_EVALUATOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "data/int_matrix.h"
#include "data/onehot.h"
#include "linalg/bitmap.h"

namespace sliceline::core {

/// A flat set of candidate slices, each a sorted list of one-hot column ids
/// (the rows of the paper's S matrix).
class SliceSet {
 public:
  SliceSet() : offsets_{0} {}

  /// Appends a slice given as sorted, distinct one-hot columns.
  void Add(const int64_t* begin, const int64_t* end);
  void Add(const std::vector<int64_t>& columns) {
    Add(columns.data(), columns.data() + columns.size());
  }

  int64_t size() const { return static_cast<int64_t>(offsets_.size()) - 1; }
  int64_t Length(int64_t i) const { return offsets_[i + 1] - offsets_[i]; }
  /// Total column entries across all slices (for byte accounting).
  int64_t total_columns() const { return offsets_.back(); }
  const int64_t* Columns(int64_t i) const {
    return columns_.data() + offsets_[i];
  }

  void Reserve(int64_t slices, int64_t total_columns);

 private:
  std::vector<int64_t> offsets_;
  std::vector<int64_t> columns_;
};

/// Evaluation output, aligned with the slice set (the paper's ss, se, sm).
struct EvalResult {
  std::vector<double> sizes;
  std::vector<double> error_sums;
  std::vector<double> max_errors;
};

/// Abstract slice-evaluation backend: everything the enumeration driver
/// needs from the data side. Implemented by the local SliceEvaluator and by
/// the simulated distributed evaluator in dist/.
class EvaluatorBackend {
 public:
  virtual ~EvaluatorBackend() = default;

  /// Evaluates every slice of `set` (sizes, error sums, max errors). A
  /// backend may fail (e.g. the distributed executor after exhausting its
  /// recovery budget); the local evaluator always succeeds.
  virtual StatusOr<EvalResult> Evaluate(const SliceSet& set,
                                        const SliceLineConfig& config) const = 0;

  /// Level-1 statistics per one-hot column (Equation 4).
  virtual const std::vector<int64_t>& basic_sizes() const = 0;
  virtual const std::vector<double>& basic_error_sums() const = 0;
  virtual const std::vector<double>& basic_max_errors() const = 0;

  virtual int64_t n() const = 0;
  virtual double total_error() const = 0;
  virtual const data::FeatureOffsets& offsets() const = 0;
};

/// Evaluates slice candidates against a dataset (Section 4.4's
/// I = (X * S^T == L) with ss/se/sm aggregations). Holds the inverted
/// one-hot index (the CSC view of X) plus the raw codes for O(1) predicate
/// checks, and implements the per-slice intersection strategy, the
/// scan-shared block strategy whose block size b Figure 6(b) sweeps, and
/// the bit-packed kBitset strategy evaluated with the runtime-dispatched
/// SIMD kernels (AVX2/AVX-512/NEON with a portable scalar reference).
class SliceEvaluator : public EvaluatorBackend {
 public:
  SliceEvaluator(const data::IntMatrix& x0,
                 const data::FeatureOffsets& offsets,
                 const std::vector<double>& errors);

  /// Evaluates every slice of `set` using config's strategy/block size.
  StatusOr<EvalResult> Evaluate(const SliceSet& set,
                                const SliceLineConfig& config) const override;

  /// Level-1 statistics per one-hot column (Equation 4): sizes ss0,
  /// error sums se0, and maximum tuple errors sm0.
  const std::vector<int64_t>& basic_sizes() const override {
    return basic_sizes_;
  }
  const std::vector<double>& basic_error_sums() const override {
    return basic_error_sums_;
  }
  const std::vector<double>& basic_max_errors() const override {
    return basic_max_errors_;
  }

  int64_t n() const override { return x0_->rows(); }
  double total_error() const override { return total_error_; }
  const data::FeatureOffsets& offsets() const override { return *offsets_; }

 private:
  // The strategies poll `ctx` (when non-null) at strided slice/row
  // boundaries and bail out early on a governance stop; Evaluate() then
  // reports the stop as a governance Status.
  void EvaluateIndex(const SliceSet& set, bool parallel,
                     const RunContext* ctx, EvalResult* out) const;
  void EvaluateScanBlock(const SliceSet& set, int block_size, bool parallel,
                         const RunContext* ctx, EvalResult* out) const;
  void EvaluateBitset(const SliceSet& set, bool parallel,
                      const RunContext* ctx, EvalResult* out) const;
  /// Evaluates one slice by scanning the shortest inverted list and probing
  /// the remaining predicates in X0.
  void EvaluateOne(const int64_t* cols, int64_t len, double* size,
                   double* error_sum, double* max_error) const;

  const data::IntMatrix* x0_;
  const data::FeatureOffsets* offsets_;
  const std::vector<double>* errors_;
  double total_error_ = 0.0;

  // CSC inverted index of the one-hot matrix: rows_[col_ptr_[c]..col_ptr_[c+1])
  // lists the rows whose one-hot encoding contains column c, ascending.
  std::vector<int64_t> col_ptr_;
  std::vector<int32_t> rows_;

  // Bit-packed per-column row bitmaps for the kBitset strategy, evaluated
  // with the runtime-dispatched SIMD kernels (linalg/kernels_simd.h).
  // Lazily materialized: only columns that appear in evaluated slices are
  // built, which keeps ultra-wide datasets affordable. Guarded by
  // bitmap_mutex_ during the serial fill pass at the start of each Evaluate
  // call; built columns are immutable afterwards, so the parallel candidate
  // loop reads them without locking.
  mutable linalg::ColumnBitmaps packed_bitmaps_;
  mutable std::mutex bitmap_mutex_;

  std::vector<int64_t> basic_sizes_;
  std::vector<double> basic_error_sums_;
  std::vector<double> basic_max_errors_;
};

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_EVALUATOR_H_
