// Engine-differential, metamorphic, and determinism checks of the fuzzing
// subsystem. Each check returns "" on success or a human-readable
// description of the first divergence (consumed by the shrinker and the
// replay writer).
#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "common/thread_pool.h"
#include "core/exhaustive.h"
#include "core/scoring.h"
#include "core/sliceline.h"
#include "core/sliceline_bestfirst.h"
#include "core/sliceline_la.h"
#include "dist/distributed_evaluator.h"
#include "testing/checks.h"

namespace sliceline::testing {
namespace {

using core::SliceLineResult;

std::string PredicateKey(const core::Slice& slice) {
  std::ostringstream os;
  for (const auto& [f, c] : slice.predicates) os << f << "=" << c << ";";
  return os.str();
}

std::string DescribeCase(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  os << "[profile=" << fuzz_case.profile << " seed=" << fuzz_case.seed
     << " n=" << fuzz_case.x0.rows() << " m=" << fuzz_case.x0.cols()
     << " k=" << fuzz_case.config.k << " alpha=" << fuzz_case.config.alpha
     << " sigma=" << fuzz_case.config.min_support << "]";
  return os.str();
}

/// Rank-wise score comparison plus tie-aware slice-set equivalence: every
/// slice of `a` scoring strictly above a's K-th score (no boundary tie) must
/// appear in `b` with identical predicates. `exact` upgrades the score
/// comparison to bit-identity.
std::string CompareTopK(const SliceLineResult& a, const SliceLineResult& b,
                        const std::string& label, double tolerance,
                        bool exact = false) {
  std::ostringstream os;
  // Top-K admission is `score > 0`, so a slice whose exact score is 0 (e.g.
  // uniform errors) is admitted or rejected on the sign of a ~1e-16
  // round-off — a boundary the metamorphic transforms legitimately perturb.
  // Comparison therefore only covers slices scoring clearly above zero.
  auto filtered = [&](const SliceLineResult& r) {
    std::vector<const core::Slice*> out;
    for (const core::Slice& slice : r.top_k) {
      if (slice.stats.score > tolerance) out.push_back(&slice);
    }
    return out;
  };
  const std::vector<const core::Slice*> fa = filtered(a);
  const std::vector<const core::Slice*> fb = filtered(b);
  if (fa.size() != fb.size()) {
    os << label << ": top-K size mismatch " << fa.size() << " vs " << fb.size()
       << " (scores > tolerance; raw sizes " << a.top_k.size() << " vs "
       << b.top_k.size() << ")";
    return os.str();
  }
  for (size_t i = 0; i < fa.size(); ++i) {
    const double sa = fa[i]->stats.score;
    const double sb = fb[i]->stats.score;
    const bool equal = exact ? sa == sb : std::abs(sa - sb) <= tolerance;
    if (!equal) {
      os << label << ": score mismatch at rank " << i << ": " << sa << " vs "
         << sb;
      return os.str();
    }
  }
  if (fa.empty()) return "";
  // Slices strictly above the K-th score cannot be displaced by tie
  // permutation, so they must appear verbatim on the other side.
  const double kth = fa.back()->stats.score;
  std::set<std::string> b_keys;
  for (const core::Slice* slice : fb) b_keys.insert(PredicateKey(*slice));
  for (const core::Slice* slice : fa) {
    if (slice->stats.score <= kth + tolerance) continue;
    if (b_keys.count(PredicateKey(*slice)) == 0) {
      os << label << ": slice " << slice->ToString()
         << " (above the tie boundary) missing from the other engine";
      return os.str();
    }
  }
  return "";
}

/// Recomputes the native engine's scores with an off-by-one average error
/// (the injected scoring defect the harness must catch).
void CorruptScores(const FuzzCase& fuzz_case, SliceLineResult* result) {
  double total = 0.0;
  for (double e : fuzz_case.errors) total += e;
  const int64_t n = fuzz_case.x0.rows();
  if (n <= 1) return;
  const core::ScoringContext bad(n - 1, total, fuzz_case.config.alpha);
  for (core::Slice& slice : result->top_k) {
    slice.stats.score = bad.Score(slice.stats.size, slice.stats.error_sum);
  }
}

}  // namespace

std::string CheckOracleDifferential(const FuzzCase& fuzz_case,
                                    InjectedBug inject) {
  std::ostringstream os;
  auto oracle =
      core::RunExhaustive(fuzz_case.x0, fuzz_case.errors, fuzz_case.config);
  auto native =
      core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, fuzz_case.config);
  auto la =
      core::RunSliceLineLA(fuzz_case.x0, fuzz_case.errors, fuzz_case.config);
  auto best_first = core::RunSliceLineBestFirst(fuzz_case.x0, fuzz_case.errors,
                                                fuzz_case.config);
  if (oracle.ok() != native.ok() || oracle.ok() != la.ok() ||
      oracle.ok() != best_first.ok()) {
    os << DescribeCase(fuzz_case) << " engines disagree on input validity: "
       << "oracle=" << oracle.status().ToString()
       << " native=" << native.status().ToString()
       << " la=" << la.status().ToString()
       << " best-first=" << best_first.status().ToString();
    return os.str();
  }
  if (!oracle.ok()) return "";  // consistently rejected input

  if (inject == InjectedBug::kScoring) CorruptScores(fuzz_case, &*native);

  for (const auto& [result, label] :
       {std::pair<const SliceLineResult*, const char*>{&*native, "native"},
        {&*la, "la"},
        {&*best_first, "best-first"}}) {
    std::string diff = CompareTopK(*oracle, *result,
                                   std::string("oracle vs ") + label,
                                   kScoreTolerance);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }
  return "";
}

std::string CheckMetamorphic(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  const data::IntMatrix& x0 = fuzz_case.x0;
  const std::vector<double>& errors = fuzz_case.errors;
  const core::SliceLineConfig& config = fuzz_case.config;
  const int64_t n = x0.rows();

  auto base = core::RunSliceLine(x0, errors, config);
  if (!base.ok()) return "";  // invalid inputs are the oracle check's domain

  // (1) Reported stats must match a brute-force row scan, and the score must
  // match Equation 1 recomputed from those stats.
  double total_error = 0.0;
  for (double e : errors) total_error += e;
  const core::ScoringContext scoring(n, total_error, config.alpha);
  for (const core::Slice& slice : base->top_k) {
    int64_t size = 0;
    double error_sum = 0.0;
    double max_error = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      if (!slice.Matches(x0, i)) continue;
      ++size;
      error_sum += errors[i];
      max_error = std::max(max_error, errors[i]);
    }
    if (size != slice.stats.size ||
        std::abs(error_sum - slice.stats.error_sum) > kScoreTolerance ||
        max_error != slice.stats.max_error) {
      os << DescribeCase(fuzz_case) << " stats of " << slice.ToString()
         << " disagree with a row scan (size " << size << " se " << error_sum
         << " sm " << max_error << ")";
      return os.str();
    }
    const double rescored = scoring.Score(size, error_sum);
    if (std::abs(rescored - slice.stats.score) > kScoreTolerance) {
      os << DescribeCase(fuzz_case) << " score of " << slice.ToString()
         << " != Equation 1 rescoring " << rescored;
      return os.str();
    }
  }

  // (2) Row-permutation invariance.
  {
    std::vector<int64_t> perm(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) perm[i] = i;
    Rng perm_rng(fuzz_case.seed ^ 0x9e3779b97f4a7c15ULL);
    perm_rng.Shuffle(perm);
    data::IntMatrix permuted(n, x0.cols());
    std::vector<double> permuted_errors(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < x0.cols(); ++j) {
        permuted.At(i, j) = x0.At(perm[i], j);
      }
      permuted_errors[i] = errors[perm[i]];
    }
    auto shuffled = core::RunSliceLine(permuted, permuted_errors, config);
    if (!shuffled.ok()) {
      return DescribeCase(fuzz_case) +
             " permuted run failed: " + shuffled.status().ToString();
    }
    std::string diff =
        CompareTopK(*base, *shuffled, "row permutation", kScoreTolerance);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }

  // (3) Duplication scaling: replicating every row r times and multiplying
  // sigma by r leaves every score unchanged (both Equation 1 terms are
  // ratios).
  {
    const data::IntMatrix doubled_x0 = x0.ReplicateRows(2);
    std::vector<double> doubled_errors(errors);
    doubled_errors.insert(doubled_errors.end(), errors.begin(), errors.end());
    core::SliceLineConfig doubled_config = config;
    doubled_config.min_support = 2 * core::ResolveMinSupport(config, n);
    auto doubled =
        core::RunSliceLine(doubled_x0, doubled_errors, doubled_config);
    if (!doubled.ok()) {
      return DescribeCase(fuzz_case) +
             " duplicated run failed: " + doubled.status().ToString();
    }
    std::string diff =
        CompareTopK(*base, *doubled, "2x duplication", kScoreTolerance);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }

  // (4) Alpha monotonicity: the best achievable score is non-decreasing in
  // alpha (every admitted slice has an above-average error ratio, so its
  // linear-in-alpha score has non-negative slope).
  {
    const double hi = std::min(1.0, config.alpha + 0.2);
    if (hi > config.alpha) {
      core::SliceLineConfig hi_config = config;
      hi_config.alpha = hi;
      auto hi_result = core::RunSliceLine(x0, errors, hi_config);
      if (!hi_result.ok()) {
        return DescribeCase(fuzz_case) +
               " alpha-raised run failed: " + hi_result.status().ToString();
      }
      const double best_lo =
          base->top_k.empty() ? 0.0 : base->top_k[0].stats.score;
      const double best_hi =
          hi_result->top_k.empty() ? 0.0 : hi_result->top_k[0].stats.score;
      if (best_hi + kScoreTolerance < best_lo) {
        os << DescribeCase(fuzz_case) << " best score decreased when alpha "
           << config.alpha << " -> " << hi << ": " << best_lo << " -> "
           << best_hi;
        return os.str();
      }
    }
  }
  return "";
}

std::string CheckDeterminism(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  const core::SliceLineConfig& config = fuzz_case.config;
  auto base = core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, config);
  if (!base.ok()) return "";

  // The scan-block strategy merges per-thread partials in completion order,
  // so only the per-slice strategies guarantee bit-identical sums under
  // parallel execution.
  const bool bitwise =
      !(config.parallel &&
        config.eval_strategy == core::SliceLineConfig::EvalStrategy::kScanBlock);

  // (1) Re-running the identical configuration.
  {
    auto again = core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, config);
    if (!again.ok()) {
      return DescribeCase(fuzz_case) +
             " re-run failed: " + again.status().ToString();
    }
    std::string diff =
        CompareTopK(*base, *again, "re-run", kScoreTolerance, bitwise);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }

  // (2) Thread-pool sizes {1, 2, 8}.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ResizeGlobalThreadPoolForTesting(threads);
    auto run = core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, config);
    if (!run.ok()) {
      ResizeGlobalThreadPoolForTesting(0);
      os << DescribeCase(fuzz_case) << " run with " << threads
         << " threads failed: " << run.status().ToString();
      return os.str();
    }
    std::string diff =
        CompareTopK(*base, *run, "threads=" + std::to_string(threads),
                    kScoreTolerance, bitwise && threads == 1);
    if (!diff.empty()) {
      ResizeGlobalThreadPoolForTesting(0);
      return DescribeCase(fuzz_case) + " " + diff;
    }
  }
  ResizeGlobalThreadPoolForTesting(0);

  // (3) Distributed shard counts {1, 3, 7} against the local engine.
  for (int workers : {1, 3, 7}) {
    dist::DistOptions options;
    options.workers = workers;
    auto distributed = dist::RunSliceLineDistributed(
        fuzz_case.x0, fuzz_case.errors, config, options);
    if (!distributed.ok()) {
      os << DescribeCase(fuzz_case) << " distributed run (" << workers
         << " workers) failed: " << distributed.status().ToString();
      return os.str();
    }
    std::string diff = CompareTopK(
        *base, *distributed, "workers=" + std::to_string(workers),
        kScoreTolerance);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }

  // (4) Fault-injected distributed runs: identical top-K to the fault-free
  // run (bit-identical short of local fallback) and a reproducible fault
  // schedule across repeats.
  {
    dist::DistOptions clean;
    clean.workers = 5;
    auto clean_run = dist::RunSliceLineDistributed(
        fuzz_case.x0, fuzz_case.errors, config, clean);
    if (!clean_run.ok()) {
      return DescribeCase(fuzz_case) +
             " 5-worker run failed: " + clean_run.status().ToString();
    }
    dist::DistOptions faulty = clean;
    faulty.fault.seed = fuzz_case.seed | 1;
    faulty.fault.transient_rate = 0.15;
    faulty.fault.straggler_rate = 0.15;
    faulty.fault.corruption_rate = 0.10;
    faulty.fault.loss_rate = 0.05;
    dist::DistFaultStats first_stats;
    auto first = dist::RunSliceLineDistributed(
        fuzz_case.x0, fuzz_case.errors, config, faulty, nullptr, &first_stats);
    if (!first.ok()) {
      return DescribeCase(fuzz_case) +
             " faulty run failed: " + first.status().ToString();
    }
    std::string diff =
        CompareTopK(*clean_run, *first, "faults vs clean", kScoreTolerance,
                    /*exact=*/!first_stats.fallback_local);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;

    dist::DistFaultStats second_stats;
    auto second = dist::RunSliceLineDistributed(
        fuzz_case.x0, fuzz_case.errors, config, faulty, nullptr,
        &second_stats);
    if (!second.ok()) {
      return DescribeCase(fuzz_case) +
             " faulty re-run failed: " + second.status().ToString();
    }
    if (!(first_stats == second_stats)) {
      os << DescribeCase(fuzz_case)
         << " fault schedule not reproducible: " << first_stats.Summary()
         << " vs " << second_stats.Summary();
      return os.str();
    }
    diff = CompareTopK(*first, *second, "faulty repeat", kScoreTolerance,
                       /*exact=*/true);
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }
  return "";
}

}  // namespace sliceline::testing
