#include "core/candidates.h"

#include <gtest/gtest.h>

namespace sliceline::core {
namespace {

/// Fixture: 3 features, domains {2, 2, 2} -> one-hot columns 0..5.
data::FeatureOffsets MakeOffsets() {
  data::IntMatrix x0(2, 3);
  for (int j = 0; j < 3; ++j) {
    x0.At(0, j) = 1;
    x0.At(1, j) = 2;
  }
  return data::ComputeOffsets(x0);
}

/// Basic level-1 slices on columns {0, 2, 4} (feature 0=1, 1=1, 2=1) with
/// the given sizes/errors.
void AddBasic(SliceSet* set, EvalResult* stats, int64_t col, double ss,
              double se, double sm) {
  set->Add({col});
  stats->sizes.push_back(ss);
  stats->error_sums.push_back(se);
  stats->max_errors.push_back(sm);
}

TEST(CandidatesTest, LevelTwoJoinsDifferentFeatures) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  SliceSet prev;
  EvalResult stats;
  AddBasic(&prev, &stats, 0, 500, 60, 1.0);  // feature 0
  AddBasic(&prev, &stats, 1, 500, 50, 1.0);  // feature 0 (other code)
  AddBasic(&prev, &stats, 2, 400, 70, 1.0);  // feature 1
  SliceLineConfig config;
  std::vector<ParentBounds> bounds;
  CandidateGenStats gen;
  SliceSet cands = GeneratePairCandidates(prev, stats, 2, ctx, 10, 0.0,
                                          config, offsets, &bounds, &gen);
  // Pairs (0,2) and (1,2) are cross-feature; (0,1) same feature -> invalid.
  EXPECT_EQ(cands.size(), 2);
  EXPECT_EQ(gen.pairs, 3);
  for (int64_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(bounds[i].parents, 2);
    EXPECT_EQ(cands.Length(i), 2);
  }
  // Bounds are the parent minima.
  EXPECT_EQ(bounds[0].size_ub, 400);
  EXPECT_DOUBLE_EQ(bounds[0].error_ub, 60.0);
}

TEST(CandidatesTest, SizePruningFiltersParentsAndCandidates) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  SliceSet prev;
  EvalResult stats;
  AddBasic(&prev, &stats, 0, 5, 4, 1.0);    // below sigma = 10
  AddBasic(&prev, &stats, 2, 400, 70, 1.0);
  AddBasic(&prev, &stats, 4, 300, 50, 1.0);
  SliceLineConfig config;
  std::vector<ParentBounds> bounds;
  SliceSet cands = GeneratePairCandidates(prev, stats, 2, ctx, 10, 0.0,
                                          config, offsets, &bounds, nullptr);
  // Only (2,4) survives: slice with col 0 has support below sigma.
  ASSERT_EQ(cands.size(), 1);
  EXPECT_EQ(cands.Columns(0)[0], 2);
  EXPECT_EQ(cands.Columns(0)[1], 4);

  // With size pruning disabled the small parent participates again.
  config.prune_size = false;
  config.prune_score = false;  // its children cannot score positively
  SliceSet all = GeneratePairCandidates(prev, stats, 2, ctx, 10, 0.0, config,
                                        offsets, &bounds, nullptr);
  EXPECT_EQ(all.size(), 3);
}

TEST(CandidatesTest, ZeroErrorParentExcluded) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  SliceSet prev;
  EvalResult stats;
  AddBasic(&prev, &stats, 0, 500, 0.0, 0.0);  // zero error
  AddBasic(&prev, &stats, 2, 400, 70, 1.0);
  AddBasic(&prev, &stats, 4, 300, 50, 1.0);
  SliceLineConfig config;
  config.prune_score = false;
  std::vector<ParentBounds> bounds;
  SliceSet cands = GeneratePairCandidates(prev, stats, 2, ctx, 10, 0.0,
                                          config, offsets, &bounds, nullptr);
  ASSERT_EQ(cands.size(), 1);  // only (2,4)
}

TEST(CandidatesTest, LevelThreeDeduplicatesAndCountsParents) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  // Level-2 slices ab, ac, bc over columns a=0 (feat0), b=2 (feat1),
  // c=4 (feat2): all three parents of abc are present.
  SliceSet prev;
  EvalResult stats;
  prev.Add({0, 2});
  prev.Add({0, 4});
  prev.Add({2, 4});
  stats.sizes = {100, 90, 80};
  stats.error_sums = {30, 40, 20};
  stats.max_errors = {1.0, 2.0, 0.5};
  SliceLineConfig config;
  std::vector<ParentBounds> bounds;
  CandidateGenStats gen;
  SliceSet cands = GeneratePairCandidates(prev, stats, 3, ctx, 10, 0.0,
                                          config, offsets, &bounds, &gen);
  // Three generating pairs merge into the single candidate abc.
  ASSERT_EQ(cands.size(), 1);
  EXPECT_EQ(gen.pairs, 3);
  EXPECT_EQ(gen.duplicates, 2);
  EXPECT_EQ(bounds[0].parents, 3);
  EXPECT_EQ(bounds[0].size_ub, 80);
  EXPECT_DOUBLE_EQ(bounds[0].error_ub, 20.0);
  EXPECT_DOUBLE_EQ(bounds[0].max_error_ub, 0.5);
  EXPECT_EQ(cands.Length(0), 3);
}

TEST(CandidatesTest, MissingParentPruning) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  // Only two of abc's three parents are enumerated: ab and ac.
  SliceSet prev;
  EvalResult stats;
  prev.Add({0, 2});
  prev.Add({0, 4});
  stats.sizes = {100, 90};
  stats.error_sums = {30, 40};
  stats.max_errors = {1.0, 2.0};
  SliceLineConfig config;
  std::vector<ParentBounds> bounds;
  SliceSet pruned = GeneratePairCandidates(prev, stats, 3, ctx, 10, 0.0,
                                           config, offsets, &bounds, nullptr);
  EXPECT_EQ(pruned.size(), 0);  // np = 2 != L = 3

  config.prune_parents = false;
  SliceSet kept = GeneratePairCandidates(prev, stats, 3, ctx, 10, 0.0,
                                         config, offsets, &bounds, nullptr);
  ASSERT_EQ(kept.size(), 1);
  EXPECT_EQ(bounds[0].parents, 2);
}

TEST(CandidatesTest, NoDeduplicationKeepsMultiplicity) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  SliceSet prev;
  EvalResult stats;
  prev.Add({0, 2});
  prev.Add({0, 4});
  prev.Add({2, 4});
  stats.sizes = {100, 90, 80};
  stats.error_sums = {30, 40, 20};
  stats.max_errors = {1.0, 2.0, 0.5};
  SliceLineConfig config;
  config.deduplicate = false;
  config.prune_parents = false;  // per-pair candidates have only 2 parents
  std::vector<ParentBounds> bounds;
  SliceSet cands = GeneratePairCandidates(prev, stats, 3, ctx, 10, 0.0,
                                          config, offsets, &bounds, nullptr);
  EXPECT_EQ(cands.size(), 3);  // abc three times
}

TEST(CandidatesTest, ScoreThresholdPrunes) {
  data::FeatureOffsets offsets = MakeOffsets();
  ScoringContext ctx(1000, 100.0, 0.95);
  SliceSet prev;
  EvalResult stats;
  AddBasic(&prev, &stats, 0, 400, 50, 0.5);
  AddBasic(&prev, &stats, 2, 400, 50, 0.5);
  SliceLineConfig config;
  std::vector<ParentBounds> bounds;
  // With an absurdly high current top-K threshold everything is pruned.
  SliceSet cands = GeneratePairCandidates(prev, stats, 2, ctx, 10, 1e12,
                                          config, offsets, &bounds, nullptr);
  EXPECT_EQ(cands.size(), 0);
  // Without score pruning the candidate survives.
  config.prune_score = false;
  cands = GeneratePairCandidates(prev, stats, 2, ctx, 10, 1e12, config,
                                 offsets, &bounds, nullptr);
  EXPECT_EQ(cands.size(), 1);
}

}  // namespace
}  // namespace sliceline::core
