#ifndef SLICELINE_SERVE_CLIENT_H_
#define SLICELINE_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/slice.h"
#include "obs/json_parse.h"
#include "serve/protocol.h"

namespace sliceline::serve {

/// Where a server is listening: exactly one of the two fields set.
struct Endpoint {
  std::string unix_socket;
  int tcp_port = -1;

  static Endpoint Unix(std::string path) {
    Endpoint e;
    e.unix_socket = std::move(path);
    return e;
  }
  static Endpoint Tcp(int port) {
    Endpoint e;
    e.tcp_port = port;
    return e;
  }
};

/// Client-side fault tolerance: connect and per-request deadlines plus a
/// bounded retry budget with exponential backoff. Retries only fire on
/// transport-level failures (connect refused, I/O error, response deadline,
/// peer hangup) -- a structured error response from the server is a final
/// answer and is never retried. find_slices is not idempotent once the
/// request line has hit the wire (the server may already be running the
/// job), so it only retries connect-phase failures; read-only requests
/// (status/list/stats) and idempotent mutations (register/cancel) reconnect
/// and resend.
struct ClientOptions {
  int connect_timeout_ms = 5000;   ///< per-attempt connect deadline
  int request_timeout_ms = 60000;  ///< response deadline; < 0 waits forever
  int max_retries = 2;             ///< extra attempts after the first
  double backoff_base_seconds = 0.1;
  double backoff_multiplier = 2.0;
};

/// A find_slices (or done get_status) response unpacked into the same types
/// the in-process engines return, so callers can feed it straight into
/// core::FormatResult. Doubles round-trip exactly through the %.17g wire
/// encoding, which makes the formatted output bit-identical to a local run.
struct FindSlicesReply {
  int64_t job_id = -1;  ///< -1 on a cache hit (no job ran)
  bool cache_hit = false;
  core::SliceLineResult result;
  std::vector<std::string> feature_names;
};

/// Synchronous protocol client: one connection, one in-flight request.
/// Every method sends one request line and blocks for the response line;
/// server-side errors come back as the Status carried in the structured
/// error object (see StatusFromError).
class Client {
 public:
  static StatusOr<Client> Connect(const Endpoint& endpoint,
                                  const ClientOptions& options = {});

  /// Sends `request` (the id is auto-assigned when empty) and returns the
  /// parsed response object after checking "ok" and unwrapping errors.
  /// Transient transport failures are retried per ClientOptions; see the
  /// idempotency note there.
  StatusOr<obs::JsonValue> Call(Request request);

  StatusOr<obs::JsonValue> RegisterDataset(const RegisterDatasetRequest& r);
  StatusOr<FindSlicesReply> FindSlices(const FindSlicesRequest& r);
  StatusOr<obs::JsonValue> GetStatus(int64_t job_id);
  StatusOr<obs::JsonValue> Cancel(int64_t job_id);
  /// The finished job's RunReport document (the exact strict-JSON bytes the
  /// server persisted; write them straight to a file or pipe).
  StatusOr<std::string> GetReport(int64_t job_id);
  /// The finished job's merged Chrome/Perfetto timeline, same convention.
  StatusOr<std::string> GetTrace(int64_t job_id);
  StatusOr<obs::JsonValue> ListDatasets();
  StatusOr<obs::JsonValue> ServerStats();

  /// One append_rows request (a single chunk); see AppendRowsChunked for
  /// transfers larger than one line.
  StatusOr<obs::JsonValue> AppendRows(const AppendRowsRequest& r);
  /// Splits `rows`/`errors` into chunks of `rows_per_chunk` under one
  /// auto-generated transfer id and sends them in order; returns the final
  /// (apply) response.
  StatusOr<obs::JsonValue> AppendRowsChunked(
      const std::string& dataset,
      const std::vector<std::vector<std::string>>& rows,
      const std::vector<double>& errors, int64_t rows_per_chunk);
  StatusOr<obs::JsonValue> Watch(const WatchRequest& r);
  StatusOr<obs::JsonValue> Unwatch(const std::string& dataset);
  StatusOr<obs::JsonValue> UnregisterDataset(const std::string& dataset);
  /// Watch-status form of get_status (keyed by dataset, not job).
  StatusOr<obs::JsonValue> WatchStatus(const std::string& dataset);

  /// Raw response line of the last Call (tooling that wants to print the
  /// server's JSON verbatim instead of re-serializing the parse tree).
  const std::string& last_response_line() const { return last_response_line_; }

  /// Transport-level retries performed over the client's lifetime.
  int64_t retries() const { return retries_; }

 private:
  Client(SocketConnection connection, Endpoint endpoint, ClientOptions options)
      : connection_(std::move(connection)),
        endpoint_(std::move(endpoint)),
        options_(options) {}

  /// One request/response exchange on the current connection. On failure
  /// `*wrote` says whether any part of the request reached the wire (the
  /// boundary that decides whether a non-idempotent request may retry) and
  /// `*got_response` whether a full response line was consumed (making the
  /// failure the server's final answer rather than a transport fault).
  StatusOr<obs::JsonValue> CallOnce(const Request& request, bool* wrote,
                                    bool* got_response);

  SocketConnection connection_;
  Endpoint endpoint_;
  ClientOptions options_;
  int64_t next_id_ = 1;
  int64_t retries_ = 0;
  std::string last_response_line_;
};

/// Unpacks a response object holding "result" (+ "job"/"cache_hit") into a
/// FindSlicesReply; shared by Client::FindSlices and get_status pollers.
StatusOr<FindSlicesReply> UnpackFindSlicesReply(const obs::JsonValue& response);

/// Fetches the /metrics payload over a fresh connection using a minimal
/// HTTP/1.0 GET, strips the headers, and returns the Prometheus text body.
StatusOr<std::string> FetchMetrics(const Endpoint& endpoint);

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_CLIENT_H_
