#include <cmath>

#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::data {

// Mimics the car::Salaries dataset used by the paper's Figure 3 ablation:
// 397 professors with rank (3), discipline (2), yrs.since.phd (10 bins),
// yrs.service (10 bins), sex (2), predicting salary. yrs.service is
// correlated with yrs.since.phd, and rank with both, which produces the
// correlation structure the 2x2-replicated ablation relies on.
EncodedDataset MakeSalaries(const DatasetOptions& options) {
  const int64_t n = internal::ResolveRows(options, 397, 64);
  Rng rng(options.seed);

  EncodedDataset ds;
  ds.name = "salaries";
  ds.task = Task::kRegression;
  ds.x0 = IntMatrix(n, 5);
  ds.feature_names = {"rank", "discipline", "yrs_since_phd_bin",
                      "yrs_service_bin", "sex"};

  std::vector<double> salary(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // Career length drives rank and service.
    const double yrs_phd = rng.NextDouble(1.0, 45.0);
    double yrs_service = yrs_phd - rng.NextDouble(0.0, 12.0);
    if (yrs_service < 0.0) yrs_service = 0.0;
    int32_t rank;  // 1=AsstProf, 2=AssocProf, 3=Prof
    if (yrs_phd < 8.0) {
      rank = rng.NextBool(0.8) ? 1 : 2;
    } else if (yrs_phd < 15.0) {
      rank = rng.NextBool(0.6) ? 2 : 3;
    } else {
      rank = rng.NextBool(0.85) ? 3 : 2;
    }
    const int32_t discipline = rng.NextBool(0.55) ? 2 : 1;  // A/B
    const int32_t sex = rng.NextBool(0.11) ? 2 : 1;         // ~11% female

    ds.x0.At(i, 0) = rank;
    ds.x0.At(i, 1) = discipline;
    ds.x0.At(i, 2) = static_cast<int32_t>(yrs_phd / 4.5) + 1;   // 10 bins
    ds.x0.At(i, 3) = static_cast<int32_t>(yrs_service / 4.5) + 1;
    if (ds.x0.At(i, 2) > 10) ds.x0.At(i, 2) = 10;
    if (ds.x0.At(i, 3) > 10) ds.x0.At(i, 3) = 10;
    ds.x0.At(i, 4) = sex;

    salary[i] = 70000.0 + 18000.0 * (rank - 1) + 6000.0 * (discipline - 1) +
                400.0 * yrs_phd + 3000.0 * rng.NextGaussian();
  }
  ds.y = std::move(salary);

  // Planted problematic subgroups: senior professors in discipline A, and
  // female associate professors, have poorly predicted salaries.
  ds.planted.push_back(PlantedSlice{{{0, 3}, {1, 1}}, 2.5});
  ds.planted.push_back(PlantedSlice{{{4, 2}, {0, 2}}, 3.0});

  // Bake the planted difficulty into the labels so trained models
  // genuinely struggle on these slices (held-out debugging works).
  InjectPlantedDifficulty(&ds, 4500.0, 0.0, rng);

  ErrorSimOptions err;
  err.base_rate = 0.35;    // base residual sd (normalized units)
  err.planted_rate = 2.2;  // planted sd multiplier per severity
  ds.errors = SimulateModelErrors(ds, err, rng);
  return ds;
}

}  // namespace sliceline::data
