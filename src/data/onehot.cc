#include "data/onehot.h"

#include <algorithm>

#include "linalg/kernels.h"

namespace sliceline::data {

int FeatureOffsets::FeatureOfColumn(int64_t col) const {
  SLICELINE_DCHECK(col >= 0 && col < total);
  auto it = std::upper_bound(fb.begin(), fb.end(), col);
  return static_cast<int>(it - fb.begin()) - 1;
}

int32_t FeatureOffsets::CodeOfColumn(int64_t col) const {
  const int f = FeatureOfColumn(col);
  return static_cast<int32_t>(col - fb[f] + 1);
}

int64_t FeatureOffsets::ColumnOf(int feature, int32_t code) const {
  SLICELINE_DCHECK(feature >= 0 && feature < num_features());
  SLICELINE_DCHECK(code >= 1 && code <= fdom[feature]);
  return fb[feature] + code - 1;
}

FeatureOffsets ComputeOffsets(const IntMatrix& x0) {
  FeatureOffsets offsets;
  offsets.fdom = x0.ColMaxs();
  offsets.fb.resize(offsets.fdom.size());
  offsets.fe.resize(offsets.fdom.size());
  int64_t acc = 0;
  for (size_t j = 0; j < offsets.fdom.size(); ++j) {
    offsets.fb[j] = acc;
    acc += offsets.fdom[j];
    offsets.fe[j] = acc;
  }
  offsets.total = acc;
  return offsets;
}

linalg::CsrMatrix OneHotEncode(const IntMatrix& x0,
                               const FeatureOffsets& offsets) {
  const int64_t n = x0.rows();
  const int64_t m = x0.cols();
  std::vector<int64_t> row_ptr(n + 1);
  std::vector<int64_t> col_idx(static_cast<size_t>(n * m));
  std::vector<double> values(static_cast<size_t>(n * m), 1.0);
  for (int64_t i = 0; i <= n; ++i) row_ptr[i] = i * m;
  for (int64_t i = 0; i < n; ++i) {
    const int32_t* row = x0.row(i);
    int64_t* out = col_idx.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      SLICELINE_CHECK(row[j] >= 1 && row[j] <= offsets.fdom[j])
          << "X0 code out of domain at (" << i << "," << j << ")";
      out[j] = offsets.fb[j] + row[j] - 1;
    }
  }
  return linalg::CsrMatrix(n, offsets.total, std::move(row_ptr),
                           std::move(col_idx), std::move(values));
}

linalg::CsrMatrix OneHotEncodeViaTable(const IntMatrix& x0,
                                       const FeatureOffsets& offsets) {
  const int64_t n = x0.rows();
  const int64_t m = x0.cols();
  // rix = row index per (row, feature) pair; cix = X0 + fb (0-based here).
  std::vector<int64_t> rix;
  std::vector<int64_t> cix;
  rix.reserve(static_cast<size_t>(n * m));
  cix.reserve(static_cast<size_t>(n * m));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      rix.push_back(i);
      cix.push_back(offsets.fb[j] + x0.At(i, j) - 1);
    }
  }
  return linalg::Table(rix, cix, n, offsets.total);
}

}  // namespace sliceline::data
