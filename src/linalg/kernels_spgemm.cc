#include <algorithm>

#include "common/logging.h"
#include "linalg/kernels.h"
#include "obs/kernel_scope.h"

namespace sliceline::linalg {

CsrMatrix Transpose(const CsrMatrix& m) {
  SLICELINE_KERNEL_SCOPE("Transpose");
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  std::vector<int64_t> out_ptr(cols + 2, 0);
  // Counting pass, shifted by one so out_ptr can be reused as a cursor.
  const auto& col_idx = m.col_idx();
  for (int64_t c : col_idx) ++out_ptr[c + 2];
  for (int64_t j = 2; j < cols + 2; ++j) out_ptr[j] += out_ptr[j - 1];
  std::vector<int64_t> out_cols(col_idx.size());
  std::vector<double> out_vals(col_idx.size());
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t* cols_r = m.RowCols(r);
    const double* vals_r = m.RowVals(r);
    const int64_t nnz = m.RowNnz(r);
    for (int64_t k = 0; k < nnz; ++k) {
      const int64_t pos = out_ptr[cols_r[k] + 1]++;
      out_cols[pos] = r;
      out_vals[pos] = vals_r[k];
    }
  }
  out_ptr.pop_back();
  return CsrMatrix(cols, rows, std::move(out_ptr), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix Multiply(const CsrMatrix& a, const CsrMatrix& b) {
  SLICELINE_KERNEL_SCOPE("Multiply");
  SLICELINE_CHECK_EQ(a.cols(), b.rows());
  const int64_t rows = a.rows();
  const int64_t cols = b.cols();
  std::vector<int64_t> row_ptr(rows + 1, 0);
  std::vector<int64_t> out_cols;
  std::vector<double> out_vals;
  // Gustavson with a sparse accumulator.
  std::vector<double> accum(static_cast<size_t>(cols), 0.0);
  std::vector<int64_t> touched;
  for (int64_t i = 0; i < rows; ++i) {
    touched.clear();
    const int64_t* a_cols = a.RowCols(i);
    const double* a_vals = a.RowVals(i);
    const int64_t a_nnz = a.RowNnz(i);
    for (int64_t ka = 0; ka < a_nnz; ++ka) {
      const int64_t k = a_cols[ka];
      const double av = a_vals[ka];
      const int64_t* b_cols = b.RowCols(k);
      const double* b_vals = b.RowVals(k);
      const int64_t b_nnz = b.RowNnz(k);
      for (int64_t kb = 0; kb < b_nnz; ++kb) {
        const int64_t j = b_cols[kb];
        if (accum[j] == 0.0) touched.push_back(j);
        accum[j] += av * b_vals[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int64_t j : touched) {
      if (accum[j] != 0.0) {
        out_cols.push_back(j);
        out_vals.push_back(accum[j]);
      }
      accum[j] = 0.0;
    }
    row_ptr[i + 1] = static_cast<int64_t>(out_cols.size());
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix MultiplyABt(const CsrMatrix& a, const CsrMatrix& b) {
  SLICELINE_KERNEL_SCOPE("MultiplyABt");
  SLICELINE_CHECK_EQ(a.cols(), b.cols());
  // A * B^T = A * transpose(B); route through Gustavson, which is
  // asymptotically better than all-pairs row intersections when the result is
  // sparse, and exercises the same kernel the paper's systems would compile
  // to (cf. the cblas_dsyrk remark in Section 4.3).
  return Multiply(a, Transpose(b));
}

}  // namespace sliceline::linalg
