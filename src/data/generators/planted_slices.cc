#include "data/generators/planted_slices.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sliceline::data {

bool RowMatchesPlanted(const IntMatrix& x0, int64_t row,
                       const PlantedSlice& slice) {
  for (const auto& [feature, code] : slice.predicates) {
    if (x0.At(row, feature) != code) return false;
  }
  return true;
}

std::vector<double> SimulateModelErrors(const EncodedDataset& dataset,
                                        const ErrorSimOptions& options,
                                        Rng& rng) {
  const int64_t n = dataset.n();
  std::vector<double> errors(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double severity = 0.0;
    for (const PlantedSlice& slice : dataset.planted) {
      if (RowMatchesPlanted(dataset.x0, i, slice)) {
        severity = std::max(severity, slice.severity);
      }
    }
    if (dataset.task == Task::kClassification) {
      double p = options.base_rate;
      if (severity > 0.0) {
        p = std::min(0.95, options.planted_rate * severity);
      }
      errors[i] = rng.NextBool(p) ? 1.0 : 0.0;
    } else {
      double sd = options.base_rate;
      if (severity > 0.0) sd *= options.planted_rate * severity;
      const double r = sd * rng.NextGaussian();
      errors[i] = r * r;
    }
  }
  return errors;
}

void FillCategorical(IntMatrix& x0, int col, int32_t domain,
                     double zipf_exponent, Rng& rng) {
  SLICELINE_CHECK_GE(domain, 1);
  for (int64_t i = 0; i < x0.rows(); ++i) {
    int32_t code;
    if (zipf_exponent > 0.0) {
      code = static_cast<int32_t>(rng.NextZipf(domain, zipf_exponent)) + 1;
    } else {
      code = static_cast<int32_t>(rng.NextUint64(domain)) + 1;
    }
    x0.At(i, col) = code;
  }
}

void FillCorrelatedGroup(IntMatrix& x0, const std::vector<int>& cols,
                         const std::vector<int32_t>& domains, double noise,
                         Rng& rng) {
  SLICELINE_CHECK_EQ(cols.size(), domains.size());
  SLICELINE_CHECK(!cols.empty());
  int32_t min_dom = domains[0];
  for (int32_t d : domains) min_dom = std::min(min_dom, d);
  for (int64_t i = 0; i < x0.rows(); ++i) {
    const int32_t latent = static_cast<int32_t>(rng.NextUint64(min_dom));
    for (size_t g = 0; g < cols.size(); ++g) {
      int32_t code;
      if (rng.NextBool(noise)) {
        code = static_cast<int32_t>(rng.NextUint64(domains[g])) + 1;
      } else {
        // Map latent in [0, min_dom) proportionally onto [1, domains[g]].
        code = static_cast<int32_t>(
                   (static_cast<int64_t>(latent) * domains[g]) / min_dom) + 1;
      }
      x0.At(i, cols[g]) = code;
    }
  }
}

double RowSeverity(const IntMatrix& x0, int64_t row,
                   const std::vector<PlantedSlice>& planted) {
  double severity = 0.0;
  for (const PlantedSlice& slice : planted) {
    if (RowMatchesPlanted(x0, row, slice)) {
      severity = std::max(severity, slice.severity);
    }
  }
  return severity;
}

void InjectPlantedDifficulty(EncodedDataset* dataset,
                             double regression_noise_scale,
                             double classification_flip_rate, Rng& rng) {
  SLICELINE_CHECK_EQ(static_cast<int64_t>(dataset->y.size()), dataset->n());
  for (int64_t i = 0; i < dataset->n(); ++i) {
    const double severity = RowSeverity(dataset->x0, i, dataset->planted);
    if (severity <= 0.0) continue;
    if (dataset->task == Task::kRegression) {
      dataset->y[i] += regression_noise_scale * severity * rng.NextGaussian();
    } else {
      const double p = std::min(0.45, classification_flip_rate * severity);
      if (rng.NextBool(p) && dataset->num_classes > 1) {
        const int other = static_cast<int>(
            rng.NextUint64(dataset->num_classes - 1));
        const int current = static_cast<int>(dataset->y[i]);
        dataset->y[i] = other >= current ? other + 1 : other;
      }
    }
  }
}

EncodedDataset Replicate(const EncodedDataset& dataset, int row_factor,
                         int col_factor) {
  SLICELINE_CHECK_GE(row_factor, 1);
  SLICELINE_CHECK_GE(col_factor, 1);
  const int64_t n = dataset.n();
  const int64_t m = dataset.m();
  EncodedDataset out;
  out.name = dataset.name + "_x" + std::to_string(row_factor) + "x" +
             std::to_string(col_factor);
  out.task = dataset.task;
  out.num_classes = dataset.num_classes;
  out.x0 = IntMatrix(n * row_factor, m * col_factor);
  for (int rf = 0; rf < row_factor; ++rf) {
    for (int64_t i = 0; i < n; ++i) {
      for (int cf = 0; cf < col_factor; ++cf) {
        for (int64_t j = 0; j < m; ++j) {
          out.x0.At(rf * n + i, cf * m + j) = dataset.x0.At(i, j);
        }
      }
    }
  }
  out.y.reserve(n * row_factor);
  out.errors.reserve(dataset.errors.size() * row_factor);
  for (int rf = 0; rf < row_factor; ++rf) {
    out.y.insert(out.y.end(), dataset.y.begin(), dataset.y.end());
    out.errors.insert(out.errors.end(), dataset.errors.begin(),
                      dataset.errors.end());
  }
  for (int cf = 0; cf < col_factor; ++cf) {
    for (int64_t j = 0; j < m; ++j) {
      std::string base = dataset.feature_names.empty()
                             ? "F" + std::to_string(j)
                             : dataset.feature_names[j];
      out.feature_names.push_back(cf == 0 ? base
                                          : base + "_r" + std::to_string(cf));
    }
  }
  for (const PlantedSlice& slice : dataset.planted) {
    out.planted.push_back(slice);  // predicates refer to the first copy
  }
  return out;
}

}  // namespace sliceline::data
