#include "common/string_util.h"

#include <gtest/gtest.h>

namespace sliceline {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("sliceline", "slice"));
  EXPECT_FALSE(StartsWith("slice", "sliceline"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(FormatTest, DoubleAndCommas) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(75573541), "75,573,541");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace sliceline
