// Job scheduler: admission control, queued/running cancellation, drain
// semantics, governance wiring (deadline + memory budget), and concurrent
// submission (a TSan target).
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/sliceline.h"
#include "core/sliceline_la.h"
#include "serve_test_util.h"

namespace sliceline::serve {
namespace {

/// Fast jobs (a few ms): small lattice.
const std::shared_ptr<const RegisteredDataset>& SmallDataset() {
  static const std::shared_ptr<const RegisteredDataset> dataset =
      BuildRegisteredDataset("small", MakeCsvText(400, 4, 3, 11)).value();
  return dataset;
}

/// Slow jobs (a deep unbounded enumeration): used to observe queued and
/// running states from the outside without timing games.
const std::shared_ptr<const RegisteredDataset>& SlowDataset() {
  static const std::shared_ptr<const RegisteredDataset> dataset =
      BuildRegisteredDataset("slow", MakeCsvText(6000, 8, 4, 13)).value();
  return dataset;
}

JobSpec MakeSpec(const std::shared_ptr<const RegisteredDataset>& dataset,
                 const std::string& engine = "native") {
  JobSpec spec;
  spec.dataset = dataset;
  spec.engine = engine;
  spec.config.k = 4;
  spec.config.alpha = 0.95;
  return spec;
}

/// A slow-but-bounded job (level cap 3, ~tens of ms): long enough that a
/// burst of submissions piles up behind one worker, short enough that the
/// tests that let it finish stay fast.
JobSpec SlowSpec() {
  JobSpec spec = MakeSpec(SlowDataset());
  spec.config.max_level = 3;
  return spec;
}

/// A genuinely long job for the tests that interrupt it. The planted-signal
/// dataset prunes flat by level ~4, so no level cap alone keeps the engine
/// busy; disabling the upper-bound pruning makes the candidate set grow
/// combinatorially (several seconds of work), wide enough that cancellation
/// or a deadline reliably lands mid-run even on a heavily loaded machine.
/// The level cap bounds the damage if interruption were to break.
JobSpec LongSpec() {
  JobSpec spec = MakeSpec(SlowDataset());
  spec.config.max_level = 5;
  spec.config.prune_size = false;
  spec.config.prune_score = false;
  return spec;
}

Scheduler::Options MakeOptions(int workers, int max_queue) {
  Scheduler::Options options;
  options.workers = workers;
  options.max_queue = max_queue;
  return options;
}

TEST(ServeSchedulerTest, RunsJobToCompletionMatchingDirectRun) {
  Scheduler scheduler(MakeOptions(2, 8));
  auto submitted = scheduler.Submit(MakeSpec(SmallDataset()));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const std::shared_ptr<Job>& job = submitted.value();
  EXPECT_GE(job->id, 1);
  job->WaitDone();
  ASSERT_EQ(job->CurrentState(), JobState::kDone);

  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  auto direct = core::RunSliceLine(SmallDataset()->dataset, config);
  ASSERT_TRUE(direct.ok());
  ExpectSameResult(job->result, direct.value(),
                   SmallDataset()->dataset.feature_names);

  // Counters update just after the job's terminal notification; the drain
  // barrier makes them exact.
  scheduler.DrainAndStop();
  EXPECT_EQ(scheduler.jobs_admitted(), 1);
  EXPECT_EQ(scheduler.jobs_completed(), 1);
  EXPECT_EQ(scheduler.jobs_failed(), 0);
  EXPECT_EQ(scheduler.queue_depth(), 0);
  EXPECT_EQ(scheduler.running(), 0);
  EXPECT_EQ(scheduler.Find(job->id), job);
  EXPECT_EQ(scheduler.Find(9999), nullptr);
}

TEST(ServeSchedulerTest, DispatchesLinearAlgebraEngine) {
  Scheduler scheduler(MakeOptions(2, 8));
  auto submitted = scheduler.Submit(MakeSpec(SmallDataset(), "la"));
  ASSERT_TRUE(submitted.ok());
  submitted.value()->WaitDone();
  ASSERT_EQ(submitted.value()->CurrentState(), JobState::kDone);

  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  auto direct = core::RunSliceLineLA(SmallDataset()->dataset, config);
  ASSERT_TRUE(direct.ok());
  ExpectSameResult(submitted.value()->result, direct.value(),
                   SmallDataset()->dataset.feature_names);
}

TEST(ServeSchedulerTest, EngineErrorYieldsFailedState) {
  Scheduler scheduler(MakeOptions(1, 8));
  JobSpec spec = MakeSpec(SmallDataset());
  spec.config.k = 0;  // the engine rejects k < 1
  auto submitted = scheduler.Submit(std::move(spec));
  ASSERT_TRUE(submitted.ok());
  submitted.value()->WaitDone();
  ASSERT_EQ(submitted.value()->CurrentState(), JobState::kFailed);
  {
    std::lock_guard<std::mutex> lock(submitted.value()->mutex);
    EXPECT_EQ(submitted.value()->error.code(), StatusCode::kInvalidArgument);
  }
  scheduler.DrainAndStop();
  EXPECT_EQ(scheduler.jobs_failed(), 1);
}

TEST(ServeSchedulerTest, AdmissionRejectsWhenQueueIsFull) {
  Scheduler scheduler(MakeOptions(1, 2));
  std::vector<std::shared_ptr<Job>> admitted;
  bool saw_rejection = false;
  // A burst far larger than the bound: with one worker chewing on slow
  // jobs, the in-flight count hits max_queue within the first submissions.
  for (int i = 0; i < 16 && !saw_rejection; ++i) {
    auto submitted = scheduler.Submit(SlowSpec());
    if (submitted.ok()) {
      admitted.push_back(submitted.value());
      continue;
    }
    saw_rejection = true;
    EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(submitted.status().message().find("queue full"),
              std::string::npos);
  }
  EXPECT_TRUE(saw_rejection);
  // Fast jobs may retire mid-burst and free slots, so more than max_queue
  // jobs can be admitted in total -- but never more than max_queue at once,
  // which is what the rejection above witnessed.
  EXPECT_GE(scheduler.jobs_rejected(), 1);
  scheduler.DrainAndStop();
  EXPECT_EQ(scheduler.jobs_completed(),
            static_cast<int64_t>(admitted.size()));
}

TEST(ServeSchedulerTest, CancelQueuedJobNeverRuns) {
  Scheduler scheduler(MakeOptions(1, 8));
  // The single worker picks up the long blocker; the next submission waits
  // in the queue where the cancel can reach it before execution. The blocker
  // must outlive the few statements up to the cancel even if this thread is
  // descheduled for a while, hence LongSpec rather than SlowSpec.
  auto blocker = scheduler.Submit(LongSpec());
  ASSERT_TRUE(blocker.ok());
  auto queued = scheduler.Submit(MakeSpec(SmallDataset()));
  ASSERT_TRUE(queued.ok());

  auto state = scheduler.Cancel(queued.value()->id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value(), JobState::kCancelled);
  queued.value()->WaitDone();
  EXPECT_EQ(queued.value()->CurrentState(), JobState::kCancelled);
  EXPECT_EQ(scheduler.jobs_cancelled(), 1);

  // Release the worker. If the blocker was already running, the cooperative
  // cancel retires it as kDone with best-so-far results; on a heavily loaded
  // machine the worker may not have picked it up yet, in which case the
  // queued-cancel path ends it kCancelled without running.
  ASSERT_TRUE(scheduler.Cancel(blocker.value()->id).ok());
  blocker.value()->WaitDone();
  const JobState blocker_state = blocker.value()->CurrentState();
  EXPECT_TRUE(blocker_state == JobState::kDone ||
              blocker_state == JobState::kCancelled);
  const int64_t expected_cancelled =
      blocker_state == JobState::kCancelled ? 2 : 1;
  // Cancelling a terminal job is a no-op reporting the terminal state.
  auto again = scheduler.Cancel(queued.value()->id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), JobState::kCancelled);
  EXPECT_EQ(scheduler.jobs_cancelled(), expected_cancelled);
}

TEST(ServeSchedulerTest, CancelRunningJobReturnsPartialResult) {
  Scheduler scheduler(MakeOptions(1, 4));
  auto submitted = scheduler.Submit(LongSpec());
  ASSERT_TRUE(submitted.ok());
  const std::shared_ptr<Job>& job = submitted.value();
  while (job->CurrentState() == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(job->CurrentState(), JobState::kRunning);
  auto state = scheduler.Cancel(job->id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value(), JobState::kRunning);

  job->WaitDone();
  // Cooperative cancellation: the engine returns best-so-far results, so
  // the job still ends kDone -- with the outcome recording the cut.
  ASSERT_EQ(job->CurrentState(), JobState::kDone);
  std::lock_guard<std::mutex> lock(job->mutex);
  EXPECT_EQ(job->result.outcome.termination,
            RunOutcome::Termination::kCancelled);
  EXPECT_TRUE(job->result.outcome.partial);
}

TEST(ServeSchedulerTest, CancelUnknownJobIsNotFound) {
  Scheduler scheduler(MakeOptions(1, 4));
  auto state = scheduler.Cancel(12345);
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.status().code(), StatusCode::kNotFound);
}

TEST(ServeSchedulerTest, PerJobDeadlineCutsTheRunShort) {
  Scheduler scheduler(MakeOptions(1, 4));
  JobSpec spec = LongSpec();
  spec.deadline_seconds = 0.003;
  auto submitted = scheduler.Submit(std::move(spec));
  ASSERT_TRUE(submitted.ok());
  submitted.value()->WaitDone();
  ASSERT_EQ(submitted.value()->CurrentState(), JobState::kDone);
  std::lock_guard<std::mutex> lock(submitted.value()->mutex);
  // The engine degrades and/or stops early; it must not report an
  // untroubled completion on a multi-second enumeration given 3ms.
  EXPECT_NE(submitted.value()->result.outcome.termination,
            RunOutcome::Termination::kCompleted);
}

TEST(ServeSchedulerTest, MemoryBudgetsAreWiredIntoJobs) {
  Scheduler::Options options = MakeOptions(1, 4);
  options.memory_budget_bytes = 1LL << 30;
  Scheduler scheduler(options);

  // Default: the shared server-wide budget accounts the run.
  auto shared_job = scheduler.Submit(MakeSpec(SmallDataset()));
  ASSERT_TRUE(shared_job.ok());
  shared_job.value()->WaitDone();
  ASSERT_EQ(shared_job.value()->CurrentState(), JobState::kDone);
  EXPECT_GT(scheduler.shared_budget()->peak_bytes(), 0);
  EXPECT_EQ(shared_job.value()->own_budget, nullptr);

  // Per-job override: the job gets its own budget instance.
  JobSpec spec = MakeSpec(SmallDataset());
  spec.memory_budget_bytes = 1LL << 29;
  auto own_job = scheduler.Submit(std::move(spec));
  ASSERT_TRUE(own_job.ok());
  own_job.value()->WaitDone();
  ASSERT_EQ(own_job.value()->CurrentState(), JobState::kDone);
  ASSERT_NE(own_job.value()->own_budget, nullptr);
  EXPECT_GT(own_job.value()->own_budget->peak_bytes(), 0);
}

TEST(ServeSchedulerTest, DrainStopsAdmissionAndWaitsForInFlight) {
  auto scheduler = std::make_unique<Scheduler>(MakeOptions(2, 16));
  std::vector<std::shared_ptr<Job>> jobs;
  for (int i = 0; i < 6; ++i) {
    auto submitted = scheduler->Submit(MakeSpec(SmallDataset()));
    ASSERT_TRUE(submitted.ok());
    jobs.push_back(submitted.value());
  }
  scheduler->DrainAndStop();
  for (const std::shared_ptr<Job>& job : jobs) {
    EXPECT_TRUE(job->Terminal());
    EXPECT_EQ(job->CurrentState(), JobState::kDone);
  }
  EXPECT_EQ(scheduler->queue_depth(), 0);
  EXPECT_EQ(scheduler->running(), 0);

  auto rejected = scheduler->Submit(MakeSpec(SmallDataset()));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCancelled);
  EXPECT_NE(rejected.status().message().find("draining"), std::string::npos);
}

// TSan target: concurrent submissions, cancels, and stat reads against one
// scheduler must be race-free, and the counters must balance afterwards.
TEST(ServeSchedulerTest, ConcurrentSubmitCancelAndStatsAreCoherent) {
  Scheduler scheduler(MakeOptions(4, 64));
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 4;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&scheduler, &accepted, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        auto submitted = scheduler.Submit(MakeSpec(SmallDataset()));
        if (!submitted.ok()) continue;
        accepted.fetch_add(1, std::memory_order_relaxed);
        if ((t + i) % 3 == 0) {
          (void)scheduler.Cancel(submitted.value()->id);
        }
        (void)scheduler.queue_depth();
        (void)scheduler.running();
        submitted.value()->WaitDone();
        EXPECT_TRUE(submitted.value()->Terminal());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  scheduler.DrainAndStop();
  EXPECT_EQ(scheduler.jobs_admitted(), accepted.load());
  EXPECT_EQ(scheduler.jobs_completed() + scheduler.jobs_cancelled(),
            accepted.load());
  EXPECT_EQ(scheduler.jobs_failed(), 0);
  EXPECT_EQ(scheduler.queue_depth(), 0);
  EXPECT_EQ(scheduler.running(), 0);
}

}  // namespace
}  // namespace sliceline::serve
