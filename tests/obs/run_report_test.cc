// RunReport schema tests: the JSON document is strict (validated with the
// same ValidateStrictJson the shell tests use), carries every section, and
// mirrors the engine's own LevelStats exactly; the Prometheus exposition
// follows the text-format rules (TYPE lines, cumulative buckets, +Inf =
// count); file output round-trips through WriteRunReportJson.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"
#include "data/int_matrix.h"
#include "obs/json_validate.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace sliceline::obs {
namespace {

class RunReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
    MetricsRegistry::Default()->ResetValues();
  }
  void TearDown() override {
    MetricsRegistry::Default()->ResetValues();
    SetMetricsEnabled(was_enabled_);
  }

  /// Planted dataset with a clear problem conjunction so the top-K is
  /// non-empty and multiple levels enumerate.
  static void MakePlanted(int64_t n, data::IntMatrix* x0,
                          std::vector<double>* errors) {
    Rng rng(41);
    *x0 = data::IntMatrix(n, 4);
    errors->resize(n);
    for (int64_t i = 0; i < n; ++i) {
      for (int j = 0; j < 4; ++j) {
        x0->At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
      }
      (*errors)[i] = rng.NextBool(0.05) ? 1.0 : 0.0;
      if (x0->At(i, 0) == 1 && x0->At(i, 1) == 2) (*errors)[i] = 1.0;
    }
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(RunReportTest, EmptyReportIsStrictJson) {
  RunReport report;
  std::ostringstream os;
  report.WriteJson(os, nullptr);
  EXPECT_EQ(ValidateStrictJson(os.str()), "") << os.str();
  EXPECT_NE(os.str().find("\"schema_version\":1"), std::string::npos);
}

TEST_F(RunReportTest, FullReportIsStrictJsonWithAllSections) {
  data::IntMatrix x0;
  std::vector<double> errors;
  MakePlanted(800, &x0, &errors);
  core::SliceLineConfig config;
  config.k = 3;
  auto result = core::RunSliceLine(x0, errors, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top_k.empty());

  RunReport report;
  report.set_tool("run_report_test");
  report.set_engine("native");
  report.set_dataset("planted");
  report.SetConfig(config);
  report.SetResult(*result, {"f0", "f1", "f2", "f3"});
  report.AddNumericSection("extra", {{"a", 1.0}, {"b", 2.5}});
  report.AddNumericSection("extra", {{"c", -3.0}});  // merges into "extra"
  report.AddAnnotation("note", "value with \"quotes\" and \\ backslash");

  std::ostringstream os;
  report.WriteJson(os);
  const std::string json = os.str();
  EXPECT_EQ(ValidateStrictJson(json), "") << json;
  for (const char* key :
       {"\"schema_version\"", "\"tool\"", "\"engine\"", "\"dataset\"",
        "\"config\"", "\"totals\"", "\"levels\"", "\"top_k\"", "\"outcome\"",
        "\"sections\"", "\"annotations\"", "\"metrics\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"termination\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"extra\":{\"a\":1,\"b\":2.5,\"c\":-3}"),
            std::string::npos);
  // Registry snapshot made it in: the run above recorded per-level
  // counters through the native engine's instrumentation.
  EXPECT_NE(json.find("\"name\":\"native/level1/candidates\""),
            std::string::npos);
}

TEST_F(RunReportTest, PerLevelMetricsMatchLevelStatsExactly) {
  data::IntMatrix x0;
  std::vector<double> errors;
  MakePlanted(1000, &x0, &errors);
  core::SliceLineConfig config;
  config.k = 4;
  auto result = core::RunSliceLine(x0, errors, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->levels.empty());

  MetricsRegistry* registry = MetricsRegistry::Default();
  int64_t candidates_total = 0;
  for (const core::LevelStats& level : result->levels) {
    candidates_total += level.candidates;
    EXPECT_EQ(registry
                  ->GetCounter(LevelMetricName("native", level.level,
                                               "candidates"))
                  ->Value(),
              level.candidates)
        << "level " << level.level;
    EXPECT_EQ(
        registry->GetCounter(LevelMetricName("native", level.level, "valid"))
            ->Value(),
        level.valid)
        << "level " << level.level;
    EXPECT_EQ(
        registry->GetCounter(LevelMetricName("native", level.level, "pruned"))
            ->Value(),
        level.pruned)
        << "level " << level.level;
  }
  EXPECT_EQ(registry->GetCounter("native/candidates_total")->Value(),
            candidates_total);
  EXPECT_EQ(registry->GetCounter("native/levels_completed")->Value(),
            static_cast<int64_t>(result->levels.size()));
  EXPECT_EQ(registry->GetHistogram("native/level_seconds")->Count(),
            static_cast<int64_t>(result->levels.size()));
}

TEST_F(RunReportTest, PrometheusMetricNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("native/level1/candidates"),
            "sliceline_native_level1_candidates");
  EXPECT_EQ(PrometheusMetricName("kernel/MatVec/seconds"),
            "sliceline_kernel_MatVec_seconds");
  EXPECT_EQ(PrometheusMetricName("a-b.c d"), "sliceline_a_b_c_d");
}

TEST_F(RunReportTest, PrometheusExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("native/level1/candidates")->Add(5);
  registry.GetGauge("dist/rounds")->Set(3.0);
  HistogramOptions options;
  options.base = 1.0;
  options.growth = 2.0;
  options.num_buckets = 2;  // bounds 1, 2 + overflow
  Histogram* histogram = registry.GetHistogram("timing", options);
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(10.0);

  std::ostringstream os;
  RunReport::WritePrometheus(os, &registry);
  const std::string text = os.str();

  EXPECT_NE(
      text.find("# TYPE sliceline_dist_rounds gauge\nsliceline_dist_rounds 3"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE sliceline_native_level1_candidates counter\n"
                      "sliceline_native_level1_candidates 5"),
            std::string::npos)
      << text;
  // Histogram buckets are cumulative and +Inf equals the total count.
  EXPECT_NE(text.find("# TYPE sliceline_timing histogram"),
            std::string::npos);
  EXPECT_NE(text.find("sliceline_timing_bucket{le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sliceline_timing_bucket{le=\"2\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sliceline_timing_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sliceline_timing_count 3"), std::string::npos);
  EXPECT_NE(text.find("sliceline_timing_sum 12"), std::string::npos) << text;

  // Every non-comment line is "name[{labels}] value" with a sane name.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    EXPECT_EQ(name.rfind("sliceline_", 0), 0u) << line;
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << "bad character '" << c << "' in " << line;
    }
  }
}

TEST_F(RunReportTest, WriteRunReportJsonToFile) {
  RunReport report;
  report.set_tool("run_report_test");
  const std::string path = ::testing::TempDir() + "run_report_test.json";
  ASSERT_TRUE(WriteRunReportJson(report, path, nullptr).ok());
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(ValidateStrictJson(buffer.str()), "");

  // Unopenable path surfaces as a Status, not a crash.
  EXPECT_FALSE(
      WriteRunReportJson(report, "/nonexistent-dir/report.json", nullptr)
          .ok());
}

TEST_F(RunReportTest, ValidatorRejectsMalformedDocuments) {
  // The validator the schema checks rely on actually rejects breakage.
  EXPECT_NE(ValidateStrictJson(""), "");
  EXPECT_NE(ValidateStrictJson("{\"a\":1,}"), "");
  EXPECT_NE(ValidateStrictJson("{\"a\":01}"), "");
  EXPECT_NE(ValidateStrictJson("{\"a\":1} trailing"), "");
  EXPECT_NE(ValidateStrictJson("{\"a\":NaN}"), "");
  EXPECT_EQ(ValidateStrictJson(" {\"a\":[1,2.5,-3e2,null,true]} \n"), "");
}

}  // namespace
}  // namespace sliceline::obs
