// Process-level chaos suite for the distributed execution mode: real
// sliceline_worker processes (SLICELINE_WORKER_BIN, injected by CMake) are
// spawned on loopback ports and a seeded subset is SIGKILLed, suspended
// (SIGSTOP), restarted, or configured to drop connections at level
// boundaries. Every scenario must produce a top-K bit-identical to the
// single-node engine: the error values are dyadic rationals (multiples of
// 1/4), so floating-point summation is exact in any association order and
// "equivalent" is checkable with operator== instead of tolerances.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sliceline.h"
#include "dist/coordinator.h"

namespace sliceline::dist {
namespace {

/// One real worker process; stdout is piped so the test can wait for the
/// READY line and discover the kernel-assigned port.
class WorkerProcess {
 public:
  ~WorkerProcess() { Kill(); }

  /// Spawns SLICELINE_WORKER_BIN --port <port> [extra args...].
  bool Start(int port, const std::vector<std::string>& extra = {}) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::close(pipe_fds[0]);
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[1]);
      std::vector<std::string> args = {SLICELINE_WORKER_BIN, "--port",
                                       std::to_string(port), "--log-level",
                                       "error"};
      args.insert(args.end(), extra.begin(), extra.end());
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    // Wait for "READY port=N\n".
    std::string line;
    char ch = 0;
    while (::read(pipe_fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    ::close(pipe_fds[0]);
    const std::string prefix = "READY port=";
    if (line.compare(0, prefix.size(), prefix) != 0) return false;
    port_ = std::atoi(line.c_str() + prefix.size());
    return port_ > 0;
  }

  int port() const { return port_; }
  bool running() const { return pid_ > 0; }

  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  void Suspend() {
    if (pid_ > 0) ::kill(pid_, SIGSTOP);
  }
  void Resume() {
    if (pid_ > 0) ::kill(pid_, SIGCONT);
  }

 private:
  pid_t pid_ = -1;
  int port_ = -1;
};

struct ChaosInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

/// Random categorical matrix with dyadic-rational errors (multiples of 1/4):
/// sums of these are exact doubles, so distributed and single-node
/// aggregation agree bit for bit no matter how shards split the sum. The
/// error is additive over three planted feature values, which keeps real
/// (non-prunable) candidates alive through level 3 -- uniform random errors
/// would let the upper bounds prune everything after one Evaluate round, and
/// the round-1 fault hooks below would never fire.
ChaosInput MakeDyadicInput(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  ChaosInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  input.errors.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    double e = static_cast<double>(rng.NextUint64(2)) / 4.0;  // 0 or .25
    if (input.x0.At(i, 0) == 1) e += 0.5;
    if (m > 1 && input.x0.At(i, 1) == 2) e += 0.5;
    if (m > 2 && input.x0.At(i, 2) == 3 && max_dom >= 3) e += 0.5;
    input.errors[i] = e;
  }
  return input;
}

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 4;

  void StartFleet(const std::vector<std::string>& extra = {}) {
    for (int i = 0; i < kWorkers; ++i) {
      auto worker = std::make_unique<WorkerProcess>();
      ASSERT_TRUE(worker->Start(0, extra)) << "worker " << i;
      fleet_.push_back(std::move(worker));
    }
  }

  std::vector<WorkerEndpoint> Endpoints() const {
    std::vector<WorkerEndpoint> out;
    for (const auto& worker : fleet_) {
      out.push_back(WorkerEndpoint{"", worker->port()});
    }
    return out;
  }

  RemoteDistOptions Options() const {
    RemoteDistOptions options;
    options.endpoints = Endpoints();
    options.connect_timeout_ms = 500;
    options.request_timeout_ms = 3000;
    options.straggler_after_ms = 60000;  // enabled per-scenario
    options.max_retries = 3;
    options.backoff_base_seconds = 0.005;
    return options;
  }

  /// Asserts the distributed top-K is bit-identical to the single-node one.
  void ExpectBitIdentical(const core::SliceLineResult& remote,
                          const core::SliceLineResult& local) {
    ASSERT_EQ(remote.top_k.size(), local.top_k.size());
    for (size_t i = 0; i < remote.top_k.size(); ++i) {
      EXPECT_EQ(remote.top_k[i].stats.score, local.top_k[i].stats.score);
      EXPECT_EQ(remote.top_k[i].stats.error_sum,
                local.top_k[i].stats.error_sum);
      EXPECT_EQ(remote.top_k[i].stats.size, local.top_k[i].stats.size);
      EXPECT_EQ(remote.top_k[i].predicates, local.top_k[i].predicates);
    }
    ASSERT_EQ(remote.levels.size(), local.levels.size());
    for (size_t i = 0; i < remote.levels.size(); ++i) {
      EXPECT_EQ(remote.levels[i].candidates, local.levels[i].candidates);
    }
  }

  std::vector<std::unique_ptr<WorkerProcess>> fleet_;
};

TEST_F(ChaosTest, FaultFreeFleetMatchesSingleNodeBitForBit) {
  ChaosInput input = MakeDyadicInput(101, 600, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  StartFleet();
  DistFaultStats faults;
  auto remote = RunSliceLineRemote(input.x0, input.errors, config, Options(),
                                   nullptr, &faults);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_FALSE(faults.fallback_local);
  EXPECT_EQ(faults.workers_lost, 0);
  ExpectBitIdentical(*remote, *local);
}

TEST_F(ChaosTest, SigkilledWorkerAtLevelBoundaryPreservesTopK) {
  ChaosInput input = MakeDyadicInput(211, 600, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  StartFleet();
  RemoteDistOptions options = Options();
  options.request_timeout_ms = 1000;
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) fleet_[2]->Kill();  // SIGKILL at a level boundary
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ((*eval)->faults().workers_lost, 1);
  EXPECT_GT((*eval)->faults().reshards, 0);
  EXPECT_FALSE((*eval)->faults().fallback_local);
  ExpectBitIdentical(*result, *local);
}

TEST_F(ChaosTest, SuspendedStragglerIsMaskedBySpeculation) {
  ChaosInput input = MakeDyadicInput(307, 600, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  StartFleet();
  RemoteDistOptions options = Options();
  options.straggler_after_ms = 200;    // fast straggler detection
  options.request_timeout_ms = 10000;  // ... well before the hard timeout
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) fleet_[1]->Suspend();  // SIGSTOP: wedged, not dead
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  fleet_[1]->Resume();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT((*eval)->faults().stragglers, 0);
  EXPECT_GT((*eval)->faults().speculative_reexecutions, 0);
  EXPECT_FALSE((*eval)->faults().fallback_local);
  ExpectBitIdentical(*result, *local);
}

TEST_F(ChaosTest, TransientConnectionDropsAreRetried) {
  ChaosInput input = MakeDyadicInput(401, 600, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  // Every worker abruptly closes the connection on every 9th request.
  // Small eval blocks force enough requests per worker that the drop fires
  // repeatedly during the run.
  StartFleet({"--drop-every", "9"});
  RemoteDistOptions options = Options();
  options.request_timeout_ms = 1000;
  options.max_block_slices = 16;
  DistFaultStats faults;
  auto remote = RunSliceLineRemote(input.x0, input.errors, config, options,
                                   nullptr, &faults);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_GT(faults.transient_failures, 0);
  EXPECT_GT(faults.retries, 0);
  EXPECT_FALSE(faults.fallback_local);
  ExpectBitIdentical(*remote, *local);
}

TEST_F(ChaosTest, KilledAndRestartedWorkerReenlists) {
  ChaosInput input = MakeDyadicInput(503, 600, 5, 4);
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  StartFleet();
  RemoteDistOptions options = Options();
  options.request_timeout_ms = 1000;
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) {
      // SIGKILL, then a fresh process on the same port: the coordinator
      // must notice the new session and re-ship the shard.
      const int port = fleet_[3]->port();
      fleet_[3]->Kill();
      fleet_[3] = std::make_unique<WorkerProcess>();
      ASSERT_TRUE(fleet_[3]->Start(port));
    }
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE((*eval)->faults().fallback_local);
  EXPECT_EQ((*eval)->alive_workers(), kWorkers);
  ExpectBitIdentical(*result, *local);
}

TEST_F(ChaosTest, LosingMostOfTheFleetDegradesGracefully) {
  ChaosInput input = MakeDyadicInput(601, 400, 4, 3);
  core::SliceLineConfig config;
  config.k = 4;
  config.min_support = 10;
  auto local = core::RunSliceLine(input.x0, input.errors, config);
  ASSERT_TRUE(local.ok());

  StartFleet();
  RemoteDistOptions options = Options();
  options.request_timeout_ms = 1000;
  options.max_lost_fraction = 0.5;
  auto eval = RemoteSliceEvaluator::Create(input.x0, input.errors, options);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  (*eval)->set_round_hook([&](int64_t round) {
    if (round == 1) {
      fleet_[0]->Kill();
      fleet_[1]->Kill();
      fleet_[2]->Kill();
    }
  });
  auto result = core::RunSliceLineWithBackend(**eval, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE((*eval)->faults().fallback_local);
  // The local fallback evaluates the full matrix: still bit-identical.
  ExpectBitIdentical(*result, *local);
}

}  // namespace
}  // namespace sliceline::dist
