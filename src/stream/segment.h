#ifndef SLICELINE_STREAM_SEGMENT_H_
#define SLICELINE_STREAM_SEGMENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "data/int_matrix.h"
#include "data/onehot.h"
#include "linalg/bitmap.h"

namespace sliceline::stream {

/// One ingested delta: rows [row_begin, row_end) of the concatenated
/// dataset, plus the fingerprint of the dataset *after* this append
/// (chained FNV-style onto the previous fingerprint) and the ingest
/// timestamp (for wall-clock sliding windows).
struct DeltaSegment {
  int64_t row_begin = 0;
  int64_t row_end = 0;
  uint64_t fingerprint = 0;
  double ingest_seconds = 0.0;
};

/// Chains a delta (codes + errors) onto a parent fingerprint with the same
/// FNV-1a scheme the dataset registry uses, so any append sequence yields a
/// fingerprint chain: fp_k = Chain(fp_{k-1}, delta_k). Two different append
/// orders, or the same rows split differently, yield different chains.
uint64_t ChainFingerprint(uint64_t parent, const data::IntMatrix& delta,
                          const std::vector<double>& errors);

/// Computes the base fingerprint of an (x0, errors) pair (chain seed).
uint64_t BaseFingerprint(const data::IntMatrix& x0,
                         const std::vector<double>& errors);

/// Builds FeatureOffsets from explicit per-feature domains (the frozen
/// encoder domains), rather than from observed column maxima. Appended rows
/// may exercise codes the base data never did, so the one-hot layout must be
/// fixed by the dictionary, not by the data seen so far.
data::FeatureOffsets OffsetsFromDomains(const std::vector<int32_t>& domains);

/// Mergeable per-segment slice state for incremental evaluation.
///
/// Holds the concatenated codes/errors, per-one-hot-column packed bitmaps in
/// the global word layout of linalg/bitmap.h (bit r of word r>>6, words
/// padded to kBitmapWordPad), per-column basic statistics, and the delta
/// segment list. Because segment bitmaps use the same global word layout,
/// an append only extends each column's word array — prefix words are never
/// rewritten, which is what lets cached per-candidate statistics at prefix P
/// be *continued* over rows [P, n) instead of recomputed.
///
/// Determinism invariant (the PR 7 rig's): every floating-point statistic is
/// accumulated in one continuous ascending-row scalar add chain. Appends
/// extend those chains in order, so after any append sequence every basic
/// statistic (and total_error) is bit-identical to a from-scratch build over
/// the concatenated data.
///
/// Segments compact LSM-style: when the delta rows exceed a configured
/// fraction of the base, MaybeCompact folds all segments into the base.
/// Compaction is pure metadata — bitmaps and statistics are already global —
/// so it never re-orders a float chain; it only drops the per-boundary
/// column counts used by the untouched-column fast path.
class SegmentStore {
 public:
  /// `domains` fixes per-feature domains (frozen dictionary); empty derives
  /// them from the base column maxima, in which case appends must not
  /// exercise unseen codes.
  static StatusOr<SegmentStore> Create(data::IntMatrix base_x0,
                                       std::vector<double> base_errors,
                                       std::vector<int32_t> domains = {});

  /// Appends a delta in ascending row order. Fails (leaving the store
  /// unchanged) on column-count or domain violations and on non-finite or
  /// negative errors.
  Status Append(const data::IntMatrix& delta_x0,
                const std::vector<double>& delta_errors,
                double ingest_seconds = 0.0);

  /// Folds all delta segments into the base when delta rows exceed
  /// `ratio` * base rows. Returns true when a compaction happened.
  bool MaybeCompact(double ratio);
  void Compact();

  int64_t n() const { return x0_.rows(); }
  int64_t base_rows() const { return base_rows_; }
  int64_t compactions() const { return compactions_; }
  uint64_t fingerprint() const { return fingerprint_; }
  const data::IntMatrix& x0() const { return x0_; }
  const std::vector<double>& errors() const { return errors_; }
  const data::FeatureOffsets& offsets() const { return offsets_; }
  const std::vector<DeltaSegment>& segments() const { return segments_; }

  double total_error() const { return total_error_; }
  const std::vector<int64_t>& basic_sizes() const { return basic_sizes_; }
  const std::vector<double>& basic_error_sums() const {
    return basic_error_sums_;
  }
  const std::vector<double>& basic_max_errors() const {
    return basic_max_errors_;
  }

  /// Number of 64-bit words per column bitmap (BitmapWords(n)).
  int64_t words() const { return words_; }
  const uint64_t* column_words(int64_t col) const {
    return col_words_[static_cast<size_t>(col)].data();
  }

  /// Cumulative per-column row counts at segment boundary `row` (the counts
  /// over rows [0, row)), or nullptr when `row` is not a live boundary
  /// (e.g. after compaction). Row 0 is always a boundary.
  const std::vector<int64_t>* BoundaryCounts(int64_t row) const;

 private:
  SegmentStore() = default;

  Status Validate(const data::IntMatrix& delta,
                  const std::vector<double>& errors) const;
  /// Extends bitmaps/statistics with rows [x0_.rows() - delta.rows(), n).
  void Ingest(const data::IntMatrix& delta,
              const std::vector<double>& delta_errors);

  data::IntMatrix x0_;
  std::vector<double> errors_;
  data::FeatureOffsets offsets_;

  int64_t words_ = 0;  // BitmapWords(n)
  std::vector<std::vector<uint64_t>> col_words_;

  double total_error_ = 0.0;
  std::vector<int64_t> basic_sizes_;
  std::vector<double> basic_error_sums_;
  std::vector<double> basic_max_errors_;

  uint64_t fingerprint_ = 0;
  int64_t base_rows_ = 0;
  int64_t compactions_ = 0;
  std::vector<DeltaSegment> segments_;
  // boundary row -> per-column cumulative counts over [0, row).
  std::map<int64_t, std::vector<int64_t>> boundary_counts_;
};

}  // namespace sliceline::stream

#endif  // SLICELINE_STREAM_SEGMENT_H_
