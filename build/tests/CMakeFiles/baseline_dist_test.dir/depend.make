# Empty dependencies file for baseline_dist_test.
# This may be replaced when dependencies are built.
