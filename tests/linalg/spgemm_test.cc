#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/kernels.h"

namespace sliceline::linalg {
namespace {

CsrMatrix RandomSparse(Rng& rng, int64_t rows, int64_t cols, double density) {
  CooBuilder builder(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (rng.NextBool(density)) builder.Add(i, j, rng.NextInt(-3, 3));
    }
  }
  return builder.Build();
}

TEST(TransposeTest, SmallExplicit) {
  CooBuilder builder(2, 3);
  builder.Add(0, 2, 5.0);
  builder.Add(1, 0, 7.0);
  CsrMatrix t = Transpose(builder.Build());
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 7.0);
}

TEST(TransposeTest, EmptyMatrix) {
  CsrMatrix t = Transpose(CsrMatrix::Zero(3, 4));
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), 0);
}

TEST(MultiplyTest, SmallExplicit) {
  // [1 2] [5 6]   [19 22]
  // [3 4] [7 8] = [43 50]
  CooBuilder a(2, 2);
  a.Add(0, 0, 1);
  a.Add(0, 1, 2);
  a.Add(1, 0, 3);
  a.Add(1, 1, 4);
  CooBuilder b(2, 2);
  b.Add(0, 0, 5);
  b.Add(0, 1, 6);
  b.Add(1, 0, 7);
  b.Add(1, 1, 8);
  CsrMatrix c = Multiply(a.Build(), b.Build());
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

struct SpGemmParam {
  int64_t rows;
  int64_t inner;
  int64_t cols;
  double density;
  uint64_t seed;
};

class SpGemmPropertyTest : public ::testing::TestWithParam<SpGemmParam> {};

TEST_P(SpGemmPropertyTest, MultiplyMatchesDenseReference) {
  const SpGemmParam& p = GetParam();
  Rng rng(p.seed);
  CsrMatrix a = RandomSparse(rng, p.rows, p.inner, p.density);
  CsrMatrix b = RandomSparse(rng, p.inner, p.cols, p.density);
  CsrMatrix c = Multiply(a, b);
  DenseMatrix expect = a.ToDense().MatMul(b.ToDense());
  EXPECT_DOUBLE_EQ(c.ToDense().MaxAbsDiff(expect), 0.0);
}

TEST_P(SpGemmPropertyTest, TransposeMatchesDenseReference) {
  const SpGemmParam& p = GetParam();
  Rng rng(p.seed + 100);
  CsrMatrix a = RandomSparse(rng, p.rows, p.cols, p.density);
  EXPECT_DOUBLE_EQ(
      Transpose(a).ToDense().MaxAbsDiff(a.ToDense().Transpose()), 0.0);
}

TEST_P(SpGemmPropertyTest, MultiplyABtMatchesDenseReference) {
  const SpGemmParam& p = GetParam();
  Rng rng(p.seed + 200);
  CsrMatrix a = RandomSparse(rng, p.rows, p.inner, p.density);
  CsrMatrix b = RandomSparse(rng, p.cols, p.inner, p.density);
  CsrMatrix c = MultiplyABt(a, b);
  DenseMatrix expect = a.ToDense().MatMul(b.ToDense().Transpose());
  EXPECT_DOUBLE_EQ(c.ToDense().MaxAbsDiff(expect), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpGemmPropertyTest,
    ::testing::Values(SpGemmParam{1, 1, 1, 1.0, 1},
                      SpGemmParam{5, 7, 3, 0.1, 2},
                      SpGemmParam{12, 4, 12, 0.3, 3},
                      SpGemmParam{20, 20, 20, 0.05, 4},
                      SpGemmParam{8, 30, 6, 0.5, 5},
                      SpGemmParam{16, 2, 16, 0.9, 6},
                      SpGemmParam{10, 10, 10, 0.0, 7}));

TEST(MultiplyTest, SymmetrySSt) {
  // S * S^T must be symmetric; spot check against the transpose.
  Rng rng(42);
  CsrMatrix s = RandomSparse(rng, 15, 9, 0.3);
  CsrMatrix sst = MultiplyABt(s, s);
  EXPECT_DOUBLE_EQ(
      sst.ToDense().MaxAbsDiff(Transpose(sst).ToDense()), 0.0);
}

TEST(MultiplyTest, BinaryOverlapCount) {
  // For binary (one-hot) rows, (S S^T)(i, j) is the intersection size --
  // the property the pair join of Equation 6 relies on.
  CooBuilder s(3, 6);
  // slice 0: {0, 2}; slice 1: {0, 3}; slice 2: {2, 3}
  s.Add(0, 0, 1);
  s.Add(0, 2, 1);
  s.Add(1, 0, 1);
  s.Add(1, 3, 1);
  s.Add(2, 2, 1);
  s.Add(2, 3, 1);
  const CsrMatrix slices = s.Build();
  CsrMatrix sst = MultiplyABt(slices, slices);
  EXPECT_DOUBLE_EQ(sst.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(sst.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(sst.At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(sst.At(0, 0), 2.0);
}

}  // namespace
}  // namespace sliceline::linalg
