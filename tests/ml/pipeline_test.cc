#include "ml/pipeline.h"

#include <gtest/gtest.h>

#include "data/generators/generators.h"

namespace sliceline::ml {
namespace {

TEST(PipelineTest, RegressionMaterializesSquaredErrors) {
  data::DatasetOptions opts;
  opts.rows = 400;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  ds.errors.clear();
  auto mean_err = TrainAndMaterializeErrors(&ds);
  ASSERT_TRUE(mean_err.ok());
  ASSERT_EQ(static_cast<int64_t>(ds.errors.size()), ds.n());
  for (double e : ds.errors) EXPECT_GE(e, 0.0);
  EXPECT_GT(*mean_err, 0.0);
}

TEST(PipelineTest, ClassificationMaterializesInaccuracy) {
  data::DatasetOptions opts;
  opts.rows = 1500;
  data::EncodedDataset ds = data::MakeAdult(opts);
  ds.errors.clear();
  auto mean_err = TrainAndMaterializeErrors(&ds);
  ASSERT_TRUE(mean_err.ok());
  ASSERT_EQ(static_cast<int64_t>(ds.errors.size()), ds.n());
  for (double e : ds.errors) {
    EXPECT_TRUE(e == 0.0 || e == 1.0);
  }
  // A trained model should beat always-wrong and the labels are learnable.
  EXPECT_LT(*mean_err, 0.5);
}

TEST(PipelineTest, DeriveLabelsByClustering) {
  data::DatasetOptions opts;
  opts.rows = 800;
  data::EncodedDataset ds = data::MakeUsCensus(opts);
  ds.y.clear();
  ASSERT_TRUE(DeriveLabelsByClustering(&ds, 4).ok());
  EXPECT_EQ(static_cast<int64_t>(ds.y.size()), ds.n());
  EXPECT_EQ(ds.num_classes, 4);
  EXPECT_EQ(ds.task, data::Task::kClassification);
  for (double y : ds.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

}  // namespace
}  // namespace sliceline::ml
