#ifndef SLICELINE_SERVE_WORKER_PROTOCOL_H_
#define SLICELINE_SERVE_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "obs/json_parse.h"
#include "obs/json_writer.h"
#include "obs/trace_merge.h"

namespace sliceline::serve {

/// Wire protocol between the distributed coordinator and sliceline_worker
/// processes: the same newline-delimited strict-JSON framing as the client
/// protocol (protocol.h), with its own message set and a larger line guard
/// because shard payloads (chunked one-hot codes, eval blocks) legitimately
/// exceed the client protocol's 1 MiB limit.
///
/// Responses reuse the client protocol's shapes exactly:
///   {"id":..., "ok":true, ...payload...}
///   {"id":..., "ok":false, "error":{"code":"...", "message":"..."}}
/// so MakeErrorLine / ErrorCodeForStatus / StatusFromError are shared.

inline constexpr int kWorkerProtocolVersion = 1;

/// Per-line guard of the worker protocol. load_shard chunks are sized by
/// the coordinator to stay well under this; eval_block responses carry
/// 3 doubles per slice (< 100 bytes each at %.17g).
inline constexpr size_t kWorkerMaxLineBytes = 8u << 20;

enum class WorkerRequestType {
  /// Handshake: carries the coordinator's protocol version; the response
  /// carries the worker's "session" string, which changes whenever the
  /// worker process restarts. A coordinator that reconnects and sees a new
  /// session knows every previously shipped shard is gone.
  kEnlist,
  /// Fingerprint probe: does this session hold (dataset_hash, shard)?
  /// Response: {"loaded": bool}. Lets a reconnect skip re-shipping.
  kHasShard,
  /// One chunk of a shard's rows (codes row-major + aligned errors). Chunk 0
  /// additionally carries the coordinator's global feature domains (fdom),
  /// so the worker reconstructs the exact same one-hot column space as the
  /// driver -- a shard may not observe every code. Response:
  /// {"loaded": bool} (true once the final chunk lands and the shard's
  /// evaluator is built).
  kLoadShard,
  /// Level-1 statistics of a loaded shard (Equation 4 on the shard's rows):
  /// {"n", "total_error", "sizes", "error_sums", "max_errors"}.
  kBasicStats,
  /// Evaluate a block of candidate slices on a loaded shard. Response:
  /// {"sizes", "error_sums", "max_errors", "checksum"} aligned with the
  /// request's slice order.
  kEvalBlock,
  /// Liveness probe; response is a bare ok (plus the worker's steady-clock
  /// "now_us", which the coordinator uses for clock-offset estimation).
  kHeartbeat,
  /// Drains the worker's trace-span buffer and metrics-counter deltas for
  /// the fleet-trace merge. Response: {"now_us", "pid", "spans":[...],
  /// "counters":[...]} (see WriteSpansPayload).
  kGetSpans,
  /// Orderly termination; the worker acknowledges, then exits its loop.
  kShutdown,
};

const char* WorkerRequestTypeName(WorkerRequestType type);
StatusOr<WorkerRequestType> WorkerRequestTypeFromName(const std::string& name);

/// One chunk of a load_shard transfer. Rows [chunk_row_begin,
/// chunk_row_begin + rows) of the shard's [row_begin, row_end) range.
struct LoadShardChunk {
  int64_t row_begin = 0;   ///< shard range in driver row space
  int64_t row_end = 0;
  int64_t chunk = 0;       ///< 0-based chunk index
  int64_t chunks = 1;      ///< total chunks of this transfer
  int64_t chunk_row_begin = 0;  ///< absolute first row of this chunk
  int64_t cols = 0;        ///< feature count (codes is rows x cols)
  std::vector<int32_t> codes;   ///< row-major 1-based feature codes
  std::vector<double> errors;   ///< aligned per-row errors
  std::vector<int32_t> fdom;    ///< global feature domains; chunk 0 only
};

/// One parsed coordinator->worker request line.
struct WorkerRequest {
  WorkerRequestType type = WorkerRequestType::kHeartbeat;
  std::string id;  ///< correlation id echoed in the response
  int64_t protocol = kWorkerProtocolVersion;  ///< enlist only

  /// Distributed-trace context, optional on every request (wire keys
  /// "trace" -- a decimal string, 64-bit ids do not survive JSON doubles --
  /// and "pspan"). A worker receiving a nonzero trace id stamps the spans
  /// it records while handling the request with it.
  uint64_t trace_id = 0;
  int64_t parent_span_id = 0;

  /// Content fingerprint of the full dataset (decimal string: 64-bit hashes
  /// do not survive JSON's double number representation) + shard index;
  /// present on has_shard / load_shard / basic_stats / eval_block.
  std::string dataset_hash;
  int64_t shard = -1;

  LoadShardChunk chunk;  ///< load_shard only

  // -- eval_block only ------------------------------------------------------
  core::SliceSet slices;
  std::string strategy = "index";  ///< "index" | "scan" | "bitset"
  int64_t block_size = 16;         ///< scan-shared block size b
};

/// Validates (strict JSON) and decodes one worker request line.
StatusOr<WorkerRequest> ParseWorkerRequest(const std::string& line);

/// Encodes `request` as one LF-terminated line (coordinator side).
std::string SerializeWorkerRequest(const WorkerRequest& request);

// -- response payload helpers ------------------------------------------------

/// Writes the eval_block payload keys ("sizes"/"error_sums"/"max_errors"
/// arrays + "checksum" decimal string) at the current writer position. The
/// checksum is computed by the sender over the payload (ChecksumPartial);
/// doubles go through %.17g, so the receiver recomputes it bit-exactly.
void WriteEvalPayload(obs::JsonWriter* writer, const core::EvalResult& result,
                      uint64_t checksum);

/// Inverse of WriteEvalPayload. Returns the decoded partial and stores the
/// sender's checksum in `checksum` (validated by the caller, which owns the
/// checksum function).
StatusOr<core::EvalResult> ParseEvalPayload(const obs::JsonValue& response,
                                            uint64_t* checksum);

/// Level-1 statistics of one shard, shipped once per (worker, shard).
struct ShardBasicStats {
  int64_t n = 0;
  double total_error = 0.0;
  std::vector<int64_t> sizes;
  std::vector<double> error_sums;
  std::vector<double> max_errors;
};

void WriteBasicStatsPayload(obs::JsonWriter* writer,
                            const ShardBasicStats& stats);
StatusOr<ShardBasicStats> ParseBasicStatsPayload(
    const obs::JsonValue& response);

/// Writes the get_spans payload keys at the current writer position:
/// "spans" (array of span objects: name/cat/ph/ts/dur/tid, optional
/// v/detail/trace/pspan) and "counters" (array of {"name","value"} metric
/// deltas).
void WriteSpansPayload(
    obs::JsonWriter* writer, const std::vector<obs::RemoteSpan>& spans,
    const std::vector<std::pair<std::string, double>>& counters);

/// Inverse of WriteSpansPayload (coordinator side).
Status ParseSpansPayload(const obs::JsonValue& response,
                         std::vector<obs::RemoteSpan>* spans,
                         std::vector<std::pair<std::string, double>>* counters);

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_WORKER_PROTOCOL_H_
