// Reproduces Table 2 (Criteo Slice Enumeration Statistics): per-level
// candidate counts, valid slice counts, and cumulative elapsed time up to
// lattice level 6 on the ultra-sparse Criteo-like dataset, evaluated with
// the simulated distributed executor (the paper uses 1+12 Spark nodes).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "dist/distributed_evaluator.h"

int main() {
  using namespace sliceline;
  bench::Banner("Table 2: Criteo Slice Enumeration Statistics",
                "SliceLine Table 2 (levels 1-6, distributed evaluation)");
  data::EncodedDataset ds = bench::Load("criteo");
  std::printf("dataset: %s n=%s m=%lld l=%s (paper: n=192,215,183 "
              "l=75,573,541)\n\n",
              ds.name.c_str(), FormatWithCommas(ds.n()).c_str(),
              static_cast<long long>(ds.m()),
              FormatWithCommas(ds.OneHotWidth()).c_str());

  core::SliceLineConfig config;
  config.alpha = 0.95;
  config.k = 4;
  config.max_level = 6;
  dist::DistOptions options;
  options.workers = 12;
  dist::DistCostStats cost;
  auto result = dist::RunSliceLineDistributed(ds.x0, ds.errors, config,
                                              options, &cost);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-16s", "Lattice Level:");
  for (const core::LevelStats& level : result->levels) {
    std::printf("%14d", level.level);
  }
  std::printf("\n%-16s", "Candidates:");
  for (const core::LevelStats& level : result->levels) {
    std::printf("%14s", FormatWithCommas(level.candidates).c_str());
  }
  std::printf("\n%-16s", "Valid Slices:");
  for (const core::LevelStats& level : result->levels) {
    std::printf("%14s", FormatWithCommas(level.valid).c_str());
  }
  std::printf("\n%-16s", "Elapsed Time:");
  double cumulative = 0.0;
  for (const core::LevelStats& level : result->levels) {
    cumulative += level.seconds;
    std::printf("%13ss", FormatDouble(cumulative, 2).c_str());
  }
  std::printf("\n\nsimulated cluster: %d workers, rounds=%lld, "
              "critical-path=%.3fs, comm-estimate=%.3fs\n",
              options.workers, static_cast<long long>(cost.rounds),
              cost.critical_path_seconds, cost.EstimatedCommSeconds(options));
  std::printf(
      "\nExpected shape (paper): only a tiny fraction of the one-hot\n"
      "columns pass the support constraint at level 1; candidate counts\n"
      "stay close to valid counts at deeper levels; correlations keep the\n"
      "valid set growing through level 6 (no early termination).\n");
  return 0;
}
