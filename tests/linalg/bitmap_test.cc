// Tests of the bit-packed row-set primitives backing the SIMD evaluation
// path: pack/unpack round-trips, popcount against a dense reference, the
// word-boundary row counts the padding logic must get right (63/64/65), and
// the build-once contract of the per-column bitmap cache.
#include "linalg/bitmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace sliceline::linalg {
namespace {

TEST(BitmapWordsTest, PadsToVectorMultiple) {
  EXPECT_EQ(BitmapWords(0), 0);
  EXPECT_EQ(BitmapWords(1), kBitmapWordPad);
  EXPECT_EQ(BitmapWords(63), kBitmapWordPad);
  EXPECT_EQ(BitmapWords(64), kBitmapWordPad);
  EXPECT_EQ(BitmapWords(65), kBitmapWordPad);
  EXPECT_EQ(BitmapWords(64 * kBitmapWordPad), kBitmapWordPad);
  EXPECT_EQ(BitmapWords(64 * kBitmapWordPad + 1), 2 * kBitmapWordPad);
}

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(65));
  EXPECT_EQ(b.PopCount(), 4);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.PopCount(), 3);
}

TEST(BitmapTest, RoundTripAtWordBoundaries) {
  // n = 63 (last bit inside a word), 64 (exactly one word), 65 (one bit
  // spilling into the next word) are the shapes a packing off-by-one breaks.
  for (int64_t n : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                    int64_t{127}, int64_t{128}, int64_t{129}}) {
    std::vector<int64_t> rows;
    for (int64_t r = 0; r < n; r += 3) rows.push_back(r);
    // Always include the last row: it lives at the word boundary under test.
    if (rows.empty() || rows.back() != n - 1) rows.push_back(n - 1);
    Bitmap b = Bitmap::FromRows(n, rows);
    EXPECT_EQ(b.rows(), n);
    EXPECT_EQ(b.words(), BitmapWords(n));
    EXPECT_EQ(b.PopCount(), static_cast<int64_t>(rows.size())) << "n=" << n;
    EXPECT_EQ(b.SetRows(), rows) << "n=" << n;
  }
}

TEST(BitmapTest, RandomRoundTripMatchesDenseReference) {
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t n = rng.NextInt(1, 700);
    std::vector<bool> dense(static_cast<size_t>(n), false);
    std::vector<int64_t> rows;
    for (int64_t r = 0; r < n; ++r) {
      if (rng.NextBool(0.4)) {
        dense[static_cast<size_t>(r)] = true;
        rows.push_back(r);
      }
    }
    Bitmap b = Bitmap::FromRows(n, rows);
    int64_t dense_count = 0;
    for (int64_t r = 0; r < n; ++r) {
      EXPECT_EQ(b.Test(r), dense[static_cast<size_t>(r)]);
      dense_count += dense[static_cast<size_t>(r)] ? 1 : 0;
    }
    EXPECT_EQ(b.PopCount(), dense_count);
    EXPECT_EQ(b.SetRows(), rows);
  }
}

TEST(BitmapTest, PaddingWordsStayZero) {
  // Rows 65: two live words, six padding words. Every padding word must be
  // zero so vectorized popcounts over the padded range stay exact.
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < 65; ++r) rows.push_back(r);
  Bitmap b = Bitmap::FromRows(65, rows);
  ASSERT_EQ(b.words(), kBitmapWordPad);
  EXPECT_EQ(b.data()[0], ~uint64_t{0});
  EXPECT_EQ(b.data()[1], uint64_t{1});
  for (int64_t w = 2; w < b.words(); ++w) {
    EXPECT_EQ(b.data()[w], uint64_t{0}) << "padding word " << w;
  }
}

TEST(BitmapTest, EqualityComparesContents) {
  Bitmap a = Bitmap::FromRows(100, {1, 50, 99});
  Bitmap b = Bitmap::FromRows(100, {1, 50, 99});
  Bitmap c = Bitmap::FromRows(100, {1, 50});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ColumnBitmapsTest, BuildPacksInvertedList) {
  ColumnBitmaps bitmaps(/*rows=*/200, /*num_columns=*/5);
  EXPECT_EQ(bitmaps.words(), BitmapWords(200));
  EXPECT_EQ(bitmaps.built(), 0);
  EXPECT_FALSE(bitmaps.Has(2));
  EXPECT_EQ(bitmaps.Get(2), nullptr);

  const std::vector<int32_t> rows = {0, 63, 64, 65, 199};
  const uint64_t* words =
      bitmaps.Build(2, rows.data(), static_cast<int64_t>(rows.size()));
  ASSERT_NE(words, nullptr);
  EXPECT_TRUE(bitmaps.Has(2));
  EXPECT_EQ(bitmaps.Get(2), words);
  EXPECT_EQ(bitmaps.built(), 1);
  EXPECT_EQ(bitmaps.memory_bytes(),
            bitmaps.words() * static_cast<int64_t>(sizeof(uint64_t)));

  Bitmap expected = Bitmap::FromRows(200, {0, 63, 64, 65, 199});
  EXPECT_EQ(std::memcmp(words, expected.data(),
                        static_cast<size_t>(bitmaps.words()) *
                            sizeof(uint64_t)),
            0);
}

TEST(ColumnBitmapsTest, BuildIsIdempotent) {
  ColumnBitmaps bitmaps(/*rows=*/100, /*num_columns=*/3);
  const std::vector<int32_t> rows = {5, 10};
  const uint64_t* first =
      bitmaps.Build(0, rows.data(), static_cast<int64_t>(rows.size()));
  // A second Build of the same column is a no-op: same buffer, not repacked
  // from the (different) list.
  const std::vector<int32_t> other = {1, 2, 3};
  const uint64_t* second =
      bitmaps.Build(0, other.data(), static_cast<int64_t>(other.size()));
  EXPECT_EQ(first, second);
  EXPECT_EQ(bitmaps.built(), 1);
  Bitmap expected = Bitmap::FromRows(100, {5, 10});
  EXPECT_EQ(std::memcmp(first, expected.data(),
                        static_cast<size_t>(bitmaps.words()) *
                            sizeof(uint64_t)),
            0);
}

TEST(ColumnBitmapsTest, EmptyColumnPacksToZeros) {
  ColumnBitmaps bitmaps(/*rows=*/70, /*num_columns=*/1);
  const uint64_t* words = bitmaps.Build(0, nullptr, 0);
  ASSERT_NE(words, nullptr);
  for (int64_t w = 0; w < bitmaps.words(); ++w) EXPECT_EQ(words[w], 0u);
}

}  // namespace
}  // namespace sliceline::linalg
