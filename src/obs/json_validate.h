#ifndef SLICELINE_OBS_JSON_VALIDATE_H_
#define SLICELINE_OBS_JSON_VALIDATE_H_

#include <string>

namespace sliceline::obs {

/// Validates that `text` is exactly one strict (RFC 8259) JSON document
/// with nothing but whitespace after it. Returns the empty string when
/// valid, otherwise "<message> at byte <offset>". Shared by the
/// json_validate CLI tool and the schema tests, so "strict JSON" means the
/// same thing everywhere.
std::string ValidateStrictJson(const std::string& text);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_JSON_VALIDATE_H_
