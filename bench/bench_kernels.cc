// Microbenchmarks of the linear-algebra kernels the SliceLine enumeration
// is built from: one-hot encoding, colSums, the vector-matrix error
// aggregation e^T X, the S*S^T pair join, the X*S^T evaluation product, and
// table()-based selection-matrix construction. Each kernel is timed over
// repeated runs on the shared harness (bench_util.h); the best wall-clock
// per run and the derived items/s are printed, and recorded through
// bench::Reporter when SLICELINE_BENCH_JSON is set.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "data/generators/generators.h"
#include "data/onehot.h"
#include "linalg/bitmap.h"
#include "linalg/kernels.h"
#include "linalg/kernels_simd.h"

namespace {

using namespace sliceline;

const data::EncodedDataset& AdultDataset() {
  static const data::EncodedDataset* ds = [] {
    return new data::EncodedDataset(bench::Load("adult", 20000));
  }();
  return *ds;
}

/// Checksum sink: forces each kernel's result to be materialized so the
/// timed call cannot be optimized away; the total is printed at the end.
volatile double g_sink = 0.0;

/// Times `fn` over repeated runs (after one untimed warm-up) and reports the
/// best run plus items/s at that best. `items` is the per-run work unit
/// (rows or nonzeros), 0 to skip the throughput column. Returns the best
/// wall-clock so callers can derive speedup ratios between cases.
///
/// Repetition is time-budgeted, not a fixed count: fast cases repeat until
/// ~kTimeBudget of wall clock accumulates (so a 10us kernel gets thousands
/// of samples and its best stabilizes), slow cases stop after kMinReps.
/// Fixed-count best-of-5 left sub-10ms cases swinging 2-3x between runs,
/// which no regression threshold survives.
template <typename Fn>
double RunCase(bench::Reporter& reporter, const std::string& name,
               int64_t items, Fn&& fn) {
  constexpr int kMinReps = 5;
  constexpr int kMaxReps = 20000;
  constexpr double kTimeBudget = 0.25;  // seconds of samples per case
  g_sink = g_sink + fn();
  double best = 0.0;
  double total = 0.0;
  int reps = 0;
  while (reps < kMinReps || (total < kTimeBudget && reps < kMaxReps)) {
    const double seconds = bench::Timed([&] { g_sink = g_sink + fn(); });
    total += seconds;
    if (reps == 0 || seconds < best) best = seconds;
    ++reps;
  }
  std::string throughput = "-";
  if (items > 0 && best > 0.0) {
    throughput =
        FormatWithCommas(static_cast<int64_t>(items / best)) + "/s";
  }
  std::printf("  %-28s %12s %12s %18s\n", name.c_str(),
              FormatDouble(best, 6).c_str(),
              FormatDouble(total / reps, 6).c_str(), throughput.c_str());
  reporter.AddRow(name, {{"best_seconds", best},
                         {"mean_seconds", total / reps},
                         {"items", static_cast<double>(items)}});
  return best;
}

linalg::CsrMatrix RandomSliceMatrix(int64_t slices, int64_t cols, int level,
                                    uint64_t seed) {
  Rng rng(seed);
  linalg::CooBuilder builder(slices, cols);
  for (int64_t s = 0; s < slices; ++s) {
    for (int k = 0; k < level; ++k) {
      builder.Add(s, rng.NextUint64(cols), 1.0);
    }
  }
  return builder.Build();
}

/// Packs every one-hot column of the dataset into a row bitmap — the
/// dataset-side input of the bit-packed evaluation kernels.
std::vector<linalg::Bitmap> PackColumns(const data::IntMatrix& x0,
                                        const data::FeatureOffsets& offsets) {
  std::vector<linalg::Bitmap> columns;
  columns.reserve(static_cast<size_t>(offsets.total));
  for (int64_t c = 0; c < offsets.total; ++c) {
    columns.emplace_back(x0.rows());
  }
  for (int64_t r = 0; r < x0.rows(); ++r) {
    for (int64_t j = 0; j < x0.cols(); ++j) {
      const int32_t code = x0.At(r, j);
      if (code > 0) columns[static_cast<size_t>(offsets.fb[j] + code - 1)]
          .Set(r);
    }
  }
  return columns;
}

/// `count` level-`level` candidates drawn as random column conjunctions from
/// distinct features (the shape the enumerator actually evaluates).
std::vector<std::vector<const uint64_t*>> DrawCandidates(
    const std::vector<linalg::Bitmap>& columns,
    const data::FeatureOffsets& offsets, int64_t count, int level,
    uint64_t seed) {
  Rng rng(seed);
  const int m = offsets.num_features();
  std::vector<std::vector<const uint64_t*>> candidates;
  candidates.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    std::vector<const uint64_t*> cols;
    int feature = static_cast<int>(rng.NextUint64(m));
    for (int k = 0; k < level; ++k) {
      const int64_t lo = offsets.fb[feature];
      const int64_t span = offsets.fe[feature] - lo;
      cols.push_back(
          columns[static_cast<size_t>(lo + rng.NextUint64(span))].data());
      feature = (feature + 1 + static_cast<int>(rng.NextUint64(m - 1))) % m;
    }
    candidates.push_back(std::move(cols));
  }
  return candidates;
}

}  // namespace

int main() {
  bench::Banner("Linear-Algebra Kernel Microbenchmarks",
                "SliceLine Section 3 kernels (Equations 3-6)");
  bench::Reporter reporter("bench_kernels",
                           "SliceLine Section 3 kernels (Equations 3-6)");

  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  const linalg::CsrMatrix x = data::OneHotEncode(ds.x0, offsets);
  std::printf("adult: n=%s, m=%lld, onehot cols=%lld, nnz=%s\n\n",
              FormatWithCommas(ds.n()).c_str(),
              static_cast<long long>(ds.m()),
              static_cast<long long>(offsets.total),
              FormatWithCommas(x.nnz()).c_str());
  std::printf("  %-28s %12s %12s %18s\n", "kernel", "best[s]", "mean[s]",
              "throughput");

  RunCase(reporter, "onehot_encode", ds.n(), [&] {
    return static_cast<double>(data::OneHotEncode(ds.x0, offsets).nnz());
  });
  RunCase(reporter, "onehot_encode_via_table", ds.n(), [&] {
    return static_cast<double>(
        data::OneHotEncodeViaTable(ds.x0, offsets).nnz());
  });
  RunCase(reporter, "col_sums", x.nnz(), [&] {
    const std::vector<double> sums = linalg::ColSums(x);
    return sums.empty() ? 0.0 : sums[0];
  });
  // se0 = (e^T X)^T, Equation 4.
  RunCase(reporter, "error_aggregation_etx", x.nnz(), [&] {
    const std::vector<double> se = linalg::TransposeMatVec(x, ds.errors);
    return se.empty() ? 0.0 : se[0];
  });
  for (const int64_t slices : {128, 512, 2048}) {
    const linalg::CsrMatrix s = RandomSliceMatrix(slices, 162, 2, 7);
    RunCase(reporter, "pair_join_sst/" + std::to_string(slices),
            slices * slices, [&] {
              return static_cast<double>(linalg::MultiplyABt(s, s).nnz());
            });
  }
  for (const int64_t slices : {16, 64}) {
    const linalg::CsrMatrix s = RandomSliceMatrix(slices, offsets.total, 2, 11);
    RunCase(reporter, "eval_product_xst/" + std::to_string(slices),
            x.rows() * slices, [&] {
              return static_cast<double>(
                  linalg::FilterEquals(linalg::MultiplyABt(x, s), 2.0).nnz());
            });
  }
  for (const int64_t n : {10000, 100000}) {
    Rng rng(13);
    std::vector<int64_t> rix(n);
    std::vector<int64_t> cix(n);
    for (int64_t i = 0; i < n; ++i) {
      rix[i] = i;
      cix[i] = static_cast<int64_t>(rng.NextUint64(n));
    }
    RunCase(reporter, "table_construction/" + std::to_string(n), n, [&] {
      return static_cast<double>(linalg::Table(rix, cix, n, n).nnz());
    });
  }
  RunCase(reporter, "spgemm_transpose", x.nnz(), [&] {
    return static_cast<double>(linalg::Transpose(x).nnz());
  });

  // --- Bit-packed SIMD evaluation kernels ---------------------------------
  // The candidate-count kernel (word-AND + popcount membership) and the
  // masked error reductions, scalar reference vs every vector ISA this host
  // executes. The per-ISA candidate_eval rows are THE perf baseline for the
  // packed hot path: speedup = scalar best / ISA best, recorded under
  // simd_speedup in BENCH_kernels.json.
  std::printf("\nbit-packed evaluation kernels (row words=%lld)\n",
              static_cast<long long>(linalg::BitmapWords(ds.n())));
  std::printf("  %-28s %12s %12s %18s\n", "kernel", "best[s]", "mean[s]",
              "throughput");
  const std::vector<linalg::Bitmap> packed = PackColumns(ds.x0, offsets);
  const int64_t words = linalg::BitmapWords(ds.n());
  std::vector<double> bench_errors(static_cast<size_t>(words) * 64, 0.0);
  for (int64_t r = 0; r < ds.n(); ++r) bench_errors[r] = ds.errors[r];

  std::vector<std::pair<std::string, double>> speedups;
  for (const int level : {2, 4}) {
    const int64_t num_candidates = 512;
    const auto candidate_cols =
        DrawCandidates(packed, offsets, num_candidates, level, 17 + level);
    std::vector<linalg::CandidateColumns> candidates;
    for (const auto& cols : candidate_cols) {
      candidates.push_back({cols.data(), static_cast<int32_t>(cols.size())});
    }
    std::vector<double> sizes(num_candidates), sums(num_candidates),
        maxes(num_candidates);
    double scalar_best = 0.0;
    for (linalg::SimdIsa isa : linalg::AvailableIsas()) {
      const linalg::SimdKernels& kernels = linalg::KernelsFor(isa);
      const std::string name = std::string("candidate_eval/L") +
                               std::to_string(level) + "/" +
                               linalg::IsaName(isa);
      const double best =
          RunCase(reporter, name, num_candidates * ds.n(), [&] {
            std::fill(sizes.begin(), sizes.end(), 0.0);
            std::fill(sums.begin(), sums.end(), 0.0);
            std::fill(maxes.begin(), maxes.end(), 0.0);
            linalg::EvaluateCandidatesBlocked(
                kernels, candidates.data(), num_candidates, words,
                bench_errors.data(), sizes.data(), sums.data(), maxes.data());
            return sizes[0] + sums[0];
          });
      if (isa == linalg::SimdIsa::kScalar) {
        scalar_best = best;
      } else if (scalar_best > 0.0 && best > 0.0) {
        speedups.emplace_back("candidate_eval_L" + std::to_string(level) +
                                  "_" + linalg::IsaName(isa),
                              scalar_best / best);
      }
    }
  }
  // Micro rows: the raw AND+popcount membership count and the masked error
  // reduction, isolated from the blocked loop.
  {
    const uint64_t* a = packed[0].data();
    const uint64_t* b = packed[packed.size() / 2].data();
    double scalar_and = 0.0;
    double scalar_masked = 0.0;
    for (linalg::SimdIsa isa : linalg::AvailableIsas()) {
      const linalg::SimdKernels& kernels = linalg::KernelsFor(isa);
      const char* isa_name = linalg::IsaName(isa);
      constexpr int kInner = 64;  // amortize timer granularity
      const double and_best = RunCase(
          reporter, std::string("and_popcount/") + isa_name,
          ds.n() * kInner, [&] {
            int64_t total = 0;
            for (int i = 0; i < kInner; ++i) {
              total += kernels.and_popcount(a, b, words);
            }
            return static_cast<double>(total);
          });
      const double masked_best = RunCase(
          reporter, std::string("masked_stats/") + isa_name,
          ds.n() * kInner, [&] {
            linalg::MaskedStats acc;
            for (int i = 0; i < kInner; ++i) {
              kernels.masked_stats(a, words, bench_errors.data(), &acc);
            }
            return acc.sum;
          });
      if (isa == linalg::SimdIsa::kScalar) {
        scalar_and = and_best;
        scalar_masked = masked_best;
      } else {
        if (scalar_and > 0.0 && and_best > 0.0) {
          speedups.emplace_back(std::string("and_popcount_") + isa_name,
                                scalar_and / and_best);
        }
        if (scalar_masked > 0.0 && masked_best > 0.0) {
          speedups.emplace_back(std::string("masked_stats_") + isa_name,
                                scalar_masked / masked_best);
        }
      }
    }
  }
  if (!speedups.empty()) {
    std::printf("\nSIMD speedup over scalar (target >= 5x on "
                "candidate_eval):\n");
    for (const auto& [name, ratio] : speedups) {
      std::printf("  %-34s %8.2fx\n", name.c_str(), ratio);
    }
    reporter.AddRow("simd_speedup", std::move(speedups));
  }

  std::printf("\nchecksum: %s\n", FormatDouble(g_sink, 1).c_str());
  return reporter.Finish();
}
