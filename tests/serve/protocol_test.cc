// Wire-protocol round trips: request encode/decode, structured error
// mapping, and the exact (bit-for-bit double) result serialization that
// lets a client reproduce core::FormatResult output from a response.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "obs/json_parse.h"
#include "obs/json_validate.h"
#include "obs/json_writer.h"

namespace sliceline::serve {
namespace {

TEST(ServeProtocolTest, RequestTypeNamesRoundTrip) {
  for (RequestType type :
       {RequestType::kRegisterDataset, RequestType::kFindSlices,
        RequestType::kGetStatus, RequestType::kCancel,
        RequestType::kGetReport, RequestType::kGetTrace,
        RequestType::kListDatasets, RequestType::kServerStats}) {
    auto parsed = RequestTypeFromName(RequestTypeName(type));
    ASSERT_TRUE(parsed.ok()) << RequestTypeName(type);
    EXPECT_EQ(parsed.value(), type);
  }
  EXPECT_FALSE(RequestTypeFromName("no_such_request").ok());
}

TEST(ServeProtocolTest, RegisterRequestRoundTrips) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.id = "r1";
  request.register_dataset.name = "adult";
  request.register_dataset.csv_path = "/data/adult.csv";
  request.register_dataset.label = "income";
  request.register_dataset.task = "class";
  request.register_dataset.bins = 7;
  request.register_dataset.drop = {"fnlwgt", "education-num"};

  const std::string line = SerializeRequest(request);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_TRUE(obs::ValidateStrictJson(line).empty());

  auto parsed = ParseRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, RequestType::kRegisterDataset);
  EXPECT_EQ(parsed->id, "r1");
  EXPECT_EQ(parsed->register_dataset.name, "adult");
  EXPECT_EQ(parsed->register_dataset.csv_path, "/data/adult.csv");
  EXPECT_EQ(parsed->register_dataset.label, "income");
  EXPECT_EQ(parsed->register_dataset.task, "class");
  EXPECT_EQ(parsed->register_dataset.bins, 7);
  EXPECT_EQ(parsed->register_dataset.drop,
            (std::vector<std::string>{"fnlwgt", "education-num"}));
}

TEST(ServeProtocolTest, FindSlicesRequestRoundTrips) {
  Request request;
  request.type = RequestType::kFindSlices;
  request.id = "f2";
  request.find_slices.dataset = "adult";
  request.find_slices.engine = "la";
  request.find_slices.k = 7;
  request.find_slices.alpha = 0.875;
  request.find_slices.sigma = 64;
  request.find_slices.max_level = 3;
  request.find_slices.deadline_ms = 1500;
  request.find_slices.memory_budget_mb = 256;
  request.find_slices.wait = false;

  auto parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FindSlicesRequest& f = parsed->find_slices;
  EXPECT_EQ(f.dataset, "adult");
  EXPECT_EQ(f.engine, "la");
  EXPECT_EQ(f.k, 7);
  EXPECT_EQ(f.alpha, 0.875);
  EXPECT_EQ(f.sigma, 64);
  EXPECT_EQ(f.max_level, 3);
  EXPECT_EQ(f.deadline_ms, 1500);
  EXPECT_EQ(f.memory_budget_mb, 256);
  EXPECT_FALSE(f.wait);
}

TEST(ServeProtocolTest, FindSlicesDefaultsApply) {
  auto parsed =
      ParseRequest("{\"type\":\"find_slices\",\"dataset\":\"d\"}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, "");
  EXPECT_EQ(parsed->find_slices.engine, "native");
  EXPECT_EQ(parsed->find_slices.k, 4);
  EXPECT_EQ(parsed->find_slices.alpha, 0.95);
  EXPECT_EQ(parsed->find_slices.sigma, 0);
  EXPECT_TRUE(parsed->find_slices.wait);
}

TEST(ServeProtocolTest, JobAddressedRequestsRoundTrip) {
  // status/cancel/report/trace all carry exactly {type, id, job}.
  for (RequestType type :
       {RequestType::kGetStatus, RequestType::kCancel,
        RequestType::kGetReport, RequestType::kGetTrace}) {
    Request request;
    request.type = type;
    request.id = "s3";
    request.job_id = 42;
    const std::string line = SerializeRequest(request);
    EXPECT_TRUE(obs::ValidateStrictJson(line).empty()) << line;
    auto parsed = ParseRequest(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->type, type);
    EXPECT_EQ(parsed->id, "s3");
    EXPECT_EQ(parsed->job_id, 42);
  }
}

TEST(ServeProtocolTest, ReportAndTraceRequireJobId) {
  for (const char* type : {"get_report", "get_trace"}) {
    EXPECT_FALSE(
        ParseRequest(std::string("{\"type\":\"") + type + "\"}\n").ok())
        << type;
  }
}

TEST(ServeProtocolTest, UnknownFieldsAreIgnored) {
  auto parsed = ParseRequest(
      "{\"type\":\"server_stats\",\"id\":\"x\",\"future_field\":[1,2]}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, RequestType::kServerStats);
}

TEST(ServeProtocolTest, MalformedRequestsAreRejected) {
  const char* bad_lines[] = {
      "not json at all\n",
      "[1,2,3]\n",                            // not an object
      "{\"id\":\"x\"}\n",                     // missing type
      "{\"type\":\"launch_missiles\"}\n",     // unknown type
      "{\"type\":\"find_slices\"}\n",         // missing dataset
      "{\"type\":\"get_status\"}\n",          // missing job
      "{\"type\":\"find_slices\",\"dataset\":\"d\",\"k\":\"four\"}\n",
      "{\"type\":\"register_dataset\",\"name\":\"n\",\"csv\":\"c\","
      "\"label\":\"l\",\"drop\":\"oops\"}\n",  // drop must be an array
      "{\"type\":\"find_slices\",\"dataset\":\"d\",}\n",  // trailing comma
  };
  for (const char* line : bad_lines) {
    auto parsed = ParseRequest(line);
    EXPECT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ServeProtocolTest, ErrorCodesRoundTripThroughErrorLines) {
  const Status statuses[] = {
      Status::InvalidArgument("bad"),
      Status(StatusCode::kOutOfRange, "range"),
      Status::NotFound("missing"),
      Status(StatusCode::kIoError, "io"),
      Status(StatusCode::kNotImplemented, "todo"),
      Status::Internal("bug"),
      Status::Cancelled("stop"),
      Status(StatusCode::kDeadlineExceeded, "late"),
      Status::ResourceExhausted("full"),
  };
  for (const Status& status : statuses) {
    const std::string line = MakeErrorLine("e7", status);
    EXPECT_TRUE(obs::ValidateStrictJson(line).empty()) << line;
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed->GetStringOr("id", ""), "e7");
    EXPECT_FALSE(parsed->GetBoolOr("ok", true));
    const obs::JsonValue* error = parsed->Find("error");
    ASSERT_NE(error, nullptr);
    const Status round = StatusFromError(error->GetStringOr("code", ""),
                                         error->GetStringOr("message", ""));
    EXPECT_EQ(round.code(), status.code()) << status.ToString();
    EXPECT_EQ(round.message(), status.message());
  }
}

TEST(ServeProtocolTest, UnknownErrorCodeMapsToInternal) {
  const Status status = StatusFromError("quantum_flux", "what");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("quantum_flux"), std::string::npos);
}

/// A result exercising every serialized field with doubles that do not
/// survive naive formatting (the %.17g writer + strtod parser must
/// reproduce them bit-for-bit).
core::SliceLineResult MakeAwkwardResult() {
  core::SliceLineResult result;
  result.min_support = 32;
  result.average_error = 1.0 / 3.0;
  result.total_seconds = 0.1 + 0.2;  // 0.30000000000000004
  result.total_evaluated = 123;

  core::Slice first;
  first.predicates = {{0, 2}, {3, 1}};
  first.stats.score = 0.1;
  first.stats.error_sum = 6.02214076e23;
  first.stats.max_error = 1e-300;
  first.stats.size = 40;
  result.top_k.push_back(first);

  core::Slice second;
  second.predicates = {{2, 4}};
  second.stats.score = -2.0 / 7.0;
  second.stats.error_sum = 111.11111111111111;
  second.stats.max_error = 2.7755575615628914e-17;
  second.stats.size = 17;
  result.top_k.push_back(second);

  core::LevelStats level;
  level.level = 1;
  level.candidates = 10;
  level.valid = 8;
  level.pruned = 2;
  level.seconds = 0.001953125;
  result.levels.push_back(level);
  level.level = 2;
  level.candidates = 45;
  level.valid = 12;
  level.pruned = 33;
  level.seconds = 1.0 / 1024.0;
  result.levels.push_back(level);

  result.outcome.termination = RunOutcome::Termination::kDegraded;
  result.outcome.partial = true;
  result.outcome.degradation_steps = 2;
  result.outcome.sigma_raised_to = 64;
  result.outcome.candidates_capped = 1000;
  result.outcome.stopped_at_level = 2;
  result.outcome.resumed_from_checkpoint = true;
  result.outcome.peak_memory_bytes = 1 << 22;
  return result;
}

TEST(ServeProtocolTest, ResultJsonRoundTripsBitForBit) {
  const core::SliceLineResult original = MakeAwkwardResult();
  const std::vector<std::string> names = {"age", "sex", "degree", "marital"};

  std::ostringstream os;
  obs::JsonWriter writer(os);
  WriteResultJson(&writer, original, names);
  const std::string json = os.str();
  EXPECT_TRUE(obs::ValidateStrictJson(json).empty()) << json;

  auto value = obs::ParseJson(json);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  std::vector<std::string> parsed_names;
  auto parsed = ParseResultJson(value.value(), &parsed_names);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed_names, names);
  EXPECT_EQ(parsed->min_support, original.min_support);
  EXPECT_EQ(parsed->average_error, original.average_error);
  EXPECT_EQ(parsed->total_seconds, original.total_seconds);
  EXPECT_EQ(parsed->total_evaluated, original.total_evaluated);

  ASSERT_EQ(parsed->top_k.size(), original.top_k.size());
  for (size_t i = 0; i < original.top_k.size(); ++i) {
    EXPECT_EQ(parsed->top_k[i].predicates, original.top_k[i].predicates);
    EXPECT_EQ(parsed->top_k[i].stats.score, original.top_k[i].stats.score);
    EXPECT_EQ(parsed->top_k[i].stats.error_sum,
              original.top_k[i].stats.error_sum);
    EXPECT_EQ(parsed->top_k[i].stats.max_error,
              original.top_k[i].stats.max_error);
    EXPECT_EQ(parsed->top_k[i].stats.size, original.top_k[i].stats.size);
  }

  ASSERT_EQ(parsed->levels.size(), original.levels.size());
  for (size_t i = 0; i < original.levels.size(); ++i) {
    EXPECT_EQ(parsed->levels[i].level, original.levels[i].level);
    EXPECT_EQ(parsed->levels[i].candidates, original.levels[i].candidates);
    EXPECT_EQ(parsed->levels[i].valid, original.levels[i].valid);
    EXPECT_EQ(parsed->levels[i].pruned, original.levels[i].pruned);
    EXPECT_EQ(parsed->levels[i].seconds, original.levels[i].seconds);
  }

  EXPECT_EQ(parsed->outcome.termination, original.outcome.termination);
  EXPECT_EQ(parsed->outcome.partial, original.outcome.partial);
  EXPECT_EQ(parsed->outcome.degradation_steps,
            original.outcome.degradation_steps);
  EXPECT_EQ(parsed->outcome.sigma_raised_to, original.outcome.sigma_raised_to);
  EXPECT_EQ(parsed->outcome.candidates_capped,
            original.outcome.candidates_capped);
  EXPECT_EQ(parsed->outcome.stopped_at_level,
            original.outcome.stopped_at_level);
  EXPECT_EQ(parsed->outcome.resumed_from_checkpoint,
            original.outcome.resumed_from_checkpoint);
  EXPECT_EQ(parsed->outcome.peak_memory_bytes,
            original.outcome.peak_memory_bytes);

  // The visible deliverable: the client re-renders the identical report.
  EXPECT_EQ(core::FormatResult(*parsed, parsed_names),
            core::FormatResult(original, names));
}

TEST(ServeProtocolTest, ParseResultRejectsMissingSections) {
  for (const char* json :
       {"{\"min_support\":1,\"average_error\":0,\"total_seconds\":0,"
        "\"total_evaluated\":0,\"levels\":[],\"outcome\":{"
        "\"termination\":\"completed\"}}",  // missing top_k
        "{\"min_support\":1,\"average_error\":0,\"total_seconds\":0,"
        "\"total_evaluated\":0,\"top_k\":[],\"levels\":[]}",  // no outcome
        "[1,2]"}) {
    auto value = obs::ParseJson(json);
    ASSERT_TRUE(value.ok()) << json;
    auto parsed = ParseResultJson(value.value(), nullptr);
    EXPECT_FALSE(parsed.ok()) << json;
  }
}

}  // namespace
}  // namespace sliceline::serve
