#include "baseline/error_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"

namespace sliceline::baseline {
namespace {

struct PlantedData {
  data::IntMatrix x0;
  std::vector<double> errors;
};

/// One clean planted high-error region: feature0=2.
PlantedData SimplePlanted(uint64_t seed, int64_t n) {
  Rng rng(seed);
  PlantedData d;
  d.x0 = data::IntMatrix(n, 4);
  d.errors.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) {
      d.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
    const bool bad = d.x0.At(i, 0) == 2;
    d.errors[i] = rng.NextBool(bad ? 0.6 : 0.05) ? 1.0 : 0.0;
  }
  return d;
}

TEST(ErrorTreeTest, FindsPlantedRegion) {
  PlantedData d = SimplePlanted(3, 3000);
  ErrorTreeConfig config;
  config.k = 2;
  auto result = RunErrorTree(d.x0, d.errors, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->slices.empty());
  const core::Slice& top = result->slices[0];
  // The highest-error leaf binds feature 0 to code 2.
  bool found = false;
  for (const auto& [f, c] : top.predicates) found |= f == 0 && c == 2;
  EXPECT_TRUE(found) << top.ToString();
  EXPECT_GT(result->nodes, 1);
  EXPECT_GT(result->leaves, 1);
}

TEST(ErrorTreeTest, LeafRowSetsPartition) {
  // Leaf ROW SETS are disjoint (the tree partitions X); the reported
  // conjunctions elide the negated "rest" branches, so sizes sum to at
  // most n and every leaf's recorded size is consistent with its stats.
  PlantedData d = SimplePlanted(5, 2000);
  ErrorTreeConfig config;
  config.k = 8;
  config.max_depth = 3;
  auto result = RunErrorTree(d.x0, d.errors, config);
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (const core::Slice& slice : result->slices) {
    EXPECT_GT(slice.stats.size, 0);
    EXPECT_GE(slice.stats.error_sum, 0.0);
    total += slice.stats.size;
  }
  EXPECT_LE(total, d.x0.rows());
  // Distinct leaves have distinct predicate paths.
  for (size_t i = 0; i < result->slices.size(); ++i) {
    for (size_t j = i + 1; j < result->slices.size(); ++j) {
      EXPECT_NE(result->slices[i].predicates, result->slices[j].predicates);
    }
  }
}

TEST(ErrorTreeTest, RespectsSupportAndDepth) {
  PlantedData d = SimplePlanted(7, 2000);
  ErrorTreeConfig config;
  config.k = 10;
  config.max_depth = 2;
  config.min_support = 100;
  auto result = RunErrorTree(d.x0, d.errors, config);
  ASSERT_TRUE(result.ok());
  for (const core::Slice& slice : result->slices) {
    EXPECT_LE(slice.level(), 2);
    EXPECT_GE(slice.stats.size, 100);
  }
}

TEST(ErrorTreeTest, UniformErrorsGrowNoTree) {
  data::IntMatrix x0(500, 3, 1);
  Rng rng(9);
  for (int64_t i = 0; i < 500; ++i) {
    for (int j = 0; j < 3; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
  }
  std::vector<double> errors(500, 0.3);
  auto result = RunErrorTree(x0, errors, ErrorTreeConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->leaves, 1);  // zero variance, nothing to split
  EXPECT_TRUE(result->slices.empty());
}

TEST(ErrorTreeTest, CannotExpressOverlappingSlices) {
  // Two planted overlapping problem slices: f0=1 and f1=1 (they intersect).
  // SliceLine reports both; the tree's disjoint leaves cannot.
  Rng rng(11);
  const int64_t n = 6000;
  data::IntMatrix x0(n, 4);
  std::vector<double> errors(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
    const bool bad = x0.At(i, 0) == 1 || x0.At(i, 1) == 1;
    errors[i] = rng.NextBool(bad ? 0.5 : 0.05) ? 1.0 : 0.0;
  }
  core::SliceLineConfig sl_config;
  sl_config.k = 4;
  sl_config.alpha = 0.9;
  sl_config.max_level = 1;
  auto sliceline = core::RunSliceLine(x0, errors, sl_config);
  ASSERT_TRUE(sliceline.ok());
  // SliceLine reports both overlapping level-1 slices.
  bool has_f0 = false;
  bool has_f1 = false;
  for (const core::Slice& slice : sliceline->top_k) {
    for (const auto& [f, c] : slice.predicates) {
      has_f0 |= f == 0 && c == 1;
      has_f1 |= f == 1 && c == 1;
    }
  }
  EXPECT_TRUE(has_f0);
  EXPECT_TRUE(has_f1);
  // The tree's reported disjoint leaves can't both be the plain marginal
  // slices (one side is carved out of the other's complement).
  ErrorTreeConfig tree_config;
  tree_config.k = 4;
  auto tree = RunErrorTree(x0, errors, tree_config);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < tree->slices.size(); ++i) {
    for (size_t j = i + 1; j < tree->slices.size(); ++j) {
      EXPECT_NE(tree->slices[i].predicates, tree->slices[j].predicates);
    }
  }
}

TEST(ErrorTreeTest, DeterministicAcrossRuns) {
  PlantedData d = SimplePlanted(13, 2500);
  ErrorTreeConfig config;
  config.k = 6;
  config.max_depth = 3;
  auto first = RunErrorTree(d.x0, d.errors, config);
  ASSERT_TRUE(first.ok());
  auto second = RunErrorTree(d.x0, d.errors, config);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->slices.size(), second->slices.size());
  EXPECT_EQ(first->nodes, second->nodes);
  EXPECT_EQ(first->leaves, second->leaves);
  for (size_t i = 0; i < first->slices.size(); ++i) {
    EXPECT_EQ(first->slices[i].predicates, second->slices[i].predicates);
    EXPECT_EQ(first->slices[i].stats.score, second->slices[i].stats.score);
    EXPECT_EQ(first->slices[i].stats.size, second->slices[i].stats.size);
  }
}

TEST(ErrorTreeTest, KLimitsReportedLeaves) {
  PlantedData d = SimplePlanted(15, 2500);
  for (int k : {1, 2, 4}) {
    ErrorTreeConfig config;
    config.k = k;
    config.max_depth = 4;
    auto result = RunErrorTree(d.x0, d.errors, config);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->slices.size(), static_cast<size_t>(k));
  }
}

TEST(ErrorTreeTest, LeafSizesNeverExceedConjunctionCounts) {
  // A leaf's row set is its conjunction minus every negated "rest" branch
  // along the path, so the recorded size can only be <= the plain
  // conjunction's match count (and never exceeds it — that would mean rows
  // outside the predicate region leaked into the leaf).
  PlantedData d = SimplePlanted(17, 2500);
  ErrorTreeConfig config;
  config.k = 8;
  config.max_depth = 3;
  auto result = RunErrorTree(d.x0, d.errors, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->slices.empty());
  for (const core::Slice& slice : result->slices) {
    int64_t conjunction = 0;
    for (int64_t i = 0; i < d.x0.rows(); ++i) {
      conjunction += slice.Matches(d.x0, i) ? 1 : 0;
    }
    EXPECT_LE(slice.stats.size, conjunction) << slice.ToString();
    EXPECT_GT(slice.stats.size, 0) << slice.ToString();
  }
}

TEST(ErrorTreeTest, ValidatesInputs) {
  data::IntMatrix x0(10, 2, 1);
  std::vector<double> errors(10, 0.1);
  ErrorTreeConfig bad;
  bad.k = 0;
  EXPECT_FALSE(RunErrorTree(x0, errors, bad).ok());
  bad = ErrorTreeConfig();
  bad.max_depth = 0;
  EXPECT_FALSE(RunErrorTree(x0, errors, bad).ok());
  std::vector<double> wrong(5, 0.1);
  EXPECT_FALSE(RunErrorTree(x0, wrong, ErrorTreeConfig()).ok());
  EXPECT_FALSE(RunErrorTree(data::IntMatrix(), {}, ErrorTreeConfig()).ok());
}

}  // namespace
}  // namespace sliceline::baseline
