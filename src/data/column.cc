#include "data/column.h"

#include <cstdio>

#include "common/logging.h"

namespace sliceline::data {

Column::Column(std::string name, std::vector<double> values)
    : name_(std::move(name)),
      type_(ColumnType::kNumeric),
      numeric_(std::move(values)) {}

Column::Column(std::string name, std::vector<std::string> values)
    : name_(std::move(name)),
      type_(ColumnType::kCategorical),
      categorical_(std::move(values)) {}

int64_t Column::size() const {
  return is_numeric() ? static_cast<int64_t>(numeric_.size())
                      : static_cast<int64_t>(categorical_.size());
}

const std::vector<double>& Column::numeric() const {
  SLICELINE_CHECK(is_numeric()) << "column '" << name_ << "' is categorical";
  return numeric_;
}

const std::vector<std::string>& Column::categorical() const {
  SLICELINE_CHECK(!is_numeric()) << "column '" << name_ << "' is numeric";
  return categorical_;
}

std::string Column::ValueToString(int64_t i) const {
  if (is_numeric()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", numeric_[i]);
    return buf;
  }
  return categorical_[i];
}

}  // namespace sliceline::data
