file(REMOVE_RECURSE
  "CMakeFiles/sliceline_baseline.dir/baseline/error_tree.cc.o"
  "CMakeFiles/sliceline_baseline.dir/baseline/error_tree.cc.o.d"
  "CMakeFiles/sliceline_baseline.dir/baseline/slicefinder.cc.o"
  "CMakeFiles/sliceline_baseline.dir/baseline/slicefinder.cc.o.d"
  "libsliceline_baseline.a"
  "libsliceline_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
