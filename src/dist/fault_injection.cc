#include "dist/fault_injection.h"

#include <bit>
#include <cstddef>

namespace sliceline::dist {

namespace {

/// splitmix64 finalizer: the same mixer the repo's Rng uses for seeding,
/// applied here as a stateless hash so fault draws are order-independent.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hashed cell id.
double HashToUnit(uint64_t seed, int64_t round, int worker, int attempt,
                  uint64_t salt) {
  uint64_t h = Mix64(seed ^ salt);
  h = Mix64(h ^ static_cast<uint64_t>(round));
  h = Mix64(h ^ (static_cast<uint64_t>(worker) << 32 |
                 static_cast<uint32_t>(attempt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultTypeToString(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "none";
    case FaultType::kTransient:
      return "transient";
    case FaultType::kPermanentLoss:
      return "loss";
    case FaultType::kStraggler:
      return "straggler";
    case FaultType::kCorruption:
      return "corruption";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {}

void FaultInjector::Script(int64_t round, int worker, FaultType type) {
  scripted_[{round, worker}] = type;
}

FaultType FaultInjector::Sample(int64_t round, int worker, int attempt) const {
  if (attempt == 0) {
    auto it = scripted_.find({round, worker});
    if (it != scripted_.end()) return it->second;
  }
  if (!plan_.HasRandomFaults()) return FaultType::kNone;
  // One draw per fault class; the first that fires wins. Permanent loss and
  // stragglers only fire on the first attempt (a retry targets a different
  // simulated container); transient failures and corruption re-draw on every
  // attempt so an unlucky seed can exhaust the retry budget.
  if (attempt == 0 &&
      HashToUnit(plan_.seed, round, worker, attempt, 0x105f) < plan_.loss_rate) {
    return FaultType::kPermanentLoss;
  }
  if (HashToUnit(plan_.seed, round, worker, attempt, 0x7247) <
      plan_.transient_rate) {
    return FaultType::kTransient;
  }
  if (HashToUnit(plan_.seed, round, worker, attempt, 0xc023) <
      plan_.corruption_rate) {
    return FaultType::kCorruption;
  }
  if (attempt == 0 && HashToUnit(plan_.seed, round, worker, attempt, 0x57a6) <
                          plan_.straggler_rate) {
    return FaultType::kStraggler;
  }
  return FaultType::kNone;
}

void FaultInjector::CorruptPartial(int64_t round, int worker,
                                   core::EvalResult* partial) const {
  if (partial->sizes.empty()) return;
  const uint64_t h = Mix64(plan_.seed ^ Mix64(static_cast<uint64_t>(round)) ^
                           static_cast<uint64_t>(worker));
  const size_t i = static_cast<size_t>(h % partial->sizes.size());
  // Negate and offset one size entry: detectable by both the payload
  // checksum and the non-negativity invariant.
  partial->sizes[i] = -partial->sizes[i] - 1.0;
  if (!partial->error_sums.empty()) {
    const size_t j = static_cast<size_t>(h % partial->error_sums.size());
    partial->error_sums[j] += 1e9;
  }
}

uint64_t ChecksumPartial(const core::EvalResult& partial) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_vec = [&h](const std::vector<double>& v) {
    for (double d : v) {
      h = (h ^ std::bit_cast<uint64_t>(d)) * 0x100000001b3ULL;
    }
    h = Mix64(h);
  };
  mix_vec(partial.sizes);
  mix_vec(partial.error_sums);
  mix_vec(partial.max_errors);
  return h;
}

}  // namespace sliceline::dist
