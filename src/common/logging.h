#ifndef SLICELINE_COMMON_LOGGING_H_
#define SLICELINE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sliceline {

/// Severity for the minimal logging facility. kFatal aborts after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; message is flushed (and kFatal aborts) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that swallows the streamed message (used for disabled levels).
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LOG_DEBUG ::sliceline::internal::LogMessage(::sliceline::LogLevel::kDebug, __FILE__, __LINE__)
#define LOG_INFO ::sliceline::internal::LogMessage(::sliceline::LogLevel::kInfo, __FILE__, __LINE__)
#define LOG_WARNING ::sliceline::internal::LogMessage(::sliceline::LogLevel::kWarning, __FILE__, __LINE__)
#define LOG_ERROR ::sliceline::internal::LogMessage(::sliceline::LogLevel::kError, __FILE__, __LINE__)
#define LOG_FATAL ::sliceline::internal::LogMessage(::sliceline::LogLevel::kFatal, __FILE__, __LINE__)

/// Internal invariant check; aborts with a message when violated. These guard
/// programming errors, not user input (user input errors return Status).
#define SLICELINE_CHECK(cond)                                        \
  if (!(cond))                                                       \
  ::sliceline::internal::LogMessage(::sliceline::LogLevel::kFatal,   \
                                    __FILE__, __LINE__)              \
      << "Check failed: " #cond " "

#define SLICELINE_CHECK_EQ(a, b) SLICELINE_CHECK((a) == (b))
#define SLICELINE_CHECK_NE(a, b) SLICELINE_CHECK((a) != (b))
#define SLICELINE_CHECK_LT(a, b) SLICELINE_CHECK((a) < (b))
#define SLICELINE_CHECK_LE(a, b) SLICELINE_CHECK((a) <= (b))
#define SLICELINE_CHECK_GT(a, b) SLICELINE_CHECK((a) > (b))
#define SLICELINE_CHECK_GE(a, b) SLICELINE_CHECK((a) >= (b))

#ifndef NDEBUG
#define SLICELINE_DCHECK(cond) SLICELINE_CHECK(cond)
#else
#define SLICELINE_DCHECK(cond) \
  while (false) SLICELINE_CHECK(cond)
#endif

}  // namespace sliceline

#endif  // SLICELINE_COMMON_LOGGING_H_
