#ifndef SLICELINE_TESTING_SHRINK_H_
#define SLICELINE_TESTING_SHRINK_H_

#include <functional>
#include <string>

#include "testing/random_dataset.h"

namespace sliceline::testing {

/// A predicate over candidate datasets: "" means the candidate passes, any
/// other string is the failure it reproduces.
using ShrinkCheckFn = std::function<std::string(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase fuzz_case;   ///< smallest failing case found
  std::string failure;  ///< diagnostic of the shrunk case
  int steps = 0;        ///< accepted reductions
  int attempts = 0;     ///< candidate evaluations (accepted + rejected)
};

/// Greedy delta-debugging of a failing case: repeatedly halves the row set
/// (first half, second half, even/odd interleave), drops feature columns,
/// and zeroes error-vector tails, keeping any reduction under which `check`
/// still fails (any failure, not necessarily the original message — the
/// smaller reproduction of a related defect is the more useful artifact).
/// Terminates when a full pass produces no accepted reduction.
ShrinkResult Shrink(const FuzzCase& original, const std::string& failure,
                    const ShrinkCheckFn& check);

}  // namespace sliceline::testing

#endif  // SLICELINE_TESTING_SHRINK_H_
