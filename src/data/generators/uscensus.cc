#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::data {

// USCensus-like dataset: 68 small-domain demographic features with domains
// summing to l = 378 (Table 1): 30 x 3, 20 x 5, 10 x 8, 4 x 14, 4 x 13.
// Several strongly correlated answer groups (the paper cites known
// correlations in this dataset) and 4-class labels derived from latent
// clusters, standing in for the paper's k-means-derived labels.
EncodedDataset MakeUsCensus(const DatasetOptions& options) {
  const int64_t n = internal::ResolveRows(options, 49166);  // paper: 2458285
  Rng rng(options.seed + 4);

  std::vector<int32_t> domains;
  domains.insert(domains.end(), 30, 3);
  domains.insert(domains.end(), 20, 5);
  domains.insert(domains.end(), 10, 8);
  domains.insert(domains.end(), 4, 14);
  domains.insert(domains.end(), 4, 13);
  const int m = static_cast<int>(domains.size());  // 68

  EncodedDataset ds;
  ds.name = "uscensus";
  ds.task = Task::kClassification;
  ds.num_classes = 4;
  ds.x0 = IntMatrix(n, m);
  for (int j = 0; j < m; ++j) {
    ds.feature_names.push_back("q" + std::to_string(j));
  }

  // Latent cluster per row drives correlated answer groups and the label.
  std::vector<int32_t> cluster(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    cluster[i] = static_cast<int32_t>(rng.NextCategorical({0.4, 0.3, 0.2, 0.1}));
  }

  for (int j = 0; j < m; ++j) {
    const bool correlated = j < 24 || (j >= 30 && j < 40);
    for (int64_t i = 0; i < n; ++i) {
      int32_t code;
      if (correlated && !rng.NextBool(0.12)) {
        // Deterministic function of the cluster, feature-specific offset.
        code = static_cast<int32_t>((cluster[i] + j) % domains[j]) + 1;
      } else {
        code = static_cast<int32_t>(rng.NextZipf(domains[j], 0.5)) + 1;
      }
      ds.x0.At(i, j) = code;
    }
  }

  ds.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ds.y[i] = cluster[i];

  ds.planted.push_back(PlantedSlice{{{0, 3}, {30, 5}}, 1.8});
  ds.planted.push_back(PlantedSlice{{{64, 11}}, 1.4});
  ds.planted.push_back(PlantedSlice{{{50, 7}, {51, 2}}, 2.0});

  // Bake the planted difficulty into the labels so trained models
  // genuinely struggle on these slices (held-out debugging works).
  InjectPlantedDifficulty(&ds, 0.0, 0.25, rng);

  ErrorSimOptions err;
  err.base_rate = 0.18;
  err.planted_rate = 0.45;
  ds.errors = SimulateModelErrors(ds, err, rng);
  return ds;
}

}  // namespace sliceline::data
