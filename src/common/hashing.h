#ifndef SLICELINE_COMMON_HASHING_H_
#define SLICELINE_COMMON_HASHING_H_

#include <cstdint>
#include <string>

namespace sliceline {

/// Incremental FNV-1a hasher shared by the checkpoint format (config/data
/// fingerprints, file checksum) and the serving layer (dataset registry
/// keys, result-cache keys). One implementation so "the same bytes hash to
/// the same fingerprint" holds across subsystems; the checkpoint format in
/// particular depends on these exact constants staying put.
class Fnv1a {
 public:
  void AddBytes(const void* data, size_t len);
  void Add64(uint64_t v) { AddBytes(&v, sizeof(v)); }
  void AddDouble(double v) { AddBytes(&v, sizeof(v)); }
  void AddString(const std::string& s) { AddBytes(s.data(), s.size()); }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;
};

/// One-shot convenience: FNV-1a of a byte string.
uint64_t HashString(const std::string& s);

}  // namespace sliceline

#endif  // SLICELINE_COMMON_HASHING_H_
