file(REMOVE_RECURSE
  "libsliceline_ml.a"
)
