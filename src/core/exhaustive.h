#ifndef SLICELINE_CORE_EXHAUSTIVE_H_
#define SLICELINE_CORE_EXHAUSTIVE_H_

#include <vector>

#include "common/status.h"
#include "core/slice.h"
#include "data/int_matrix.h"

namespace sliceline::core {

/// Brute-force exact slice finder: depth-first enumeration of every
/// conjunction with support >= sigma (support monotonicity is the only
/// pruning, so it cannot miss any feasible slice). Used as the correctness
/// oracle in tests -- SliceLine's exactness claim means its top-K scores must
/// match this enumerator's on every input -- and as a naive baseline in the
/// ablation benchmarks. Exponential; intended for small datasets only.
StatusOr<SliceLineResult> RunExhaustive(const data::IntMatrix& x0,
                                        const std::vector<double>& errors,
                                        const SliceLineConfig& config);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_EXHAUSTIVE_H_
