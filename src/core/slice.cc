#include "core/slice.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace sliceline::core {

std::string Slice::ToString(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  if (predicates.empty()) os << "<entire dataset>";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) os << " & ";
    const auto& [feature, code] = predicates[i];
    if (feature >= 0 && feature < static_cast<int>(feature_names.size())) {
      os << feature_names[feature];
    } else {
      os << "F" << feature;
    }
    os << "=" << code;
  }
  os << " [score=" << FormatDouble(stats.score, 4)
     << " size=" << stats.size
     << " err=" << FormatDouble(stats.error_sum, 3)
     << " maxerr=" << FormatDouble(stats.max_error, 3) << "]";
  return os.str();
}

bool Slice::Matches(const data::IntMatrix& x0, int64_t row) const {
  for (const auto& [feature, code] : predicates) {
    if (x0.At(row, feature) != code) return false;
  }
  return true;
}

int64_t ResolveMinSupport(const SliceLineConfig& config, int64_t n) {
  if (config.min_support > 0) return config.min_support;
  const int64_t centile = (n + 99) / 100;  // ceil(n/100)
  return std::max<int64_t>(32, centile);
}

}  // namespace sliceline::core
