// Command-line client for the slice-finding daemon. Speaks the
// newline-delimited strict-JSON protocol from src/serve/protocol.h.
//
// Usage:
//   sliceline_client (--socket PATH | --port N) <command> [options]
//
// Commands:
//   register --name N --csv F --label L [--task reg|class] [--bins B]
//            [--drop a,b,c]
//   find     --dataset N [--engine native|la] [--k K] [--alpha A]
//            [--sigma S] [--max-level L] [--deadline-ms MS]
//            [--memory-budget-mb MB] [--no-wait]
//   status   --job ID   (or: status ID)
//   cancel   --job ID   (or: cancel ID)
//   report   --job ID   (or: report ID)
//   trace    --job ID   (or: trace ID)
//   list
//   stats
//   metrics
//
// `find` prints the top-K report in exactly the sliceline_cli format (the
// wire protocol round-trips doubles bit-exactly), with the cache-hit flag
// on stderr; the other commands print the server's JSON response verbatim.
// `report` / `trace` print the finished job's RunReport document / merged
// Chrome-trace timeline exactly as the server persisted them (redirect
// `trace` to a file and open it in Perfetto). `metrics` fetches GET
// /metrics and prints the Prometheus text -- a curl-free scrape. Exit code
// 0 on success, 1 on any error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/report.h"
#include "serve/client.h"

namespace {

using sliceline::serve::Client;
using sliceline::serve::Endpoint;

struct ClientCliOptions {
  Endpoint endpoint;
  std::string command;
  sliceline::serve::ClientOptions client;
  sliceline::serve::RegisterDatasetRequest register_request;
  sliceline::serve::FindSlicesRequest find_request;
  sliceline::serve::WatchRequest watch_request;
  int64_t job_id = -1;
  int64_t chunk_rows = 0;  ///< append: rows per chunk (0 = one request)
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: sliceline_client (--socket PATH | --port N) COMMAND [options]\n"
      "commands:\n"
      "  register --name N --csv F --label L [--task reg|class] [--bins B]\n"
      "           [--drop a,b,c]\n"
      "  find     --dataset N [--engine native|la] [--k K] [--alpha A]\n"
      "           [--sigma S] [--max-level L] [--deadline-ms MS]\n"
      "           [--memory-budget-mb MB] [--no-wait]\n"
      "  status   --job ID | status ID\n"
      "  cancel   --job ID | cancel ID\n"
      "  report   --job ID | report ID   print the job's RunReport JSON\n"
      "  trace    --job ID | trace ID    print the job's merged Chrome\n"
      "                                  trace (load it in Perfetto)\n"
      "  append   --dataset N --csv F [--chunk-rows R]\n"
      "           stream rows into a dataset; F is a headerless CSV whose\n"
      "           last column is the row's model error and the preceding\n"
      "           columns are the feature cells in encoder order\n"
      "  watch    --dataset N [--tau T] [--hysteresis H] [--window-rows R]\n"
      "           [--window-seconds S] [--k K] [--alpha A] [--sigma S]\n"
      "           [--max-level L]\n"
      "  watch-status --dataset N\n"
      "  unwatch  --dataset N\n"
      "  unregister --dataset N\n"
      "  list\n"
      "  stats\n"
      "  metrics\n"
      "connection options (before or after the command):\n"
      "  --connect-timeout-ms MS   per-attempt connect deadline\n"
      "  --request-timeout-ms MS   per-request response deadline\n"
      "  --retries N               transient-failure retry budget\n"
      "Every flag also accepts --flag=value.\n"
      "Exit code 0 on success, 1 on any error (including a job whose\n"
      "status reports a failure).\n");
}

bool ParseArgs(int argc, char** argv, ClientCliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, 2, "--") != 0) {
      if (options->command.empty()) {
        options->command = arg;
        continue;
      }
      // Job-addressed commands take the id positionally ("status 3",
      // "report 3", "trace 3") as well as via --job.
      const bool job_command =
          options->command == "status" || options->command == "cancel" ||
          options->command == "report" || options->command == "trace";
      if (job_command && options->job_id < 0 && !arg.empty() &&
          arg.find_first_not_of("0123456789") == std::string::npos) {
        options->job_id = std::atoll(arg.c_str());
        continue;
      }
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
    std::string inline_value;
    bool has_inline = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    auto next = [&](const char* name) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* v = next("--socket");
      if (v == nullptr) return false;
      options->endpoint.unix_socket = v;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      options->endpoint.tcp_port = std::atoi(v);
    } else if (arg == "--name") {
      const char* v = next("--name");
      if (v == nullptr) return false;
      options->register_request.name = v;
    } else if (arg == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      options->register_request.csv_path = v;
    } else if (arg == "--label") {
      const char* v = next("--label");
      if (v == nullptr) return false;
      options->register_request.label = v;
    } else if (arg == "--task") {
      const char* v = next("--task");
      if (v == nullptr) return false;
      options->register_request.task = v;
    } else if (arg == "--bins") {
      const char* v = next("--bins");
      if (v == nullptr) return false;
      options->register_request.bins = std::atoll(v);
    } else if (arg == "--drop") {
      const char* v = next("--drop");
      if (v == nullptr) return false;
      options->register_request.drop = sliceline::Split(v, ',');
    } else if (arg == "--dataset") {
      const char* v = next("--dataset");
      if (v == nullptr) return false;
      options->find_request.dataset = v;
      options->watch_request.dataset = v;
    } else if (arg == "--tau") {
      const char* v = next("--tau");
      if (v == nullptr) return false;
      options->watch_request.tau = std::atof(v);
    } else if (arg == "--hysteresis") {
      const char* v = next("--hysteresis");
      if (v == nullptr) return false;
      options->watch_request.hysteresis = std::atof(v);
    } else if (arg == "--window-rows") {
      const char* v = next("--window-rows");
      if (v == nullptr) return false;
      options->watch_request.window_rows = std::atoll(v);
    } else if (arg == "--window-seconds") {
      const char* v = next("--window-seconds");
      if (v == nullptr) return false;
      options->watch_request.window_seconds = std::atof(v);
    } else if (arg == "--chunk-rows") {
      const char* v = next("--chunk-rows");
      if (v == nullptr) return false;
      options->chunk_rows = std::atoll(v);
    } else if (arg == "--engine") {
      const char* v = next("--engine");
      if (v == nullptr) return false;
      options->find_request.engine = v;
    } else if (arg == "--k") {
      const char* v = next("--k");
      if (v == nullptr) return false;
      options->find_request.k = std::atoll(v);
      options->watch_request.k = options->find_request.k;
    } else if (arg == "--alpha") {
      const char* v = next("--alpha");
      if (v == nullptr) return false;
      options->find_request.alpha = std::atof(v);
      options->watch_request.alpha = options->find_request.alpha;
    } else if (arg == "--sigma") {
      const char* v = next("--sigma");
      if (v == nullptr) return false;
      options->find_request.sigma = std::atoll(v);
      options->watch_request.sigma = options->find_request.sigma;
    } else if (arg == "--max-level") {
      const char* v = next("--max-level");
      if (v == nullptr) return false;
      options->find_request.max_level = std::atoll(v);
      options->watch_request.max_level = options->find_request.max_level;
    } else if (arg == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return false;
      options->find_request.deadline_ms = std::atoll(v);
    } else if (arg == "--memory-budget-mb") {
      const char* v = next("--memory-budget-mb");
      if (v == nullptr) return false;
      options->find_request.memory_budget_mb = std::atoll(v);
    } else if (arg == "--no-wait") {
      options->find_request.wait = false;
    } else if (arg == "--job") {
      const char* v = next("--job");
      if (v == nullptr) return false;
      options->job_id = std::atoll(v);
    } else if (arg == "--connect-timeout-ms") {
      const char* v = next("--connect-timeout-ms");
      if (v == nullptr) return false;
      options->client.connect_timeout_ms = std::atoi(v);
    } else if (arg == "--request-timeout-ms") {
      const char* v = next("--request-timeout-ms");
      if (v == nullptr) return false;
      options->client.request_timeout_ms = std::atoi(v);
    } else if (arg == "--retries") {
      const char* v = next("--retries");
      if (v == nullptr) return false;
      options->client.max_retries = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const sliceline::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ClientCliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }
  if (options.command.empty()) {
    std::fprintf(stderr, "missing command\n");
    PrintUsage();
    return 1;
  }
  if (options.endpoint.unix_socket.empty() && options.endpoint.tcp_port < 0) {
    std::fprintf(stderr, "need --socket or --port\n");
    PrintUsage();
    return 1;
  }

  if (options.command == "metrics") {
    auto metrics = sliceline::serve::FetchMetrics(options.endpoint);
    if (!metrics.ok()) return Fail(metrics.status());
    std::fputs(metrics.value().c_str(), stdout);
    return 0;
  }

  auto client = Client::Connect(options.endpoint, options.client);
  if (!client.ok()) return Fail(client.status());

  if (options.command == "register") {
    if (options.register_request.name.empty() ||
        options.register_request.csv_path.empty() ||
        options.register_request.label.empty()) {
      std::fprintf(stderr, "register needs --name, --csv, --label\n");
      return 1;
    }
    auto response = client.value().RegisterDataset(options.register_request);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", client.value().last_response_line().c_str());
    return 0;
  }
  if (options.command == "find") {
    if (options.find_request.dataset.empty()) {
      std::fprintf(stderr, "find needs --dataset\n");
      return 1;
    }
    auto reply = client.value().FindSlices(options.find_request);
    if (!reply.ok()) return Fail(reply.status());
    if (!options.find_request.wait) {
      std::printf("job %lld submitted\n",
                  static_cast<long long>(reply.value().job_id));
      return 0;
    }
    std::fprintf(stderr, "cache_hit=%s job=%lld\n",
                 reply.value().cache_hit ? "true" : "false",
                 static_cast<long long>(reply.value().job_id));
    std::fputs(sliceline::core::FormatResult(reply.value().result,
                                             reply.value().feature_names)
                   .c_str(),
               stdout);
    return 0;
  }
  if (options.command == "status" || options.command == "cancel") {
    if (options.job_id < 0) {
      std::fprintf(stderr, "%s needs --job\n", options.command.c_str());
      return 1;
    }
    auto response = options.command == "status"
                        ? client.value().GetStatus(options.job_id)
                        : client.value().Cancel(options.job_id);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", client.value().last_response_line().c_str());
    // A job that terminated in failure answers ok:true (the status query
    // itself succeeded) with state "failed" and an embedded error object;
    // surface that as a nonzero exit so scripts can branch on it.
    const std::string state = response.value().GetStringOr("state", "");
    if (state == "failed") {
      const sliceline::obs::JsonValue* error = response.value().Find("error");
      std::fprintf(stderr, "job %lld failed: %s\n",
                   static_cast<long long>(options.job_id),
                   error != nullptr ? error->GetStringOr("message", "").c_str()
                                    : "");
      return 1;
    }
    return 0;
  }
  if (options.command == "report" || options.command == "trace") {
    if (options.job_id < 0) {
      std::fprintf(stderr, "%s needs a job id (--job ID or positional)\n",
                   options.command.c_str());
      return 1;
    }
    auto document = options.command == "report"
                        ? client.value().GetReport(options.job_id)
                        : client.value().GetTrace(options.job_id);
    if (!document.ok()) return Fail(document.status());
    // The document is emitted verbatim: `sliceline_client trace 3 >
    // job3.json` produces a file Perfetto/chrome://tracing loads directly.
    std::fputs(document.value().c_str(), stdout);
    const std::string& text = document.value();
    if (text.empty() || text.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }
  if (options.command == "append") {
    if (options.find_request.dataset.empty() ||
        options.register_request.csv_path.empty()) {
      std::fprintf(stderr, "append needs --dataset and --csv\n");
      return 1;
    }
    // Headerless CSV, no quoting: feature cells in encoder order, then the
    // row's model error as the last column.
    std::ifstream in(options.register_request.csv_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n",
                   options.register_request.csv_path.c_str());
      return 1;
    }
    std::vector<std::vector<std::string>> rows;
    std::vector<double> errors;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::vector<std::string> cells = sliceline::Split(line, ',');
      if (cells.size() < 2) {
        std::fprintf(stderr, "append row needs >= 1 feature cell + error\n");
        return 1;
      }
      auto error = sliceline::ParseDouble(cells.back());
      if (!error.ok()) {
        std::fprintf(stderr, "bad error value '%s'\n", cells.back().c_str());
        return 1;
      }
      errors.push_back(error.value());
      cells.pop_back();
      rows.push_back(std::move(cells));
    }
    if (rows.empty()) {
      std::fprintf(stderr, "append file %s holds no rows\n",
                   options.register_request.csv_path.c_str());
      return 1;
    }
    sliceline::StatusOr<sliceline::obs::JsonValue> response =
        sliceline::Status::OK();
    if (options.chunk_rows > 0) {
      response = client.value().AppendRowsChunked(
          options.find_request.dataset, rows, errors, options.chunk_rows);
    } else {
      sliceline::serve::AppendRowsRequest request;
      request.dataset = options.find_request.dataset;
      request.rows = std::move(rows);
      request.errors = std::move(errors);
      response = client.value().AppendRows(request);
    }
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", client.value().last_response_line().c_str());
    return 0;
  }
  if (options.command == "watch") {
    if (options.watch_request.dataset.empty()) {
      std::fprintf(stderr, "watch needs --dataset\n");
      return 1;
    }
    auto response = client.value().Watch(options.watch_request);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", client.value().last_response_line().c_str());
    return 0;
  }
  if (options.command == "watch-status" || options.command == "unwatch" ||
      options.command == "unregister") {
    if (options.watch_request.dataset.empty()) {
      std::fprintf(stderr, "%s needs --dataset\n", options.command.c_str());
      return 1;
    }
    auto response =
        options.command == "watch-status"
            ? client.value().WatchStatus(options.watch_request.dataset)
            : options.command == "unwatch"
                  ? client.value().Unwatch(options.watch_request.dataset)
                  : client.value().UnregisterDataset(
                        options.watch_request.dataset);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", client.value().last_response_line().c_str());
    return 0;
  }
  if (options.command == "list" || options.command == "stats") {
    auto response = options.command == "list" ? client.value().ListDatasets()
                                              : client.value().ServerStats();
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", client.value().last_response_line().c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", options.command.c_str());
  PrintUsage();
  return 1;
}
