#include "core/topk.h"

#include <algorithm>

#include "common/logging.h"

namespace sliceline::core {

TopK::TopK(int k, int64_t min_support) : k_(k), min_support_(min_support) {
  SLICELINE_CHECK_GE(k, 1);
  SLICELINE_CHECK_GE(min_support, 1);
  slices_.reserve(k + 1);
}

void TopK::Offer(Slice slice) {
  if (slice.stats.score <= 0.0) return;
  if (slice.stats.size < min_support_) return;
  if (Full() && slice.stats.score <= slices_.back().stats.score) return;
  // A slice is identified by its predicate set; a re-offered slice (the
  // candidate-deduplication ablation evaluates duplicates) must not occupy
  // a second top-K slot.
  for (const Slice& held : slices_) {
    if (held.predicates == slice.predicates) return;
  }
  auto it = std::upper_bound(
      slices_.begin(), slices_.end(), slice,
      [](const Slice& a, const Slice& b) {
        return a.stats.score > b.stats.score;
      });
  slices_.insert(it, std::move(slice));
  if (static_cast<int>(slices_.size()) > k_) slices_.pop_back();
}

double TopK::Threshold() const {
  return Full() ? slices_.back().stats.score : 0.0;
}

void TopK::Restore(std::vector<Slice> slices) {
  SLICELINE_CHECK_LE(static_cast<int>(slices.size()), k_);
  for (size_t i = 1; i < slices.size(); ++i) {
    SLICELINE_CHECK_GE(slices[i - 1].stats.score, slices[i].stats.score);
  }
  slices_ = std::move(slices);
}

}  // namespace sliceline::core
